//! # selfstab
//!
//! A faithful, production-quality reproduction of
//! *"Self-Stabilizing Protocols for Maximal Matching and Maximal Independent
//! Sets for Ad Hoc Networks"* (W. Goddard, S. T. Hedetniemi, D. P. Jacobs,
//! P. K. Srimani, IPDPS 2003).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`graph`] — topology substrate (generators, predicates, churn),
//! * [`engine`] — self-stabilization execution engine (daemons, traces,
//!   fault injection, exhaustive verification, parallel executor),
//! * [`core`] — the paper's protocols: [`core::smm`] (Algorithm SMM,
//!   Fig. 1) and [`core::smi`] (Algorithm SMI, Fig. 4), plus ablation
//!   variants, the Hsu–Huang baseline and its synchronous transformation,
//!   greedy oracles, derived applications, and the extension protocols
//!   ([`core::coloring`], [`core::anonymous`], [`core::bfs_tree`]),
//! * [`runtime`] — sharded message-passing runtime: mailbox worker per
//!   shard, boundary states as beacon wire frames over bounded channels,
//!   per-round barrier = the paper's synchronous round
//!   ([`runtime::RuntimeExecutor`] is state-identical to the serial
//!   executor at any shard count),
//! * [`adhoc`] — discrete-event beacon/mobility simulator (the ad hoc
//!   network model of Section 2),
//! * [`analysis`] — statistics and table rendering for the experiment
//!   harness.
//!
//! ## Quickstart
//!
//! ```
//! use selfstab::graph::{generators, predicates, Ids};
//! use selfstab::core::smm::Smm;
//! use selfstab::engine::sync::SyncExecutor;
//! use selfstab::engine::InitialState;
//!
//! let g = generators::cycle(8);
//! let smm = Smm::paper(Ids::identity(8));
//! let exec = SyncExecutor::new(&g, &smm);
//! // Start from an arbitrary (seeded random) state, as self-stabilization demands.
//! let run = exec.run(InitialState::Random { seed: 42 }, 8 + 1);
//! assert!(run.stabilized());            // Theorem 1: at most n + 1 rounds
//! let matching = Smm::matched_edges(&g, &run.final_states);
//! assert!(predicates::is_maximal_matching(&g, &matching));
//! ```

pub use selfstab_adhoc as adhoc;
pub use selfstab_analysis as analysis;
pub use selfstab_core as core;
pub use selfstab_engine as engine;
pub use selfstab_graph as graph;
pub use selfstab_runtime as runtime;
