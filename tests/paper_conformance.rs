//! Integration tests that mirror the paper section by section: each test
//! cites the claim it checks. These run through the public facade crate,
//! exercising the same API a downstream user sees.

use selfstab::core::smm::types::{allowed_transition, check_trace, classify, NodeType};
use selfstab::core::smm::{Pointer, SelectPolicy, Smm};
use selfstab::core::Smi;
use selfstab::engine::sync::{Outcome, SyncExecutor};
use selfstab::engine::{InitialState, Protocol};
use selfstab::graph::{generators, predicates, Ids, Node};

/// Section 3, Figure 1 + Theorem 1 on a deterministic walk through every
/// family with both extreme ID orders.
#[test]
fn theorem_1_bound_and_legitimacy() {
    for fam in generators::Family::ALL {
        for n in [5usize, 12, 31, 64] {
            let g = fam.build(n);
            let n_actual = g.n();
            for ids in [Ids::identity(n_actual), Ids::reversed(n_actual)] {
                let smm = Smm::paper(ids);
                let exec = SyncExecutor::new(&g, &smm);
                for seed in 0..8 {
                    let run = exec.run(InitialState::Random { seed }, n_actual + 1);
                    assert!(
                        run.stabilized(),
                        "{} n={n_actual} seed={seed}: > n+1 rounds",
                        fam.name()
                    );
                    let m = Smm::matched_edges(&g, &run.final_states);
                    assert!(predicates::is_maximal_matching(&g, &m), "{}", fam.name());
                }
            }
        }
    }
}

/// Section 3: "each time t, {M, A, P} defines a (weak) partition of V" —
/// the classifier assigns every node exactly one Fig. 2 type, and the
/// coarse classes partition as the paper states.
#[test]
fn figure_2_types_partition_nodes() {
    let g = generators::grid(5, 5);
    let smm = Smm::paper(Ids::identity(25));
    let run = SyncExecutor::new(&g, &smm)
        .with_trace()
        .run(InitialState::Random { seed: 5 }, 26);
    for states in run.trace.as_ref().unwrap() {
        let types = classify(&g, states);
        assert_eq!(types.len(), 25);
        for (i, ty) in types.iter().enumerate() {
            // Coarse class consistency: M iff mutually matched; A iff null;
            // P otherwise.
            let p = states[i];
            match ty {
                NodeType::A0 | NodeType::A1 => assert!(p.is_null()),
                NodeType::M | NodeType::Pa | NodeType::Pm | NodeType::Pp => assert!(!p.is_null()),
                NodeType::Dangling => panic!("no dangling pointers in clean executions"),
            }
        }
    }
}

/// Section 3, Figure 3 + Lemma 7, on long adversarial executions.
#[test]
fn figure_3_transitions_and_lemma_7() {
    let g = generators::cycle(17);
    let smm = Smm::paper(Ids::reversed(17));
    let exec = SyncExecutor::new(&g, &smm).with_trace();
    for seed in 0..40 {
        let run = exec.run(InitialState::Random { seed }, 18);
        assert!(run.stabilized());
        let trace = run.trace.as_ref().unwrap();
        let matrix = check_trace(&g, trace).expect("only Fig. 3 arrows");
        // Lemma 7 from the matrix side: no arrows into A1 or PA at all.
        for from in NodeType::ALL {
            assert_eq!(matrix.count(from, NodeType::A1), 0);
            assert_eq!(matrix.count(from, NodeType::Pa), 0);
            assert!(!allowed_transition(from, NodeType::A1));
            assert!(!allowed_transition(from, NodeType::Pa));
        }
    }
}

/// Section 3's closing remark, both directions: clockwise R2 oscillates on
/// C4 from all-null; the paper's min-ID R2 stabilizes from the same state.
#[test]
fn c4_counterexample_both_directions() {
    let g = generators::cycle(4);
    let bad = Smm::with_policies(
        Ids::identity(4),
        SelectPolicy::MinId,
        SelectPolicy::Clockwise,
    );
    let run = SyncExecutor::new(&g, &bad)
        .with_cycle_detection()
        .run(InitialState::Default, 1000);
    assert_eq!(
        run.outcome,
        Outcome::Cycle {
            first_seen: 0,
            period: 2
        },
        "the paper's oscillation: propose-all / back-off-all"
    );

    let good = Smm::paper(Ids::identity(4));
    let run = SyncExecutor::new(&g, &good).run(InitialState::Default, 5);
    assert!(run.stabilized());
    assert_eq!(Smm::matched_edges(&g, &run.final_states).len(), 2);
}

/// Section 4, Figure 4 + Lemmas 11–13 + Theorem 2.
#[test]
fn smi_lemmas_and_theorem_2() {
    for fam in generators::Family::ALL {
        let g = fam.build(20);
        let n = g.n();
        let smi = Smi::new(Ids::identity(n));
        let exec = SyncExecutor::new(&g, &smi).with_trace();
        for seed in 0..8 {
            let run = exec.run(InitialState::Random { seed }, n + 2);
            assert!(run.stabilized(), "{}", fam.name());
            // Lemma 13: stable => maximal independent set.
            assert!(predicates::is_maximal_independent_set(
                &g,
                &run.final_states
            ));
            // Lemmas 11-12 contrapositive along the trace: while the current
            // set is NOT a maximal independent set, some node moves next
            // round (the trace only ends at the legitimate fixpoint).
            let trace = run.trace.as_ref().unwrap();
            for (t, states) in trace.iter().enumerate() {
                if t + 1 < trace.len() {
                    assert_ne!(states, &trace[t + 1], "non-final rounds have moves");
                }
            }
        }
    }
}

/// Section 2 model: pointers to vanished neighbors (link failure) are
/// cleaned up and the predicate re-established on the new topology.
#[test]
fn link_failure_readjustment() {
    let mut g = generators::cycle(8);
    let smm = Smm::paper(Ids::identity(8));
    let run = SyncExecutor::new(&g, &smm).run(InitialState::Random { seed: 2 }, 9);
    assert!(run.stabilized());
    // Fail two links; the old states stay.
    g.remove_edge(Node(0), Node(1));
    g.remove_edge(Node(4), Node(5));
    let exec = SyncExecutor::new(&g, &smm);
    let rerun = exec.run(InitialState::Explicit(run.final_states), 9 + 8);
    assert!(rerun.stabilized());
    let m = Smm::matched_edges(&g, &rerun.final_states);
    assert!(predicates::is_maximal_matching(&g, &m));
    for v in g.nodes() {
        if let Pointer(Some(t)) = rerun.final_states[v.index()] {
            assert!(g.has_edge(v, t), "no dangling pointers survive");
        }
    }
}

/// Conclusions (Section 5): centralized-model solvability carries to the
/// synchronous model — shown constructively by the daemon-refined
/// Hsu–Huang run, which must reach the same *class* of fixpoints.
#[test]
fn central_to_synchronous_conversion() {
    use selfstab::core::hsu_huang::HsuHuang;
    use selfstab::core::transformer::{run_synchronized, Refinement};
    let g = generators::petersen();
    let hh = HsuHuang::classic(10);
    for seed in 0..10 {
        let run = run_synchronized(
            &g,
            &hh,
            InitialState::Random { seed },
            Refinement::DeterministicLocalMutex,
            10_000,
        );
        assert!(run.stabilized());
        assert!(hh.is_legitimate(&g, &run.final_states));
    }
}
