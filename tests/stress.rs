//! Randomized stress battery: differential testing across protocols,
//! executors, topologies, ID orders and fault schedules. Kept at a size
//! that runs in seconds in debug builds.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use selfstab::core::bfs_tree::BfsTree;
use selfstab::core::coloring::Coloring;
use selfstab::core::smm::Smm;
use selfstab::core::{AnonMis, Smi};
use selfstab::engine::record::{from_json, record, to_json, validate_trace};
use selfstab::engine::sync::SyncExecutor;
use selfstab::engine::{InitialState, Protocol};
use selfstab::graph::mutate::Churn;
use selfstab::graph::traversal::is_connected;
use selfstab::graph::{generators, Graph, Ids, Node};

fn random_connected_graph(rng: &mut StdRng) -> Graph {
    let n = rng.random_range(2..40);
    let mut g = generators::random_tree(n, rng);
    for _ in 0..rng.random_range(0..n) {
        let a = rng.random_range(0..n);
        let b = rng.random_range(0..n);
        if a != b {
            g.add_edge(Node::from(a), Node::from(b));
        }
    }
    g
}

/// Every protocol stabilizes legitimately on a zoo of random instances,
/// within its documented round budget.
#[test]
fn protocol_zoo_random_instances() {
    let mut rng = StdRng::seed_from_u64(0x57e55);
    for trial in 0..60 {
        let g = random_connected_graph(&mut rng);
        let n = g.n();
        let ids = Ids::random(n, &mut rng);
        let seed = rng.random();

        let smm = Smm::paper(ids.clone());
        let run = SyncExecutor::new(&g, &smm).run(InitialState::Random { seed }, n + 1);
        assert!(
            run.stabilized() && smm.is_legitimate(&g, &run.final_states),
            "SMM trial {trial}"
        );

        let smi = Smi::new(ids.clone());
        let run = SyncExecutor::new(&g, &smi).run(InitialState::Random { seed }, n + 2);
        assert!(
            run.stabilized() && smi.is_legitimate(&g, &run.final_states),
            "SMI trial {trial}"
        );

        let sc = Coloring::new(ids.clone());
        let run = SyncExecutor::new(&g, &sc).run(InitialState::Random { seed }, n + 2);
        assert!(
            run.stabilized() && sc.is_legitimate(&g, &run.final_states),
            "SC trial {trial}"
        );

        let tree = BfsTree::new(Node::from(rng.random_range(0..n)), ids.clone());
        let run = SyncExecutor::new(&g, &tree).run(InitialState::Random { seed }, 2 * n + 2);
        assert!(
            run.stabilized() && tree.is_legitimate(&g, &run.final_states),
            "BFS trial {trial}"
        );

        let anon = AnonMis::new();
        let run = SyncExecutor::new(&g, &anon).run(InitialState::Random { seed }, 8 * n + 64);
        assert!(
            run.stabilized() && anon.is_legitimate(&g, &run.final_states),
            "Anon trial {trial}"
        );
    }
}

/// Fault storm: alternate corruption and churn on a live SMM instance; the
/// predicate must hold at every quiescent point and connectivity is never
/// broken.
#[test]
fn smm_survives_fault_storm() {
    let mut rng = StdRng::seed_from_u64(0xf0157);
    let mut g = generators::grid(6, 6);
    let smm = Smm::paper(Ids::random(36, &mut rng));
    let mut states = SyncExecutor::new(&g, &smm)
        .run(InitialState::Random { seed: 1 }, 37)
        .final_states;
    let churn = Churn::default();
    for storm in 0..40 {
        // Random mix of topology and memory faults.
        if rng.random_bool(0.5) {
            churn.apply(&mut g, rng.random_range(1..4), &mut rng);
        }
        if rng.random_bool(0.5) {
            let victim = Node::from(rng.random_range(0..36usize));
            let nbrs = g.neighbors(victim).to_vec();
            states[victim.index()] = if nbrs.is_empty() || rng.random_bool(0.4) {
                selfstab::core::Pointer(None)
            } else {
                selfstab::core::Pointer(Some(nbrs[rng.random_range(0..nbrs.len())]))
            };
        }
        assert!(is_connected(&g), "storm {storm}");
        let run = SyncExecutor::new(&g, &smm).run(InitialState::Explicit(states.clone()), 80);
        assert!(run.stabilized(), "storm {storm}");
        assert!(smm.is_legitimate(&g, &run.final_states), "storm {storm}");
        states = run.final_states;
    }
}

/// Record → JSON → parse → validate, for a state type from each protocol
/// family, through the public API.
#[test]
fn recorded_runs_roundtrip_and_validate() {
    let mut rng = StdRng::seed_from_u64(0x4ec0);
    for _ in 0..10 {
        let g = random_connected_graph(&mut rng);
        let n = g.n();
        let ids = Ids::random(n, &mut rng);

        let smm = Smm::paper(ids.clone());
        let run = SyncExecutor::new(&g, &smm)
            .with_trace()
            .run(InitialState::Random { seed: rng.random() }, n + 1);
        let rec = record(&g, &smm, run.trace.clone().unwrap(), run.stabilized());
        let json = to_json(&rec);
        let back = from_json::<selfstab::core::Pointer>(&json).unwrap();
        assert_eq!(back.trace, rec.trace);
        validate_trace(&smm, &back).expect("genuine SMM trace validates");

        let tree = BfsTree::new(Node(0), ids);
        let run = SyncExecutor::new(&g, &tree)
            .with_trace()
            .run(InitialState::Random { seed: rng.random() }, 2 * n + 2);
        let rec = record(&g, &tree, run.trace.clone().unwrap(), run.stabilized());
        validate_trace(&tree, &rec).expect("genuine BFS trace validates");
    }
}

/// Cross-protocol consistency: on the same stabilized instance, the SMM
/// matching saturates every edge of the graph, the SMI set dominates it,
/// and the coloring separates it — three independent certificates computed
/// by three independent protocols on one topology.
#[test]
fn certificates_compose() {
    let mut rng = StdRng::seed_from_u64(0xc0de);
    for _ in 0..20 {
        let g = random_connected_graph(&mut rng);
        let n = g.n();
        let ids = Ids::random(n, &mut rng);
        let matching = {
            let p = Smm::paper(ids.clone());
            let r = SyncExecutor::new(&g, &p).run(InitialState::Random { seed: 1 }, n + 1);
            Smm::matched_edges(&g, &r.final_states)
        };
        let mis = {
            let p = Smi::new(ids.clone());
            SyncExecutor::new(&g, &p)
                .run(InitialState::Random { seed: 2 }, n + 2)
                .final_states
        };
        let colors = {
            let p = Coloring::new(ids.clone());
            SyncExecutor::new(&g, &p)
                .run(InitialState::Random { seed: 3 }, n + 2)
                .final_states
        };
        // |matching| <= n/2; |MIS| >= n/(Δ+1); colors separate the MIS's
        // complement... the simple cross-checks:
        assert!(2 * matching.len() <= n);
        let mis_size = mis.iter().filter(|&&x| x).count();
        assert!(mis_size * (g.max_degree() + 1) >= n, "MIS size lower bound");
        for e in g.edges() {
            assert_ne!(colors[e.a.index()], colors[e.b.index()]);
        }
        // A maximal matching's saturated set is a vertex cover; its
        // complement is an independent set (weak duality cross-check).
        let saturated = selfstab::graph::predicates::saturated_nodes(&g, &matching);
        let complement: Vec<bool> = saturated.iter().map(|&s| !s).collect();
        assert!(selfstab::graph::predicates::is_independent_set(
            &g,
            &complement
        ));
    }
}

/// Matching and cluster heads maintained on the same beacons: the parallel
/// composition of SMM and SMI stabilizes to both structures at once and
/// projects onto the standalone runs.
#[test]
fn smm_and_smi_compose_on_one_network() {
    use selfstab::engine::compose::Product;
    let mut rng = StdRng::seed_from_u64(0xc0135);
    for _ in 0..10 {
        let g = random_connected_graph(&mut rng);
        let n = g.n();
        let ids = Ids::random(n, &mut rng);
        let smm = Smm::paper(ids.clone());
        let smi = Smi::new(ids);
        let product = Product::new(&smm, &smi);
        let run = SyncExecutor::new(&g, &product).run(InitialState::Random { seed: 4 }, 2 * n + 4);
        assert!(run.stabilized());
        assert!(product.is_legitimate(&g, &run.final_states));
        // Both certificates extracted from the single composed state.
        let matching = Smm::matched_edges(&g, &Product::<Smm, Smi>::project1(&run.final_states));
        let mis = Product::<Smm, Smi>::project2(&run.final_states);
        assert!(selfstab::graph::predicates::is_maximal_matching(
            &g, &matching
        ));
        assert!(selfstab::graph::predicates::is_maximal_independent_set(
            &g, &mis
        ));
    }
}
