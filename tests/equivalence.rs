//! Property: the active-set schedule is pure evaluation pruning.
//!
//! For any connected random graph, any arbitrary initial state, and any
//! protocol (SMM, SMI, Hsu–Huang), the engine must produce the same
//! execution — rounds, outcome, per-rule move counts, per-round states, and
//! final states — under `Schedule::Full` and `Schedule::Active`, on the
//! serial executor, the chunked-parallel executor, and the sharded mailbox
//! runtime at every shard count. Soundness argument: the round-(r+1)
//! worklist is `⋃ N[u]` over round-r movers, and a node privileged in round
//! r+1 either moved in round r (it is in its own closed neighborhood) or
//! had its view changed by a moving neighbor — so pruning never skips a
//! privileged node (`selfstab::engine::active` module docs; the shrinking
//! frontier is the paper's Lemmas 9–10).
//!
//! The serial full sweep additionally pins `evaluated`: full = n per round,
//! active ≤ n, and the runtime's per-shard `owned ∩ active` worklists must
//! partition the serial active set exactly.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use selfstab::core::hsu_huang::HsuHuang;
use selfstab::core::smm::Smm;
use selfstab::core::Smi;
use selfstab::engine::active::Schedule;
use selfstab::engine::adversary::ByzStrategy;
use selfstab::engine::faults::CrashAt;
use selfstab::engine::obs::{
    ChromeTraceWriter, JsonlEventLog, MetricsCollector, Observer, RoundStats,
};
use selfstab::engine::par::ParSyncExecutor;
use selfstab::engine::protocol::{InitialState, Protocol, WireState};
use selfstab::engine::sync::{Run, SyncExecutor};
use selfstab::graph::{generators, Graph, Ids};
use selfstab::runtime::{FaultPlan, RuntimeExecutor};

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Per-round states plus metrics, for exact cross-executor comparison.
struct Trace<S> {
    states: Vec<Vec<S>>,
    evaluated: Vec<usize>,
}

impl<S> Trace<S> {
    fn new() -> Self {
        Trace {
            states: Vec::new(),
            evaluated: Vec::new(),
        }
    }
}

impl<S: Clone> Observer<S> for Trace<S> {
    fn on_round_end(&mut self, stats: &RoundStats, states: &[S]) {
        self.states.push(states.to_vec());
        self.evaluated.push(stats.evaluated);
    }
}

fn assert_same_run<S: Clone + PartialEq + std::fmt::Debug>(
    label: &str,
    a: &Run<S>,
    b: &Run<S>,
) -> TestCaseResult {
    prop_assert_eq!(a.rounds, b.rounds, "rounds differ: {}", label);
    prop_assert_eq!(&a.outcome, &b.outcome, "outcome differs: {}", label);
    prop_assert_eq!(
        &a.moves_per_rule,
        &b.moves_per_rule,
        "moves per rule differ: {}",
        label
    );
    prop_assert_eq!(
        &a.final_states,
        &b.final_states,
        "final states differ: {}",
        label
    );
    Ok(())
}

/// The full cross-product for one protocol instance on one graph: serial
/// full is the reference; serial active, parallel full/active, and the
/// runtime under both schedules at every shard count must reproduce it.
fn check<P: Protocol>(g: &Graph, proto: &P, seed: u64) -> TestCaseResult
where
    P::State: WireState,
{
    let max_rounds = 4 * g.n() + 8;
    let init = InitialState::Random { seed };

    let mut full_trace = Trace::new();
    let reference = SyncExecutor::new(g, proto)
        .with_schedule(Schedule::Full)
        .run_observed(init.clone(), max_rounds, &mut full_trace);
    let mut active_trace = Trace::new();
    let active = SyncExecutor::new(g, proto)
        .with_schedule(Schedule::Active)
        .run_observed(init.clone(), max_rounds, &mut active_trace);
    assert_same_run("serial active vs full", &reference, &active)?;
    prop_assert_eq!(
        &full_trace.states,
        &active_trace.states,
        "serial per-round states"
    );
    for (r, (&f, &a)) in full_trace
        .evaluated
        .iter()
        .zip(&active_trace.evaluated)
        .enumerate()
    {
        prop_assert_eq!(f, g.n(), "full sweep evaluates everyone (round {})", r + 1);
        prop_assert!(a <= f, "active can only shrink work (round {})", r + 1);
    }

    for schedule in [Schedule::Full, Schedule::Active] {
        let par = ParSyncExecutor::new(g, proto)
            .with_schedule(schedule)
            .run(init.clone(), max_rounds);
        assert_same_run(&format!("parallel {schedule}"), &reference, &par)?;
    }

    for shards in SHARD_COUNTS {
        for schedule in [Schedule::Full, Schedule::Active] {
            let mut rt_trace = Trace::new();
            let rt = RuntimeExecutor::new(g, proto, shards)
                .with_schedule(schedule)
                .run_observed(init.clone(), max_rounds, &mut rt_trace)
                .expect("sharded run failed");
            let label = format!("runtime {schedule} shards={shards}");
            assert_same_run(&label, &reference, &rt)?;
            prop_assert_eq!(&full_trace.states, &rt_trace.states, "states: {}", &label);
            // The per-shard owned ∩ active worklists partition the serial
            // active set: both mark v iff some u ∈ N[v] moved last round.
            let serial = match schedule {
                Schedule::Full => &full_trace.evaluated,
                Schedule::Active => &active_trace.evaluated,
            };
            prop_assert_eq!(&rt_trace.evaluated, serial, "evaluated: {}", &label);
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn smm_schedules_and_executors_agree(
        n in 4usize..40,
        graph_seed in 0u64..1_000_000,
        state_seed in 0u64..1_000_000,
    ) {
        let g = generators::erdos_renyi_connected(n, 0.25, &mut StdRng::seed_from_u64(graph_seed));
        check(&g, &Smm::paper(Ids::identity(g.n())), state_seed)?;
    }

    #[test]
    fn smi_schedules_and_executors_agree(
        n in 4usize..40,
        graph_seed in 0u64..1_000_000,
        state_seed in 0u64..1_000_000,
    ) {
        let g = generators::erdos_renyi_connected(n, 0.25, &mut StdRng::seed_from_u64(graph_seed));
        check(&g, &Smi::new(Ids::identity(g.n())), state_seed)?;
    }

    #[test]
    fn hsu_huang_schedules_and_executors_agree(
        n in 4usize..32,
        graph_seed in 0u64..1_000_000,
        state_seed in 0u64..1_000_000,
    ) {
        // Hsu–Huang under the synchronous daemon may oscillate (it needs a
        // central daemon to stabilize) — equivalence must hold for
        // round-limited executions too, not just converging ones.
        let g = generators::erdos_renyi_connected(n, 0.25, &mut StdRng::seed_from_u64(graph_seed));
        check(&g, &HsuHuang::classic(g.n()), state_seed)?;
    }
}

/// Satellite (crash-at): an injected serial full restart must be
/// byte-identical to the runtime's crash-restart of a single shard holding
/// the whole graph. `CrashAt { frac: 1.0 }` rehydrates every node in
/// ascending order from `seed`, and the runtime worker does exactly the
/// same with `FaultPlan::restart_seed(0, round)` — so seeding the serial
/// crash from the plan pins the two code paths against each other.
#[test]
fn serial_crash_at_matches_runtime_single_shard_restart() {
    let g = generators::erdos_renyi_connected(24, 0.25, &mut StdRng::seed_from_u64(1105));
    let smm = Smm::paper(Ids::identity(g.n()));
    let max_rounds = 4 * g.n() + 8;
    let init = InitialState::Random { seed: 5 };
    for crash_round in [0usize, 2, 5] {
        for schedule in [Schedule::Full, Schedule::Active] {
            let plan = FaultPlan::new(77).with_crash(0, crash_round);
            let crash = CrashAt {
                round: crash_round,
                frac: 1.0,
                seed: plan.restart_seed(0, crash_round),
            };
            let mut serial_trace = Trace::new();
            let serial = SyncExecutor::new(&g, &smm)
                .with_schedule(schedule)
                .with_crash(crash)
                .run_observed(init.clone(), max_rounds, &mut serial_trace);
            let mut rt_trace = Trace::new();
            let rt = RuntimeExecutor::new(&g, &smm, 1)
                .with_schedule(schedule)
                .with_chaos(plan)
                .run_observed(init.clone(), max_rounds, &mut rt_trace)
                .expect("sharded crash run failed");
            let label = format!("crash@{crash_round} {schedule}");
            assert_eq!(serial.rounds, rt.rounds, "rounds: {label}");
            assert_eq!(serial.outcome, rt.outcome, "outcome: {label}");
            assert_eq!(serial.moves_per_rule, rt.moves_per_rule, "moves: {label}");
            assert_eq!(
                serial.final_states, rt.final_states,
                "final states: {label}"
            );
            assert_eq!(
                serial_trace.states, rt_trace.states,
                "per-round states: {label}"
            );
        }
    }
}

/// Satellite (crash-at): the chunked-parallel executor's crash must replay
/// the serial one exactly, including partial crashes where victim selection
/// exercises the Fisher–Yates stream.
#[test]
fn parallel_crash_at_matches_serial() {
    let g = generators::erdos_renyi_connected(30, 0.2, &mut StdRng::seed_from_u64(2206));
    let smm = Smm::paper(Ids::identity(g.n()));
    let max_rounds = 4 * g.n() + 8;
    let init = InitialState::Random { seed: 9 };
    for frac in [0.3, 1.0] {
        for schedule in [Schedule::Full, Schedule::Active] {
            let crash = CrashAt {
                round: 3,
                frac,
                seed: 99,
            };
            let serial = SyncExecutor::new(&g, &smm)
                .with_schedule(schedule)
                .with_crash(crash.clone())
                .run(init.clone(), max_rounds);
            let par = ParSyncExecutor::new(&g, &smm)
                .with_schedule(schedule)
                .with_crash(crash)
                .run(init.clone(), max_rounds);
            let label = format!("crash frac={frac} {schedule}");
            assert_eq!(serial.rounds, par.rounds, "rounds: {label}");
            assert_eq!(serial.outcome, par.outcome, "outcome: {label}");
            assert_eq!(serial.moves_per_rule, par.moves_per_rule, "moves: {label}");
            assert_eq!(serial.final_states, par.final_states, "states: {label}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Satellite (profiling is inert): a run observed by the full profiling
    /// stack — metrics, Chrome trace, and JSONL artifact — must be
    /// state-for-state identical to an unobserved run, at every shard count
    /// and on the serial executor. Spans read clocks, never state.
    #[test]
    fn profiling_observers_do_not_perturb_execution(
        n in 4usize..32,
        graph_seed in 0u64..1_000_000,
        state_seed in 0u64..1_000_000,
    ) {
        let g = generators::erdos_renyi_connected(n, 0.25, &mut StdRng::seed_from_u64(graph_seed));
        let smm = Smm::paper(Ids::identity(g.n()));
        let max_rounds = 4 * g.n() + 8;
        let init = InitialState::Random { seed: state_seed };

        let serial_bare = SyncExecutor::new(&g, &smm).run(init.clone(), max_rounds);
        let mut m = MetricsCollector::new();
        let mut c = ChromeTraceWriter::new();
        let mut j = JsonlEventLog::new();
        let serial_profiled = SyncExecutor::new(&g, &smm).run_observed(
            init.clone(),
            max_rounds,
            &mut (&mut m, (&mut c, &mut j)),
        );
        prop_assert_eq!(&serial_bare.rounds, &serial_profiled.rounds, "serial rounds");
        prop_assert_eq!(&serial_bare.outcome, &serial_profiled.outcome, "serial outcome");
        prop_assert_eq!(
            &serial_bare.final_states,
            &serial_profiled.final_states,
            "serial final states"
        );

        for shards in SHARD_COUNTS {
            let bare = RuntimeExecutor::new(&g, &smm, shards)
                .run(init.clone(), max_rounds)
                .expect("unobserved run failed");
            let mut metrics = MetricsCollector::new();
            let mut chrome = ChromeTraceWriter::new();
            let mut jsonl = JsonlEventLog::new();
            let profiled = RuntimeExecutor::new(&g, &smm, shards)
                .run_observed(
                    init.clone(),
                    max_rounds,
                    &mut (&mut metrics, (&mut chrome, &mut jsonl)),
                )
                .expect("profiled run failed");
            prop_assert_eq!(&bare.rounds, &profiled.rounds, "rounds: shards={}", shards);
            prop_assert_eq!(&bare.outcome, &profiled.outcome, "outcome: shards={}", shards);
            prop_assert_eq!(
                &bare.moves_per_rule,
                &profiled.moves_per_rule,
                "moves: shards={}",
                shards
            );
            prop_assert_eq!(
                &bare.final_states,
                &profiled.final_states,
                "final states: shards={}",
                shards
            );
            // And the observed run actually carried per-lane profiles: one
            // lane per shard, every round.
            for (r, rec) in metrics.rounds().iter().enumerate() {
                let p = rec.profile.as_ref();
                prop_assert!(p.is_some(), "round {} missing profile (shards={})", r + 1, shards);
                prop_assert_eq!(
                    p.unwrap().shards.len(),
                    shards,
                    "lane count: round {} shards={}",
                    r + 1,
                    shards
                );
            }
        }
    }
}

/// Adversarial cross-check: serial (both schedules) vs the runtime at every
/// shard count, under the same derived Byzantine/asym sub-plans, comparing
/// rounds, outcome, per-rule moves, final states, per-round states, and
/// evaluation counts.
fn check_adversarial<P: Protocol>(
    g: &Graph,
    proto: &P,
    fault: &FaultPlan,
    init: InitialState<P::State>,
    max_rounds: usize,
) -> TestCaseResult
where
    P::State: WireState,
{
    let serial = |schedule| {
        let mut exec = SyncExecutor::new(g, proto).with_schedule(schedule);
        if let Some(b) = fault.byz_plan() {
            exec = exec.with_adversary(b);
        }
        if let Some(a) = fault.asym_plan() {
            exec = exec.with_asym(a);
        }
        let mut trace = Trace::new();
        let run = exec.run_observed(init.clone(), max_rounds, &mut trace);
        (run, trace)
    };
    let (reference, full_trace) = serial(Schedule::Full);
    let (active, active_trace) = serial(Schedule::Active);
    assert_same_run("adversarial serial active vs full", &reference, &active)?;
    prop_assert_eq!(
        &full_trace.states,
        &active_trace.states,
        "adversarial serial per-round states"
    );

    for shards in SHARD_COUNTS {
        for schedule in [Schedule::Full, Schedule::Active] {
            let mut rt_trace = Trace::new();
            let rt = RuntimeExecutor::new(g, proto, shards)
                .with_schedule(schedule)
                .with_chaos(fault.clone())
                .run_observed(init.clone(), max_rounds, &mut rt_trace)
                .expect("adversarial sharded run failed");
            let label = format!("adversarial runtime {schedule} shards={shards}");
            assert_same_run(&label, &reference, &rt)?;
            prop_assert_eq!(&full_trace.states, &rt_trace.states, "states: {}", &label);
            let serial_eval = match schedule {
                Schedule::Full => &full_trace.evaluated,
                Schedule::Active => &active_trace.evaluated,
            };
            prop_assert_eq!(&rt_trace.evaluated, serial_eval, "evaluated: {}", &label);
        }
    }
    Ok(())
}

/// Tentpole acceptance: serial ≡ runtime at 1/2/4/8 shards under a live
/// Byzantine plan, for every strategy, on SMM and SMI. The adversary runs
/// hot through `until` and the honest protocol must then recover — the run
/// crosses both phases, so the equality covers rewrite rounds, the frozen
/// adversary, and the recovery tail.
#[test]
fn byzantine_adversary_serial_matches_runtime() {
    let g = generators::erdos_renyi_connected(26, 0.25, &mut StdRng::seed_from_u64(2409));
    let byz_nodes = vec![selfstab::graph::Node(3), selfstab::graph::Node(17)];
    let max_rounds = 6 * g.n() + 8;
    for strat in [
        ByzStrategy::RandomPointer,
        ByzStrategy::MimicNeighbor,
        ByzStrategy::Oscillate,
    ] {
        let fault = FaultPlan::new(911)
            .with_byz(byz_nodes.clone(), strat)
            .with_until(12);
        let smm = Smm::paper(Ids::identity(g.n()));
        check_adversarial(
            &g,
            &smm,
            &fault,
            InitialState::Random { seed: 4 },
            max_rounds,
        )
        .unwrap_or_else(|e| panic!("smm byz {}: {e}", strat.name()));
        let smi = Smi::new(Ids::identity(g.n()));
        check_adversarial(
            &g,
            &smi,
            &fault,
            InitialState::Random { seed: 4 },
            max_rounds,
        )
        .unwrap_or_else(|e| panic!("smi byz {}: {e}", strat.name()));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Tentpole acceptance (proptest form): random graph, random Byzantine
    /// set, random strategy and window — serial ≡ runtime at every shard
    /// count.
    #[test]
    fn byzantine_plans_preserve_equivalence(
        n in 6usize..28,
        graph_seed in 0u64..1_000_000,
        state_seed in 0u64..1_000_000,
        byz_a in 0usize..28,
        byz_b in 0usize..28,
        strat_ix in 0usize..3,
        until in 4usize..16,
    ) {
        let g = generators::erdos_renyi_connected(n, 0.25, &mut StdRng::seed_from_u64(graph_seed));
        let strat = [
            ByzStrategy::RandomPointer,
            ByzStrategy::MimicNeighbor,
            ByzStrategy::Oscillate,
        ][strat_ix];
        let nodes = vec![
            selfstab::graph::Node((byz_a % n) as u32),
            selfstab::graph::Node((byz_b % n) as u32),
        ];
        let fault = FaultPlan::new(state_seed ^ 0xb12a)
            .with_byz(nodes, strat)
            .with_until(until);
        let max_rounds = 6 * g.n() + 8;
        check_adversarial(
            &g,
            &Smm::paper(Ids::identity(g.n())),
            &fault,
            InitialState::Random { seed: state_seed },
            max_rounds,
        )?;
    }

    /// Asymmetric links: per-direction fate hashing is shard-agnostic, so
    /// serial ≡ runtime holds for lossy windows too.
    #[test]
    fn asym_plans_preserve_equivalence(
        n in 6usize..28,
        graph_seed in 0u64..1_000_000,
        state_seed in 0u64..1_000_000,
        p_tenths in 1u32..9,
        until in 4usize..16,
    ) {
        let g = generators::erdos_renyi_connected(n, 0.25, &mut StdRng::seed_from_u64(graph_seed));
        let fault = FaultPlan::new(state_seed ^ 0xa5e7)
            .with_asym(f64::from(p_tenths) / 10.0)
            .with_until(until);
        let max_rounds = 6 * g.n() + 8;
        check_adversarial(
            &g,
            &Smm::paper(Ids::identity(g.n())),
            &fault,
            InitialState::Random { seed: state_seed },
            max_rounds,
        )?;
        check_adversarial(
            &g,
            &Smi::new(Ids::identity(g.n())),
            &fault,
            InitialState::Random { seed: state_seed },
            max_rounds,
        )?;
    }

    /// Satellite: `asym=0` and an empty Byzantine set must leave the
    /// byte-identity of the clean equivalence suite intact — a no-op plan
    /// reproduces the plan-free run exactly, per-round states included.
    #[test]
    fn noop_adversarial_plan_is_byte_identical(
        n in 4usize..32,
        graph_seed in 0u64..1_000_000,
        state_seed in 0u64..1_000_000,
    ) {
        let g = generators::erdos_renyi_connected(n, 0.25, &mut StdRng::seed_from_u64(graph_seed));
        let smm = Smm::paper(Ids::identity(g.n()));
        let max_rounds = 4 * g.n() + 8;
        let init = InitialState::Random { seed: state_seed };
        let fault = FaultPlan::new(1234)
            .with_byz(Vec::new(), ByzStrategy::RandomPointer)
            .with_asym(0.0);
        prop_assert!(!fault.has_adversary());
        prop_assert!(fault.byz_plan().is_none());
        prop_assert!(fault.asym_plan().is_none());

        let mut clean_trace = Trace::new();
        let clean = SyncExecutor::new(&g, &smm)
            .run_observed(init.clone(), max_rounds, &mut clean_trace);
        for shards in SHARD_COUNTS {
            let mut rt_trace = Trace::new();
            let rt = RuntimeExecutor::new(&g, &smm, shards)
                .with_chaos(fault.clone())
                .run_observed(init.clone(), max_rounds, &mut rt_trace)
                .expect("noop-plan run failed");
            prop_assert_eq!(clean.rounds, rt.rounds, "rounds: shards={}", shards);
            prop_assert_eq!(&clean.outcome, &rt.outcome, "outcome: shards={}", shards);
            prop_assert_eq!(
                &clean.final_states, &rt.final_states,
                "final states: shards={}", shards
            );
            prop_assert_eq!(
                &clean_trace.states, &rt_trace.states,
                "per-round states: shards={}", shards
            );
        }
    }
}

/// Deterministic spot-check on structured topologies where the active set
/// decays fast — and a direct look at the decay itself.
#[test]
fn active_set_decays_on_structured_topologies() {
    for g in [
        generators::path(64),
        generators::star(64),
        generators::grid(8, 8),
    ] {
        let smm = Smm::paper(Ids::identity(g.n()));
        let mut m = MetricsCollector::new();
        let run = SyncExecutor::new(&g, &smm).run_observed(
            InitialState::Random { seed: 7 },
            g.n() + 2,
            &mut m,
        );
        assert!(run.stabilized());
        let evaluated: Vec<usize> = m.rounds().iter().map(|r| r.evaluated).collect();
        assert_eq!(evaluated[0], g.n(), "round 1 sweeps everyone");
        let tail_max = evaluated.iter().skip(2).max().copied().unwrap_or(0);
        assert!(
            tail_max < g.n(),
            "after two rounds the worklist must have shrunk (got {evaluated:?})"
        );
    }
}
