//! Cross-crate end-to-end scenarios: the full stack from topology
//! generation through protocol execution, beacon simulation, and the
//! derived applications.

use selfstab::adhoc::{BeaconConfig, BeaconSim, Topology};
use selfstab::core::cluster::elect_cluster_heads;
use selfstab::core::coarsen::coarsen_by_matching;
use selfstab::core::smm::Smm;
use selfstab::core::Smi;
use selfstab::engine::central::{CentralExecutor, Scheduler};
use selfstab::engine::distributed::{DistributedExecutor, SubsetPolicy};
use selfstab::engine::exhaustive::verify_all_initial_states;
use selfstab::engine::par::ParSyncExecutor;
use selfstab::engine::sync::SyncExecutor;
use selfstab::engine::InitialState;
use selfstab::graph::{generators, predicates, Ids};

fn rand_seed(seed: u64) -> rand::rngs::StdRng {
    <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed)
}

/// The same protocol instance driven by all four execution backends
/// (serial sync, parallel sync, beacon sim, distributed-All) must agree.
#[test]
fn all_backends_agree_on_smm() {
    let g = generators::grid(5, 5);
    let smm = Smm::paper(Ids::random(25, &mut rand_seed(3)));
    for seed in 0..5 {
        let init = InitialState::Random { seed };
        let serial = SyncExecutor::new(&g, &smm).run(init.clone(), 26);
        let par = ParSyncExecutor::new(&g, &smm).run(init.clone(), 26);
        let dist = DistributedExecutor::new(&g, &smm).run(init.clone(), &mut SubsetPolicy::All, 26);
        let beacon = BeaconSim::new(
            &smm,
            Topology::Static(g.clone()),
            init,
            BeaconConfig {
                seed,
                ..BeaconConfig::default()
            },
        )
        .run(5, 3_600_000_000);
        assert!(serial.stabilized());
        assert_eq!(serial.final_states, par.final_states);
        assert_eq!(serial.final_states, dist.final_states);
        assert_eq!(serial.final_states, beacon.final_states);
        assert_eq!(serial.rounds, par.rounds);
        assert_eq!(serial.rounds, dist.rounds);
    }
}

/// SMI under every daemon the engine offers still reaches a maximal
/// independent set (SMI tolerates weaker daemons than SMM because members
/// only retreat before *bigger* members).
#[test]
fn smi_under_many_daemons() {
    let g = generators::erdos_renyi_connected(30, 0.15, &mut rand_seed(1));
    let smi = Smi::new(Ids::identity(30));
    // Central daemon, several schedulers.
    for mut sched in [
        Scheduler::First,
        Scheduler::Last,
        Scheduler::random(3),
        Scheduler::RoundRobin { cursor: 0 },
    ] {
        let run = CentralExecutor::new(&g, &smi).run(
            InitialState::Random { seed: 11 },
            &mut sched,
            100_000,
        );
        assert!(run.stabilized);
        assert!(predicates::is_maximal_independent_set(
            &g,
            &run.final_states
        ));
    }
    // Distributed daemon.
    for mut policy in [
        SubsetPolicy::All,
        SubsetPolicy::bernoulli(0.4, 9),
        SubsetPolicy::IndependentGreedy,
        SubsetPolicy::random_priority(5),
    ] {
        let run = DistributedExecutor::new(&g, &smi).run(
            InitialState::Random { seed: 11 },
            &mut policy,
            100_000,
        );
        assert!(run.stabilized());
        assert!(predicates::is_maximal_independent_set(
            &g,
            &run.final_states
        ));
    }
}

/// Pipeline: elect cluster heads with SMI, then coarsen the graph with SMM,
/// then re-elect on the coarse graph — everything stays consistent.
#[test]
fn clustering_then_coarsening_pipeline() {
    let g = generators::random_geometric_connected(40, 0.3, &mut rand_seed(8));
    let ids = Ids::identity(40);
    let (clustering, rounds) =
        elect_cluster_heads(&g, ids.clone(), InitialState::Random { seed: 4 }, 42)
            .expect("Theorem 2");
    assert!(rounds <= 42);
    assert!(predicates::is_minimal_dominating_set(&g, &clustering.head));

    let smm = Smm::paper(ids);
    let run = SyncExecutor::new(&g, &smm).run(InitialState::Random { seed: 4 }, 41);
    assert!(run.stabilized());
    let c = coarsen_by_matching(&g, &run.final_states);
    assert!(c.coarse.n() < g.n());

    // Re-run SMI on the coarse graph.
    let coarse_ids = Ids::identity(c.coarse.n());
    let (coarse_clustering, _) = elect_cluster_heads(
        &c.coarse,
        coarse_ids,
        InitialState::Default,
        c.coarse.n() + 2,
    )
    .expect("Theorem 2 on coarse graph");
    assert!(predicates::is_maximal_independent_set(
        &c.coarse,
        &coarse_clustering.head
    ));
}

/// Exhaustive cross-check through the facade on a fixed small graph:
/// every SMM initial state on the bull graph stabilizes to a maximal
/// matching within n+1 rounds.
#[test]
fn exhaustive_bull_graph() {
    // Bull: triangle 0-1-2 with horns 3 (on 1) and 4 (on 2).
    let g = selfstab::graph::Graph::from_edges(5, [(0, 1), (0, 2), (1, 2), (1, 3), (2, 4)]);
    let smm = Smm::paper(Ids::identity(5));
    let report = verify_all_initial_states(&g, &smm, 6, |g, states| {
        predicates::is_maximal_matching(g, &Smm::matched_edges(g, states))
    });
    assert!(report.all_ok(), "{report:?}");
    // State space: (2+1)(3+1)(3+1)(1+1)(1+1) = 192.
    assert_eq!(report.states_checked, 192);
    let smi = Smi::new(Ids::identity(5));
    let report = verify_all_initial_states(&g, &smi, 7, |g, states| {
        predicates::is_maximal_independent_set(g, states)
    });
    assert!(report.all_ok());
    assert_eq!(report.states_checked, 32);
}

/// Determinism contract across the whole stack: identical seeds give
/// identical outcomes, different seeds (almost always) differ somewhere.
#[test]
fn reproducibility_contract() {
    let g = generators::wheel(12);
    let smm = Smm::paper(Ids::identity(12));
    let a = SyncExecutor::new(&g, &smm).run(InitialState::Random { seed: 1 }, 13);
    let b = SyncExecutor::new(&g, &smm).run(InitialState::Random { seed: 1 }, 13);
    assert_eq!(a.final_states, b.final_states);
    assert_eq!(a.moves_per_rule, b.moves_per_rule);
    let sim_a = BeaconSim::new(
        &smm,
        Topology::Static(g.clone()),
        InitialState::Random { seed: 1 },
        BeaconConfig::default().with_jitter(0.05),
    )
    .run(5, 3_600_000_000);
    let sim_b = BeaconSim::new(
        &smm,
        Topology::Static(g.clone()),
        InitialState::Random { seed: 1 },
        BeaconConfig::default().with_jitter(0.05),
    )
    .run(5, 3_600_000_000);
    assert_eq!(sim_a.final_states, sim_b.final_states);
    assert_eq!(sim_a.deliveries, sim_b.deliveries);
}
