//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors the *subset* of the rand 0.10 API it actually uses:
//!
//! * [`Rng`] — the core trait (raw 64-bit output),
//! * [`RngExt`] — the convenience methods (`random`, `random_range`,
//!   `random_bool`), blanket-implemented for every [`Rng`],
//! * [`SeedableRng`] with `seed_from_u64`,
//! * [`rngs::StdRng`] — a deterministic xoshiro256++ generator seeded via
//!   SplitMix64,
//! * [`seq::SliceRandom`] — Fisher–Yates `shuffle`.
//!
//! The stream of values differs from the real crate (it does not promise
//! cross-version stability anyway); everything in this workspace that
//! consumes randomness is either statistical or asserts properties, not
//! exact draws.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

/// A source of randomness: the core trait, mirroring `rand::Rng` as a
/// generic bound (`R: Rng + ?Sized`).
pub trait Rng {
    /// The next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next raw 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A type that can be drawn uniformly from its "natural" distribution
/// (mirrors the `StandardUniform` distribution of the real crate).
pub trait Standard: Sized {
    /// Draw one value.
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// A range usable with [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range. Panics if the range is empty.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, bound)` by Lemire-style widening multiply
/// (bias is < 2^-64, irrelevant for simulation purposes).
#[inline]
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span + 1) as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128) as u128;
                if span == u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_below(rng, span as u64 + 1) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + f64::draw(rng) * (self.end - self.start)
    }
}

/// Convenience methods over any [`Rng`] (mirrors rand 0.10's `Rng`/`RngExt`
/// split: import both to use these on a generic bound).
pub trait RngExt: Rng {
    /// A uniform draw of `T`'s natural distribution (integers: full range;
    /// `f64`: `[0, 1)`; `bool`: fair coin).
    fn random<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Uniform draw from `range`. Panics on an empty range.
    fn random_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`. Panics unless `0 ≤ p ≤ 1`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        f64::draw(self) < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64: used to expand a 64-bit seed into generator state.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, Rng, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Not the ChaCha12 generator of the real crate — this vendored
    /// stand-in only promises determinism and statistical quality adequate
    /// for simulations, which xoshiro256++ provides.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; SplitMix64 cannot
            // produce four zeros from any seed, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::{uniform_below, Rng};

    /// In-place random reordering of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.random()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.random()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.random()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: usize = rng.random_range(3..17);
            assert!((3..17).contains(&x));
            let y: i64 = rng.random_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
        // Inclusive ranges reach both endpoints.
        let mut seen = [false; 3];
        for _ in 0..1000 {
            seen[rng.random_range(0usize..=2)] = true;
        }
        assert_eq!(seen, [true, true, true]);
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((27_000..33_000).contains(&hits), "{hits}");
        assert!((0..100).all(|_| !rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 50-element shuffle is not the identity");
    }

    #[test]
    fn works_through_generic_unsized_bound() {
        fn take<R: super::Rng + ?Sized>(rng: &mut R) -> u64 {
            use super::RngExt;
            rng.random_range(0..100u64)
        }
        let mut rng = StdRng::seed_from_u64(4);
        assert!(take(&mut rng) < 100);
    }
}
