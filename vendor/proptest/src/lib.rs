//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors the *subset* of the proptest 1.x API its test
//! suites use:
//!
//! * the [`proptest!`] macro (with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` inner attribute),
//! * [`strategy::Strategy`] with `prop_map` / `prop_flat_map`,
//! * integer range strategies (`2..=n`, `1usize..20`), tuple strategies,
//!   [`strategy::any`], [`strategy::Just`], and [`collection::vec`],
//! * [`prop_assert!`] / [`prop_assert_eq!`], which return a
//!   [`TestCaseError`] from the test-case closure instead of panicking
//!   mid-case.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case reports its inputs (via the assertion
//!   message) and the deterministic case index; re-running the same test
//!   binary reproduces it exactly.
//! * **Deterministic seeding.** Case `k` of test `t` derives its RNG seed
//!   from `(module_path!(), t, k)`, so failures are stable across runs and
//!   machines — there is no `PROPTEST_` environment handling.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::fmt;

/// Per-test configuration (only the knob this workspace uses).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed test case (produced by [`prop_assert!`] and friends).
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Build a failure from a rendered message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// The result type of one generated test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic RNG used to generate test inputs.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// The per-case random source handed to strategies.
    #[derive(Clone, Debug)]
    pub struct TestRng(StdRng);

    impl TestRng {
        /// Deterministically derive the RNG for case `case` of the test
        /// identified by `name` (usually `module_path!() :: test_name`).
        pub fn deterministic(name: &str, case: u64) -> Self {
            // FNV-1a over the test name, then mix in the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng(StdRng::seed_from_u64(
                h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            ))
        }
    }

    impl Rng for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

/// Input-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::RngExt;
    use std::marker::PhantomData;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike the real crate there is no value tree and no shrinking: a
    /// strategy is just a deterministic function of the case RNG.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { base: self, f }
        }

        /// Generate a value, build a dependent strategy from it, and
        /// generate from that.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { base: self, f }
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<B, F> {
        base: B,
        f: F,
    }

    impl<B: Strategy, U, F: Fn(B::Value) -> U> Strategy for Map<B, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.base.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Clone, Debug)]
    pub struct FlatMap<B, F> {
        base: B,
        f: F,
    }

    impl<B: Strategy, S: Strategy, F: Fn(B::Value) -> S> Strategy for FlatMap<B, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (self.f)(self.base.generate(rng)).generate(rng)
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for ::core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);

    /// A type with a canonical full-range strategy (see [`any`]).
    pub trait Arbitrary: Sized {
        /// Draw one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.random()
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f64);

    /// Strategy returned by [`any`].
    #[derive(Clone, Debug)]
    pub struct Any<A>(PhantomData<A>);

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;
        fn generate(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }

    /// The canonical strategy for `A`: uniform over its whole domain.
    pub fn any<A: Arbitrary>() -> Any<A> {
        Any(PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::RngExt;

    /// The size specification accepted by [`vec`]: a fixed length or a
    /// half-open range of lengths.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<::core::ops::Range<usize>> for SizeRange {
        fn from(r: ::core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<::core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: ::core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy returned by [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for `Vec`s whose elements come from `element` and whose
    /// length is drawn from `size` (a fixed `usize` or a range).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::TestRng;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, TestCaseError,
        TestCaseResult,
    };
}

/// Assert a condition inside a [`proptest!`] body; on failure the current
/// case returns an error (with an optional custom format message).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!($($fmt)*),
            ));
        }
    };
}

/// Assert two expressions are equal inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                ::std::format!($($fmt)*),
                l,
                r
            )));
        }
    }};
}

/// Assert two expressions are unequal inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::core::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Define property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(48))]
///     #[test]
///     fn addition_commutes(a in 0u64..1000, b in 0u64..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::TestRng::deterministic(
                        concat!(module_path!(), "::", stringify!($name)),
                        case as u64,
                    );
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: $crate::TestCaseResult = (move || {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    if let ::core::result::Result::Err(e) = outcome {
                        ::core::panic!(
                            "proptest `{}` failed at case {}/{} (deterministic; rerun reproduces): {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            e
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_sorted(max_len: usize) -> impl Strategy<Value = Vec<u32>> {
        collection::vec(0u32..1000, 0..max_len).prop_map(|mut v| {
            v.sort_unstable();
            v
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(n in 2usize..=24, x in 5u64..10) {
            prop_assert!((2..=24).contains(&n));
            prop_assert!((5..10).contains(&x));
        }

        #[test]
        fn tuples_and_patterns((a, b) in (0i64..100, any::<bool>())) {
            prop_assert!((0..100).contains(&a));
            let _ = b;
        }

        #[test]
        fn flat_map_dependent(v in (1usize..8).prop_flat_map(|n| collection::vec(0usize..n, n))) {
            let n = v.len();
            prop_assert!((1..8).contains(&n));
            prop_assert!(v.iter().all(|&x| x < n));
        }

        #[test]
        fn sorted_stays_sorted(v in arb_sorted(16)) {
            if v.len() < 2 {
                return Ok(()); // early-exit bodies must compile
            }
            prop_assert!(v.windows(2).all(|w| w[0] <= w[1]));
            prop_assert_eq!(v.len(), v.iter().filter(|_| true).count());
            prop_assert_ne!(v.capacity(), usize::MAX);
        }
    }

    #[test]
    fn deterministic_across_runners() {
        let mut a = TestRng::deterministic("t", 3);
        let mut b = TestRng::deterministic("t", 3);
        let s = 0u64..u64::MAX;
        assert_eq!(
            Strategy::generate(&s, &mut a),
            Strategy::generate(&s, &mut b)
        );
    }
}
