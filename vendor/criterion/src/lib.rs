//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors the *subset* of the criterion API its benches use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkGroup::sample_size`],
//! [`BenchmarkGroup::throughput`], [`BenchmarkId`], [`Throughput`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Differences from the real crate, by design:
//!
//! * Measurement is a plain wall-clock mean over a time-budgeted batch of
//!   iterations — no outlier analysis, no plots, no saved baselines.
//! * When invoked by `cargo test` (cargo passes `--test` to `harness =
//!   false` bench binaries), every benchmark body runs exactly once as a
//!   smoke test.
//! * `cargo bench -- <filter>` substring filtering is honored; other CLI
//!   flags are ignored.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// How work scales per iteration; reported as a rate next to the mean.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Throughput {
    /// Iteration processes this many logical elements.
    Elements(u64),
    /// Iteration processes this many bytes.
    Bytes(u64),
}

/// A two-part benchmark identifier: function name plus a parameter value.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// `name/parameter`, e.g. `BenchmarkId::new("serial", n)`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            full: format!("{}/{}", name.into(), parameter),
        }
    }
}

/// Anything usable as a benchmark name (`&str`, `String`, [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// Render to the display string.
    fn into_id_string(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id_string(self) -> String {
        self.full
    }
}

impl IntoBenchmarkId for &str {
    fn into_id_string(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id_string(self) -> String {
        self
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    mode: Mode,
    /// Mean wall-clock time per iteration measured by the last `iter` call.
    mean: Option<Duration>,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Mode {
    /// One iteration, no timing (driven by `cargo test`).
    Smoke,
    /// Time-budgeted measurement.
    Measure { budget: Duration },
}

impl Bencher {
    /// Time `f`, called repeatedly; the harness decides the iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        match self.mode {
            Mode::Smoke => {
                std::hint::black_box(f());
                self.mean = None;
            }
            Mode::Measure { budget } => {
                // Warmup + calibration: run until ~1/5 of the budget is
                // spent to estimate the per-iteration cost.
                let warmup_budget = budget / 5;
                let warm_start = Instant::now();
                let mut warm_iters: u32 = 0;
                while warm_start.elapsed() < warmup_budget {
                    std::hint::black_box(f());
                    warm_iters += 1;
                }
                let per_iter = warm_start.elapsed() / warm_iters.max(1);
                let remaining = budget.saturating_sub(warm_start.elapsed());
                let iters = if per_iter.is_zero() {
                    1000
                } else {
                    (remaining.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u32
                };
                let start = Instant::now();
                for _ in 0..iters {
                    std::hint::black_box(f());
                }
                self.mean = Some(start.elapsed() / iters);
            }
        }
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Top-level harness state.
pub struct Criterion {
    smoke: bool,
    filter: Option<String>,
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut smoke = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => smoke = true,
                "--bench" => {}
                a if a.starts_with('-') => {}
                a => filter = Some(a.to_string()),
            }
        }
        Criterion {
            smoke,
            filter,
            budget: Duration::from_millis(400),
        }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Run a single free-standing benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl IntoBenchmarkId, f: F) {
        let name = id.into_id_string();
        let mut group = self.benchmark_group(name.clone());
        group.bench_function("", f);
        group.finish();
    }

    fn run_one<F: FnMut(&mut Bencher)>(
        &self,
        label: &str,
        throughput: Option<Throughput>,
        mut f: F,
    ) {
        if let Some(filter) = &self.filter {
            if !label.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            mode: if self.smoke {
                Mode::Smoke
            } else {
                Mode::Measure {
                    budget: self.budget,
                }
            },
            mean: None,
        };
        f(&mut bencher);
        if self.smoke {
            println!("{label:<50} ok (smoke)");
            return;
        }
        match bencher.mean {
            Some(mean) => {
                let rate = throughput.map(|t| match t {
                    Throughput::Elements(n) => format!(
                        "  {:.0} elem/s",
                        n as f64 / mean.as_secs_f64().max(f64::MIN_POSITIVE)
                    ),
                    Throughput::Bytes(n) => format!(
                        "  {:.0} B/s",
                        n as f64 / mean.as_secs_f64().max(f64::MIN_POSITIVE)
                    ),
                });
                println!(
                    "{label:<50} time: [{}]{}",
                    format_duration(mean),
                    rate.unwrap_or_default()
                );
            }
            None => println!("{label:<50} (no measurement: body never called iter)"),
        }
    }
}

/// A named collection of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; this harness is time-budgeted, not
    /// sample-counted.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Set the per-iteration throughput used for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmark `f` under this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl IntoBenchmarkId, f: F) {
        let id = id.into_id_string();
        let label = if id.is_empty() {
            self.name.clone()
        } else {
            format!("{}/{}", self.name, id)
        };
        self.criterion.run_one(&label, self.throughput, f);
    }

    /// Benchmark `f` with an explicit input reference.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) {
        self.bench_function(id, |b| f(b, input));
    }

    /// End the group (printing is immediate, so this is a no-op).
    pub fn finish(self) {}
}

/// Collect benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_once() {
        let criterion = Criterion {
            smoke: true,
            filter: None,
            budget: Duration::from_millis(1),
        };
        let mut calls = 0u32;
        criterion.run_one("t", None, |b| b.iter(|| calls += 1));
        assert_eq!(calls, 1);
    }

    #[test]
    fn measure_mode_reports_mean() {
        let criterion = Criterion {
            smoke: false,
            filter: None,
            budget: Duration::from_millis(5),
        };
        let mut ran = false;
        criterion.run_one("t", Some(Throughput::Elements(10)), |b| {
            b.iter(|| std::hint::black_box(3u64.pow(7)));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let criterion = Criterion {
            smoke: true,
            filter: Some("match-me".into()),
            budget: Duration::from_millis(1),
        };
        let mut calls = 0u32;
        criterion.run_one("other", None, |b| b.iter(|| calls += 1));
        assert_eq!(calls, 0);
        criterion.run_one("yes-match-me-here", None, |b| b.iter(|| calls += 1));
        assert_eq!(calls, 1);
    }

    #[test]
    fn id_formatting() {
        assert_eq!(BenchmarkId::new("serial", 64).into_id_string(), "serial/64");
        assert_eq!(format_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(format_duration(Duration::from_micros(1500)), "1.50 ms");
    }
}
