//! The paper's Section 3 counterexample, animated.
//!
//! "It is interesting to note that in rule R2 of Algorithm SMM, it is
//! necessary that i select a minimum neighbor j, rather than an arbitrary
//! neighbor. For if we were to omit this requirement, the algorithm may not
//! stabilize: consider a four cycle, with all pointers initially null,
//! which repeatedly select their clockwise neighbor using rule R2, and then
//! execute rule R3."
//!
//! ```text
//! cargo run --example counterexample_c4
//! ```

use selfstab::core::smm::{Pointer, SelectPolicy, Smm};
use selfstab::engine::sync::{Outcome, SyncExecutor};
use selfstab::engine::InitialState;
use selfstab::graph::{generators, Ids};

fn render(states: &[Pointer]) -> String {
    states
        .iter()
        .enumerate()
        .map(|(i, p)| format!("{i}{p:?}"))
        .collect::<Vec<_>>()
        .join("  ")
}

fn main() {
    let g = generators::cycle(4);
    println!("C4: 0-1-2-3-0, all pointers initially null\n");

    println!("== R2 selects the CLOCKWISE neighbor (arbitrary choice) ==");
    let bad = Smm::with_policies(
        Ids::identity(4),
        SelectPolicy::MinId,
        SelectPolicy::Clockwise,
    );
    let exec = SyncExecutor::new(&g, &bad)
        .with_trace()
        .with_cycle_detection();
    let run = exec.run(InitialState::Default, 10);
    for (t, states) in run.trace.as_ref().expect("traced").iter().enumerate() {
        println!("  t={t}:  {}", render(states));
    }
    match run.outcome {
        Outcome::Cycle { first_seen, period } => println!(
            "  => OSCILLATES forever: state of round {first_seen} recurs every {period} rounds\n"
        ),
        other => println!("  => unexpected outcome {other:?}\n"),
    }

    println!("== R2 selects the MINIMUM-ID neighbor (the paper's rule) ==");
    let good = Smm::paper(Ids::identity(4));
    let exec = SyncExecutor::new(&g, &good).with_trace();
    let run = exec.run(InitialState::Default, 10);
    for (t, states) in run.trace.as_ref().expect("traced").iter().enumerate() {
        println!("  t={t}:  {}", render(states));
    }
    let m = Smm::matched_edges(&g, &run.final_states);
    println!(
        "  => STABILIZES in {} rounds with maximal matching {:?} (Theorem 1 bound: {})",
        run.rounds(),
        m,
        g.n() + 1
    );
}
