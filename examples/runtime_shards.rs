//! The sharded message-passing runtime: Section 2's beacons as actual
//! messages between shard workers, with the paper's round semantics intact.
//!
//! A random geometric graph (the ad hoc network model) is partitioned by
//! multilevel heavy-edge coarsening; one mailbox worker per shard owns its
//! nodes' SMM states, and boundary states cross shards as encoded beacon
//! frames through bounded channels. The run is state-for-state identical to
//! the serial executor — while the observer's wire counters show the
//! messages that made it so.
//!
//! ```text
//! cargo run --example runtime_shards
//! ```

use selfstab::core::smm::Smm;
use selfstab::engine::obs::{Observer, RoundStats};
use selfstab::engine::sync::SyncExecutor;
use selfstab::engine::InitialState;
use selfstab::graph::{generators, predicates, Ids};
use selfstab::runtime::RuntimeExecutor;

/// Sums the runtime's wire counters over the run.
#[derive(Default)]
struct WireTotals {
    frames: u64,
    bytes: u64,
    max_depth: u64,
}

impl<S> Observer<S> for WireTotals {
    fn on_round_end(&mut self, stats: &RoundStats, _states: &[S]) {
        if let Some(rt) = &stats.runtime {
            self.frames += rt.frames;
            self.bytes += rt.bytes_on_wire;
            self.max_depth = self.max_depth.max(rt.max_channel_depth);
        }
    }
}

fn main() {
    let n = 2_000;
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(42);
    let g = generators::random_geometric_connected(n, 0.045, &mut rng);
    let smm = Smm::paper(Ids::identity(g.n()));
    let init = InitialState::Random { seed: 7 };
    println!("random geometric graph: n={}, m={}", g.n(), g.m());

    let serial = SyncExecutor::new(&g, &smm).run(init.clone(), g.n() + 1);
    assert!(serial.stabilized(), "Theorem 1");
    println!(
        "serial executor: stabilized in {} rounds\n",
        serial.rounds()
    );

    for shards in [1, 2, 4, 8] {
        let exec = RuntimeExecutor::new(&g, &smm, shards);
        let cut = exec.partition().cut_edges(&g).len();
        let mut wire = WireTotals::default();
        let run = exec
            .run_observed(init.clone(), g.n() + 1, &mut wire)
            .expect("sharded run failed");

        // The barrier is the paper's round: identical result, any shard count.
        assert_eq!(run.rounds(), serial.rounds());
        assert_eq!(run.final_states, serial.final_states);
        let matching = Smm::matched_edges(&g, &run.final_states);
        assert!(predicates::is_maximal_matching(&g, &matching));

        println!(
            "{shards} shard(s): {} rounds (identical), cut {cut}/{} edges, \
             {} beacon frames / {} bytes on wire, max channel depth {}",
            run.rounds(),
            g.m(),
            wire.frames,
            wire.bytes,
            wire.max_depth,
        );
    }
    println!("\nsame fixpoint through a real message fabric — no shared state crossed a shard.");
}
