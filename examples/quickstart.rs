//! Quickstart: run both of the paper's protocols on a small ad hoc topology
//! and verify the theorems' claims.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use selfstab::core::smm::types::classify;
use selfstab::core::smm::Smm;
use selfstab::core::Smi;
use selfstab::engine::sync::SyncExecutor;
use selfstab::engine::InitialState;
use selfstab::graph::{dot, generators, predicates, Ids};

fn main() {
    // A 30-node random geometric graph — the standard model of an ad hoc
    // radio deployment (nodes uniform in the unit square, links within
    // radio range).
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(2003);
    let g = generators::random_geometric_connected(30, 0.3, &mut rng);
    let ids = Ids::random(30, &mut rng);
    println!(
        "topology: n={}, m={}, max degree {}",
        g.n(),
        g.m(),
        g.max_degree()
    );

    // --- Algorithm SMM: synchronous maximal matching (Fig. 1) -----------
    let smm = Smm::paper(ids.clone());
    let exec = SyncExecutor::new(&g, &smm);
    // Self-stabilization: start from an arbitrary state.
    let run = exec.run(InitialState::Random { seed: 7 }, g.n() + 1);
    assert!(run.stabilized(), "Theorem 1: stabilizes within n+1 rounds");
    let matching = Smm::matched_edges(&g, &run.final_states);
    assert!(predicates::is_maximal_matching(&g, &matching));
    println!(
        "\nSMM stabilized in {} rounds (bound: {}), |M| = {} edges",
        run.rounds(),
        g.n() + 1,
        matching.len()
    );
    use selfstab::engine::protocol::Protocol;
    let firings: Vec<(&str, u64)> = smm
        .rule_names()
        .iter()
        .copied()
        .zip(run.moves_per_rule.iter().copied())
        .collect();
    println!("rule firings: {firings:?}");
    let types = classify(&g, &run.final_states);
    println!(
        "final node types: {} matched, {} aloof",
        types.iter().filter(|t| t.name() == "M").count(),
        types.iter().filter(|t| t.name() == "A0").count()
    );

    // --- Algorithm SMI: synchronous maximal independent set (Fig. 4) ----
    let smi = Smi::new(ids.clone());
    let run = SyncExecutor::new(&g, &smi).run(InitialState::Random { seed: 7 }, g.n() + 2);
    assert!(run.stabilized(), "Theorem 2: stabilizes in O(n) rounds");
    assert!(predicates::is_maximal_independent_set(
        &g,
        &run.final_states
    ));
    let members: Vec<_> = Smi::members(&run.final_states);
    println!(
        "\nSMI stabilized in {} rounds, |S| = {} nodes: {:?}",
        run.rounds(),
        members.len(),
        members
    );

    // Render the matching for graphviz users.
    let dot = dot::to_dot(&g, Some(&ids), &matching, &run.final_states);
    println!(
        "\nGraphviz preview (pipe to `dot -Tsvg`): {} chars, starts with {:?}",
        dot.len(),
        &dot[..14]
    );
}
