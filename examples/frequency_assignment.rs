//! Frequency assignment via self-stabilizing coloring.
//!
//! In an ad hoc radio network, neighboring transmitters must use different
//! frequencies; a proper coloring with few colors is exactly a conflict-free
//! frequency plan. The companion coloring algorithm of the same research
//! group (the paper's ref [7]) maintains one self-stabilizingly: any burst
//! of interference-plan corruption or link churn is repaired in at most
//! `n + 2` beacon rounds.
//!
//! ```text
//! cargo run --example frequency_assignment
//! ```

use selfstab::core::coloring::Coloring;
use selfstab::engine::faults::corrupt_and_recover;
use selfstab::engine::sync::SyncExecutor;
use selfstab::engine::{InitialState, Protocol};
use selfstab::graph::{generators, Ids};

fn main() {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    // 40 transmitters in the unit square, radio interference range 0.28.
    let g = generators::random_geometric_connected(40, 0.28, &mut rng);
    let n = g.n();
    let sc = Coloring::new(Ids::random(n, &mut rng));
    println!(
        "{} transmitters, {} interference links, max degree Δ = {}",
        n,
        g.m(),
        g.max_degree()
    );

    // Establish a plan from a garbage state.
    let run = SyncExecutor::new(&g, &sc).run(InitialState::Random { seed: 1 }, n + 2);
    assert!(run.stabilized());
    assert!(sc.is_legitimate(&g, &run.final_states));
    let palette = Coloring::palette_size(&run.final_states);
    println!(
        "\nplan established in {} rounds using {} frequencies (bound Δ+1 = {})",
        run.rounds(),
        palette,
        g.max_degree() + 1
    );
    // Colors need not be contiguous — size the histogram by the largest one.
    let max_color = *run.final_states.iter().max().expect("non-empty") as usize;
    let mut histogram = vec![0usize; max_color + 1];
    for &c in &run.final_states {
        histogram[c as usize] += 1;
    }
    for (c, count) in histogram.iter().enumerate() {
        if *count > 0 {
            println!("  frequency {c}: {count} transmitters");
        }
    }

    // Interference events: random transmitters lose their assignment.
    println!("\nrecovery from plan corruption:");
    for k in [1usize, 4, 16] {
        let (_, recovery) =
            corrupt_and_recover(&g, &sc, k, 7 + k as u64, n + 2).expect("SC must stabilize");
        assert!(recovery.run.stabilized());
        assert!(Coloring::is_proper(&g, &recovery.run.final_states));
        println!(
            "  {k:>2} corrupted transmitters → proper plan again in {} rounds ({} assignments changed)",
            recovery.run.rounds(),
            recovery.perturbed_nodes
        );
    }
}
