//! Fault tolerance demo: the algorithms "detect occasional link failures
//! and/or new link creations in the network (due to mobility of the hosts)
//! and can readjust the global predicates" (paper, abstract).
//!
//! We stabilize SMM on a grid, then hit it with (1) transient memory
//! corruption and (2) a burst of connectivity-preserving link flips, and
//! watch it re-stabilize — measuring how the recovery cost compares to
//! stabilizing from scratch.
//!
//! ```text
//! cargo run --example fault_recovery
//! ```

use selfstab::core::smm::Smm;
use selfstab::engine::faults::{churn_and_recover, corrupt_and_recover};
use selfstab::engine::protocol::Protocol;
use selfstab::graph::{generators, Ids};

fn main() {
    let g = generators::grid(8, 8);
    let n = g.n();
    let smm = Smm::paper(Ids::identity(n));
    println!("8×8 grid, n={n}, Theorem 1 bound = {} rounds\n", n + 1);

    println!("== transient state corruption ==");
    println!(
        "{:<14} {:>16} {:>18}",
        "corrupted k", "recovery rounds", "perturbed nodes"
    );
    for k in [1usize, 2, 4, 8, 16, 32] {
        let (initial, recovery) = corrupt_and_recover(&g, &smm, k, 1234 + k as u64, n + 1);
        assert!(recovery.run.stabilized());
        assert!(smm.is_legitimate(&g, &recovery.run.final_states));
        println!(
            "{k:<14} {:>16} {:>18}   (from scratch: {} rounds)",
            recovery.run.rounds(),
            recovery.perturbed_nodes,
            initial.rounds()
        );
    }

    println!("\n== link failures / creations (mobility) ==");
    println!(
        "{:<14} {:>16} {:>18}",
        "flipped links", "recovery rounds", "perturbed nodes"
    );
    for k in [1usize, 2, 4, 8, 16] {
        let (new_g, events, initial, recovery) =
            churn_and_recover(&g, &smm, k, 99 + k as u64, 4 * n);
        assert!(recovery.run.stabilized());
        assert!(
            smm.is_legitimate(&new_g, &recovery.run.final_states),
            "matching must be maximal on the NEW topology"
        );
        println!(
            "{:<14} {:>16} {:>18}   (events: {}, from scratch: {} rounds)",
            k,
            recovery.run.rounds(),
            recovery.perturbed_nodes,
            events.len(),
            initial.rounds()
        );
    }

    println!("\nSmall fault bursts recover in far fewer rounds than a cold start, and the");
    println!("disturbance stays local (few perturbed nodes) — the readjustment property");
    println!("the paper claims for the beacon-based protocols.");
}
