//! Fault tolerance demo: the algorithms "detect occasional link failures
//! and/or new link creations in the network (due to mobility of the hosts)
//! and can readjust the global predicates" (paper, abstract).
//!
//! We stabilize SMM on a grid, then hit it with (1) transient memory
//! corruption and (2) a burst of connectivity-preserving link flips, and
//! watch it re-stabilize — measuring how the recovery cost compares to
//! stabilizing from scratch. Then we stop being polite and inject the
//! faults *while the protocol is executing*: (3) a lossy beacon channel
//! with a mid-run worker crash on the sharded runtime, and (4) live link
//! churn between rounds.
//!
//! ```text
//! cargo run --example fault_recovery
//! ```

use selfstab::core::smm::Smm;
use selfstab::engine::active::Schedule;
use selfstab::engine::chaos::{run_churned_serial, ChurnSchedule};
use selfstab::engine::faults::{churn_and_recover, corrupt_and_recover};
use selfstab::engine::protocol::{InitialState, Protocol};
use selfstab::graph::{generators, Ids};
use selfstab::runtime::{FaultPlan, RuntimeExecutor};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let g = generators::grid(8, 8);
    let n = g.n();
    let smm = Smm::paper(Ids::identity(n));
    println!("8×8 grid, n={n}, Theorem 1 bound = {} rounds\n", n + 1);

    println!("== transient state corruption ==");
    println!(
        "{:<14} {:>16} {:>18}",
        "corrupted k", "recovery rounds", "perturbed nodes"
    );
    for k in [1usize, 2, 4, 8, 16, 32] {
        let (initial, recovery) = corrupt_and_recover(&g, &smm, k, 1234 + k as u64, n + 1)?;
        assert!(recovery.run.stabilized());
        assert!(smm.is_legitimate(&g, &recovery.run.final_states));
        println!(
            "{k:<14} {:>16} {:>18}   (from scratch: {} rounds)",
            recovery.run.rounds(),
            recovery.perturbed_nodes,
            initial.rounds()
        );
    }

    println!("\n== link failures / creations (mobility) ==");
    println!(
        "{:<14} {:>16} {:>18}",
        "flipped links", "recovery rounds", "perturbed nodes"
    );
    for k in [1usize, 2, 4, 8, 16] {
        let (new_g, events, initial, recovery) =
            churn_and_recover(&g, &smm, k, 99 + k as u64, 4 * n)?;
        assert!(recovery.run.stabilized());
        assert!(
            smm.is_legitimate(&new_g, &recovery.run.final_states),
            "matching must be maximal on the NEW topology"
        );
        println!(
            "{:<14} {:>16} {:>18}   (events: {}, from scratch: {} rounds)",
            k,
            recovery.run.rounds(),
            recovery.perturbed_nodes,
            events.len(),
            initial.rounds()
        );
    }

    println!("\n== in-flight chaos: lossy channels + a worker crash mid-run ==");
    // 15% of beacon frames dropped, 5% duplicated, 10% delayed by 2 rounds,
    // and shard 1's worker killed entering round 3 and respawned with
    // arbitrary states for every node it owns. All of it seeded: the run is
    // bit-reproducible.
    let mut plan = FaultPlan::parse_spec("drop=0.15,dup=0.05,delay=2", 42)?;
    plan = plan.with_crash(1, 3);
    let run = RuntimeExecutor::new(&g, &smm, 4)
        .with_chaos(plan)
        .run(InitialState::Random { seed: 42 }, 4 * n + 16)?;
    assert!(run.stabilized());
    assert!(smm.is_legitimate(&g, &run.final_states));
    println!(
        "4 shards, sustained frame chaos, crash-restart at round 3 → still a legitimate\n\
         maximal matching after {} rounds (clean run needs no retransmissions; the\n\
         chaotic one pays wire traffic, not correctness)",
        run.rounds()
    );

    println!("\n== live churn: the topology changes while the protocol runs ==");
    // Two connectivity-preserving link flips every 5 rounds, three epochs,
    // applied between rounds — no stabilize-then-perturb courtesy.
    let schedule = ChurnSchedule::new(5, 7).with_events(2).with_epochs(3);
    let out = run_churned_serial(
        &g,
        &smm,
        Schedule::Active,
        &schedule,
        InitialState::Random { seed: 7 },
        4 * n + 16,
    )?;
    assert!(out.run.stabilized());
    assert!(
        smm.is_legitimate(&out.graph, &out.run.final_states),
        "matching must be maximal on the FINAL topology"
    );
    println!(
        "{} link events fired mid-run; stabilized after {} rounds ({} rounds after the\n\
         last event), legitimate on the churned topology",
        out.events.len(),
        out.run.rounds(),
        out.recovery_rounds().unwrap_or(0)
    );

    println!("\nSmall fault bursts recover in far fewer rounds than a cold start, and the");
    println!("disturbance stays local (few perturbed nodes) — the readjustment property");
    println!("the paper claims for the beacon-based protocols. The in-flight runs sharpen");
    println!("the claim: stabilization survives faults landing *during* execution, not");
    println!("just between executions.");
    Ok(())
}
