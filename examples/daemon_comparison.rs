//! One protocol, every scheduler: how the daemon model changes the story.
//!
//! The paper's Section 3 contrasts its natively synchronous SMM with the
//! central-daemon Hsu–Huang algorithm. This example runs both matching
//! protocols under every scheduler the engine offers and prints what
//! happens — stabilization, cost, or provable oscillation.
//!
//! ```text
//! cargo run --example daemon_comparison
//! ```

use selfstab::core::hsu_huang::HsuHuang;
use selfstab::core::smm::{SelectPolicy, Smm};
use selfstab::core::transformer::{run_synchronized, Refinement};
use selfstab::engine::central::{CentralExecutor, Scheduler};
use selfstab::engine::distributed::{DistributedExecutor, SubsetPolicy};
use selfstab::engine::sync::{Outcome, SyncExecutor};
use selfstab::engine::{InitialState, Protocol};
use selfstab::graph::{generators, Ids};

fn main() {
    let n = 24;
    let g = generators::cycle(n);
    let smm = Smm::paper(Ids::identity(n));
    let hh = HsuHuang::with_policy(n, SelectPolicy::Clockwise);
    let init = InitialState::Default; // the adversarial all-null start
    println!("C{n}, all pointers null. 'HH' = Hsu–Huang with clockwise proposals.\n");
    println!("{:<46} {:>24}", "execution model", "outcome");
    println!("{}", "-".repeat(72));

    // Synchronous daemon.
    let run = SyncExecutor::new(&g, &smm).run(init.clone(), n + 1);
    println!(
        "{:<46} {:>24}",
        "SMM, synchronous daemon (the paper)",
        format!("stabilized, {} rounds", run.rounds())
    );
    let run = SyncExecutor::new(&g, &hh)
        .with_cycle_detection()
        .run(init.clone(), 10_000);
    let outcome = match run.outcome {
        Outcome::Cycle { period, .. } => format!("OSCILLATES (period {period})"),
        Outcome::Stabilized => format!("stabilized, {} rounds", run.rounds()),
        Outcome::RoundLimit => "round limit".into(),
    };
    println!(
        "{:<46} {:>24}",
        "HH, synchronous daemon (counterexample)", outcome
    );

    // Central daemon.
    for (name, mut sched) in [
        ("first-privileged", Scheduler::First),
        ("random", Scheduler::random(1)),
        ("round-robin", Scheduler::RoundRobin { cursor: 0 }),
    ] {
        let run = CentralExecutor::new(&g, &hh).run(init.clone(), &mut sched, 100_000);
        println!(
            "{:<46} {:>24}",
            format!("HH, central daemon ({name})"),
            format!("stabilized, {} moves", run.moves)
        );
    }

    // Daemon-refined synchronous conversions.
    for (name, refinement) in [
        (
            "deterministic local mutex",
            Refinement::DeterministicLocalMutex,
        ),
        (
            "randomized priorities",
            Refinement::RandomizedPriority { seed: 7 },
        ),
    ] {
        let run = run_synchronized(&g, &hh, init.clone(), refinement, 100_000);
        println!(
            "{:<46} {:>24}",
            format!("HH converted to synchronous ({name})"),
            format!("stabilized, {} rounds", run.rounds())
        );
    }

    // Distributed daemons on SMM.
    for (name, mut policy) in [
        ("Bernoulli p=0.5", SubsetPolicy::bernoulli(0.5, 3)),
        ("independent greedy", SubsetPolicy::IndependentGreedy),
        ("random priority", SubsetPolicy::random_priority(5)),
    ] {
        let run = DistributedExecutor::new(&g, &smm).run(init.clone(), &mut policy, 100_000);
        let legit = run.stabilized() && smm.is_legitimate(&g, &run.final_states);
        println!(
            "{:<46} {:>24}",
            format!("SMM, distributed daemon ({name})"),
            format!(
                "{}, {} steps",
                if legit {
                    "stabilized"
                } else {
                    "NOT legitimate"
                },
                run.rounds()
            )
        );
    }

    println!(
        "\nThe one cell that fails is exactly the paper's point: arbitrary proposals under\n\
         full synchrony; serializing (central daemon) or refining (local mutex) repairs it.\n\
         Note the all-null cycle is SMM's own worst case (the min-ID chain resolves one\n\
         link per round, ~n rounds — see E5), while on *average* inputs SMM beats the\n\
         converted baseline in every suite cell (E6)."
    );
}
