//! Multicast-tree maintenance — the application the paper's first paragraph
//! motivates ("a minimal spanning tree must be maintained … for
//! multicast/broadcast messages").
//!
//! A BFS tree rooted at the multicast source is maintained by the
//! self-stabilizing protocol of `core::bfs_tree` while links fail and
//! appear. After each topology event we measure how many rounds the tree
//! needs to re-converge and how many hosts changed their routing state.
//!
//! ```text
//! cargo run --example multicast_tree
//! ```

use selfstab::core::bfs_tree::BfsTree;
use selfstab::engine::sync::SyncExecutor;
use selfstab::engine::{InitialState, Protocol};
use selfstab::graph::mutate::Churn;
use selfstab::graph::{generators, Ids, Node};

fn main() {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let mut g = generators::random_geometric_connected(30, 0.32, &mut rng);
    let source = Node(0);
    let proto = BfsTree::new(source, Ids::identity(30));
    println!(
        "30 hosts, source {source}; initial topology m={}, building the multicast tree…",
        g.m()
    );

    let run = SyncExecutor::new(&g, &proto).run(InitialState::Random { seed: 1 }, 62);
    assert!(run.stabilized());
    assert!(proto.is_legitimate(&g, &run.final_states));
    let depth = run.final_states.iter().map(|s| s.dist).max().unwrap();
    println!(
        "tree built in {} rounds; depth {} hops; {} tree edges\n",
        run.rounds(),
        depth,
        BfsTree::tree_edges(&run.final_states).len()
    );

    println!(
        "{:<8} {:>10} {:>16} {:>14}",
        "event", "kind", "reconvergence", "hosts changed"
    );
    let mut states = run.final_states;
    let churn = Churn::default();
    for event_no in 1..=10 {
        let Some(event) = churn.apply_one(&mut g, &mut rng) else {
            continue;
        };
        let exec = SyncExecutor::new(&g, &proto);
        let rerun = exec.run(InitialState::Explicit(states.clone()), 62);
        assert!(rerun.stabilized());
        assert!(
            proto.is_legitimate(&g, &rerun.final_states),
            "tree must re-form on the new topology"
        );
        let changed = rerun
            .final_states
            .iter()
            .zip(&states)
            .filter(|(a, b)| a != b)
            .count();
        let kind = match event {
            selfstab::graph::mutate::TopologyEvent::LinkUp(e) => format!("up {e:?}"),
            selfstab::graph::mutate::TopologyEvent::LinkDown(e) => format!("down {e:?}"),
        };
        println!(
            "{:<8} {:>10} {:>13} rnd {:>14}",
            event_no,
            kind,
            rerun.rounds(),
            changed
        );
        states = rerun.final_states;
    }
    println!("\nEvery event was absorbed without global disruption: the tree readjusts");
    println!("locally, which is exactly the fault-tolerance story of the paper.");
}
