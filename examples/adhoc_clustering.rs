//! Cluster-head election in a *mobile* ad hoc network — the scenario the
//! paper's introduction motivates.
//!
//! Twenty hosts move under connectivity-preserving random waypoint while
//! Algorithm SMI runs on periodic beacons (Section 2's system model:
//! neighbor discovery, per-neighbor timers, jittered keep-alives). Every
//! simulated second we check whether the current head set is still a valid
//! maximal independent set — i.e. a non-interfering, fully-covering set of
//! cluster heads — on the *live* topology.
//!
//! ```text
//! cargo run --example adhoc_clustering
//! ```

use selfstab::adhoc::geometry::Region;
use selfstab::adhoc::mobility::RandomWaypoint;
use selfstab::adhoc::{BeaconConfig, BeaconSim, Topology};
use selfstab::core::cluster::Clustering;
use selfstab::core::Smi;
use selfstab::engine::InitialState;
use selfstab::graph::{predicates, Ids};

const MS: u64 = 1_000;

fn main() {
    let n = 20;
    let ids = Ids::identity(n);
    let smi = Smi::new(ids.clone());
    let model = RandomWaypoint::new(n, Region::unit(), 0.45, 0.03, 77);
    println!(
        "{} hosts in the unit square, radio range 0.45, speed 0.03 regions/s",
        n
    );

    let config = BeaconConfig {
        beacon_interval: 100 * MS,
        jitter: 5 * MS,
        delay: 5 * MS,
        timeout: 250 * MS,
        warmup: 100 * MS,
        loss: 0.0,
        per_node_interval: Vec::new(),
        collision_window: 0,
        seed: 9,
        sample_legitimacy: true,
    };
    let sim = BeaconSim::new(
        &smi,
        Topology::Mobile {
            model,
            tick: 100 * MS,
        },
        InitialState::Default,
        config,
    );
    // 60 simulated seconds of continuous operation.
    let report = sim.run(u64::MAX / 1_000_000, 60_000 * MS);

    println!(
        "\n60 s of mobility: {} beacons, {} deliveries, {} rule evaluations",
        report.beacons_sent, report.deliveries, report.evaluations
    );
    println!(
        "maximal-independent-set predicate held in {:.1}% of the {} sampled beacon periods",
        100.0 * report.legitimacy_fraction(),
        report.legitimacy_samples.len()
    );

    // Final clustering on the final topology.
    let g = report.final_graph.clone();
    if predicates::is_maximal_independent_set(&g, &report.final_states) {
        let clustering = Clustering::from_mis(&g, &ids, &report.final_states);
        println!(
            "\nfinal head set ({} clusters, minimal dominating: {}):",
            clustering.cluster_count(),
            predicates::is_minimal_dominating_set(&g, &clustering.head)
        );
        for (head, members) in clustering.clusters() {
            let others: Vec<String> = members
                .iter()
                .filter(|&&m| m != head)
                .map(|m| m.to_string())
                .collect();
            println!("  head {head}: members [{}]", others.join(", "));
        }
    } else {
        println!("\n(final sample caught mid-repair — the protocol converges again within O(n) beacon periods)");
    }
}
