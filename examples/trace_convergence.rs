//! Observe an SMM run converge: per-round census table on stdout and a
//! `chrome://tracing`-loadable timeline on disk.
//!
//! ```text
//! cargo run --example trace_convergence
//! ```
//!
//! Runs Algorithm SMM on a 64-node unit-disk graph through
//! `SyncExecutor::run_observed` with two observers attached at once: a
//! `MetricsCollector` carrying the Fig. 2 node-type census gauges (so every
//! round reports the live |M|, the privileged count, and the emptiness of
//! A¹/P_A that Lemma 7 promises), and a `ChromeTraceWriter` whose output
//! loads directly into chrome://tracing or https://ui.perfetto.dev.

use selfstab::core::smm::types::census_gauges;
use selfstab::core::smm::Smm;
use selfstab::engine::obs::{ChromeTraceWriter, MetricsCollector};
use selfstab::engine::protocol::Protocol;
use selfstab::engine::sync::SyncExecutor;
use selfstab::engine::InitialState;
use selfstab::graph::{generators, Ids};

fn main() {
    use rand::SeedableRng;
    let n = 64;
    let mut rng = rand::rngs::StdRng::seed_from_u64(2003);
    let radius = (2.2 * (n as f64).ln() / n as f64).sqrt();
    let g = generators::random_geometric_connected(n, radius, &mut rng);
    let ids = Ids::random(n, &mut rng);
    println!(
        "SMM on unit-disk n={}, m={}, max degree {}\n",
        g.n(),
        g.m(),
        g.max_degree()
    );

    let smm = Smm::paper(ids);
    let mut metrics = MetricsCollector::new().with_gauges(census_gauges(&g));
    let mut chrome = ChromeTraceWriter::with_rule_names(smm.rule_names());
    let run = SyncExecutor::new(&g, &smm).run_observed(
        InitialState::Random { seed: 7 },
        n + 1,
        &mut (&mut metrics, &mut chrome),
    );
    assert!(run.stabilized(), "Theorem 1: stabilizes within n+1 rounds");

    // The per-round census: watch |M| climb (Lemma 10: at least two nodes
    // every two rounds while active) and A1/PA pin to zero from round 1
    // (Lemma 7), while the privileged count shrinks towards quiescence.
    println!("{}", metrics.render_table());
    let m_series = metrics.gauge_series("M").expect("M gauge");
    println!(
        "stabilized in {} rounds; |M| (nodes) grew {:?}",
        run.rounds(),
        m_series
    );
    println!(
        "round latencies (log2 µs buckets): {}",
        metrics.latency_histogram().render()
    );

    let path = std::env::temp_dir().join("selfstab_trace_convergence.json");
    chrome.write_to(&path).expect("write chrome trace");
    println!(
        "\nwrote {} trace events to {} — load it in chrome://tracing or ui.perfetto.dev",
        chrome.len(),
        path.display()
    );
}
