//! Multilevel graph coarsening driven by the self-stabilizing matching —
//! a classic downstream application (multigrid / partitioning pipelines).
//!
//! Each level: run SMM to stabilization *in the network*, contract the
//! matched pairs, repeat on the coarse graph. A maximal matching guarantees
//! each level strictly shrinks, so the hierarchy has O(log n) depth on
//! bounded-degree graphs.
//!
//! ```text
//! cargo run --example multilevel_coarsening
//! ```

use selfstab::core::coarsen::coarsen_by_matching;
use selfstab::core::smm::Smm;
use selfstab::engine::sync::SyncExecutor;
use selfstab::engine::InitialState;
use selfstab::graph::traversal::is_connected;
use selfstab::graph::{generators, Ids};

fn main() {
    let mut g = generators::torus(16, 16);
    println!("level 0: torus 16×16 — n={}, m={}", g.n(), g.m());

    let mut level = 0;
    while g.n() > 4 {
        level += 1;
        let n = g.n();
        let smm = Smm::paper(Ids::identity(n));
        let run = SyncExecutor::new(&g, &smm).run(InitialState::Random { seed: level }, n + 1);
        assert!(run.stabilized(), "Theorem 1");
        let c = coarsen_by_matching(&g, &run.final_states);
        let matched_pairs = c.members.iter().filter(|m| m.len() == 2).count();
        println!(
            "level {level}: matched {matched_pairs} pairs in {} rounds  →  n={}, m={} (connected: {})",
            run.rounds(),
            c.coarse.n(),
            c.coarse.m(),
            is_connected(&c.coarse)
        );
        assert!(is_connected(&c.coarse), "coarsening preserves connectivity");
        assert!(c.coarse.n() < n, "maximal matching strictly shrinks");
        g = c.coarse;
    }
    println!(
        "\ncollapsed 256 nodes to {} in {level} levels (≈ log₂ 256 = 8).",
        g.n()
    );
}
