#!/usr/bin/env bash
# Local CI gate: build, full test suite, lint wall, and an end-to-end smoke
# of the observability layer (E17 machine-checks Lemmas 4/7 and 10 from live
# observer output). Run from the repo root; exits non-zero on any failure.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --workspace --release

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> harness --quick e17 (observability smoke)"
cargo run --release -p selfstab-bench --bin harness -- --quick e17 \
    | grep -F "0 violations in total" >/dev/null \
    || { echo "E17 reported violations" >&2; exit 1; }

echo "ci.sh: all gates passed"
