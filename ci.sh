#!/usr/bin/env bash
# Local CI gate: build, full test suite, lint wall, and an end-to-end smoke
# of the observability layer (E17 machine-checks Lemmas 4/7 and 10 from live
# observer output). Run from the repo root; exits non-zero on any failure.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --workspace --release

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --no-deps (warnings are errors; vendored crates excluded)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace \
    --exclude rand --exclude proptest --exclude criterion >/dev/null

echo "==> harness --quick e17 (observability smoke)"
cargo run --release -p selfstab-bench --bin harness -- --quick e17 \
    | grep -F "0 violations in total" >/dev/null \
    || { echo "E17 reported violations" >&2; exit 1; }

echo "==> sharded runtime smoke (4 shards, C4 counterexample + Theorem 1 bound)"
# Arbitrary-choice (clockwise) R2 on C4 must NOT converge on the sharded
# runtime, exactly as on the serial executor (Section 3 counterexample; the
# runtime has no cycle detection, so it hits the round limit).
cargo run --release -p selfstab-cli --bin selfstab-cli -- run --protocol smm \
    --topology cycle --n 4 --init default --propose clockwise --shards 4 --max-rounds 12 \
    | grep -F "round limit hit" >/dev/null \
    || { echo "sharded C4/clockwise should not converge" >&2; exit 1; }
# Default min-ID R2 stabilizes within Theorem 1's n+1 bound at 4 shards.
cargo run --release -p selfstab-cli --bin selfstab-cli -- run --protocol smm \
    --topology cycle --n 4 --init default --shards 4 --max-rounds 5 --format json \
    | grep -F '"legitimate": true' >/dev/null \
    || { echo "sharded C4/min-id should stabilize within n+1 rounds" >&2; exit 1; }

echo "==> active-set schedule smoke (C4 counterexample identical under pruning)"
# Active-set scheduling is pure evaluation pruning: the serial executor's
# cycle detector must still catch the clockwise-R2 period-2 oscillation on
# C4, and the sharded runtime must still hit the round limit, exactly as
# under --schedule full.
cargo run --release -p selfstab-cli --bin selfstab-cli -- run --protocol smm \
    --topology cycle --n 4 --init default --propose clockwise --schedule active \
    --max-rounds 12 \
    | grep -F "oscillates (period 2)" >/dev/null \
    || { echo "serial C4/clockwise should oscillate under --schedule active" >&2; exit 1; }
cargo run --release -p selfstab-cli --bin selfstab-cli -- run --protocol smm \
    --topology cycle --n 4 --init default --propose clockwise --schedule active \
    --shards 4 --max-rounds 12 \
    | grep -F "round limit hit" >/dev/null \
    || { echo "sharded C4/clockwise should not converge under --schedule active" >&2; exit 1; }

echo "==> chaos smoke (lossy channels keep Theorem 1; value-preserving chaos keeps the C4 livelock)"
# Min-ID SMM on C4 must still reach a legitimate matching with 20% of all
# beacon frames dropped (senders re-broadcast until ghosts are confirmed).
cargo run --release -p selfstab-cli --bin selfstab-cli -- run --protocol smm \
    --topology cycle --n 4 --init default --shards 4 --chaos drop=0.2 \
    --max-rounds 40 --format json \
    | grep -F '"legitimate": true' >/dev/null \
    || { echo "C4/min-id should converge legitimately under drop=0.2" >&2; exit 1; }
# The clockwise-C4 oscillation survives *value-preserving* chaos: duplicated
# frames never change any ghost, so the lockstep livelock persists. (Lossy
# chaos would break the symmetry and let it escape — asserted in
# crates/runtime/tests/chaos.rs.)
cargo run --release -p selfstab-cli --bin selfstab-cli -- run --protocol smm \
    --topology cycle --n 4 --init default --propose clockwise --shards 4 \
    --chaos dup=0.3 --max-rounds 12 \
    | grep -F "round limit hit" >/dev/null \
    || { echo "C4/clockwise should still livelock under dup-only chaos" >&2; exit 1; }

echo "==> harness --quick e20 (chaos resilience gate: every cell asserted legitimate)"
cargo run --release -p selfstab-bench --bin harness -- --quick e20 \
    | grep -F "E20 completed" >/dev/null \
    || { echo "E20 quick sweep failed" >&2; exit 1; }

echo "==> adversary smoke (byz containment reported; asym links still converge)"
# Two oscillating Byzantine nodes on C24: the run must report containment
# on the honest subgraph — here the adversary perturbs honest ex-partners
# at radius 1 (SMM's mutual-pointer handshake stops anything further).
cargo run --release -p selfstab-cli --bin selfstab-cli -- run --protocol smm \
    --topology cycle --n 24 --shards 4 --seed 7 --max-rounds 200 \
    --chaos byz=3+11,strat=oscillate,until=20 \
    | grep -F "radius: 1" >/dev/null \
    || { echo "byz run should report containment radius 1" >&2; exit 1; }
# Per-direction link failures at 30%: senders keep re-signaling until a
# hash round lets the frame through, so SMI still stabilizes legitimately.
cargo run --release -p selfstab-cli --bin selfstab-cli -- run --protocol smi \
    --topology grid --n 100 --shards 2 --seed 3 --chaos asym=0.3 \
    --max-rounds 400 --format json \
    | grep -F '"legitimate": true' >/dev/null \
    || { echo "SMI should converge under asym=0.3" >&2; exit 1; }
# The beacon simulator shares the fate hashing (and rejects byz=).
cargo run --release -p selfstab-cli --bin selfstab-cli -- sim --protocol smm \
    --topology grid --n 16 --seed 9 --chaos drop=0.15,asym=0.1 \
    | grep -F "quiesced: true" >/dev/null \
    || { echo "sim --chaos should quiesce under fate-hashed drops" >&2; exit 1; }
if cargo run --release -p selfstab-cli --bin selfstab-cli -- sim --protocol smm \
    --topology grid --n 16 --chaos byz=3 >/dev/null 2>&1; then
    echo "sim --chaos must reject byz=" >&2; exit 1
fi

echo "==> harness --quick e24 (Byzantine containment gate: SMM radius bounded, SMI wave grows)"
cargo run --release -p selfstab-bench --bin harness -- --quick e24 \
    | grep -F "E24 completed" >/dev/null \
    || { echo "E24 quick sweep failed" >&2; exit 1; }

echo "==> profiling + analyze smoke (record an artifact, report on it, reject a truncated one)"
# A profiled 4-shard run on C4 records a JSONL artifact next to the Chrome
# trace; analyze must exit 0 on it, name a straggler shard, and pass the
# Theorem 1 / monotone-|M| bound checks on a fault-free SMM recording.
PROFILE_DIR="$(mktemp -d)"
trap 'rm -rf "$PROFILE_DIR"' EXIT
cargo run --release -p selfstab-cli --bin selfstab-cli -- run --protocol smm \
    --topology cycle --n 4 --init default --shards 4 --max-rounds 5 \
    --profile --trace-out "$PROFILE_DIR/run.json" --metrics \
    | grep -F "profile:" >/dev/null \
    || { echo "profiled run should report its artifact path" >&2; exit 1; }
ANALYZE_OUT="$(cargo run --release -p selfstab-cli --bin selfstab-cli -- \
    analyze "$PROFILE_DIR/run.jsonl")" \
    || { echo "analyze should exit 0 on a clean artifact" >&2; exit 1; }
echo "$ANALYZE_OUT" | grep -F "straggler shard:" >/dev/null \
    || { echo "analyze should name the straggler shard" >&2; exit 1; }
echo "$ANALYZE_OUT" | grep -F "PASS rounds" >/dev/null \
    || { echo "analyze should check Theorem 1's round bound" >&2; exit 1; }
# A truncated artifact (finish event cut off) must be rejected with exit 2.
head -n 3 "$PROFILE_DIR/run.jsonl" > "$PROFILE_DIR/truncated.jsonl"
if cargo run --release -p selfstab-cli --bin selfstab-cli -- \
    analyze "$PROFILE_DIR/truncated.jsonl" >/dev/null 2>&1; then
    echo "analyze should reject a truncated artifact" >&2; exit 1
fi
# A byz-chaos recording must surface the adversary in the recovery
# timeline: per-round byz_rewrites counts read back from the artifact.
cargo run --release -p selfstab-cli --bin selfstab-cli -- run --protocol smm \
    --topology cycle --n 24 --shards 4 --seed 7 --max-rounds 200 \
    --chaos byz=3+11,strat=oscillate,until=20 \
    --profile --profile-out "$PROFILE_DIR/byz.jsonl" >/dev/null \
    || { echo "profiled byz run should exit 0" >&2; exit 1; }
cargo run --release -p selfstab-cli --bin selfstab-cli -- \
    analyze "$PROFILE_DIR/byz.jsonl" \
    | grep -F "byz_rewrites=" >/dev/null \
    || { echo "analyze should show byz rewrites in the recovery timeline" >&2; exit 1; }

echo "==> harness --quick e21 (shard-skew profiling gate: every round must carry a profile)"
cargo run --release -p selfstab-bench --bin harness -- --quick e21 \
    | grep -F "E21 completed" >/dev/null \
    || { echo "E21 quick sweep failed" >&2; exit 1; }

echo "==> selfstab bench --quick + self-compare (observatory smoke: zero deltas, exit 0)"
cargo run --release -p selfstab-cli --bin selfstab-cli -- bench --quick \
    --out "$PROFILE_DIR/bench.json" \
    | grep -F "wrote " >/dev/null \
    || { echo "bench --quick should report its artifact path" >&2; exit 1; }
cargo run --release -p selfstab-cli --bin selfstab-cli -- bench \
    --compare "$PROFILE_DIR/bench.json" "$PROFILE_DIR/bench.json" >/dev/null \
    || { echo "bench self-compare must exit 0" >&2; exit 1; }
# The committed baseline artifact must stay parseable and self-consistent.
BENCH_BASELINE="$(ls BENCH_*.json 2>/dev/null | sort -V | tail -n 1)"
if [ -n "$BENCH_BASELINE" ]; then
    cargo run --release -p selfstab-cli --bin selfstab-cli -- bench \
        --compare "$BENCH_BASELINE" "$BENCH_BASELINE" >/dev/null \
        || { echo "committed $BENCH_BASELINE must self-compare clean" >&2; exit 1; }
fi

echo "==> service smoke (sim backend: scripted mutations, census/membership asserted, clean exit)"
# The resident service replays a deterministic mutation/query script through
# the sim environment: cut an edge of the C6 matching, crash and rejoin a
# node, then assert the census and membership answers and a settled exit.
cat > "$PROFILE_DIR/service-script.jsonl" <<'EOF'
{"op":"query","what":"status","tag":"boot"}
{"op":"mutate","kind":"edge-down","a":0,"b":1}
{"op":"mutate","kind":"node-leave","v":3}
{"op":"mutate","kind":"node-join","v":3,"attach":[2,4]}
{"op":"query","what":"membership","node":2}
{"op":"query","what":"census"}
{"op":"shutdown"}
EOF
SERVE_OUT="$(cargo run --release -p selfstab-cli --bin selfstab-cli -- serve \
    --protocol smm --topology cycle --n 6 --script "$PROFILE_DIR/service-script.jsonl" \
    --metrics --snapshot-out "$PROFILE_DIR/service-snap.json")" \
    || { echo "service sim session should exit 0" >&2; exit 1; }
echo "$SERVE_OUT" | grep -F '"tag":"boot"' >/dev/null \
    || { echo "service should echo the request tag" >&2; exit 1; }
echo "$SERVE_OUT" | grep -F '"node":2,"matched":true' >/dev/null \
    || { echo "node 2 should be matched after the churn script" >&2; exit 1; }
echo "$SERVE_OUT" | grep -F '"M":4,"A0":2,"A1":0,"PA":0,"PM":0,"PP":0,"DANGLING":0,"matched_pairs":2' >/dev/null \
    || { echo "census should report the deterministic post-churn Fig. 2 counts" >&2; exit 1; }
echo "$SERVE_OUT" | grep -F "session: outcome=client-shutdown" >/dev/null \
    || { echo "service should exit via client shutdown" >&2; exit 1; }
echo "$SERVE_OUT" | grep -F "legitimate=true" >/dev/null \
    || { echo "service must settle legitimate before exit" >&2; exit 1; }
grep -F '"format":"selfstab-snapshot/v1"' "$PROFILE_DIR/service-snap.json" >/dev/null \
    || { echo "shutdown should flush a versioned snapshot" >&2; exit 1; }

echo "==> service smoke (sharded drain: same script at --shards 4 must pin the same census)"
# The sharded backend is state- and round-identical to the serial drain by
# the consistency suite; this smoke pins it end to end through the CLI —
# identical deterministic census, clean client-shutdown exit.
SHARDED_OUT="$(cargo run --release -p selfstab-cli --bin selfstab-cli -- serve \
    --protocol smm --topology cycle --n 6 --shards 4 \
    --script "$PROFILE_DIR/service-script.jsonl")" \
    || { echo "sharded service sim session should exit 0" >&2; exit 1; }
echo "$SHARDED_OUT" | grep -F "drain=sharded(4)" >/dev/null \
    || { echo "serve --shards 4 should report the sharded drain" >&2; exit 1; }
echo "$SHARDED_OUT" | grep -F '"M":4,"A0":2,"A1":0,"PA":0,"PM":0,"PP":0,"DANGLING":0,"matched_pairs":2' >/dev/null \
    || { echo "sharded census must match the serial drain's pinned counts" >&2; exit 1; }
echo "$SHARDED_OUT" | grep -F "session: outcome=client-shutdown" >/dev/null \
    || { echo "sharded service should exit via client shutdown" >&2; exit 1; }
echo "$SHARDED_OUT" | grep -F "legitimate=true" >/dev/null \
    || { echo "sharded service must settle legitimate before exit" >&2; exit 1; }

echo "==> UDS teardown regression (pending-connection shutdown must not deadlock)"
cargo test --release -q -p selfstab-service --test uds_teardown \
    || { echo "UDS teardown regression suite failed" >&2; exit 1; }

echo "==> service smoke (UDS backend: daemon + scripted client over a real socket)"
SERVICE_SOCK="$PROFILE_DIR/service.sock"
cargo run --release -p selfstab-cli --bin selfstab-cli -- serve \
    --protocol smi --topology star --n 8 --socket "$SERVICE_SOCK" \
    > "$PROFILE_DIR/service-uds.out" 2>&1 &
SERVE_PID=$!
for _ in $(seq 1 100); do [ -S "$SERVICE_SOCK" ] && break; sleep 0.1; done
[ -S "$SERVICE_SOCK" ] || { echo "service socket never appeared" >&2; exit 1; }
CLIENT_OUT="$(cargo run --release -p selfstab-cli --bin selfstab-cli -- client \
    --socket "$SERVICE_SOCK" --send '{"op":"query","what":"census","tag":"c"}')" \
    || { kill "$SERVE_PID" 2>/dev/null; echo "client query should exit 0" >&2; exit 1; }
echo "$CLIENT_OUT" | grep -F '"in_set":7' >/dev/null \
    || { kill "$SERVE_PID" 2>/dev/null; echo "star MIS census should be the 7 leaves" >&2; exit 1; }
cargo run --release -p selfstab-cli --bin selfstab-cli -- client \
    --socket "$SERVICE_SOCK" --send '{"op":"shutdown"}' >/dev/null \
    || { kill "$SERVE_PID" 2>/dev/null; echo "client shutdown should exit 0" >&2; exit 1; }
wait "$SERVE_PID" || { echo "service daemon should exit 0 after client shutdown" >&2; exit 1; }
grep -F "session: outcome=client-shutdown" "$PROFILE_DIR/service-uds.out" >/dev/null \
    || { echo "daemon report should record the client shutdown" >&2; exit 1; }

echo "==> telemetry smoke (live daemon: TCP scrape + UDS query agree; background snapshot resumes in 0 rounds)"
TEL_SOCK="$PROFILE_DIR/telemetry.sock"
TEL_SNAP="$PROFILE_DIR/telemetry-snap.json"
cargo run --release -p selfstab-cli --bin selfstab-cli -- serve \
    --protocol smm --topology cycle --n 6 --socket "$TEL_SOCK" \
    --telemetry-addr 127.0.0.1:0 --snapshot-every 1 --snapshot-out "$TEL_SNAP" \
    > "$PROFILE_DIR/telemetry-daemon.out" 2>&1 &
TEL_PID=$!
TEL_ADDR=""
for _ in $(seq 1 100); do
    TEL_ADDR="$(grep -oE 'telemetry: listening on [0-9.]+:[0-9]+' \
        "$PROFILE_DIR/telemetry-daemon.out" 2>/dev/null | awk '{print $4}')" || true
    [ -n "$TEL_ADDR" ] && [ -S "$TEL_SOCK" ] && break
    sleep 0.1
done
[ -n "$TEL_ADDR" ] || { kill "$TEL_PID" 2>/dev/null; echo "daemon never announced its telemetry address" >&2; exit 1; }
cargo run --release -p selfstab-cli --bin selfstab-cli -- client \
    --socket "$TEL_SOCK" --send '{"op":"mutate","kind":"edge-down","a":0,"b":1}' >/dev/null \
    || { kill "$TEL_PID" 2>/dev/null; echo "telemetry smoke mutation should exit 0" >&2; exit 1; }
cargo run --release -p selfstab-cli --bin selfstab-cli -- client \
    --socket "$TEL_SOCK" --send '{"op":"mutate","kind":"edge-up","a":0,"b":1}' >/dev/null \
    || { kill "$TEL_PID" 2>/dev/null; echo "telemetry smoke mutation should exit 0" >&2; exit 1; }
SCRAPE="$(cargo run --release -p selfstab-cli --bin selfstab-cli -- client --scrape "$TEL_ADDR")" \
    || { kill "$TEL_PID" 2>/dev/null; echo "client --scrape should exit 0 against a live daemon" >&2; exit 1; }
echo "$SCRAPE" | grep -F "# TYPE selfstab_events_total counter" >/dev/null \
    || { kill "$TEL_PID" 2>/dev/null; echo "scrape must be Prometheus text exposition" >&2; exit 1; }
echo "$SCRAPE" | grep -F "selfstab_events_total 2" >/dev/null \
    || { kill "$TEL_PID" 2>/dev/null; echo "scrape should count the 2 applied events" >&2; exit 1; }
if echo "$SCRAPE" | grep -F "NaN" >/dev/null; then
    kill "$TEL_PID" 2>/dev/null; echo "exposition must never emit NaN" >&2; exit 1
fi
cargo run --release -p selfstab-cli --bin selfstab-cli -- client \
    --socket "$TEL_SOCK" --send '{"op":"query","what":"telemetry"}' \
    | grep -F '"events":2' >/dev/null \
    || { kill "$TEL_PID" 2>/dev/null; echo "UDS telemetry query must agree with the scrape" >&2; exit 1; }
cargo run --release -p selfstab-cli --bin selfstab-cli -- client \
    --socket "$TEL_SOCK" --send '{"op":"shutdown"}' >/dev/null \
    || { kill "$TEL_PID" 2>/dev/null; echo "telemetry smoke shutdown should exit 0" >&2; exit 1; }
wait "$TEL_PID" || { echo "telemetry daemon should exit 0 after client shutdown" >&2; exit 1; }
grep -F "telemetry: events=2" "$PROFILE_DIR/telemetry-daemon.out" >/dev/null \
    || { echo "daemon report should carry the telemetry summary" >&2; exit 1; }
# The background scheduler wrote snapshots while the daemon ran; a resumed
# daemon must boot from the file in 0 rounds (legitimate snapshot).
grep -F '"format":"selfstab-snapshot/v1"' "$TEL_SNAP" >/dev/null \
    || { echo "background scheduler should write a versioned snapshot" >&2; exit 1; }
grep -F "snapshots: written=" "$PROFILE_DIR/telemetry-daemon.out" >/dev/null \
    || { echo "daemon report should count background snapshots" >&2; exit 1; }
cat > "$PROFILE_DIR/resume-script.jsonl" <<'EOF'
{"op":"query","what":"status","tag":"resumed"}
{"op":"shutdown"}
EOF
RESUME_OUT="$(cargo run --release -p selfstab-cli --bin selfstab-cli -- serve \
    --protocol smm --resume "$TEL_SNAP" --script "$PROFILE_DIR/resume-script.jsonl")" \
    || { echo "serve --resume should exit 0 on the background snapshot" >&2; exit 1; }
echo "$RESUME_OUT" | grep -F "resume: protocol=smm" >/dev/null \
    || { echo "resumed daemon should report its snapshot provenance" >&2; exit 1; }
echo "$RESUME_OUT" | grep -F "bootstrap: rounds=0" >/dev/null \
    || { echo "a legitimate snapshot must reload in 0 rounds" >&2; exit 1; }
if cargo run --release -p selfstab-cli --bin selfstab-cli -- serve \
    --protocol smi --resume "$TEL_SNAP" --script "$PROFILE_DIR/resume-script.jsonl" >/dev/null 2>&1; then
    echo "resume must reject a protocol mismatch" >&2; exit 1
fi

echo "==> analyze --window smoke (service artifact: rolling tables, bound gate, exit codes)"
cargo run --release -p selfstab-cli --bin selfstab-cli -- serve \
    --protocol smm --topology cycle --n 6 --script "$PROFILE_DIR/service-script.jsonl" \
    --profile-out "$PROFILE_DIR/service-profile.jsonl" >/dev/null \
    || { echo "profiled service session should exit 0" >&2; exit 1; }
WINDOW_OUT="$(cargo run --release -p selfstab-cli --bin selfstab-cli -- \
    analyze "$PROFILE_DIR/service-profile.jsonl" --window 2)" \
    || { echo "analyze --window should exit 0 on a clean service artifact" >&2; exit 1; }
echo "$WINDOW_OUT" | grep -F "rolling recovery latency (window 2 event(s))" >/dev/null \
    || { echo "analyze --window should render the rolling table" >&2; exit 1; }
echo "$WINDOW_OUT" | grep -F "PASS per-event recovery" >/dev/null \
    || { echo "analyze should gate the per-event n+2 recovery bound" >&2; exit 1; }
# --window 0 is a usage error (exit 2), and an artifact claiming a recovery
# beyond n+2 must gate with exit 1.
if cargo run --release -p selfstab-cli --bin selfstab-cli -- \
    analyze "$PROFILE_DIR/service-profile.jsonl" --window 0 >/dev/null 2>&1; then
    echo "analyze --window 0 must be rejected" >&2; exit 1
fi
sed -E 's/"recovery_rounds":[0-9]+/"recovery_rounds":99/' \
    "$PROFILE_DIR/service-profile.jsonl" > "$PROFILE_DIR/service-corrupt.jsonl"
if cargo run --release -p selfstab-cli --bin selfstab-cli -- \
    analyze "$PROFILE_DIR/service-corrupt.jsonl" >/dev/null 2>&1; then
    echo "analyze must exit 1 when per-event recovery exceeds n+2" >&2; exit 1
fi

echo "ci.sh: all gates passed"
