//! Parallel composition of protocols.
//!
//! Two protocols whose guards read only their own layer compose freely: the
//! product protocol runs both on the same topology and beacons, each layer
//! ignoring the other. Classic self-stabilization theory (fair composition,
//! Dolev's book ch. 2) says the product stabilizes iff both layers do, and
//! the engine can verify that *mechanically*: the product execution must
//! project exactly onto the two layer executions — asserted by the tests.
//!
//! This is how a deployment would run SMM (matching) and SMI (cluster
//! heads) on the *same* beacon exchange at once: beacons carry the product
//! state.

use crate::protocol::{Move, Protocol, View};
use rand::rngs::StdRng;
use selfstab_graph::{Graph, Node};

/// The parallel composition of two protocols.
pub struct Product<'a, P1, P2> {
    p1: &'a P1,
    p2: &'a P2,
}

impl<'a, P1: Protocol, P2: Protocol> Product<'a, P1, P2> {
    /// Compose `p1` and `p2`.
    pub fn new(p1: &'a P1, p2: &'a P2) -> Self {
        Product { p1, p2 }
    }

    /// Project a product state vector onto the first layer.
    pub fn project1(states: &[(P1::State, P2::State)]) -> Vec<P1::State> {
        states.iter().map(|(a, _)| a.clone()).collect()
    }

    /// Project a product state vector onto the second layer.
    pub fn project2(states: &[(P1::State, P2::State)]) -> Vec<P2::State> {
        states.iter().map(|(_, b)| b.clone()).collect()
    }

    fn sub_view_states<S: Clone>(
        view: &View<'_, (P1::State, P2::State)>,
        pick: impl Fn(&(P1::State, P2::State)) -> S,
    ) -> (Vec<S>, usize) {
        // Materialize a dense slice covering `me` and all neighbors; holes
        // are filled with the node's own layer state and never read.
        let me = view.node().index();
        let max_idx = view
            .neighbors()
            .iter()
            .map(|v| v.index())
            .chain(std::iter::once(me))
            .max()
            .expect("at least the node itself");
        let filler = pick(view.own());
        let mut dense = vec![filler; max_idx + 1];
        dense[me] = pick(view.own());
        for (v, s) in view.neighbor_states() {
            dense[v.index()] = pick(s);
        }
        (dense, me)
    }
}

impl<P1: Protocol, P2: Protocol> Protocol for Product<'_, P1, P2> {
    type State = (P1::State, P2::State);

    fn rule_names(&self) -> &'static [&'static str] {
        &["layer1", "layer2", "layer1+layer2"]
    }

    fn default_state(&self) -> Self::State {
        (self.p1.default_state(), self.p2.default_state())
    }

    fn arbitrary_state(&self, node: Node, neighbors: &[Node], rng: &mut StdRng) -> Self::State {
        (
            self.p1.arbitrary_state(node, neighbors, rng),
            self.p2.arbitrary_state(node, neighbors, rng),
        )
    }

    fn enumerate_states(&self, node: Node, neighbors: &[Node]) -> Vec<Self::State> {
        let s1 = self.p1.enumerate_states(node, neighbors);
        let s2 = self.p2.enumerate_states(node, neighbors);
        s1.iter()
            .flat_map(|a| s2.iter().map(move |b| (a.clone(), b.clone())))
            .collect()
    }

    fn step(&self, view: View<'_, Self::State>) -> Option<Move<Self::State>> {
        let (dense1, me) = Self::sub_view_states(&view, |(a, _)| a.clone());
        let v1 = View::new(Node::from(me), view.neighbors(), &dense1);
        let m1 = self.p1.step(v1);
        let (dense2, _) = Self::sub_view_states(&view, |(_, b)| b.clone());
        let v2 = View::new(Node::from(me), view.neighbors(), &dense2);
        let m2 = self.p2.step(v2);
        match (m1, m2) {
            (None, None) => None,
            (Some(m1), None) => Some(Move {
                rule: 0,
                next: (m1.next, view.own().1.clone()),
            }),
            (None, Some(m2)) => Some(Move {
                rule: 1,
                next: (view.own().0.clone(), m2.next),
            }),
            (Some(m1), Some(m2)) => Some(Move {
                rule: 2,
                next: (m1.next, m2.next),
            }),
        }
    }

    fn is_legitimate(&self, graph: &Graph, states: &[Self::State]) -> bool {
        self.p1.is_legitimate(graph, &Self::project1(states))
            && self.p2.is_legitimate(graph, &Self::project2(states))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::InitialState;
    use crate::sync::SyncExecutor;
    use crate::testutil::MaxProto;
    use selfstab_graph::generators;

    /// A second toy layer: copy the *minimum* of the closed neighborhood.
    struct MinProto;
    impl Protocol for MinProto {
        type State = u8;
        fn rule_names(&self) -> &'static [&'static str] {
            &["copy-min"]
        }
        fn default_state(&self) -> u8 {
            3
        }
        fn arbitrary_state(&self, _: Node, _: &[Node], rng: &mut StdRng) -> u8 {
            use rand::RngExt;
            rng.random_range(0..4)
        }
        fn enumerate_states(&self, _: Node, _: &[Node]) -> Vec<u8> {
            (0..4).collect()
        }
        fn step(&self, view: View<'_, u8>) -> Option<Move<u8>> {
            let m = view.neighbor_states().map(|(_, &s)| s).min()?;
            (m < *view.own()).then_some(Move { rule: 0, next: m })
        }
    }

    #[test]
    fn product_projects_onto_layer_runs() {
        let g = generators::grid(4, 4);
        let product = Product::new(&MaxProto, &MinProto);
        // Build an explicit product initial state and the matching layer
        // initial states.
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let init: Vec<(u8, u8)> = (0..16)
            .map(|i| {
                let v = Node::from(i);
                (
                    MaxProto.arbitrary_state(v, g.neighbors(v), &mut rng),
                    MinProto.arbitrary_state(v, g.neighbors(v), &mut rng),
                )
            })
            .collect();
        let init1: Vec<u8> = init.iter().map(|&(a, _)| a).collect();
        let init2: Vec<u8> = init.iter().map(|&(_, b)| b).collect();

        let prod_run = SyncExecutor::new(&g, &product).run(InitialState::Explicit(init), 100);
        let run1 = SyncExecutor::new(&g, &MaxProto).run(InitialState::Explicit(init1), 100);
        let run2 = SyncExecutor::new(&g, &MinProto).run(InitialState::Explicit(init2), 100);
        assert!(prod_run.stabilized());
        assert_eq!(
            Product::<MaxProto, MinProto>::project1(&prod_run.final_states),
            run1.final_states
        );
        assert_eq!(
            Product::<MaxProto, MinProto>::project2(&prod_run.final_states),
            run2.final_states
        );
        // The product stabilizes exactly when the slower layer does.
        assert_eq!(prod_run.rounds(), run1.rounds().max(run2.rounds()));
    }

    #[test]
    fn product_rule_accounting() {
        let g = generators::path(6);
        let product = Product::new(&MaxProto, &MinProto);
        let init: Vec<(u8, u8)> = vec![(3, 0); 6];
        // Layer 1 is already at its fixpoint (all max), layer 2 already all
        // min: nothing moves.
        let run = SyncExecutor::new(&g, &product).run(InitialState::Explicit(init), 10);
        assert!(run.stabilized());
        assert_eq!(run.total_moves(), 0);
        // Mixed: layer1 must spread a 3, layer2 must spread a 0.
        let mut init = vec![(0u8, 3u8); 6];
        init[0] = (3, 3);
        init[5] = (0, 0);
        let run = SyncExecutor::new(&g, &product).run(InitialState::Explicit(init), 10);
        assert!(run.stabilized());
        assert!(run.moves_per_rule.iter().sum::<u64>() > 0);
        assert!(product.is_legitimate(&g, &run.final_states));
    }

    #[test]
    fn enumerate_is_cartesian() {
        let g = generators::path(2);
        let product = Product::new(&MaxProto, &MinProto);
        let states = product.enumerate_states(Node(0), g.neighbors(Node(0)));
        assert_eq!(states.len(), 16);
    }
}
