//! The synchronous daemon: the execution model of the paper.
//!
//! In each *round* every node has received beacons (states) from all its
//! neighbors and every privileged node fires its enabled rule
//! simultaneously. The executor applies rounds until a fixpoint, a detected
//! oscillation, or a round limit.
//!
//! Because the composed system is deterministic and the state space finite,
//! an execution either reaches a fixpoint or enters a cycle; with
//! [`SyncExecutor::with_cycle_detection`] enabled the executor distinguishes the
//! two exactly (used to *prove* the paper's C₄ counterexample oscillates
//! rather than merely time out).

use crate::active::{ActiveSet, Schedule};
use crate::adversary::{AsymPlan, ByzPlan, Perception};
use crate::faults::CrashAt;
use crate::obs::{Observer, Phase, PhaseSpans, RoundProfile, RoundStats, ShardProfile};
use crate::protocol::{InitialState, Move, Protocol, View};
use selfstab_graph::{Graph, Node};
use std::collections::HashMap;

/// Why an execution ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// No node was privileged: a fixpoint was reached.
    Stabilized,
    /// The global state repeated: the execution oscillates forever.
    Cycle {
        /// Round at which the repeated state was first seen.
        first_seen: usize,
        /// Cycle length in rounds.
        period: usize,
    },
    /// The round limit was hit without fixpoint or (detected) cycle.
    RoundLimit,
}

/// The result of one synchronous execution.
#[derive(Clone, Debug)]
pub struct Run<S> {
    /// Global state when the execution ended.
    pub final_states: Vec<S>,
    /// Number of rounds in which at least one node moved.
    pub rounds: usize,
    /// Moves per rule (indexed like [`Protocol::rule_names`]).
    pub moves_per_rule: Vec<u64>,
    /// Why the execution ended.
    pub outcome: Outcome,
    /// Recorded state history (`trace[t]` = global state at time `t`,
    /// `trace[0]` = initial), present iff tracing was enabled.
    pub trace: Option<Vec<Vec<S>>>,
}

impl<S> Run<S> {
    /// Whether the run reached a fixpoint.
    pub fn stabilized(&self) -> bool {
        self.outcome == Outcome::Stabilized
    }

    /// Rounds until stabilization (the paper's complexity measure).
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Total moves across all rules.
    pub fn total_moves(&self) -> u64 {
        self.moves_per_rule.iter().sum()
    }
}

/// Synchronous-model executor for a protocol on a fixed topology.
pub struct SyncExecutor<'a, P: Protocol> {
    graph: &'a Graph,
    proto: &'a P,
    trace: bool,
    detect_cycles: bool,
    schedule: Schedule,
    crash: Option<CrashAt>,
    byz: Option<ByzPlan>,
    asym: Option<AsymPlan>,
}

impl<'a, P: Protocol> SyncExecutor<'a, P> {
    /// New executor with tracing and cycle detection disabled and the
    /// default [`Schedule::Active`] evaluation pruning (identical results
    /// to the full sweep; see [`crate::active`]).
    pub fn new(graph: &'a Graph, proto: &'a P) -> Self {
        SyncExecutor {
            graph,
            proto,
            trace: false,
            detect_cycles: false,
            schedule: Schedule::default(),
            crash: None,
            byz: None,
            asym: None,
        }
    }

    /// Choose between the full per-round sweep and active-set evaluation
    /// pruning. Results are identical either way; only the number of guard
    /// evaluations ([`RoundStats::evaluated`]) differs.
    pub fn with_schedule(mut self, schedule: Schedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Schedule a mid-run crash-restart ([`CrashAt`]): at the top of the
    /// crash round a fraction of the nodes rehydrate with arbitrary
    /// states, and the run is kept alive up to that round even if the
    /// protocol has already quiesced — mirroring the sharded runtime's
    /// `CrashSpec` semantics, so the equivalence suite can pin the two
    /// against each other at 1 shard.
    pub fn with_crash(mut self, crash: CrashAt) -> Self {
        self.crash = Some(crash);
        self
    }

    /// Attach a Byzantine adversary ([`ByzPlan`]): each hot round, after
    /// the honest moves are applied, every compromised node's state is
    /// overwritten with the plan's adversarial pick — exactly the sharded
    /// runtime's semantics, so the serial ≡ runtime equivalence oracle
    /// extends to adversarial runs.
    pub fn with_adversary(mut self, byz: ByzPlan) -> Self {
        self.byz = Some(byz);
        self
    }

    /// Attach an asymmetric-link model ([`AsymPlan`]): evaluation runs on
    /// what each node last *heard* from each neighbor (a [`Perception`]
    /// overlay), with per-direction per-round fate hashing — again
    /// mirroring the sharded runtime exactly.
    pub fn with_asym(mut self, asym: AsymPlan) -> Self {
        self.asym = Some(asym);
        self
    }

    /// Record the full state history in the returned [`Run`].
    pub fn with_trace(mut self) -> Self {
        self.trace = true;
        self
    }

    /// Detect repeated global states (memory: one copy of every distinct
    /// visited state).
    pub fn with_cycle_detection(mut self) -> Self {
        self.detect_cycles = true;
        self
    }

    /// The topology this executor runs on.
    pub fn graph(&self) -> &Graph {
        self.graph
    }

    /// Compute the moves of all privileged nodes for the given global state.
    /// Returns `(node, move)` pairs in node order.
    pub fn privileged_moves(
        &self,
        states: &[P::State],
    ) -> Vec<(Node, crate::protocol::Move<P::State>)> {
        self.graph
            .nodes()
            .filter_map(|v| {
                let view = View::new(v, self.graph.neighbors(v), states);
                self.proto.step(view).map(|m| (v, m))
            })
            .collect()
    }

    /// Compute the moves of the privileged nodes *among* `nodes` (which must
    /// be sorted in node order). Sound as a round step whenever `nodes` is a
    /// superset of the privileged set — which the active-set invariant
    /// guarantees (see [`crate::active`]).
    fn privileged_moves_among(
        &self,
        states: &[P::State],
        nodes: &[Node],
    ) -> Vec<(Node, crate::protocol::Move<P::State>)> {
        nodes
            .iter()
            .filter_map(|&v| {
                let view = View::new(v, self.graph.neighbors(v), states);
                self.proto.step(view).map(|m| (v, m))
            })
            .collect()
    }

    /// Execute synchronously from `init` for at most `max_rounds` rounds.
    pub fn run(&self, init: InitialState<P::State>, max_rounds: usize) -> Run<P::State> {
        // `()` has `ENABLED == false`: monomorphization removes every
        // observation branch, so this is the same loop as before the
        // hooks existed.
        self.run_observed(init, max_rounds, &mut ())
    }

    /// Execute synchronously, firing the [`Observer`] hooks: per round,
    /// `on_round_start` (pre-round states) → `on_move` per applied move →
    /// `on_round_end` ([`RoundStats`] + post-round states); `on_finish`
    /// once, with the final outcome. Timing and per-round bookkeeping are
    /// guarded by [`Observer::ENABLED`], so a disabled observer costs
    /// nothing.
    pub fn run_observed<O: Observer<P::State>>(
        &self,
        init: InitialState<P::State>,
        max_rounds: usize,
        obs: &mut O,
    ) -> Run<P::State> {
        let mut states = init.materialize(self.graph, self.proto);
        let mut moves_per_rule = vec![0u64; self.proto.rule_names().len()];
        let mut trace = self.trace.then(|| vec![states.clone()]);
        let mut seen: Option<HashMap<Vec<P::State>, usize>> = self.detect_cycles.then(HashMap::new);
        // Ping-pong pair of worklists; round 1 evaluates everything.
        let n = states.len();
        let mut active =
            (self.schedule == Schedule::Active).then(|| (ActiveSet::full(n), ActiveSet::empty(n)));
        // Perception rows for the asymmetric-link model: what each node
        // last heard from each neighbor, seeded from the boot states.
        let mut perception = self.asym.as_ref().map(|_| {
            let tracked: Vec<Node> = self.graph.nodes().collect();
            Perception::new(self.graph, &tracked, &states)
        });

        let mut round = 0usize;
        loop {
            // A scheduled crash keeps the run alive through its round — the
            // sharded runtime does the same (`FaultPlan::crash_pending`) —
            // so a quiesced pre-crash configuration cannot report
            // `Stabilized` before the fault actually fires.
            let crash_pending = self.crash.as_ref().is_some_and(|c| round <= c.round);
            // A hot Byzantine adversary rewrites states every round, and a
            // hot asymmetric-link plan makes the round transition depend on
            // the round number: both keep the run alive and invalidate
            // cycle-detection history exactly like a pending crash.
            let byz_hot = self.byz.as_ref().is_some_and(|b| b.hot(round));
            let asym_live = self.asym.as_ref().is_some_and(|a| a.hot(round));
            let asym_sweep = self.asym.as_ref().is_some_and(|a| a.sweep(round));
            if let Some(seen) = seen.as_mut() {
                if crash_pending || byz_hot || asym_live {
                    // The crash mutates state outside the transition
                    // function: a repeat before it is a keep-alive round,
                    // not an oscillation, and history crossing the crash
                    // proves nothing. Detection restarts after it fires.
                    // (Same argument for adversarial rewrites and
                    // round-dependent link fates.)
                    seen.clear();
                }
                if let Some(&first_seen) = seen.get(&states) {
                    let outcome = Outcome::Cycle {
                        first_seen,
                        period: round - first_seen,
                    };
                    if O::ENABLED {
                        obs.on_finish(&outcome, &states);
                    }
                    return Run {
                        final_states: states,
                        rounds: round,
                        moves_per_rule,
                        outcome,
                        trace,
                    };
                }
                seen.insert(states.clone(), round);
            }

            // An injected crash fires at the top of its round, before
            // evaluation, exactly like the runtime's worker crash-restart.
            let mut rehydrate_nanos = 0u64;
            if let Some(c) = self.crash.as_ref().filter(|c| c.round == round) {
                if round < max_rounds {
                    let t0 = O::ENABLED.then(std::time::Instant::now);
                    let victims = c.apply(self.proto, self.graph, &mut states);
                    if let Some((cur, _)) = active.as_mut() {
                        // Every victim's closed neighborhood re-enters
                        // evaluation: the rehydrated state changes its own
                        // guards and its neighbors'.
                        for &v in &victims {
                            cur.insert_closed(self.graph, v);
                        }
                        cur.seal();
                    }
                    if let Some(t0) = t0 {
                        rehydrate_nanos = t0.elapsed().as_nanos() as u64;
                    }
                }
            }

            // Deliver this round's inbound beacons under the asymmetric-link
            // model: up directions copy the sender's current state, down
            // directions keep the last heard value.
            if asym_live {
                if let (Some(plan), Some(per)) = (self.asym.as_ref(), perception.as_mut()) {
                    per.refresh(self.graph, plan, round, &states);
                }
            }

            let guard_timer = O::ENABLED.then(std::time::Instant::now);
            let (moves, evaluated) = if asym_live {
                // Evaluate everyone on their *perceived* neighbor states
                // (worklist pruning is unsound while links fail — see
                // `AsymPlan::sweep`).
                let per = perception.as_ref().expect("asym plan implies perception");
                let moves = self
                    .graph
                    .nodes()
                    .filter_map(|v| {
                        let pos = per.position(v).expect("serial tracks every node");
                        let view =
                            View::with_overlay(v, self.graph.neighbors(v), &states, per.row(pos));
                        self.proto.step(view).map(|m| (v, m))
                    })
                    .collect();
                (moves, n)
            } else if asym_sweep {
                // Catch-up round after the window closes: true views, but a
                // full sweep — perception may have just caught up, changing
                // views without any neighbor moving.
                (self.privileged_moves(&states), n)
            } else {
                match active.as_ref() {
                    Some((cur, _)) => {
                        (self.privileged_moves_among(&states, cur.nodes()), cur.len())
                    }
                    None => (self.privileged_moves(&states), n),
                }
            };
            let guard_nanos = guard_timer
                .map(|t| t.elapsed().as_nanos() as u64)
                .unwrap_or(0);
            // A lagging perception can still surface moves once the missed
            // beacons land, and a hot adversary will keep rewriting states:
            // neither may report stabilization yet.
            let asym_keep = asym_live && perception.as_ref().is_some_and(|p| p.lagging());
            if moves.is_empty() && !crash_pending && !byz_hot && !asym_keep {
                if O::ENABLED {
                    obs.on_finish(&Outcome::Stabilized, &states);
                }
                return Run {
                    final_states: states,
                    rounds: round,
                    moves_per_rule,
                    outcome: Outcome::Stabilized,
                    trace,
                };
            }
            if round >= max_rounds {
                if O::ENABLED {
                    obs.on_finish(&Outcome::RoundLimit, &states);
                }
                return Run {
                    final_states: states,
                    rounds: round,
                    moves_per_rule,
                    outcome: Outcome::RoundLimit,
                    trace,
                };
            }
            let timer = O::ENABLED.then(std::time::Instant::now);
            let mut round_moves = O::ENABLED.then(|| vec![0u64; moves_per_rule.len()]);
            // Observer-hook time is accumulated separately so the `gauges`
            // span reports the observation overhead itself, and the `apply`
            // span stays pure state-writing.
            let mut hook_nanos = 0u64;
            if O::ENABLED {
                let t0 = std::time::Instant::now();
                obs.on_round_start(round + 1, &states);
                hook_nanos += t0.elapsed().as_nanos() as u64;
            }
            let privileged = moves.len();
            // Byzantine writes are computed from the round's *pre-apply*
            // snapshot (the states every node evaluated on) and applied
            // after the honest moves — "as if the node moved". The sharded
            // runtime does exactly the same, owner-side.
            let byz_writes = if byz_hot {
                let plan = self.byz.as_ref().expect("byz_hot implies a plan");
                plan.writes_for(self.proto, self.graph, round, &states)
            } else {
                Vec::new()
            };
            let apply_timer = O::ENABLED.then(std::time::Instant::now);
            let mut move_hook_nanos = 0u64;
            for (v, m) in moves {
                moves_per_rule[m.rule] += 1;
                if let Some(rm) = round_moves.as_mut() {
                    rm[m.rule] += 1;
                }
                let rule = m.rule;
                states[v.index()] = m.next;
                if let Some((_, next)) = active.as_mut() {
                    next.insert_closed(self.graph, v);
                }
                if O::ENABLED {
                    let t0 = std::time::Instant::now();
                    obs.on_move(v, rule, &states[v.index()]);
                    move_hook_nanos += t0.elapsed().as_nanos() as u64;
                }
            }
            for (b, s) in byz_writes {
                // A rewrite that matches the node's current state is a
                // no-op: nothing changed, nobody's view did either. (The
                // runtime's delta beacons would suppress it; skipping here
                // keeps the two executors' worklists identical.)
                if states[b.index()] == s {
                    continue;
                }
                states[b.index()] = s;
                if let Some((_, next)) = active.as_mut() {
                    // The rewrite changes b's guards and its neighbors':
                    // the whole closed neighborhood re-enters evaluation.
                    next.insert_closed(self.graph, b);
                }
            }
            if let Some((cur, next)) = active.as_mut() {
                next.seal();
                cur.clear();
                std::mem::swap(cur, next);
            }
            round += 1;
            if let Some(trace) = trace.as_mut() {
                trace.push(states.clone());
            }
            if O::ENABLED {
                let apply_nanos = apply_timer
                    .map(|t| t.elapsed().as_nanos() as u64)
                    .unwrap_or(0)
                    .saturating_sub(move_hook_nanos);
                hook_nanos += move_hook_nanos;
                let mut spans = PhaseSpans::new();
                if rehydrate_nanos > 0 {
                    spans.add_nanos(Phase::Rehydrate, rehydrate_nanos);
                }
                spans.add_nanos(Phase::GuardEval, guard_nanos);
                spans.add_nanos(Phase::Apply, apply_nanos);
                spans.add_nanos(Phase::Gauges, hook_nanos);
                let duration_micros = timer.map(|t| t.elapsed().as_micros() as u64).unwrap_or(0);
                let lane = ShardProfile {
                    shard: 0,
                    spans,
                    // The round timer starts after guard evaluation (so
                    // `duration_micros` keeps its historical meaning); the
                    // lane's wall-clock adds the pre-timer phases back in.
                    round_micros: duration_micros + (guard_nanos + rehydrate_nanos) / 1_000,
                    inbox_max_depth: 0,
                    inbox_depth: 0,
                };
                let stats = RoundStats {
                    round,
                    privileged,
                    evaluated,
                    moves_per_rule: round_moves.take().unwrap_or_default(),
                    duration_micros,
                    beacon: None,
                    runtime: None,
                    profile: Some(RoundProfile { shards: vec![lane] }),
                };
                obs.on_round_end(&stats, &states);
            }
        }
    }

    /// Convenience: run from a random initial state.
    pub fn run_random(&self, seed: u64, max_rounds: usize) -> Run<P::State> {
        self.run(InitialState::Random { seed }, max_rounds)
    }

    /// Execute synchronously, invoking `observer` after every applied round
    /// with the round index (1-based: the round that was just applied), the
    /// moves of that round, and the resulting global state. Useful for
    /// streaming metrics without the memory cost of a full trace.
    ///
    /// A convenience adapter over [`SyncExecutor::run_observed`]; the typed
    /// [`Observer`] interface is richer (per-move hooks, [`RoundStats`],
    /// finish notification) and avoids buffering the round's moves.
    pub fn run_with_observer<F>(
        &self,
        init: InitialState<P::State>,
        max_rounds: usize,
        observer: F,
    ) -> Run<P::State>
    where
        F: FnMut(usize, &[(Node, Move<P::State>)], &[P::State]),
    {
        let mut adapter = ClosureObserver {
            moves: Vec::new(),
            f: observer,
        };
        self.run_observed(init, max_rounds, &mut adapter)
    }
}

/// Buffers the current round's moves to feed the legacy closure interface
/// of [`SyncExecutor::run_with_observer`].
struct ClosureObserver<S, F> {
    moves: Vec<(Node, Move<S>)>,
    f: F,
}

impl<S: Clone, F: FnMut(usize, &[(Node, Move<S>)], &[S])> Observer<S> for ClosureObserver<S, F> {
    fn on_round_start(&mut self, _round: usize, _states: &[S]) {
        self.moves.clear();
    }

    fn on_move(&mut self, node: Node, rule: usize, next: &S) {
        self.moves.push((
            node,
            Move {
                rule,
                next: next.clone(),
            },
        ));
    }

    fn on_round_end(&mut self, stats: &RoundStats, states: &[S]) {
        (self.f)(stats.round, &self.moves, states);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Move;
    use crate::testutil::MaxProto;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use selfstab_graph::generators;

    #[test]
    fn max_protocol_stabilizes_to_global_max() {
        let g = generators::path(10);
        let exec = SyncExecutor::new(&g, &MaxProto);
        let run = exec.run(
            InitialState::Explicit(vec![0, 0, 3, 0, 0, 0, 0, 1, 0, 0]),
            100,
        );
        assert!(run.stabilized());
        assert!(run.final_states.iter().all(|&s| s == 3));
        // Value 3 sits at index 2; farthest node is index 9, distance 7.
        assert_eq!(run.rounds(), 7);
        assert_eq!(run.total_moves() as usize, run.moves_per_rule[0] as usize);
    }

    #[test]
    fn fixpoint_is_zero_rounds() {
        let g = generators::cycle(5);
        let exec = SyncExecutor::new(&g, &MaxProto);
        let run = exec.run(InitialState::Default, 10);
        assert!(run.stabilized());
        assert_eq!(run.rounds(), 0);
        assert_eq!(run.total_moves(), 0);
    }

    #[test]
    fn trace_records_every_round() {
        let g = generators::path(4);
        let exec = SyncExecutor::new(&g, &MaxProto).with_trace();
        let run = exec.run(InitialState::Explicit(vec![2, 0, 0, 0]), 100);
        let trace = run.trace.as_ref().expect("tracing enabled");
        assert_eq!(trace.len(), run.rounds() + 1);
        assert_eq!(trace[0], vec![2, 0, 0, 0]);
        assert_eq!(trace.last().unwrap(), &run.final_states);
    }

    /// A protocol that oscillates: two states, every node always flips.
    struct Blinker;
    impl Protocol for Blinker {
        type State = bool;
        fn rule_names(&self) -> &'static [&'static str] {
            &["flip"]
        }
        fn default_state(&self) -> bool {
            false
        }
        fn arbitrary_state(&self, _: Node, _: &[Node], rng: &mut StdRng) -> bool {
            use rand::RngExt;
            rng.random_bool(0.5)
        }
        fn enumerate_states(&self, _: Node, _: &[Node]) -> Vec<bool> {
            vec![false, true]
        }
        fn step(&self, view: View<'_, bool>) -> Option<Move<bool>> {
            Some(Move {
                rule: 0,
                next: !view.own(),
            })
        }
    }

    #[test]
    fn cycle_detection_catches_oscillation() {
        let g = generators::cycle(3);
        let exec = SyncExecutor::new(&g, &Blinker).with_cycle_detection();
        let run = exec.run(InitialState::Default, 1000);
        assert_eq!(
            run.outcome,
            Outcome::Cycle {
                first_seen: 0,
                period: 2
            }
        );
        assert!(!run.stabilized());
    }

    #[test]
    fn round_limit_without_cycle_detection() {
        let g = generators::cycle(3);
        let exec = SyncExecutor::new(&g, &Blinker);
        let run = exec.run(InitialState::Default, 17);
        assert_eq!(run.outcome, Outcome::RoundLimit);
        assert_eq!(run.rounds(), 17);
    }

    #[test]
    fn active_schedule_matches_full_sweep() {
        let g = generators::erdos_renyi_connected(24, 0.15, &mut StdRng::seed_from_u64(7));
        let full = SyncExecutor::new(&g, &MaxProto).with_schedule(Schedule::Full);
        let act = SyncExecutor::new(&g, &MaxProto).with_schedule(Schedule::Active);
        for seed in 0..5 {
            let a = full.run_random(seed, 200);
            let b = act.run_random(seed, 200);
            assert_eq!(a.final_states, b.final_states);
            assert_eq!(a.rounds, b.rounds);
            assert_eq!(a.moves_per_rule, b.moves_per_rule);
            assert_eq!(a.outcome, b.outcome);
        }
    }

    #[test]
    fn active_schedule_evaluated_decays_on_path() {
        use crate::obs::MetricsCollector;
        let g = generators::path(16);
        let exec = SyncExecutor::new(&g, &MaxProto); // active by default
        let mut m = MetricsCollector::new();
        let mut init = vec![0u8; 16];
        init[0] = 9;
        let run = exec.run_observed(InitialState::Explicit(init), 100, &mut m);
        assert!(run.stabilized());
        let rounds = m.rounds();
        assert_eq!(rounds[0].evaluated, 16, "round 1 is a full sweep");
        // A single rightward-moving wave: the frontier is a closed
        // neighborhood of the one mover, so at most 3 nodes after round 2.
        assert!(rounds[2..].iter().all(|r| r.evaluated <= 3));
    }

    #[test]
    fn deterministic_given_seed() {
        let g = generators::erdos_renyi_connected(20, 0.2, &mut StdRng::seed_from_u64(0));
        let exec = SyncExecutor::new(&g, &MaxProto);
        let a = exec.run_random(99, 100);
        let b = exec.run_random(99, 100);
        assert_eq!(a.final_states, b.final_states);
        assert_eq!(a.rounds, b.rounds);
    }
}

#[cfg(test)]
mod observer_tests {
    use super::*;
    use crate::testutil::MaxProto;
    use selfstab_graph::generators;

    #[test]
    fn observer_sees_every_round_and_matches_plain_run() {
        let g = generators::path(10);
        let exec = SyncExecutor::new(&g, &MaxProto);
        let init = InitialState::Explicit(vec![0u8, 0, 3, 0, 0, 0, 0, 0, 0, 0]);
        let mut rounds_seen = Vec::new();
        let mut total_moves = 0usize;
        let observed = exec.run_with_observer(init.clone(), 100, |round, moves, states| {
            rounds_seen.push(round);
            total_moves += moves.len();
            assert!(!moves.is_empty());
            assert_eq!(states.len(), 10);
        });
        let plain = exec.run(init, 100);
        assert_eq!(observed.final_states, plain.final_states);
        assert_eq!(observed.rounds, plain.rounds);
        assert_eq!(observed.moves_per_rule, plain.moves_per_rule);
        assert_eq!(rounds_seen, (1..=plain.rounds()).collect::<Vec<_>>());
        assert_eq!(total_moves as u64, plain.total_moves());
    }

    #[test]
    fn observer_not_called_at_fixpoint() {
        let g = generators::cycle(4);
        let exec = SyncExecutor::new(&g, &MaxProto);
        let mut called = false;
        let run = exec.run_with_observer(InitialState::Default, 10, |_, _, _| called = true);
        assert!(run.stabilized());
        assert!(!called);
    }

    #[test]
    fn metrics_collector_matches_plain_run() {
        use crate::obs::MetricsCollector;
        let g = generators::path(10);
        let exec = SyncExecutor::new(&g, &MaxProto);
        let init = InitialState::Explicit(vec![0u8, 0, 3, 0, 0, 0, 0, 0, 0, 0]);
        let mut metrics = MetricsCollector::new().with_gauge("maxed", |s: &[u8]| {
            s.iter().filter(|&&x| x == 3).count() as u64
        });
        let observed = exec.run_observed(init.clone(), 100, &mut metrics);
        let plain = exec.run(init, 100);
        assert_eq!(observed.final_states, plain.final_states);
        assert_eq!(metrics.rounds().len(), plain.rounds());
        assert_eq!(metrics.outcome(), Some(&Outcome::Stabilized));
        // Per-round move counts sum to the run totals.
        let mut summed = vec![0u64; plain.moves_per_rule.len()];
        for r in metrics.rounds() {
            assert!(r.privileged > 0);
            assert_eq!(r.round, metrics.rounds()[r.round - 1].round);
            for (acc, &k) in summed.iter_mut().zip(&r.moves_per_rule) {
                *acc += k;
            }
        }
        assert_eq!(summed, plain.moves_per_rule);
        // The gauge series is monotone for MaxProto and ends at n.
        let series = metrics.gauge_series("maxed").unwrap();
        assert_eq!(series.first(), Some(&1));
        assert_eq!(series.last(), Some(&10));
        assert!(series.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(metrics.latency_histogram().total(), plain.rounds() as u64);
    }

    #[test]
    fn jsonl_log_roundtrips_through_record_and_validates() {
        use crate::obs::{trace_from_jsonl, JsonlEventLog};
        use crate::record::{record, validate_trace};
        let g = generators::grid(3, 3);
        let exec = SyncExecutor::new(&g, &MaxProto).with_trace();
        let mut log = JsonlEventLog::new();
        let run = exec.run_observed(InitialState::Random { seed: 4 }, 100, &mut log);
        assert!(run.stabilized());
        let (trace, stabilized) = trace_from_jsonl::<u8>(&log.to_jsonl()).unwrap();
        assert_eq!(
            Some(&trace),
            run.trace.as_ref(),
            "JSONL log equals the recorded trace"
        );
        assert!(stabilized);
        let rec = record(&g, &MaxProto, trace, stabilized);
        assert_eq!(validate_trace(&MaxProto, &rec), Ok(()));
    }

    #[test]
    fn observers_compose_and_finish_fires_on_every_outcome() {
        use crate::obs::{ChromeTraceWriter, MetricsCollector};
        let g = generators::path(6);
        let exec = SyncExecutor::new(&g, &MaxProto);
        let init = InitialState::Explicit(vec![3u8, 0, 0, 0, 0, 0]);
        let mut pair = (MetricsCollector::new(), ChromeTraceWriter::new());
        let run = exec.run_observed(init, 100, &mut pair);
        assert!(run.stabilized());
        let (metrics, chrome) = pair;
        assert_eq!(metrics.rounds().len(), run.rounds());
        // 2 aggregate events per round + 2 finish events, plus the serial
        // lane's profile track (metadata + B/E spans, whose count depends
        // on how many sub-µs phases round up to a visible width).
        assert!(chrome.len() >= 2 * run.rounds() + 2);
        let doc = chrome.to_json();
        let events = doc
            .get("traceEvents")
            .and_then(selfstab_json::Json::as_array)
            .unwrap();
        let ph_count = |ph: &str| {
            events
                .iter()
                .filter(|e| e.get("ph").and_then(selfstab_json::Json::as_str) == Some(ph))
                .count()
        };
        assert_eq!(ph_count("X"), run.rounds());
        assert_eq!(ph_count("i"), 1);
        assert_eq!(ph_count("M"), 1, "serial lane named once");
        // RoundLimit also notifies.
        let mut m = MetricsCollector::new();
        let limited =
            exec.run_observed(InitialState::Explicit(vec![3u8, 0, 0, 0, 0, 0]), 2, &mut m);
        assert_eq!(limited.outcome, Outcome::RoundLimit);
        assert_eq!(m.outcome(), Some(&Outcome::RoundLimit));
        // A fixpoint start fires on_finish without any round hooks.
        let mut m = MetricsCollector::new();
        let quiet = exec.run_observed(InitialState::Default, 10, &mut m);
        assert!(quiet.stabilized());
        assert!(m.rounds().is_empty());
        assert!(m.initial_gauges().is_none());
        assert_eq!(m.outcome(), Some(&Outcome::Stabilized));
    }
}
