//! The [`Protocol`] abstraction: guarded rules over a one-hop view.
//!
//! A protocol in the paper's model is *uniform* (every node runs the same
//! rules), *local* (guards read only the node's own state and the states of
//! its current neighbors — exactly the information carried by beacon
//! messages), and *memoryless* across rounds. The trait below captures that:
//! [`Protocol::step`] is a pure function of a [`View`]; the engine owns all
//! scheduling.

use rand::rngs::StdRng;
use selfstab_graph::{Graph, Ids, Node};
use std::fmt::Debug;
use std::hash::Hash;

/// A node's one-hop view: its own state plus the states its neighbors
/// advertised in their latest beacons.
#[derive(Copy, Clone)]
pub struct View<'a, S> {
    node: Node,
    neighbors: &'a [Node],
    states: &'a [S],
    /// Perceived neighbor states, aligned with `neighbors` — present only
    /// under the asymmetric-link fault model, where what a node last
    /// *heard* from a neighbor can lag the neighbor's true state (see
    /// [`crate::adversary::Perception`]). `own()` always reads the true
    /// state: a node cannot be stale about itself.
    overlay: Option<&'a [S]>,
}

impl<'a, S> View<'a, S> {
    /// Build a view for `node` from the global state vector. The engine
    /// calls this; protocols only consume it.
    pub fn new(node: Node, neighbors: &'a [Node], states: &'a [S]) -> Self {
        View {
            node,
            neighbors,
            states,
            overlay: None,
        }
    }

    /// Build a view whose neighbor reads come from `overlay` (one perceived
    /// state per entry of `neighbors`, same order) instead of the global
    /// vector. Used by the asymmetric-link fault model.
    pub fn with_overlay(
        node: Node,
        neighbors: &'a [Node],
        states: &'a [S],
        overlay: &'a [S],
    ) -> Self {
        debug_assert_eq!(overlay.len(), neighbors.len());
        View {
            node,
            neighbors,
            states,
            overlay: Some(overlay),
        }
    }

    /// The node whose view this is.
    #[inline]
    pub fn node(&self) -> Node {
        self.node
    }

    /// This node's own state.
    #[inline]
    pub fn own(&self) -> &S {
        &self.states[self.node.index()]
    }

    /// The node's current neighbor list (sorted by index).
    #[inline]
    pub fn neighbors(&self) -> &'a [Node] {
        self.neighbors
    }

    /// Whether `v` is currently a neighbor.
    #[inline]
    pub fn is_neighbor(&self, v: Node) -> bool {
        self.neighbors.binary_search(&v).is_ok()
    }

    /// The advertised state of neighbor `v`; `None` if `v` is not a
    /// neighbor (e.g. a dangling pointer after a link failure).
    #[inline]
    pub fn neighbor_state(&self, v: Node) -> Option<&'a S> {
        let j = self.neighbors.binary_search(&v).ok()?;
        Some(match self.overlay {
            Some(overlay) => &overlay[j],
            None => &self.states[v.index()],
        })
    }

    /// Iterate over `(neighbor, state)` pairs in index order.
    pub fn neighbor_states(&self) -> impl Iterator<Item = (Node, &'a S)> + '_ {
        self.neighbors.iter().enumerate().map(move |(j, &v)| {
            let s = match self.overlay {
                Some(overlay) => &overlay[j],
                None => &self.states[v.index()],
            };
            (v, s)
        })
    }
}

/// The effect of firing one rule: which rule fired (index into
/// [`Protocol::rule_names`]) and the node's next state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Move<S> {
    /// Index of the rule that fired.
    pub rule: usize,
    /// The node's state after the move.
    pub next: S,
}

/// A uniform guarded-rule protocol.
///
/// Implementations must be deterministic: for a given view, at most one rule
/// is enabled (or the implementation picks a canonical one), matching the
/// synchronous model where a node "takes action after receiving beacon
/// messages from all the neighboring nodes".
pub trait Protocol: Sync {
    /// Per-node state carried in beacon messages.
    type State: Clone + PartialEq + Eq + Hash + Debug + Send + Sync;

    /// Human-readable rule names, e.g. `["R1:accept", "R2:propose", "R3:back-off"]`.
    fn rule_names(&self) -> &'static [&'static str];

    /// The canonical "clean" state (used by [`InitialState::Default`]).
    fn default_state(&self) -> Self::State;

    /// An arbitrary state for `node`, drawn uniformly from the node's local
    /// state space. Self-stabilization must cope with *any* of these.
    fn arbitrary_state(&self, node: Node, neighbors: &[Node], rng: &mut StdRng) -> Self::State;

    /// Enumerate the node's entire local state space (used by the exhaustive
    /// verifier on small instances).
    fn enumerate_states(&self, node: Node, neighbors: &[Node]) -> Vec<Self::State>;

    /// Evaluate the guards for `view`'s node: `Some(move)` iff the node is
    /// privileged.
    fn step(&self, view: View<'_, Self::State>) -> Option<Move<Self::State>>;

    /// Whether the global state is a legitimate fixpoint *for this
    /// protocol's target predicate* — used by tests and the exhaustive
    /// verifier to check that silence implies correctness (Lemma 8 / Lemma
    /// 13 of the paper). Default: any fixpoint is accepted.
    fn is_legitimate(&self, _graph: &Graph, _states: &[Self::State]) -> bool {
        true
    }

    /// Containment of a global state against a Byzantine node mask: which
    /// *honest* nodes violate the protocol's target predicate restricted
    /// to the honest subgraph, and how far the damage reaches from the
    /// compromised set (see [`selfstab_graph::predicates::Containment`]).
    /// Default: `None` — the protocol defines no containment semantics.
    fn containment(
        &self,
        _graph: &Graph,
        _states: &[Self::State],
        _byz: &[bool],
    ) -> Option<selfstab_graph::predicates::Containment> {
        None
    }
}

/// How the engine seeds the global state before an execution.
#[derive(Clone, Debug)]
pub enum InitialState<S> {
    /// Every node starts in [`Protocol::default_state`].
    Default,
    /// Every node starts in an independently drawn arbitrary state
    /// (deterministic in the seed).
    Random {
        /// RNG seed for reproducibility.
        seed: u64,
    },
    /// Explicit states, e.g. a previously stabilized vector after injected
    /// faults.
    Explicit(Vec<S>),
}

impl<S: Clone> InitialState<S> {
    /// Materialize the initial state vector for `graph` under `proto`.
    pub fn materialize<P>(&self, graph: &Graph, proto: &P) -> Vec<S>
    where
        P: Protocol<State = S>,
    {
        use rand::SeedableRng;
        match self {
            InitialState::Default => vec![proto.default_state(); graph.n()],
            InitialState::Random { seed } => {
                let mut rng = StdRng::seed_from_u64(*seed);
                graph
                    .nodes()
                    .map(|v| proto.arbitrary_state(v, graph.neighbors(v), &mut rng))
                    .collect()
            }
            InitialState::Explicit(states) => {
                assert_eq!(states.len(), graph.n(), "explicit state vector length");
                states.clone()
            }
        }
    }
}

/// Helper shared by protocol implementations: the node with the minimum ID
/// among candidates, per the paper's `min{j ∈ N(i) : …}` notation.
pub fn min_id_node(ids: &Ids, candidates: impl IntoIterator<Item = Node>) -> Option<Node> {
    ids.min_by_id(candidates)
}

/// A decode failure for a wire-encoded state or frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// Fewer bytes than the layout requires.
    Truncated,
    /// An enum/option tag byte had an undefined value.
    BadTag(u8),
    /// Bytes left over after the value was fully decoded.
    TrailingBytes,
    /// A frame header field (version, round tag) did not match.
    Header(&'static str),
    /// A value's encoding is too large for the frame field that carries its
    /// length (the payload size in bytes is attached).
    PayloadTooLarge(usize),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated wire payload"),
            WireError::BadTag(t) => write!(f, "undefined tag byte {t:#04x}"),
            WireError::TrailingBytes => write!(f, "trailing bytes after value"),
            WireError::Header(what) => write!(f, "bad frame header: {what}"),
            WireError::PayloadTooLarge(n) => {
                write!(
                    f,
                    "state encoding of {n} bytes exceeds the frame payload field"
                )
            }
        }
    }
}

impl std::error::Error for WireError {}

/// A state that can ride in a beacon frame: a compact little-endian binary
/// encoding with a lossless decode. The message-passing runtime
/// (`selfstab-runtime`) requires `Protocol::State: WireState` so neighbor
/// states can cross shard (and eventually process) boundaries as bytes
/// instead of shared memory.
///
/// Contract: `decode(encode(x)) == x`, and `decode` consumes *exactly* the
/// bytes `encode` produced (a frame carries an explicit payload length, so
/// partial consumption indicates a layout mismatch and must error).
pub trait WireState: Sized {
    /// Append the little-endian encoding of `self` to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);

    /// Decode a value from a prefix of `bytes`; returns the value and the
    /// number of bytes consumed.
    fn decode_prefix(bytes: &[u8]) -> Result<(Self, usize), WireError>;

    /// Decode a value that must span `bytes` exactly.
    fn decode(bytes: &[u8]) -> Result<Self, WireError> {
        let (value, used) = Self::decode_prefix(bytes)?;
        if used != bytes.len() {
            return Err(WireError::TrailingBytes);
        }
        Ok(value)
    }
}

macro_rules! impl_wire_le_int {
    ($($t:ty),*) => {$(
        impl WireState for $t {
            fn encode(&self, buf: &mut Vec<u8>) {
                buf.extend_from_slice(&self.to_le_bytes());
            }
            fn decode_prefix(bytes: &[u8]) -> Result<(Self, usize), WireError> {
                const W: usize = std::mem::size_of::<$t>();
                let raw: [u8; W] = bytes
                    .get(..W)
                    .ok_or(WireError::Truncated)?
                    .try_into()
                    .expect("slice length checked");
                Ok((<$t>::from_le_bytes(raw), W))
            }
        }
    )*};
}

impl_wire_le_int!(u8, u16, u32, u64);

impl WireState for bool {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(*self as u8);
    }
    fn decode_prefix(bytes: &[u8]) -> Result<(Self, usize), WireError> {
        match bytes.first() {
            None => Err(WireError::Truncated),
            Some(0) => Ok((false, 1)),
            Some(1) => Ok((true, 1)),
            Some(&t) => Err(WireError::BadTag(t)),
        }
    }
}

impl WireState for Node {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
    }
    fn decode_prefix(bytes: &[u8]) -> Result<(Self, usize), WireError> {
        let (raw, used) = u32::decode_prefix(bytes)?;
        Ok((Node(raw), used))
    }
}

impl<T: WireState> WireState for Option<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            None => buf.push(0),
            Some(v) => {
                buf.push(1);
                v.encode(buf);
            }
        }
    }
    fn decode_prefix(bytes: &[u8]) -> Result<(Self, usize), WireError> {
        match bytes.first() {
            None => Err(WireError::Truncated),
            Some(0) => Ok((None, 1)),
            Some(1) => {
                let (v, used) = T::decode_prefix(&bytes[1..])?;
                Ok((Some(v), used + 1))
            }
            Some(&t) => Err(WireError::BadTag(t)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::MaxProto;
    use selfstab_graph::generators;

    #[test]
    fn view_accessors() {
        let g = generators::path(3);
        let states = vec![10u8, 20, 30];
        let v = View::new(Node(1), g.neighbors(Node(1)), &states);
        assert_eq!(v.node(), Node(1));
        assert_eq!(*v.own(), 20);
        assert!(v.is_neighbor(Node(0)));
        assert!(!v.is_neighbor(Node(1)));
        assert_eq!(v.neighbor_state(Node(2)), Some(&30));
        assert_eq!(v.neighbor_state(Node(1)), None);
        let pairs: Vec<_> = v.neighbor_states().collect();
        assert_eq!(pairs, vec![(Node(0), &10), (Node(2), &30)]);
    }

    #[test]
    fn overlay_view_reads_perceived_neighbor_states() {
        let g = generators::path(3);
        let states = vec![10u8, 20, 30];
        // Node 1 perceives stale values for both neighbors.
        let perceived = vec![11u8, 31];
        let v = View::with_overlay(Node(1), g.neighbors(Node(1)), &states, &perceived);
        assert_eq!(*v.own(), 20, "own state is never stale");
        assert_eq!(v.neighbor_state(Node(0)), Some(&11));
        assert_eq!(v.neighbor_state(Node(2)), Some(&31));
        assert_eq!(v.neighbor_state(Node(1)), None);
        let pairs: Vec<_> = v.neighbor_states().collect();
        assert_eq!(pairs, vec![(Node(0), &11), (Node(2), &31)]);
    }

    #[test]
    fn initial_state_materialization() {
        let g = generators::cycle(4);
        let proto = MaxProto;
        assert_eq!(
            InitialState::Default.materialize(&g, &proto),
            vec![0, 0, 0, 0]
        );
        let a = InitialState::<u8>::Random { seed: 1 }.materialize(&g, &proto);
        let b = InitialState::<u8>::Random { seed: 1 }.materialize(&g, &proto);
        assert_eq!(a, b, "same seed, same states");
        let ex = InitialState::Explicit(vec![3, 1, 2, 0]).materialize(&g, &proto);
        assert_eq!(ex, vec![3, 1, 2, 0]);
    }

    #[test]
    #[should_panic(expected = "length")]
    fn explicit_wrong_length_panics() {
        let g = generators::cycle(4);
        InitialState::Explicit(vec![1u8]).materialize(&g, &MaxProto);
    }

    #[test]
    fn wire_roundtrip_primitives() {
        fn rt<T: WireState + PartialEq + std::fmt::Debug>(v: T) {
            let mut buf = Vec::new();
            v.encode(&mut buf);
            assert_eq!(T::decode(&buf).unwrap(), v);
        }
        rt(0u8);
        rt(255u8);
        rt(0xBEEFu16);
        rt(0xDEAD_BEEFu32);
        rt(u64::MAX);
        rt(true);
        rt(false);
        rt(Node(7));
        rt(Option::<Node>::None);
        rt(Some(Node(u32::MAX)));
    }

    #[test]
    fn wire_encoding_is_little_endian() {
        let mut buf = Vec::new();
        0x0102_0304u32.encode(&mut buf);
        assert_eq!(buf, [0x04, 0x03, 0x02, 0x01]);
    }

    #[test]
    fn wire_decode_rejects_malformed() {
        assert_eq!(u32::decode(&[1, 2]), Err(WireError::Truncated));
        assert_eq!(u8::decode(&[1, 2]), Err(WireError::TrailingBytes));
        assert_eq!(bool::decode(&[9]), Err(WireError::BadTag(9)));
        assert_eq!(Option::<u8>::decode(&[2, 0]), Err(WireError::BadTag(2)));
        assert_eq!(Option::<u8>::decode(&[1]), Err(WireError::Truncated));
        assert_eq!(Option::<u8>::decode(&[]), Err(WireError::Truncated));
    }
}
