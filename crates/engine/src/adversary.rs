//! Byzantine nodes and asymmetric links: adversarial fault models shared by
//! the serial executor and the sharded runtime.
//!
//! The chaos layer ([`crate::chaos`], `selfstab-runtime`'s `FaultPlan`)
//! covers *benign* faults only — a corrupted frame is always detected and
//! discarded, and a link drops both directions with the same hash. This
//! module adds the two failure modes the ROADMAP carries from the related
//! work:
//!
//! * **Byzantine nodes** ([`ByzPlan`]): a compromised node advertises
//!   arbitrary but *well-formed* states. Each round, the adversary picks a
//!   fresh adversarial state per Byzantine node (splitmix64-deterministic in
//!   `(seed, round, node)` — runs replay exactly), and that state is what
//!   every honest neighbor sees from the next round on. Crucially, the write
//!   is keyed on the round and the node only — never the receiver — so a
//!   Byzantine node still *broadcasts* consistently, and serial ≡ sharded
//!   equality holds at every shard count. The interesting question is then
//!   measured, not assumed: how far does the damage spread into the honest
//!   subgraph (`selfstab-graph`'s containment predicates)?
//! * **Asymmetric links** ([`AsymPlan`]): each *directed* edge `(w → v)`
//!   gets an independent per-round fate hash, so a link can pass `u → v`
//!   while dropping `v → u`. Receivers keep a [`Perception`] buffer of the
//!   last state heard per neighbor; evaluation runs on the perceived states
//!   (a [`crate::protocol::View`] overlay), which lag the true ones while
//!   the inbound direction is down. Masuzawa–Tixeuil prove stabilizing MIS
//!   is hard in unidirectional networks — the deliverable here is measuring
//!   *how* it degrades, with one seeded fault model on both executors.
//!
//! Both plans are **zero-cost when unused**: an empty Byzantine set and
//! `p = 0` take the plain code paths, byte-identical to a plan-free run.

use crate::protocol::Protocol;
use rand::rngs::StdRng;
use rand::SeedableRng;
use selfstab_graph::{Graph, Node};

/// splitmix64: the same finalizer the runtime's `FaultPlan` uses for frame
/// fates — one multiply-xor-shift chain, uniform enough for fault decisions
/// and trivially portable.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Map a hash to `[0, 1)` using the top 53 bits (exactly representable).
#[inline]
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// How a Byzantine node picks the state it advertises each round.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ByzStrategy {
    /// A fresh arbitrary state every round (for SMM: a uniformly random
    /// pointer into the neighborhood or null) — maximal-entropy noise.
    RandomPointer,
    /// Copy a pseudo-randomly chosen neighbor's current state — camouflage:
    /// the advertised state is always one a correct node could hold.
    MimicNeighbor,
    /// Alternate between two fixed arbitrary states by round parity — the
    /// classic livelock probe (can the adversary keep neighbors flapping?).
    Oscillate,
}

impl ByzStrategy {
    /// Parse a CLI spec value (`random` | `mimic` | `oscillate`).
    pub fn parse(s: &str) -> Result<ByzStrategy, String> {
        match s {
            "random" => Ok(ByzStrategy::RandomPointer),
            "mimic" => Ok(ByzStrategy::MimicNeighbor),
            "oscillate" => Ok(ByzStrategy::Oscillate),
            other => Err(format!(
                "unknown byzantine strategy '{other}' (expected random|mimic|oscillate)"
            )),
        }
    }

    /// The spec name (inverse of [`ByzStrategy::parse`]).
    pub fn name(&self) -> &'static str {
        match self {
            ByzStrategy::RandomPointer => "random",
            ByzStrategy::MimicNeighbor => "mimic",
            ByzStrategy::Oscillate => "oscillate",
        }
    }
}

/// A seeded Byzantine adversary: which nodes are compromised, how they pick
/// adversarial states, and for how long.
///
/// Execution model (identical on the serial executor and every shard
/// count): in each hot round, after the honest moves of the round are
/// applied, every Byzantine node's state is overwritten with
/// [`ByzPlan::state_for`] computed from the round's *pre-apply* snapshot —
/// "as if the node moved". All readers therefore observe the adversarial
/// value from the next round's evaluation, through the same beacon
/// machinery as any honest move. After `until` the adversary freezes at its
/// last advertised state, making recovery measurable.
#[derive(Clone, Debug)]
pub struct ByzPlan {
    /// Compromised nodes, sorted ascending.
    pub nodes: Vec<Node>,
    /// The per-round state-selection strategy.
    pub strategy: ByzStrategy,
    /// Seed of the adversary's hash chain.
    pub seed: u64,
    /// Last round (inclusive, in absolute-clock rounds) the adversary
    /// rewrites states; `None` = forever (the run then ends at the round
    /// limit — there is no stabilization under a live adversary).
    pub until: Option<usize>,
    /// Absolute-clock offset added to local round numbers (segmented runs).
    pub round_offset: usize,
}

impl ByzPlan {
    /// A plan compromising `nodes` (deduplicated and sorted here).
    pub fn new(mut nodes: Vec<Node>, strategy: ByzStrategy, seed: u64) -> Self {
        nodes.sort_unstable();
        nodes.dedup();
        ByzPlan {
            nodes,
            strategy,
            seed,
            until: None,
            round_offset: 0,
        }
    }

    /// Stop rewriting after the given absolute round (inclusive).
    pub fn with_until(mut self, until: usize) -> Self {
        self.until = Some(until);
        self
    }

    /// Shift the round clock (segmented/resumed runs).
    pub fn with_round_offset(mut self, offset: usize) -> Self {
        self.round_offset = offset;
        self
    }

    /// Whether `v` is compromised.
    #[inline]
    pub fn is_byz(&self, v: Node) -> bool {
        self.nodes.binary_search(&v).is_ok()
    }

    /// Whether the adversary rewrites states in (local) round `round`.
    #[inline]
    pub fn hot(&self, round: usize) -> bool {
        !self.nodes.is_empty() && self.until.is_none_or(|u| round + self.round_offset <= u)
    }

    /// The per-(round, node) hash driving every strategy.
    fn hash(&self, round: usize, b: Node) -> u64 {
        let mut h = splitmix64(self.seed ^ 0xB12A_11CE_0DD5_EEDB);
        h = splitmix64(h ^ (round + self.round_offset) as u64);
        h = splitmix64(h ^ u64::from(b.0));
        h
    }

    /// The adversarial state `b` advertises entering the next round,
    /// computed from the current round's **pre-apply** snapshot `states`.
    /// Deterministic in `(seed, round, b)` — never in the receiver — so a
    /// Byzantine node broadcasts consistently.
    pub fn state_for<P: Protocol>(
        &self,
        proto: &P,
        graph: &Graph,
        b: Node,
        round: usize,
        states: &[P::State],
    ) -> P::State {
        let h = self.hash(round, b);
        let neighbors = graph.neighbors(b);
        match self.strategy {
            ByzStrategy::RandomPointer => {
                proto.arbitrary_state(b, neighbors, &mut StdRng::seed_from_u64(h))
            }
            ByzStrategy::MimicNeighbor => {
                if neighbors.is_empty() {
                    proto.arbitrary_state(b, neighbors, &mut StdRng::seed_from_u64(h))
                } else {
                    let w = neighbors[(h % neighbors.len() as u64) as usize];
                    states[w.index()].clone()
                }
            }
            ByzStrategy::Oscillate => {
                // Two fixed per-node states, alternating by round parity:
                // the hash is keyed on parity instead of the round, so the
                // same pair recurs for the plan's whole lifetime.
                let parity = (round + self.round_offset) % 2;
                let mut ph = splitmix64(self.seed ^ 0x05C1_11A7_E0DD_B175);
                ph = splitmix64(ph ^ u64::from(b.0));
                ph = splitmix64(ph ^ parity as u64);
                proto.arbitrary_state(b, neighbors, &mut StdRng::seed_from_u64(ph))
            }
        }
    }

    /// All Byzantine writes for one round, in ascending node order:
    /// `(node, adversarial state)` pairs ready to apply after the round's
    /// honest moves. Empty when the round is not hot.
    pub fn writes_for<P: Protocol>(
        &self,
        proto: &P,
        graph: &Graph,
        round: usize,
        states: &[P::State],
    ) -> Vec<(Node, P::State)> {
        if !self.hot(round) {
            return Vec::new();
        }
        self.nodes
            .iter()
            .map(|&b| (b, self.state_for(proto, graph, b, round, states)))
            .collect()
    }
}

/// A seeded asymmetric-link model: each *directed* edge `(from → to)` is
/// independently up or down per round, with down-probability `p`.
#[derive(Clone, Debug)]
pub struct AsymPlan {
    /// Per-direction, per-round probability the link is down, in `[0, 1]`.
    pub p: f64,
    /// Seed of the fate-hash chain.
    pub seed: u64,
    /// Last round (inclusive, absolute clock) links may fail; `None` =
    /// forever.
    pub until: Option<usize>,
    /// Absolute-clock offset added to local round numbers.
    pub round_offset: usize,
}

impl AsymPlan {
    /// A plan with down-probability `p` and the given seed.
    pub fn new(p: f64, seed: u64) -> Self {
        AsymPlan {
            p,
            seed,
            until: None,
            round_offset: 0,
        }
    }

    /// Stop failing links after the given absolute round (inclusive).
    pub fn with_until(mut self, until: usize) -> Self {
        self.until = Some(until);
        self
    }

    /// Shift the round clock (segmented/resumed runs).
    pub fn with_round_offset(mut self, offset: usize) -> Self {
        self.round_offset = offset;
        self
    }

    /// Whether links may fail in (local) round `round`.
    #[inline]
    pub fn hot(&self, round: usize) -> bool {
        self.p > 0.0 && self.until.is_none_or(|u| round + self.round_offset <= u)
    }

    /// Whether round `round` must evaluate **every** node rather than the
    /// active worklist. While links may fail — and for one catch-up round
    /// after the window closes — a node's perceived view can change without
    /// any neighbor moving (a down direction coming back up reveals a missed
    /// move), so the active-set invariant does not hold and worklist pruning
    /// would be unsound. Both executors apply the same rule, keeping them
    /// identical.
    #[inline]
    pub fn sweep(&self, round: usize) -> bool {
        self.hot(round) || (round > 0 && self.hot(round - 1))
    }

    /// Whether the directed link `from → to` delivers in `round`. Always
    /// true outside the hot window. Note the asymmetry is the point:
    /// `link_up(r, u, v)` and `link_up(r, v, u)` hash independently.
    #[inline]
    pub fn link_up(&self, round: usize, from: Node, to: Node) -> bool {
        if !self.hot(round) {
            return true;
        }
        let mut h = splitmix64(self.seed ^ 0xA5E7_11D1_2EC7_ED6E);
        h = splitmix64(h ^ (round + self.round_offset) as u64);
        h = splitmix64(h ^ u64::from(from.0));
        h = splitmix64(h ^ u64::from(to.0));
        unit(h) >= self.p
    }
}

/// Per-receiver memory of the last state *heard* from each neighbor, for
/// the asymmetric-link model: CSR-aligned rows over a tracked node set, one
/// slot per neighbor.
///
/// The contract mirrors the beacon receiver: at the top of each hot round,
/// [`Perception::refresh`] copies `states[w]` into `v`'s row for every
/// inbound direction `w → v` that is up; a down direction leaves the last
/// heard value in place (staleness accumulates across consecutive down
/// rounds). Evaluation then reads the row through a
/// [`crate::protocol::View`] overlay. Rows start from the initial states —
/// every node heard the boot beacon.
#[derive(Clone, Debug)]
pub struct Perception<S> {
    /// Row offsets: row `i` (tracked node `i`) is `buf[start[i]..start[i+1]]`.
    start: Vec<usize>,
    /// Tracked nodes, ascending (row index ↔ position here).
    nodes: Vec<Node>,
    /// Perceived neighbor states, CSR-packed.
    buf: Vec<S>,
    /// Whether any perceived state differed from the true one after the
    /// last refresh — the keep-alive signal (stale receivers may still
    /// converge to wrong fixpoints; the run must not report stabilization
    /// while perception lags).
    lagging: bool,
}

impl<S: Clone + PartialEq> Perception<S> {
    /// Build rows for `tracked` (must be sorted ascending), seeded from the
    /// current `states`.
    pub fn new(graph: &Graph, tracked: &[Node], states: &[S]) -> Self {
        debug_assert!(tracked.windows(2).all(|w| w[0] < w[1]));
        let mut start = Vec::with_capacity(tracked.len() + 1);
        let mut buf = Vec::new();
        start.push(0);
        for &v in tracked {
            for &w in graph.neighbors(v) {
                buf.push(states[w.index()].clone());
            }
            start.push(buf.len());
        }
        Perception {
            start,
            nodes: tracked.to_vec(),
            buf,
            lagging: false,
        }
    }

    /// Deliver this round's inbound beacons: for every tracked `v` and
    /// neighbor `w`, copy `states[w]` iff the direction `w → v` is up.
    /// Recomputes the lagging flag and returns how many inbound directions
    /// were down (the runtime's `asym_links_down` counter).
    pub fn refresh(&mut self, graph: &Graph, plan: &AsymPlan, round: usize, states: &[S]) -> u64 {
        let mut lagging = false;
        let mut down = 0u64;
        for (i, &v) in self.nodes.iter().enumerate() {
            let row = &mut self.buf[self.start[i]..self.start[i + 1]];
            for (slot, &w) in row.iter_mut().zip(graph.neighbors(v)) {
                if plan.link_up(round, w, v) {
                    slot.clone_from(&states[w.index()]);
                } else {
                    down += 1;
                    if *slot != states[w.index()] {
                        lagging = true;
                    }
                }
            }
        }
        self.lagging = lagging;
        down
    }

    /// The perceived-neighbor-state row of the tracked node at position
    /// `pos` (aligned with `graph.neighbors(node)`).
    #[inline]
    pub fn row(&self, pos: usize) -> &[S] {
        &self.buf[self.start[pos]..self.start[pos + 1]]
    }

    /// Position of `v` in the tracked set, if tracked.
    #[inline]
    pub fn position(&self, v: Node) -> Option<usize> {
        self.nodes.binary_search(&v).ok()
    }

    /// Whether any perceived state lagged the true one at the last refresh.
    #[inline]
    pub fn lagging(&self) -> bool {
        self.lagging
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::MaxProto;
    use selfstab_graph::generators;

    #[test]
    fn byz_plan_sorts_dedups_and_replays() {
        let g = generators::cycle(6);
        let plan = ByzPlan::new(
            vec![Node(4), Node(1), Node(4)],
            ByzStrategy::RandomPointer,
            7,
        );
        assert_eq!(plan.nodes, vec![Node(1), Node(4)]);
        assert!(plan.is_byz(Node(1)) && !plan.is_byz(Node(0)));
        let states = vec![5u8; 6];
        let a = plan.writes_for(&MaxProto, &g, 3, &states);
        let b = plan.writes_for(&MaxProto, &g, 3, &states);
        assert_eq!(a, b, "deterministic in (seed, round, node)");
        assert_eq!(a.len(), 2);
        // Different rounds draw different hashes (with overwhelming
        // probability two of three consecutive rounds differ for u8 states).
        let c = plan.writes_for(&MaxProto, &g, 4, &states);
        let d = plan.writes_for(&MaxProto, &g, 5, &states);
        assert!(a != c || a != d, "round must enter the hash");
    }

    #[test]
    fn byz_until_freezes_the_adversary() {
        let plan = ByzPlan::new(vec![Node(0)], ByzStrategy::RandomPointer, 1).with_until(4);
        assert!(plan.hot(0) && plan.hot(4));
        assert!(!plan.hot(5));
        let offset = ByzPlan::new(vec![Node(0)], ByzStrategy::RandomPointer, 1)
            .with_until(4)
            .with_round_offset(3);
        assert!(offset.hot(1));
        assert!(!offset.hot(2), "offset shifts the clock");
        let empty = ByzPlan::new(vec![], ByzStrategy::RandomPointer, 1);
        assert!(!empty.hot(0), "no nodes, never hot");
    }

    #[test]
    fn mimic_copies_a_neighbor_and_oscillate_has_period_two() {
        let g = generators::path(4);
        let states = vec![10u8, 20, 30, 40];
        let mimic = ByzPlan::new(vec![Node(1)], ByzStrategy::MimicNeighbor, 3);
        for round in 0..8 {
            let s = mimic.state_for(&MaxProto, &g, Node(1), round, &states);
            assert!(s == 10 || s == 30, "mimic must copy a live neighbor");
        }
        let osc = ByzPlan::new(vec![Node(2)], ByzStrategy::Oscillate, 3);
        let s0 = osc.state_for(&MaxProto, &g, Node(2), 0, &states);
        let s1 = osc.state_for(&MaxProto, &g, Node(2), 1, &states);
        for round in 2..10 {
            let s = osc.state_for(&MaxProto, &g, Node(2), round, &states);
            assert_eq!(s, if round % 2 == 0 { s0 } else { s1 });
        }
    }

    #[test]
    fn strategy_parse_roundtrips() {
        for s in [
            ByzStrategy::RandomPointer,
            ByzStrategy::MimicNeighbor,
            ByzStrategy::Oscillate,
        ] {
            assert_eq!(ByzStrategy::parse(s.name()), Ok(s));
        }
        assert!(ByzStrategy::parse("evil").is_err());
    }

    #[test]
    fn asym_is_directional_and_deterministic() {
        let plan = AsymPlan::new(0.5, 11);
        let mut asym_pairs = 0;
        for round in 0..64 {
            for a in 0..8u32 {
                for b in 0..8u32 {
                    if a == b {
                        continue;
                    }
                    let ab = plan.link_up(round, Node(a), Node(b));
                    let ba = plan.link_up(round, Node(b), Node(a));
                    assert_eq!(ab, plan.link_up(round, Node(a), Node(b)));
                    if ab != ba {
                        asym_pairs += 1;
                    }
                }
            }
        }
        assert!(asym_pairs > 0, "directions must hash independently");
    }

    #[test]
    fn asym_zero_p_and_cold_rounds_always_deliver() {
        let zero = AsymPlan::new(0.0, 5);
        assert!(!zero.hot(0));
        assert!(zero.link_up(0, Node(0), Node(1)));
        let windowed = AsymPlan::new(1.0, 5).with_until(2);
        assert!(!windowed.link_up(1, Node(0), Node(1)), "p=1 drops all");
        assert!(windowed.link_up(3, Node(0), Node(1)), "past until: clean");
    }

    #[test]
    fn perception_lags_down_directions_and_recovers() {
        let g = generators::path(3);
        let tracked: Vec<Node> = g.nodes().collect();
        let states = vec![1u8, 2, 3];
        let mut per = Perception::new(&g, &tracked, &states);
        assert!(!per.lagging());
        // p=1 within the window: nothing refreshes, rows keep boot values.
        let plan = AsymPlan::new(1.0, 9).with_until(0);
        let newer = vec![4u8, 5, 6];
        per.refresh(&g, &plan, 0, &newer);
        assert!(per.lagging(), "all directions down, everyone stale");
        let pos = per.position(Node(1)).unwrap();
        assert_eq!(per.row(pos), &[1, 3], "row holds the last heard values");
        // Past the window every direction is up again: rows catch up.
        per.refresh(&g, &plan, 1, &newer);
        assert!(!per.lagging());
        assert_eq!(per.row(pos), &[4, 6]);
    }
}
