//! Brute-force verification of stabilization theorems on small instances.
//!
//! Sampling random initial states can miss adversarial corners; on small
//! graphs we can do better and check **every** initial state — and every
//! labelled connected topology — mechanically. This is how the test suite
//! verifies Theorem 1 (SMM stabilizes within n + 1 rounds) and Theorem 2
//! (SMI within O(n) rounds) exactly rather than statistically.

use crate::protocol::{InitialState, Protocol};
use crate::sync::SyncExecutor;
use selfstab_graph::traversal::is_connected;
use selfstab_graph::{Graph, Node};

/// Outcome of exhaustively checking all initial states on one graph.
#[derive(Clone, Debug)]
pub struct ExhaustiveReport<S> {
    /// Number of initial states checked.
    pub states_checked: u64,
    /// Maximum rounds-to-stabilize observed.
    pub max_rounds: usize,
    /// An initial state that violated the check, if any.
    pub counterexample: Option<Vec<S>>,
    /// Whether the violation (if any) was a stabilization failure (`true`)
    /// or a predicate failure at the fixpoint (`false`).
    pub failed_to_stabilize: bool,
}

impl<S> ExhaustiveReport<S> {
    /// Whether all initial states stabilized and satisfied the predicate.
    pub fn all_ok(&self) -> bool {
        self.counterexample.is_none()
    }
}

/// Iterator over the Cartesian product of per-node state spaces.
struct ProductIter<S> {
    spaces: Vec<Vec<S>>,
    cursor: Vec<usize>,
    done: bool,
}

impl<S: Clone> Iterator for ProductIter<S> {
    type Item = Vec<S>;

    fn next(&mut self) -> Option<Vec<S>> {
        if self.done {
            return None;
        }
        let item: Vec<S> = self
            .spaces
            .iter()
            .zip(&self.cursor)
            .map(|(space, &i)| space[i].clone())
            .collect();
        // Odometer increment.
        let mut k = 0;
        loop {
            if k == self.cursor.len() {
                self.done = true;
                break;
            }
            self.cursor[k] += 1;
            if self.cursor[k] < self.spaces[k].len() {
                break;
            }
            self.cursor[k] = 0;
            k += 1;
        }
        Some(item)
    }
}

/// All initial global states of `proto` on `graph` (Cartesian product of the
/// per-node local state spaces).
pub fn all_initial_states<P: Protocol>(
    graph: &Graph,
    proto: &P,
) -> impl Iterator<Item = Vec<P::State>> + use<P> {
    let spaces: Vec<Vec<P::State>> = graph
        .nodes()
        .map(|v| {
            let space = proto.enumerate_states(v, graph.neighbors(v));
            assert!(!space.is_empty(), "empty local state space");
            space
        })
        .collect();
    let n = spaces.len();
    ProductIter {
        spaces,
        cursor: vec![0; n],
        done: n == 0,
    }
}

/// The number of initial global states (for sizing exhaustive runs).
pub fn state_space_size<P: Protocol>(graph: &Graph, proto: &P) -> u128 {
    graph
        .nodes()
        .map(|v| proto.enumerate_states(v, graph.neighbors(v)).len() as u128)
        .product()
}

/// Run `proto` from **every** initial state on `graph`; each run must
/// stabilize within `round_bound` rounds and the fixpoint must satisfy both
/// `proto.is_legitimate` and the extra `check`. Stops at the first
/// violation.
pub fn verify_all_initial_states<P, F>(
    graph: &Graph,
    proto: &P,
    round_bound: usize,
    check: F,
) -> ExhaustiveReport<P::State>
where
    P: Protocol,
    F: Fn(&Graph, &[P::State]) -> bool,
{
    let exec = SyncExecutor::new(graph, proto);
    let mut states_checked = 0u64;
    let mut max_rounds = 0usize;
    for init in all_initial_states(graph, proto) {
        states_checked += 1;
        let run = exec.run(InitialState::Explicit(init.clone()), round_bound);
        if !run.stabilized() {
            return ExhaustiveReport {
                states_checked,
                max_rounds,
                counterexample: Some(init),
                failed_to_stabilize: true,
            };
        }
        max_rounds = max_rounds.max(run.rounds());
        if !proto.is_legitimate(graph, &run.final_states) || !check(graph, &run.final_states) {
            return ExhaustiveReport {
                states_checked,
                max_rounds,
                counterexample: Some(init),
                failed_to_stabilize: false,
            };
        }
    }
    ExhaustiveReport {
        states_checked,
        max_rounds,
        counterexample: None,
        failed_to_stabilize: false,
    }
}

/// All labelled **connected** graphs on `n` nodes (`n <= 6` is practical:
/// there are 2^(n(n-1)/2) labelled graphs to filter).
pub fn all_connected_graphs(n: usize) -> impl Iterator<Item = Graph> {
    let pairs: Vec<(usize, usize)> = (0..n)
        .flat_map(|i| (i + 1..n).map(move |j| (i, j)))
        .collect();
    let count: u64 = 1u64 << pairs.len();
    assert!(pairs.len() <= 32, "too many node pairs for enumeration");
    (0..count).filter_map(move |mask| {
        let mut g = Graph::empty(n);
        for (bit, &(i, j)) in pairs.iter().enumerate() {
            if mask & (1 << bit) != 0 {
                g.add_edge(Node::from(i), Node::from(j));
            }
        }
        is_connected(&g).then_some(g)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::MaxProto;
    use selfstab_graph::generators;

    #[test]
    fn product_iterator_counts() {
        let g = generators::path(3);
        let total = all_initial_states(&g, &MaxProto).count();
        assert_eq!(total, 4 * 4 * 4);
        assert_eq!(state_space_size(&g, &MaxProto), 64);
    }

    #[test]
    fn product_iterator_covers_all_distinct() {
        let g = generators::path(2);
        let mut all: Vec<Vec<u8>> = all_initial_states(&g, &MaxProto).collect();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), 16);
    }

    #[test]
    fn max_proto_verifies_exhaustively() {
        let g = generators::cycle(4);
        // MaxProto stabilizes within diameter rounds (= 2 on C4); every
        // fixpoint is a constant vector.
        let report = verify_all_initial_states(&g, &MaxProto, 2, |_, states| {
            states.windows(2).all(|w| w[0] == w[1])
        });
        assert!(report.all_ok(), "{report:?}");
        assert_eq!(report.states_checked, 256);
        assert!(report.max_rounds <= 2);
    }

    #[test]
    fn violation_is_reported() {
        let g = generators::path(4);
        // Impossible round bound 0: any non-fixpoint initial state fails.
        let report = verify_all_initial_states(&g, &MaxProto, 0, |_, _| true);
        assert!(!report.all_ok());
        assert!(report.failed_to_stabilize);
    }

    #[test]
    fn predicate_violation_reported() {
        let g = generators::path(3);
        let report = verify_all_initial_states(&g, &MaxProto, 10, |_, states| {
            states[0] == 0 // false for most fixpoints
        });
        assert!(!report.all_ok());
        assert!(!report.failed_to_stabilize);
    }

    #[test]
    fn connected_graph_counts() {
        // Known counts of labelled connected graphs: 1, 1, 4, 38, 728.
        assert_eq!(all_connected_graphs(1).count(), 1);
        assert_eq!(all_connected_graphs(2).count(), 1);
        assert_eq!(all_connected_graphs(3).count(), 4);
        assert_eq!(all_connected_graphs(4).count(), 38);
        assert_eq!(all_connected_graphs(5).count(), 728);
    }
}
