//! Shared test protocols for the engine's own unit tests.

use crate::protocol::{Move, Protocol, View};
use rand::rngs::StdRng;
use rand::RngExt;
use selfstab_graph::Node;

/// A toy self-stabilizing protocol: state is a small counter; a node is
/// privileged while its counter is below the max of its neighbors' counters
/// (it then copies that max). Stabilizes to the global maximum everywhere in
/// eccentricity-many rounds.
pub struct MaxProto;

impl Protocol for MaxProto {
    type State = u8;

    fn rule_names(&self) -> &'static [&'static str] {
        &["copy-max"]
    }

    fn default_state(&self) -> u8 {
        0
    }

    fn arbitrary_state(&self, _: Node, _: &[Node], rng: &mut StdRng) -> u8 {
        rng.random_range(0..4)
    }

    fn enumerate_states(&self, _: Node, _: &[Node]) -> Vec<u8> {
        (0..4).collect()
    }

    fn step(&self, view: View<'_, u8>) -> Option<Move<u8>> {
        let m = view.neighbor_states().map(|(_, &s)| s).max()?;
        (m > *view.own()).then_some(Move { rule: 0, next: m })
    }
}
