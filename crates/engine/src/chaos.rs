//! Live mid-run topology churn: the paper's mobility fault model applied
//! *while the protocol executes*, not just between runs.
//!
//! [`crate::faults::churn_and_recover`] perturbs a stabilized configuration
//! once and then measures recovery on a frozen graph. This module instead
//! drives a [`ChurnSchedule`]: every `every` rounds a batch of
//! connectivity-preserving [`TopologyEvent`]s is applied to the live graph
//! and execution continues on the mutated topology — the self-stabilization
//! claim under test is that the protocol re-converges *through* the churn,
//! not merely after it.
//!
//! Semantics at a churn boundary (entering round `k·every`):
//!
//! * the events are drawn from the schedule's own seeded RNG, so a run is
//!   reproducible from `(graph, init, schedule)`;
//! * both endpoints of every churned edge re-enter the active worklist with
//!   their *closed neighborhoods* (on the mutated graph) — a link change
//!   can newly privilege the endpoints or any of their neighbors, exactly
//!   the active-set invariant of [`crate::active`];
//! * if the run stabilizes before the next boundary with epochs still
//!   pending, the quiescent gap is fast-forwarded (no node is privileged,
//!   so those rounds are move-free by definition) and churn fires at the
//!   boundary round.
//!
//! The sharded runtime applies the same schedule by segmenting the run at
//! churn boundaries (see `selfstab-runtime`); the serial core here is the
//! reference semantics its equivalence tests compare against.

use crate::active::{ActiveSet, Schedule};
use crate::obs::{Observer, RoundStats};
use crate::par::{par_privileged_moves, par_privileged_moves_among};
use crate::protocol::{InitialState, Move, Protocol, View};
use crate::sync::{Outcome, Run};
use rand::rngs::StdRng;
use rand::SeedableRng;
use selfstab_graph::mutate::{Churn, TopologyEvent};
use selfstab_graph::{Graph, Node};

/// A seeded schedule of live topology churn: `events` connectivity-
/// preserving edge changes every `every` rounds, for `epochs` batches.
#[derive(Clone, Debug)]
pub struct ChurnSchedule {
    /// Rounds between churn batches (a batch fires entering round
    /// `k·every`, `k = 1..=epochs`). Must be ≥ 1.
    pub every: usize,
    /// Edge changes per batch. Must be ≥ 1.
    pub events: usize,
    /// Number of batches.
    pub epochs: usize,
    /// The event generator (link-failure probability, etc.).
    pub churn: Churn,
    /// Seed of the schedule's private RNG.
    pub seed: u64,
}

impl ChurnSchedule {
    /// A schedule of one single-event batch every `every` rounds.
    pub fn new(every: usize, seed: u64) -> Self {
        ChurnSchedule {
            every,
            events: 1,
            epochs: 1,
            churn: Churn::default(),
            seed,
        }
    }

    /// Set the number of edge changes per batch.
    pub fn with_events(mut self, events: usize) -> Self {
        self.events = events;
        self
    }

    /// Set the number of batches.
    pub fn with_epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs;
        self
    }

    /// Replace the event generator.
    pub fn with_churn(mut self, churn: Churn) -> Self {
        self.churn = churn;
        self
    }

    /// Check the schedule is well-formed.
    pub fn validate(&self) -> Result<(), String> {
        if self.every == 0 {
            return Err("churn interval (every) must be >= 1".into());
        }
        if self.events == 0 {
            return Err("churn batch size (events) must be >= 1".into());
        }
        Ok(())
    }

    /// Open an incremental cursor over this schedule (validates first).
    ///
    /// The feed is the *online* form of the batch plan: callers pull the
    /// next batch boundary with [`ChurnFeed::next_boundary`] and apply the
    /// batch with [`ChurnFeed::next_events`] when their round clock reaches
    /// it. Both the serial churned loop and the sharded segmented driver run
    /// on this cursor, so the boundary arithmetic lives in exactly one
    /// place.
    pub fn feed(&self) -> Result<ChurnFeed<'_>, String> {
        self.validate()?;
        Ok(ChurnFeed {
            plan: self,
            rng: StdRng::seed_from_u64(self.seed),
            epochs_done: 0,
            events: Vec::new(),
            last_fault_round: 0,
        })
    }
}

/// An incremental cursor over a [`ChurnSchedule`]: yields churn batches one
/// boundary at a time against a live graph, recording what fired where.
///
/// Invariant: boundaries fire in order (`every`, `2·every`, …,
/// `epochs·every`) and each fires at most once; the RNG draw order is
/// identical to the original batch loop, so a feed-driven run is
/// event-for-event reproducible from `(graph, schedule)` alone.
#[derive(Clone, Debug)]
pub struct ChurnFeed<'a> {
    plan: &'a ChurnSchedule,
    rng: StdRng,
    epochs_done: usize,
    events: Vec<(usize, TopologyEvent)>,
    last_fault_round: usize,
}

impl ChurnFeed<'_> {
    /// The next round a churn batch fires entering, or `None` when every
    /// epoch has fired.
    pub fn next_boundary(&self) -> Option<usize> {
        (self.epochs_done < self.plan.epochs).then(|| (self.epochs_done + 1) * self.plan.every)
    }

    /// Whether all scheduled epochs have fired.
    pub fn is_exhausted(&self) -> bool {
        self.epochs_done >= self.plan.epochs
    }

    /// Fire the batch scheduled for `round`, mutating `graph` in place, and
    /// return the applied events. A no-op (empty vec) unless `round` is
    /// exactly the pending boundary — callers may poll every round.
    pub fn next_events(&mut self, round: usize, graph: &mut Graph) -> Vec<TopologyEvent> {
        if self.next_boundary() != Some(round) {
            return Vec::new();
        }
        let applied = self
            .plan
            .churn
            .apply(graph, self.plan.events, &mut self.rng);
        self.epochs_done += 1;
        if !applied.is_empty() {
            self.last_fault_round = round;
        }
        for &ev in &applied {
            self.events.push((round, ev));
        }
        applied
    }

    /// All events applied so far, tagged with the round they fired entering.
    pub fn events(&self) -> &[(usize, TopologyEvent)] {
        &self.events
    }

    /// Consume the feed, returning the applied-event log.
    pub fn into_events(self) -> Vec<(usize, TopologyEvent)> {
        self.events
    }

    /// The round the last non-empty batch fired at (0 when none fired).
    pub fn last_fault_round(&self) -> usize {
        self.last_fault_round
    }
}

/// The result of a churned execution: the run, the *final* (mutated)
/// topology, and the applied events with the round each fired at.
#[derive(Clone, Debug)]
pub struct ChaosRun<S> {
    /// The execution outcome, rounds, moves and final states.
    pub run: Run<S>,
    /// The topology after all churn (legitimacy of `run.final_states` must
    /// be judged against *this* graph, not the starting one).
    pub graph: Graph,
    /// Applied topology events, tagged with the round they fired entering.
    pub events: Vec<(usize, TopologyEvent)>,
    /// The round the last fault event fired at (0 when none fired).
    pub last_fault_round: usize,
}

impl<S> ChaosRun<S> {
    /// Rounds between the last applied fault and stabilization — the
    /// re-stabilization time. `None` if the run did not stabilize or no
    /// event was ever applied.
    pub fn recovery_rounds(&self) -> Option<usize> {
        (self.run.outcome == Outcome::Stabilized && !self.events.is_empty())
            .then(|| self.run.rounds - self.last_fault_round)
    }
}

/// Serial churned execution (reference semantics).
pub fn run_churned_serial<P: Protocol>(
    graph: &Graph,
    proto: &P,
    schedule: Schedule,
    plan: &ChurnSchedule,
    init: InitialState<P::State>,
    max_rounds: usize,
) -> Result<ChaosRun<P::State>, String> {
    churned_core(
        graph,
        proto,
        schedule,
        plan,
        init,
        max_rounds,
        None,
        &mut (),
    )
}

/// Serial churned execution with [`Observer`] hooks: the same per-round
/// hook sequence as [`crate::sync::SyncExecutor::run_observed`], on the
/// live (mutating) graph.
pub fn run_churned_serial_observed<P: Protocol, O: Observer<P::State>>(
    graph: &Graph,
    proto: &P,
    schedule: Schedule,
    plan: &ChurnSchedule,
    init: InitialState<P::State>,
    max_rounds: usize,
    obs: &mut O,
) -> Result<ChaosRun<P::State>, String> {
    churned_core(graph, proto, schedule, plan, init, max_rounds, None, obs)
}

/// Data-parallel churned execution; bit-identical to the serial form (the
/// round step is a pure function of the previous state vector either way).
pub fn run_churned_par<P: Protocol>(
    graph: &Graph,
    proto: &P,
    schedule: Schedule,
    plan: &ChurnSchedule,
    init: InitialState<P::State>,
    max_rounds: usize,
    threads: usize,
) -> Result<ChaosRun<P::State>, String> {
    churned_core(
        graph,
        proto,
        schedule,
        plan,
        init,
        max_rounds,
        Some(threads.max(1)),
        &mut (),
    )
}

/// The shared churned round loop. `threads: None` evaluates serially in
/// node order; `Some(t)` uses the chunked scoped-thread evaluation of
/// [`crate::par`] (identical results).
#[allow(clippy::too_many_arguments)]
fn churned_core<P: Protocol, O: Observer<P::State>>(
    graph: &Graph,
    proto: &P,
    schedule: Schedule,
    plan: &ChurnSchedule,
    init: InitialState<P::State>,
    max_rounds: usize,
    threads: Option<usize>,
    obs: &mut O,
) -> Result<ChaosRun<P::State>, String> {
    let mut feed = plan.feed()?;
    let mut graph = graph.clone();
    let mut states = init.materialize(&graph, proto);
    let mut moves_per_rule = vec![0u64; proto.rule_names().len()];
    let n = states.len();
    let mut active =
        (schedule == Schedule::Active).then(|| (ActiveSet::full(n), ActiveSet::empty(n)));
    let mut round = 0usize;

    loop {
        for ev in feed.next_events(round, &mut graph) {
            let e = ev.edge();
            if let Some((cur, _)) = active.as_mut() {
                // A link change can newly privilege either endpoint or
                // any neighbor of one: dirty both closed neighborhoods
                // on the *mutated* graph. (For a removed edge the two
                // closed neighborhoods no longer overlap — that is the
                // point.)
                cur.insert_closed(&graph, e.a);
                cur.insert_closed(&graph, e.b);
                cur.seal();
            }
        }

        let moves = evaluate(
            &graph,
            proto,
            &states,
            active.as_ref().map(|(cur, _)| cur.nodes()),
            threads,
        );
        if moves.is_empty() {
            if let Some(boundary) = feed.next_boundary() {
                // Stabilized with churn still scheduled: fast-forward the
                // quiescent gap to the next boundary (those rounds are
                // move-free by definition, no node being privileged).
                if boundary <= max_rounds {
                    round = boundary;
                    continue;
                }
                // The remaining epochs cannot fire within the budget.
            }
            if O::ENABLED {
                obs.on_finish(&Outcome::Stabilized, &states);
            }
            let last_fault_round = feed.last_fault_round();
            return Ok(finishing(
                Outcome::Stabilized,
                states,
                round,
                moves_per_rule,
                graph,
                feed.into_events(),
                last_fault_round,
            ));
        }
        if round >= max_rounds {
            if O::ENABLED {
                obs.on_finish(&Outcome::RoundLimit, &states);
            }
            let last_fault_round = feed.last_fault_round();
            return Ok(finishing(
                Outcome::RoundLimit,
                states,
                round,
                moves_per_rule,
                graph,
                feed.into_events(),
                last_fault_round,
            ));
        }
        let timer = O::ENABLED.then(std::time::Instant::now);
        let mut round_moves = O::ENABLED.then(|| vec![0u64; moves_per_rule.len()]);
        if O::ENABLED {
            obs.on_round_start(round + 1, &states);
        }
        let privileged = moves.len();
        let evaluated = active
            .as_ref()
            .map(|(cur, _)| cur.nodes().len())
            .unwrap_or(n);
        for (v, m) in moves {
            moves_per_rule[m.rule] += 1;
            if let Some(per) = round_moves.as_mut() {
                per[m.rule] += 1;
            }
            let rule = m.rule;
            states[v.index()] = m.next;
            if let Some((_, next)) = active.as_mut() {
                next.insert_closed(&graph, v);
            }
            if O::ENABLED {
                obs.on_move(v, rule, &states[v.index()]);
            }
        }
        if let Some((cur, next)) = active.as_mut() {
            next.seal();
            cur.clear();
            std::mem::swap(cur, next);
        }
        round += 1;
        if O::ENABLED {
            let stats = RoundStats {
                round,
                privileged,
                evaluated,
                moves_per_rule: round_moves.take().unwrap_or_default(),
                duration_micros: timer.map(|t| t.elapsed().as_micros() as u64).unwrap_or(0),
                beacon: None,
                runtime: None,
                // Churned serial runs do not carry phase spans: the churn
                // loop restructures the round and the spans would not be
                // comparable to the plain executors'.
                profile: None,
            };
            obs.on_round_end(&stats, &states);
        }
    }
}

fn evaluate<P: Protocol>(
    graph: &Graph,
    proto: &P,
    states: &[P::State],
    worklist: Option<&[Node]>,
    threads: Option<usize>,
) -> Vec<(Node, Move<P::State>)> {
    match (worklist, threads) {
        (Some(nodes), Some(t)) => par_privileged_moves_among(graph, proto, t, states, nodes),
        (None, Some(t)) => par_privileged_moves(graph, proto, t, states),
        (Some(nodes), None) => nodes
            .iter()
            .filter_map(|&v| {
                let view = View::new(v, graph.neighbors(v), states);
                proto.step(view).map(|m| (v, m))
            })
            .collect(),
        (None, None) => graph
            .nodes()
            .filter_map(|v| {
                let view = View::new(v, graph.neighbors(v), states);
                proto.step(view).map(|m| (v, m))
            })
            .collect(),
    }
}

#[allow(clippy::too_many_arguments)]
fn finishing<S>(
    outcome: Outcome,
    states: Vec<S>,
    rounds: usize,
    moves_per_rule: Vec<u64>,
    graph: Graph,
    events: Vec<(usize, TopologyEvent)>,
    last_fault_round: usize,
) -> ChaosRun<S> {
    ChaosRun {
        run: Run {
            final_states: states,
            rounds,
            moves_per_rule,
            outcome,
            trace: None,
        },
        graph,
        events,
        last_fault_round,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::MaxProto;
    use selfstab_graph::generators;
    use selfstab_graph::traversal::is_connected;

    #[test]
    fn churned_run_is_deterministic_and_stays_connected() {
        let g = generators::cycle(24);
        let plan = ChurnSchedule::new(4, 9).with_events(2).with_epochs(3);
        let a = run_churned_serial(
            &g,
            &MaxProto,
            Schedule::Active,
            &plan,
            InitialState::Random { seed: 1 },
            500,
        )
        .unwrap();
        let b = run_churned_serial(
            &g,
            &MaxProto,
            Schedule::Active,
            &plan,
            InitialState::Random { seed: 1 },
            500,
        )
        .unwrap();
        assert_eq!(a.run.final_states, b.run.final_states);
        assert_eq!(a.run.rounds, b.run.rounds);
        assert_eq!(a.events, b.events);
        assert!(is_connected(&a.graph));
        assert!(a.run.stabilized());
        // MaxProto's fixpoint is everyone at the max — churn cannot change
        // that, but the run must end on the *mutated* graph.
        let max = a.run.final_states.iter().max().copied().unwrap();
        assert!(a.run.final_states.iter().all(|&s| s == max));
    }

    #[test]
    fn serial_and_par_agree_and_schedules_agree() {
        let g = generators::grid(6, 6);
        let plan = ChurnSchedule::new(3, 17).with_events(2).with_epochs(4);
        let serial_active = run_churned_serial(
            &g,
            &MaxProto,
            Schedule::Active,
            &plan,
            InitialState::Random { seed: 7 },
            500,
        )
        .unwrap();
        let serial_full = run_churned_serial(
            &g,
            &MaxProto,
            Schedule::Full,
            &plan,
            InitialState::Random { seed: 7 },
            500,
        )
        .unwrap();
        let par = run_churned_par(
            &g,
            &MaxProto,
            Schedule::Active,
            &plan,
            InitialState::Random { seed: 7 },
            500,
            4,
        )
        .unwrap();
        for other in [&serial_full, &par] {
            assert_eq!(serial_active.run.final_states, other.run.final_states);
            assert_eq!(serial_active.run.rounds, other.run.rounds);
            assert_eq!(serial_active.run.moves_per_rule, other.run.moves_per_rule);
            assert_eq!(serial_active.events, other.events);
        }
    }

    #[test]
    fn early_stabilization_fast_forwards_to_pending_epochs() {
        // MaxProto on a path stabilizes quickly; with a late churn boundary
        // the run must still fire every epoch (quiescent gap skipped).
        let g = generators::path(8);
        let plan = ChurnSchedule::new(50, 3).with_epochs(2);
        let out = run_churned_serial(
            &g,
            &MaxProto,
            Schedule::Active,
            &plan,
            InitialState::Random { seed: 2 },
            1_000,
        )
        .unwrap();
        assert!(out.run.stabilized());
        assert_eq!(
            out.events.iter().map(|(r, _)| *r).collect::<Vec<_>>(),
            vec![50, 100],
            "both epochs fired at their boundaries"
        );
        assert!(out.recovery_rounds().is_some());
    }

    #[test]
    fn invalid_schedules_are_rejected() {
        let g = generators::path(4);
        let bad = ChurnSchedule::new(0, 1);
        assert!(run_churned_serial(
            &g,
            &MaxProto,
            Schedule::Active,
            &bad,
            InitialState::Default,
            10,
        )
        .is_err());
        let bad = ChurnSchedule::new(2, 1).with_events(0);
        assert!(run_churned_serial(
            &g,
            &MaxProto,
            Schedule::Active,
            &bad,
            InitialState::Default,
            10,
        )
        .is_err());
    }
}
