//! Data-parallel synchronous executor.
//!
//! The synchronous daemon is embarrassingly parallel *within* a round: each
//! node's move depends only on the previous round's states. This executor
//! partitions the node range into chunks and evaluates guards on scoped
//! threads (`std::thread::scope`, no dependencies, no unsafe), then applies
//! all moves on the coordinating thread. Results are **bit-identical** to
//! [`crate::sync::SyncExecutor`] — asserted by tests — because the protocol
//! step is a pure function of the immutable previous state vector and moves
//! are applied in node order either way.
//!
//! Guard evaluation is `O(Σ deg)` per round; parallelism pays off from a few
//! tens of thousands of nodes (see the `throughput` bench, experiment E12).

use crate::active::{ActiveSet, Schedule};
use crate::faults::CrashAt;
use crate::obs::{Observer, Phase, PhaseSpans, RoundProfile, RoundStats, ShardProfile};
use crate::protocol::{InitialState, Move, Protocol, View};
use crate::sync::{Outcome, Run};
use selfstab_graph::{Graph, Node};
use std::num::NonZeroUsize;

/// Parallel synchronous executor.
pub struct ParSyncExecutor<'a, P: Protocol> {
    graph: &'a Graph,
    proto: &'a P,
    threads: NonZeroUsize,
    schedule: Schedule,
    crash: Option<CrashAt>,
}

impl<'a, P: Protocol> ParSyncExecutor<'a, P> {
    /// New executor using all available parallelism and the default
    /// [`Schedule::Active`] evaluation pruning.
    pub fn new(graph: &'a Graph, proto: &'a P) -> Self {
        let threads = std::thread::available_parallelism()
            .unwrap_or(NonZeroUsize::new(1).expect("1 is non-zero"));
        ParSyncExecutor {
            graph,
            proto,
            threads,
            schedule: Schedule::default(),
            crash: None,
        }
    }

    /// Override the worker-thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = NonZeroUsize::new(threads.max(1)).expect("max(1) is non-zero");
        self
    }

    /// Choose between the full per-round sweep and active-set evaluation
    /// pruning (identical results; see [`crate::active`]).
    pub fn with_schedule(mut self, schedule: Schedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Schedule a mid-run crash-restart ([`CrashAt`]); semantics identical
    /// to [`crate::sync::SyncExecutor::with_crash`].
    pub fn with_crash(mut self, crash: CrashAt) -> Self {
        self.crash = Some(crash);
        self
    }

    /// Compute all privileged moves for `states`, in node order, using
    /// chunked scoped threads.
    fn privileged_moves(&self, states: &[P::State]) -> Vec<(Node, Move<P::State>)> {
        par_privileged_moves(self.graph, self.proto, self.threads.get(), states)
    }

    /// Compute the privileged moves *among* `nodes` (sorted in node order),
    /// chunking the worklist — not the node range — across scoped threads.
    /// Sound whenever `nodes` is a superset of the privileged set.
    fn privileged_moves_among(
        &self,
        states: &[P::State],
        nodes: &[Node],
    ) -> Vec<(Node, Move<P::State>)> {
        par_privileged_moves_among(self.graph, self.proto, self.threads.get(), states, nodes)
    }

    /// Execute synchronously from `init` for at most `max_rounds` rounds.
    /// Semantics identical to [`crate::sync::SyncExecutor::run`] without
    /// tracing or cycle detection.
    pub fn run(&self, init: InitialState<P::State>, max_rounds: usize) -> Run<P::State> {
        self.run_observed(init, max_rounds, &mut ())
    }

    /// Execute synchronously, firing the [`Observer`] hooks with the same
    /// call order and [`RoundStats`] schema as
    /// [`crate::sync::SyncExecutor::run_observed`] (this executor's single
    /// lane reports the serial span taxonomy: `guard_eval`, `apply`,
    /// `gauges`, plus `rehydrate` when a crash fires). Guarded by
    /// [`Observer::ENABLED`]: `run` delegates here with `()` and compiles
    /// to the unobserved loop.
    pub fn run_observed<O: Observer<P::State>>(
        &self,
        init: InitialState<P::State>,
        max_rounds: usize,
        obs: &mut O,
    ) -> Run<P::State> {
        let mut states = init.materialize(self.graph, self.proto);
        let mut moves_per_rule = vec![0u64; self.proto.rule_names().len()];
        let n = states.len();
        let mut active =
            (self.schedule == Schedule::Active).then(|| (ActiveSet::full(n), ActiveSet::empty(n)));
        let mut round = 0usize;
        loop {
            // See SyncExecutor::run_observed: a scheduled crash keeps the
            // run alive through its round.
            let crash_pending = self.crash.as_ref().is_some_and(|c| round <= c.round);
            let mut rehydrate_nanos = 0u64;
            if let Some(c) = self.crash.as_ref().filter(|c| c.round == round) {
                if round < max_rounds {
                    let t0 = O::ENABLED.then(std::time::Instant::now);
                    let victims = c.apply(self.proto, self.graph, &mut states);
                    if let Some((cur, _)) = active.as_mut() {
                        for &v in &victims {
                            cur.insert_closed(self.graph, v);
                        }
                        cur.seal();
                    }
                    if let Some(t0) = t0 {
                        rehydrate_nanos = t0.elapsed().as_nanos() as u64;
                    }
                }
            }

            let guard_timer = O::ENABLED.then(std::time::Instant::now);
            let moves = match active.as_ref() {
                Some((cur, _)) => self.privileged_moves_among(&states, cur.nodes()),
                None => self.privileged_moves(&states),
            };
            let evaluated = active.as_ref().map(|(cur, _)| cur.len()).unwrap_or(n);
            let guard_nanos = guard_timer
                .map(|t| t.elapsed().as_nanos() as u64)
                .unwrap_or(0);
            if moves.is_empty() && !crash_pending {
                if O::ENABLED {
                    obs.on_finish(&Outcome::Stabilized, &states);
                }
                return Run {
                    final_states: states,
                    rounds: round,
                    moves_per_rule,
                    outcome: Outcome::Stabilized,
                    trace: None,
                };
            }
            if round >= max_rounds {
                if O::ENABLED {
                    obs.on_finish(&Outcome::RoundLimit, &states);
                }
                return Run {
                    final_states: states,
                    rounds: round,
                    moves_per_rule,
                    outcome: Outcome::RoundLimit,
                    trace: None,
                };
            }
            let timer = O::ENABLED.then(std::time::Instant::now);
            let mut round_moves = O::ENABLED.then(|| vec![0u64; moves_per_rule.len()]);
            let mut hook_nanos = 0u64;
            if O::ENABLED {
                let t0 = std::time::Instant::now();
                obs.on_round_start(round + 1, &states);
                hook_nanos += t0.elapsed().as_nanos() as u64;
            }
            let privileged = moves.len();
            let apply_timer = O::ENABLED.then(std::time::Instant::now);
            let mut move_hook_nanos = 0u64;
            for (v, m) in moves {
                moves_per_rule[m.rule] += 1;
                if let Some(rm) = round_moves.as_mut() {
                    rm[m.rule] += 1;
                }
                let rule = m.rule;
                states[v.index()] = m.next;
                if let Some((_, next)) = active.as_mut() {
                    next.insert_closed(self.graph, v);
                }
                if O::ENABLED {
                    let t0 = std::time::Instant::now();
                    obs.on_move(v, rule, &states[v.index()]);
                    move_hook_nanos += t0.elapsed().as_nanos() as u64;
                }
            }
            if let Some((cur, next)) = active.as_mut() {
                next.seal();
                cur.clear();
                std::mem::swap(cur, next);
            }
            round += 1;
            if O::ENABLED {
                let apply_nanos = apply_timer
                    .map(|t| t.elapsed().as_nanos() as u64)
                    .unwrap_or(0)
                    .saturating_sub(move_hook_nanos);
                hook_nanos += move_hook_nanos;
                let mut spans = PhaseSpans::new();
                if rehydrate_nanos > 0 {
                    spans.add_nanos(Phase::Rehydrate, rehydrate_nanos);
                }
                spans.add_nanos(Phase::GuardEval, guard_nanos);
                spans.add_nanos(Phase::Apply, apply_nanos);
                spans.add_nanos(Phase::Gauges, hook_nanos);
                let duration_micros = timer.map(|t| t.elapsed().as_micros() as u64).unwrap_or(0);
                let lane = ShardProfile {
                    shard: 0,
                    spans,
                    round_micros: duration_micros + (guard_nanos + rehydrate_nanos) / 1_000,
                    inbox_max_depth: 0,
                    inbox_depth: 0,
                };
                let stats = RoundStats {
                    round,
                    privileged,
                    evaluated,
                    moves_per_rule: round_moves.take().unwrap_or_default(),
                    duration_micros,
                    beacon: None,
                    runtime: None,
                    profile: Some(RoundProfile { shards: vec![lane] }),
                };
                obs.on_round_end(&stats, &states);
            }
        }
    }
}

/// Free-function form of the full-sweep evaluation, shared with the
/// churned executor ([`crate::chaos`]) whose graph is owned and mutated
/// between rounds. Below the threshold (or single-threaded) this is the
/// serial path exactly.
pub(crate) fn par_privileged_moves<P: Protocol>(
    graph: &Graph,
    proto: &P,
    threads: usize,
    states: &[P::State],
) -> Vec<(Node, Move<P::State>)> {
    let n = graph.n();
    let threads = threads.min(n.max(1));
    // Below this size, thread spawn overhead dominates; match the
    // serial path exactly.
    if threads == 1 || n < 4096 {
        return graph
            .nodes()
            .filter_map(|v| {
                let view = View::new(v, graph.neighbors(v), states);
                proto.step(view).map(|m| (v, m))
            })
            .collect();
    }
    let chunk = n.div_ceil(threads);
    let mut partials: Vec<Vec<(Node, Move<P::State>)>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let lo = t * chunk;
                let hi = ((t + 1) * chunk).min(n);
                scope.spawn(move || {
                    (lo..hi)
                        .filter_map(|i| {
                            let v = Node::from(i);
                            let view = View::new(v, graph.neighbors(v), states);
                            proto.step(view).map(|m| (v, m))
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            partials.push(h.join().expect("worker panicked"));
        }
    });
    partials.concat()
}

/// Free-function form of the worklist evaluation (see
/// [`par_privileged_moves`]). Sound whenever `nodes` is a sorted superset
/// of the privileged set.
pub(crate) fn par_privileged_moves_among<P: Protocol>(
    graph: &Graph,
    proto: &P,
    threads: usize,
    states: &[P::State],
    nodes: &[Node],
) -> Vec<(Node, Move<P::State>)> {
    let n = nodes.len();
    let threads = threads.min(n.max(1));
    if threads == 1 || n < 4096 {
        return nodes
            .iter()
            .filter_map(|&v| {
                let view = View::new(v, graph.neighbors(v), states);
                proto.step(view).map(|m| (v, m))
            })
            .collect();
    }
    let chunk = n.div_ceil(threads);
    let mut partials: Vec<Vec<(Node, Move<P::State>)>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = nodes
            .chunks(chunk)
            .map(|span| {
                scope.spawn(move || {
                    span.iter()
                        .filter_map(|&v| {
                            let view = View::new(v, graph.neighbors(v), states);
                            proto.step(view).map(|m| (v, m))
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            partials.push(h.join().expect("worker panicked"));
        }
    });
    partials.concat()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::SyncExecutor;
    use crate::testutil::MaxProto;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use selfstab_graph::generators;

    #[test]
    fn identical_to_serial_small() {
        let g = generators::grid(8, 8);
        for seed in 0..5 {
            let serial = SyncExecutor::new(&g, &MaxProto).run_random(seed, 1_000);
            let par = ParSyncExecutor::new(&g, &MaxProto).run(InitialState::Random { seed }, 1_000);
            assert_eq!(serial.final_states, par.final_states);
            assert_eq!(serial.rounds, par.rounds);
            assert_eq!(serial.moves_per_rule, par.moves_per_rule);
        }
    }

    #[test]
    fn identical_to_serial_above_parallel_threshold() {
        // 80x80 grid = 6400 nodes > the 4096 threshold, so the threaded
        // path actually runs.
        let g = generators::grid(80, 80);
        let serial = SyncExecutor::new(&g, &MaxProto).run_random(11, 10_000);
        let par = ParSyncExecutor::new(&g, &MaxProto)
            .with_threads(4)
            .run(InitialState::Random { seed: 11 }, 10_000);
        assert_eq!(serial.final_states, par.final_states);
        assert_eq!(serial.rounds, par.rounds);
        assert_eq!(serial.moves_per_rule, par.moves_per_rule);
    }

    #[test]
    fn schedules_agree_above_parallel_threshold() {
        let g = generators::grid(80, 80);
        let mk = |s| {
            ParSyncExecutor::new(&g, &MaxProto)
                .with_threads(4)
                .with_schedule(s)
                .run(InitialState::Random { seed: 3 }, 10_000)
        };
        let full = mk(Schedule::Full);
        let act = mk(Schedule::Active);
        assert_eq!(full.final_states, act.final_states);
        assert_eq!(full.rounds, act.rounds);
        assert_eq!(full.moves_per_rule, act.moves_per_rule);
    }

    #[test]
    fn single_thread_override() {
        let g = generators::random_geometric_connected(50, 0.3, &mut StdRng::seed_from_u64(2));
        let run = ParSyncExecutor::new(&g, &MaxProto)
            .with_threads(1)
            .run(InitialState::Random { seed: 0 }, 1_000);
        assert!(run.stabilized());
    }
}
