//! A line-oriented JSON event log of an execution.
//!
//! [`JsonlEventLog`] writes one self-describing JSON object per line:
//! an `init` event carrying the initial global state, a `move` event per
//! applied move, a `round_end` event per round carrying the post-round
//! state, and a terminal `finish` event. Because the per-round states ride
//! along, a JSONL log is convertible back into the trace representation of
//! the [`crate::record`] module with [`trace_from_jsonl`] — so a log
//! captured from a live observed run can be re-validated offline with
//! [`crate::record::validate_trace`], exactly like a recorded trace.

use super::{profile_json, Observer, RoundStats};
use crate::sync::Outcome;
use selfstab_graph::Node;
use selfstab_json::{FromJson, Json, JsonError, ToJson};

/// Buffers one JSON event per line during a run.
#[derive(Clone, Debug, Default)]
pub struct JsonlEventLog {
    lines: Vec<String>,
}

impl JsonlEventLog {
    /// An empty log.
    pub fn new() -> Self {
        JsonlEventLog::default()
    }

    /// Prepend a `meta` event describing the run (protocol, graph size,
    /// shard count, …) for offline consumers. Values are free-form; the
    /// `analyze` report reads known keys and ignores the rest. Call before
    /// the run so the event lands first in the file.
    pub fn push_meta(&mut self, fields: impl IntoIterator<Item = (String, Json)>) {
        let mut obj = vec![("event".to_string(), "meta".to_json())];
        obj.extend(fields);
        self.lines.insert(0, Json::Object(obj).to_string());
    }

    /// Append a custom event line tagged `event: kind`. Non-executor
    /// producers (e.g. the resident service's telemetry track) use this to
    /// interleave their own records with the observer-emitted ones; offline
    /// consumers that don't know `kind` skip the line.
    pub fn push_event(&mut self, kind: &str, fields: impl IntoIterator<Item = (String, Json)>) {
        let mut obj = vec![("event".to_string(), kind.to_json())];
        obj.extend(fields);
        self.lines.push(Json::Object(obj).to_string());
    }

    /// The buffered lines, in emission order.
    pub fn lines(&self) -> &[String] {
        &self.lines
    }

    /// The whole log as one newline-separated string (trailing newline
    /// included, as expected of a JSONL file).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for line in &self.lines {
            out.push_str(line);
            out.push('\n');
        }
        out
    }

    /// Write the log to `path`.
    pub fn write_to(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_jsonl())
    }

    fn push(&mut self, event: Json) {
        self.lines.push(event.to_string());
    }
}

impl<S: ToJson> Observer<S> for JsonlEventLog {
    fn on_round_start(&mut self, round: usize, states: &[S]) {
        if round == 1 {
            self.push(Json::obj([
                ("event", "init".to_json()),
                ("states", states.to_json()),
            ]));
        }
    }

    fn on_move(&mut self, node: Node, rule: usize, next: &S) {
        self.push(Json::obj([
            ("event", "move".to_json()),
            ("node", (node.index() as u64).to_json()),
            ("rule", rule.to_json()),
            ("next", next.to_json()),
        ]));
    }

    fn on_round_end(&mut self, stats: &RoundStats, states: &[S]) {
        let mut fields = vec![
            ("event".to_string(), "round_end".to_json()),
            ("round".to_string(), stats.round.to_json()),
            ("privileged".to_string(), stats.privileged.to_json()),
            ("evaluated".to_string(), stats.evaluated.to_json()),
            ("moves_per_rule".to_string(), stats.moves_per_rule.to_json()),
            (
                "duration_micros".to_string(),
                stats.duration_micros.to_json(),
            ),
            ("states".to_string(), states.to_json()),
        ];
        if let Some(b) = &stats.beacon {
            fields.push((
                "beacon".to_string(),
                Json::obj([
                    ("deliveries", b.deliveries.to_json()),
                    ("losses", b.losses.to_json()),
                    ("collisions", b.collisions.to_json()),
                    ("stale_views", b.stale_views.to_json()),
                    ("jitter_abs_sum_micros", b.jitter_abs_sum_micros.to_json()),
                ]),
            ));
        }
        if let Some(rt) = &stats.runtime {
            fields.push((
                "runtime".to_string(),
                Json::obj([
                    ("shard_moves", rt.shard_moves.to_json()),
                    ("frames", rt.frames.to_json()),
                    ("frames_suppressed", rt.frames_suppressed.to_json()),
                    ("bytes_on_wire", rt.bytes_on_wire.to_json()),
                    ("max_channel_depth", rt.max_channel_depth.to_json()),
                    ("frames_dropped", rt.frames_dropped.to_json()),
                    ("frames_duped", rt.frames_duped.to_json()),
                    ("frames_delayed", rt.frames_delayed.to_json()),
                    ("frames_corrupted", rt.frames_corrupted.to_json()),
                    ("restarts", rt.restarts.to_json()),
                    ("byz_rewrites", rt.byz_rewrites.to_json()),
                    ("asym_links_down", rt.asym_links_down.to_json()),
                ]),
            ));
        }
        if let Some(p) = &stats.profile {
            fields.push(("profile".to_string(), profile_json(p)));
        }
        self.push(Json::Object(fields));
    }

    fn on_finish(&mut self, outcome: &Outcome, states: &[S]) {
        let label = match outcome {
            Outcome::Stabilized => "stabilized",
            Outcome::Cycle { .. } => "cycle",
            Outcome::RoundLimit => "round-limit",
        };
        self.push(Json::obj([
            ("event", "finish".to_json()),
            ("outcome", label.to_json()),
            ("stabilized", (*outcome == Outcome::Stabilized).to_json()),
            ("states", states.to_json()),
        ]));
    }
}

/// Reconstruct the trace (`trace[t]` = global state at time `t`) and the
/// stabilization flag from a JSONL log, for feeding into
/// [`crate::record::record`] / [`crate::record::validate_trace`].
///
/// The trace is the `init` state followed by every `round_end` state; the
/// flag comes from the `finish` event. Errors if the log has no `init` or
/// no `finish` event, or if any line fails to parse.
pub fn trace_from_jsonl<S: FromJson>(text: &str) -> Result<(Vec<Vec<S>>, bool), JsonError> {
    let mut trace: Vec<Vec<S>> = Vec::new();
    let mut saw_init = false;
    let mut stabilized: Option<bool> = None;
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        let event = Json::parse(line)?;
        match event.field("event")?.as_str() {
            Some("init") => {
                saw_init = true;
                trace.insert(0, Vec::<S>::from_json(event.field("states")?)?);
            }
            Some("round_end") => {
                trace.push(Vec::<S>::from_json(event.field("states")?)?);
            }
            Some("finish") => {
                stabilized = Some(bool::from_json(event.field("stabilized")?)?);
                if !saw_init {
                    // A fixpoint run emits only `finish`; its single state
                    // is the whole trace.
                    trace.push(Vec::<S>::from_json(event.field("states")?)?);
                    saw_init = true;
                }
            }
            Some("move") | Some("meta") => {}
            _ => return Err(JsonError::new("unknown event type in JSONL log")),
        }
    }
    match stabilized {
        Some(flag) if saw_init => Ok((trace, flag)),
        _ => Err(JsonError::new("JSONL log has no finish event")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_shape_and_roundtrip() {
        let mut log = JsonlEventLog::new();
        let s0 = [0u8, 5];
        let s1 = [5u8, 5];
        log.on_round_start(1, &s0);
        log.on_move(Node(0), 0, &5u8);
        log.on_round_end(
            &RoundStats {
                round: 1,
                privileged: 1,
                evaluated: 2,
                moves_per_rule: vec![1],
                duration_micros: 2,
                beacon: None,
                runtime: None,
                profile: None,
            },
            &s1,
        );
        log.on_finish(&Outcome::Stabilized, &s1);
        assert_eq!(log.lines().len(), 4);
        let (trace, stabilized) = trace_from_jsonl::<u8>(&log.to_jsonl()).unwrap();
        assert!(stabilized);
        assert_eq!(trace, vec![vec![0, 5], vec![5, 5]]);
    }

    #[test]
    fn meta_runtime_and_profile_ride_along_without_breaking_replay() {
        use super::super::{Phase, PhaseSpans, RoundProfile, RuntimeCounters, ShardProfile};
        let mut log = JsonlEventLog::new();
        let s1 = [1u8];
        log.on_round_start(1, &[0u8]);
        let mut spans = PhaseSpans::new();
        spans.add_micros(Phase::Compute, 5, 1);
        log.on_round_end(
            &RoundStats {
                round: 1,
                privileged: 1,
                evaluated: 1,
                moves_per_rule: vec![1],
                duration_micros: 5,
                beacon: None,
                runtime: Some(RuntimeCounters {
                    shard_moves: vec![1],
                    frames: 3,
                    ..RuntimeCounters::default()
                }),
                profile: Some(RoundProfile {
                    shards: vec![ShardProfile {
                        shard: 0,
                        spans,
                        round_micros: 5,
                        inbox_max_depth: 2,
                        inbox_depth: 0,
                    }],
                }),
            },
            &s1,
        );
        log.on_finish(&Outcome::Stabilized, &s1);
        log.push_meta([
            ("protocol".to_string(), "smm".to_json()),
            ("shards".to_string(), 1u64.to_json()),
        ]);
        // Meta lands first; the round_end carries runtime and profile.
        let first = Json::parse(&log.lines()[0]).unwrap();
        assert_eq!(first.get("event").and_then(Json::as_str), Some("meta"));
        assert_eq!(first.get("protocol").and_then(Json::as_str), Some("smm"));
        let round = Json::parse(&log.lines()[2]).unwrap();
        assert_eq!(
            round
                .get("runtime")
                .and_then(|rt| rt.get("frames"))
                .and_then(Json::as_u64),
            Some(3)
        );
        assert_eq!(
            round
                .get("profile")
                .and_then(|p| p.get("straggler"))
                .and_then(Json::as_u64),
            Some(0)
        );
        // The replay path tolerates (skips) the meta event.
        let (trace, stabilized) = trace_from_jsonl::<u8>(&log.to_jsonl()).unwrap();
        assert!(stabilized);
        assert_eq!(trace, vec![vec![0], vec![1]]);
    }

    #[test]
    fn fixpoint_run_is_single_state_trace() {
        let mut log = JsonlEventLog::new();
        let s = [1u8, 1];
        log.on_finish(&Outcome::Stabilized, &s);
        let (trace, stabilized) = trace_from_jsonl::<u8>(&log.to_jsonl()).unwrap();
        assert!(stabilized);
        assert_eq!(trace, vec![vec![1, 1]]);
    }

    #[test]
    fn truncated_log_is_rejected() {
        let mut log = JsonlEventLog::new();
        log.on_round_start(1, &[0u8]);
        assert!(trace_from_jsonl::<u8>(&log.to_jsonl()).is_err());
        assert!(trace_from_jsonl::<u8>("{\"event\":\"bogus\"}\n").is_err());
        assert!(trace_from_jsonl::<u8>("not json\n").is_err());
    }
}
