//! A line-oriented JSON event log of an execution.
//!
//! [`JsonlEventLog`] writes one self-describing JSON object per line:
//! an `init` event carrying the initial global state, a `move` event per
//! applied move, a `round_end` event per round carrying the post-round
//! state, and a terminal `finish` event. Because the per-round states ride
//! along, a JSONL log is convertible back into the trace representation of
//! the [`crate::record`] module with [`trace_from_jsonl`] — so a log
//! captured from a live observed run can be re-validated offline with
//! [`crate::record::validate_trace`], exactly like a recorded trace.

use super::{Observer, RoundStats};
use crate::sync::Outcome;
use selfstab_graph::Node;
use selfstab_json::{FromJson, Json, JsonError, ToJson};

/// Buffers one JSON event per line during a run.
#[derive(Clone, Debug, Default)]
pub struct JsonlEventLog {
    lines: Vec<String>,
}

impl JsonlEventLog {
    /// An empty log.
    pub fn new() -> Self {
        JsonlEventLog::default()
    }

    /// The buffered lines, in emission order.
    pub fn lines(&self) -> &[String] {
        &self.lines
    }

    /// The whole log as one newline-separated string (trailing newline
    /// included, as expected of a JSONL file).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for line in &self.lines {
            out.push_str(line);
            out.push('\n');
        }
        out
    }

    /// Write the log to `path`.
    pub fn write_to(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_jsonl())
    }

    fn push(&mut self, event: Json) {
        self.lines.push(event.to_string());
    }
}

impl<S: ToJson> Observer<S> for JsonlEventLog {
    fn on_round_start(&mut self, round: usize, states: &[S]) {
        if round == 1 {
            self.push(Json::obj([
                ("event", "init".to_json()),
                ("states", states.to_json()),
            ]));
        }
    }

    fn on_move(&mut self, node: Node, rule: usize, next: &S) {
        self.push(Json::obj([
            ("event", "move".to_json()),
            ("node", (node.index() as u64).to_json()),
            ("rule", rule.to_json()),
            ("next", next.to_json()),
        ]));
    }

    fn on_round_end(&mut self, stats: &RoundStats, states: &[S]) {
        let mut fields = vec![
            ("event".to_string(), "round_end".to_json()),
            ("round".to_string(), stats.round.to_json()),
            ("privileged".to_string(), stats.privileged.to_json()),
            ("evaluated".to_string(), stats.evaluated.to_json()),
            ("moves_per_rule".to_string(), stats.moves_per_rule.to_json()),
            (
                "duration_micros".to_string(),
                stats.duration_micros.to_json(),
            ),
            ("states".to_string(), states.to_json()),
        ];
        if let Some(b) = &stats.beacon {
            fields.push((
                "beacon".to_string(),
                Json::obj([
                    ("deliveries", b.deliveries.to_json()),
                    ("losses", b.losses.to_json()),
                    ("collisions", b.collisions.to_json()),
                    ("stale_views", b.stale_views.to_json()),
                    ("jitter_abs_sum_micros", b.jitter_abs_sum_micros.to_json()),
                ]),
            ));
        }
        self.push(Json::Object(fields));
    }

    fn on_finish(&mut self, outcome: &Outcome, states: &[S]) {
        let label = match outcome {
            Outcome::Stabilized => "stabilized",
            Outcome::Cycle { .. } => "cycle",
            Outcome::RoundLimit => "round-limit",
        };
        self.push(Json::obj([
            ("event", "finish".to_json()),
            ("outcome", label.to_json()),
            ("stabilized", (*outcome == Outcome::Stabilized).to_json()),
            ("states", states.to_json()),
        ]));
    }
}

/// Reconstruct the trace (`trace[t]` = global state at time `t`) and the
/// stabilization flag from a JSONL log, for feeding into
/// [`crate::record::record`] / [`crate::record::validate_trace`].
///
/// The trace is the `init` state followed by every `round_end` state; the
/// flag comes from the `finish` event. Errors if the log has no `init` or
/// no `finish` event, or if any line fails to parse.
pub fn trace_from_jsonl<S: FromJson>(text: &str) -> Result<(Vec<Vec<S>>, bool), JsonError> {
    let mut trace: Vec<Vec<S>> = Vec::new();
    let mut saw_init = false;
    let mut stabilized: Option<bool> = None;
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        let event = Json::parse(line)?;
        match event.field("event")?.as_str() {
            Some("init") => {
                saw_init = true;
                trace.insert(0, Vec::<S>::from_json(event.field("states")?)?);
            }
            Some("round_end") => {
                trace.push(Vec::<S>::from_json(event.field("states")?)?);
            }
            Some("finish") => {
                stabilized = Some(bool::from_json(event.field("stabilized")?)?);
                if !saw_init {
                    // A fixpoint run emits only `finish`; its single state
                    // is the whole trace.
                    trace.push(Vec::<S>::from_json(event.field("states")?)?);
                    saw_init = true;
                }
            }
            Some("move") => {}
            _ => return Err(JsonError::new("unknown event type in JSONL log")),
        }
    }
    match stabilized {
        Some(flag) if saw_init => Ok((trace, flag)),
        _ => Err(JsonError::new("JSONL log has no finish event")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_shape_and_roundtrip() {
        let mut log = JsonlEventLog::new();
        let s0 = [0u8, 5];
        let s1 = [5u8, 5];
        log.on_round_start(1, &s0);
        log.on_move(Node(0), 0, &5u8);
        log.on_round_end(
            &RoundStats {
                round: 1,
                privileged: 1,
                evaluated: 2,
                moves_per_rule: vec![1],
                duration_micros: 2,
                beacon: None,
                runtime: None,
            },
            &s1,
        );
        log.on_finish(&Outcome::Stabilized, &s1);
        assert_eq!(log.lines().len(), 4);
        let (trace, stabilized) = trace_from_jsonl::<u8>(&log.to_jsonl()).unwrap();
        assert!(stabilized);
        assert_eq!(trace, vec![vec![0, 5], vec![5, 5]]);
    }

    #[test]
    fn fixpoint_run_is_single_state_trace() {
        let mut log = JsonlEventLog::new();
        let s = [1u8, 1];
        log.on_finish(&Outcome::Stabilized, &s);
        let (trace, stabilized) = trace_from_jsonl::<u8>(&log.to_jsonl()).unwrap();
        assert!(stabilized);
        assert_eq!(trace, vec![vec![1, 1]]);
    }

    #[test]
    fn truncated_log_is_rejected() {
        let mut log = JsonlEventLog::new();
        log.on_round_start(1, &[0u8]);
        assert!(trace_from_jsonl::<u8>(&log.to_jsonl()).is_err());
        assert!(trace_from_jsonl::<u8>("{\"event\":\"bogus\"}\n").is_err());
        assert!(trace_from_jsonl::<u8>("not json\n").is_err());
    }
}
