//! Intra-round phase profiling: the span taxonomy and per-shard profiles.
//!
//! Since the sharded runtime landed, a "round" is no longer one atomic
//! sweep: each worker pipelines guard evaluation, delta-beacon encoding,
//! channel sends, mailbox drains, and two barrier rendezvous. A slow shard,
//! a backpressured channel, or a chaos-induced rebroadcast storm all used
//! to collapse into one opaque [`RoundStats::duration_micros`]. The types
//! here attribute that time: each executor lane (a shard worker, or the
//! single lane of an in-process executor) accumulates **span sums and
//! counts** per [`Phase`] into a [`ShardProfile`], and the per-round
//! [`RoundProfile`] carried by [`RoundStats::profile`] exposes the skew
//! quantities that decide where optimization effort goes — the straggler
//! lane, the max/mean round-time ratio, and the barrier-wait share.
//!
//! Like every other observation, profiles ride behind the zero-cost
//! [`Observer::ENABLED`] guard: the unobserved path never reads a clock.
//!
//! [`RoundStats::duration_micros`]: super::RoundStats::duration_micros
//! [`RoundStats::profile`]: super::RoundStats::profile
//! [`Observer::ENABLED`]: super::Observer::ENABLED

/// One phase of an executor round. The first six are the sharded runtime's
/// worker pipeline; the last three are the in-process executors' serial
/// loop, so a single schema covers every executor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Guard evaluation + move computation over the worker's owned nodes.
    Compute,
    /// Encoding boundary states into per-target beacon frame batches.
    Encode,
    /// Pushing encoded batches into cross-shard channels (includes time
    /// blocked on a full channel — the sender side of backpressure).
    Send,
    /// Draining the mailbox and waiting (bounded spin, then parking) for
    /// the frames the round still expects.
    RecvWait,
    /// Blocked on the round barrier (both rendezvous of the handshake).
    BarrierWait,
    /// Crash-restart state rehydration (chaos injection only).
    Rehydrate,
    /// Guard evaluation + move computation (in-process executors).
    GuardEval,
    /// Move application, excluding observer hooks (in-process executors).
    Apply,
    /// Observer-hook time — gauge evaluation, census counting, trace
    /// assembly — measured so the observation overhead itself is visible
    /// (in-process executors).
    Gauges,
}

/// Every phase, in canonical (pipeline) order.
pub const PHASES: [Phase; Phase::COUNT] = [
    Phase::Compute,
    Phase::Encode,
    Phase::Send,
    Phase::RecvWait,
    Phase::BarrierWait,
    Phase::Rehydrate,
    Phase::GuardEval,
    Phase::Apply,
    Phase::Gauges,
];

impl Phase {
    /// Number of phases in the taxonomy.
    pub const COUNT: usize = 9;

    /// The stable snake_case label used in JSONL artifacts, Chrome traces,
    /// and `analyze` reports.
    pub fn label(self) -> &'static str {
        match self {
            Phase::Compute => "compute",
            Phase::Encode => "encode",
            Phase::Send => "send",
            Phase::RecvWait => "recv_wait",
            Phase::BarrierWait => "barrier_wait",
            Phase::Rehydrate => "rehydrate",
            Phase::GuardEval => "guard_eval",
            Phase::Apply => "apply",
            Phase::Gauges => "gauges",
        }
    }

    /// Inverse of [`Phase::label`], for artifact readers.
    pub fn from_label(label: &str) -> Option<Phase> {
        PHASES.into_iter().find(|p| p.label() == label)
    }

    fn index(self) -> usize {
        PHASES
            .iter()
            .position(|&p| p == self)
            .expect("phase in PHASES")
    }
}

/// Accumulated span sums and counts, one slot per [`Phase`].
///
/// Spans accumulate in nanoseconds (a single guard evaluation on a small
/// shard is far below a microsecond; truncating per-add would report zero)
/// but are exposed in microseconds, the unit every artifact uses.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PhaseSpans {
    nanos: [u64; Phase::COUNT],
    counts: [u64; Phase::COUNT],
}

impl PhaseSpans {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one span of `nanos` nanoseconds in `phase`.
    pub fn add_nanos(&mut self, phase: Phase, nanos: u64) {
        let i = phase.index();
        self.nanos[i] += nanos;
        self.counts[i] += 1;
    }

    /// Record a pre-aggregated span sum (used by artifact readers and
    /// tests; `micros` is converted back to the internal resolution).
    pub fn add_micros(&mut self, phase: Phase, micros: u64, count: u64) {
        let i = phase.index();
        self.nanos[i] += micros * 1_000;
        self.counts[i] += count;
    }

    /// Total time spent in `phase`, microseconds.
    pub fn micros(&self, phase: Phase) -> u64 {
        self.nanos[phase.index()] / 1_000
    }

    /// Number of spans recorded in `phase`.
    pub fn count(&self, phase: Phase) -> u64 {
        self.counts[phase.index()]
    }

    /// Sum of all phase spans, microseconds.
    pub fn total_micros(&self) -> u64 {
        self.nanos.iter().sum::<u64>() / 1_000
    }

    /// Whether any span was recorded at all.
    pub fn is_empty(&self) -> bool {
        self.counts.iter().all(|&c| c == 0)
    }

    /// Fold another accumulator into this one.
    pub fn merge(&mut self, other: &PhaseSpans) {
        for i in 0..Phase::COUNT {
            self.nanos[i] += other.nanos[i];
            self.counts[i] += other.counts[i];
        }
    }

    /// The phases that recorded at least one span, in canonical order,
    /// as `(phase, micros, count)`.
    pub fn recorded(&self) -> impl Iterator<Item = (Phase, u64, u64)> + '_ {
        PHASES
            .into_iter()
            .filter(|&p| self.count(p) > 0)
            .map(|p| (p, self.micros(p), self.count(p)))
    }
}

/// One executor lane's intra-round profile: where its wall-clock went and
/// how deep its inbound mailbox got.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ShardProfile {
    /// The lane: a shard id under the sharded runtime, always 0 for the
    /// single lane of an in-process executor.
    pub shard: usize,
    /// Phase span sums + counts for this round.
    pub spans: PhaseSpans,
    /// Whole-round wall-clock for this lane, microseconds.
    pub round_micros: u64,
    /// The deepest this lane's inbound mailbox got during the round. The
    /// runtime consumes-and-resets the channel's high-water mark at every
    /// round boundary (`Receiver::take_max_depth`), so this gauge is
    /// per-round backpressure, not a cumulative maximum. Always 0 for
    /// in-process lanes, which have no mailbox.
    pub inbox_max_depth: u64,
    /// Mailbox depth after the round's exchange finished draining — frames
    /// already queued for a *future* round. Normally 0.
    pub inbox_depth: u64,
}

/// The per-round profile carried by [`super::RoundStats::profile`]: one
/// [`ShardProfile`] per executor lane.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RoundProfile {
    /// One entry per lane, indexed by position (not necessarily sorted by
    /// shard id; use the `shard` field).
    pub shards: Vec<ShardProfile>,
}

impl RoundProfile {
    /// The straggler: the lane whose round took longest. `None` when the
    /// profile is empty.
    pub fn straggler(&self) -> Option<&ShardProfile> {
        self.shards.iter().max_by_key(|s| (s.round_micros, s.shard))
    }

    /// Longest lane round time, microseconds.
    pub fn max_round_micros(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.round_micros)
            .max()
            .unwrap_or(0)
    }

    /// Mean lane round time, microseconds.
    pub fn mean_round_micros(&self) -> f64 {
        if self.shards.is_empty() {
            return 0.0;
        }
        let sum: u64 = self.shards.iter().map(|s| s.round_micros).sum();
        sum as f64 / self.shards.len() as f64
    }

    /// Skew: max/mean lane round time. 1.0 means perfectly balanced; the
    /// excess over 1.0 is wall-clock lost to the slowest lane. Returns 1.0
    /// for an empty or all-zero profile.
    pub fn skew(&self) -> f64 {
        let mean = self.mean_round_micros();
        if mean <= 0.0 {
            return 1.0;
        }
        self.max_round_micros() as f64 / mean
    }

    /// Fraction of total lane time spent blocked on the round barrier —
    /// the aggregate cost of lane imbalance. 0.0 when nothing was recorded.
    pub fn barrier_wait_share(&self) -> f64 {
        let total: u64 = self.shards.iter().map(|s| s.round_micros).sum();
        if total == 0 {
            return 0.0;
        }
        let barrier: u64 = self
            .shards
            .iter()
            .map(|s| s.spans.micros(Phase::BarrierWait))
            .sum();
        barrier as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip() {
        for p in PHASES {
            assert_eq!(Phase::from_label(p.label()), Some(p));
        }
        assert_eq!(Phase::from_label("no_such_phase"), None);
    }

    #[test]
    fn spans_accumulate_nanos_and_report_micros() {
        let mut s = PhaseSpans::new();
        assert!(s.is_empty());
        // 600ns + 600ns: individually below a microsecond, together 1µs —
        // the reason accumulation is in nanoseconds.
        s.add_nanos(Phase::Compute, 600);
        s.add_nanos(Phase::Compute, 600);
        s.add_nanos(Phase::Send, 2_500);
        assert_eq!(s.micros(Phase::Compute), 1);
        assert_eq!(s.count(Phase::Compute), 2);
        assert_eq!(s.micros(Phase::Send), 2);
        assert_eq!(s.total_micros(), 3);
        assert!(!s.is_empty());
        let recorded: Vec<_> = s.recorded().map(|(p, _, _)| p).collect();
        assert_eq!(recorded, vec![Phase::Compute, Phase::Send]);

        let mut other = PhaseSpans::new();
        other.add_micros(Phase::Compute, 4, 3);
        s.merge(&other);
        assert_eq!(s.micros(Phase::Compute), 5);
        assert_eq!(s.count(Phase::Compute), 5);
    }

    #[test]
    fn round_profile_skew_metrics() {
        let lane = |shard: usize, round: u64, barrier: u64| {
            let mut spans = PhaseSpans::new();
            spans.add_micros(Phase::BarrierWait, barrier, 2);
            ShardProfile {
                shard,
                spans,
                round_micros: round,
                inbox_max_depth: 0,
                inbox_depth: 0,
            }
        };
        let p = RoundProfile {
            shards: vec![lane(0, 100, 10), lane(1, 300, 90), lane(2, 200, 50)],
        };
        assert_eq!(p.straggler().unwrap().shard, 1);
        assert_eq!(p.max_round_micros(), 300);
        assert!((p.mean_round_micros() - 200.0).abs() < 1e-9);
        assert!((p.skew() - 1.5).abs() < 1e-9);
        assert!((p.barrier_wait_share() - 0.25).abs() < 1e-9);

        let empty = RoundProfile::default();
        assert!(empty.straggler().is_none());
        assert_eq!(empty.skew(), 1.0);
        assert_eq!(empty.barrier_wait_share(), 0.0);
    }
}
