//! Round-level observability: zero-cost-when-disabled execution hooks.
//!
//! Every executor in this crate (and the beacon simulator in
//! `selfstab-adhoc`) exposes a `run_observed` entry point that threads an
//! [`Observer`] through the execution loop. The hooks fire once per round
//! (per *move* under the central daemon, per *beacon period* in the
//! simulator) and expose exactly the quantities the paper reasons about:
//! the privileged count, the per-rule move counts, and — through pluggable
//! [`Gauge`]s — protocol-level summaries such as the SMM node-type census
//! of Fig. 2 or the SMI set size.
//!
//! **Zero cost when disabled.** The associated constant
//! [`Observer::ENABLED`] is `false` for the unit observer `()`, and every
//! executor guards its bookkeeping (timers, per-round vectors, hook calls)
//! behind `if O::ENABLED`. Because executors are monomorphized per observer
//! type, `run(..)` — which delegates to `run_observed(.., &mut ())` —
//! compiles to the same loop as before the hooks existed.
//!
//! Three observers ship built in:
//!
//! * [`MetricsCollector`] — per-round convergence metrics and gauges,
//! * [`ChromeTraceWriter`] — a `chrome://tracing` / Perfetto JSON timeline,
//! * [`JsonlEventLog`] — one JSON event per line, round-trippable into the
//!   [`crate::record`] types for offline validation.
//!
//! Observers compose: `(A, B)` runs both, `Option<O>` runs the `Some`
//! variant, and `&mut O` forwards (so an observer can be inspected after
//! the run without being consumed by it).

#![deny(missing_docs)]

use crate::sync::Outcome;
use selfstab_graph::Node;

pub mod chrome;
pub mod jsonl;
pub mod metrics;
pub mod profile;
pub mod window;

pub use chrome::ChromeTraceWriter;
pub use jsonl::{trace_from_jsonl, JsonlEventLog};
pub use metrics::{profile_json, Gauge, MetricsCollector, RoundRecord};
pub use profile::{Phase, PhaseSpans, RoundProfile, ShardProfile, PHASES};
pub use window::{RateWindow, RollingWindow};

/// Beacon-layer counters for one observation period, reported only by the
/// `selfstab-adhoc` beacon simulator (`None` in [`RoundStats::beacon`] for
/// the abstract executors).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BeaconCounters {
    /// Beacon frames delivered to a receiver this period.
    pub deliveries: u64,
    /// Beacon frames lost to the channel this period.
    pub losses: u64,
    /// Beacon frames destroyed by medium contention this period.
    pub collisions: u64,
    /// Neighbor-table entries older than one beacon interval observed at
    /// rule-evaluation time this period (a measure of how stale the local
    /// views driving the moves were).
    pub stale_views: u64,
    /// Sum of absolute beacon-scheduling jitter drawn this period, in
    /// microseconds.
    pub jitter_abs_sum_micros: u64,
}

/// Shard/wire-layer counters for one round, reported only by the sharded
/// message-passing runtime (`selfstab-runtime`); `None` in
/// [`RoundStats::runtime`] for the in-process executors.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RuntimeCounters {
    /// Moves applied this round, per shard (index = shard id).
    pub shard_moves: Vec<u64>,
    /// Beacon frames that crossed a shard boundary this round.
    pub frames: u64,
    /// Total encoded frame bytes that crossed a shard boundary this round
    /// (header + payload).
    pub bytes_on_wire: u64,
    /// The deepest any cross-shard channel got this round (a backpressure
    /// gauge: values near the channel capacity mean senders were blocked).
    pub max_channel_depth: u64,
    /// Boundary beacons *not* sent this round because the node's state did
    /// not change (delta-beacon suppression under the active schedule; 0
    /// under the full schedule, which re-broadcasts every boundary state).
    pub frames_suppressed: u64,
    /// Beacon frames dropped by chaos injection this round (the receiver
    /// keeps its last cached ghost — a stale-view transient fault).
    pub frames_dropped: u64,
    /// Beacon frames duplicated by chaos injection this round (both copies
    /// travel and decode; the second overwrite is idempotent).
    pub frames_duped: u64,
    /// Beacon frames delayed by chaos injection this round (re-delivered k
    /// rounds later, tagged with the delivery round).
    pub frames_delayed: u64,
    /// Beacon frames bit-corrupted by chaos injection and *detected* by the
    /// receiver's wire decode this round (discarded; cached ghost kept).
    pub frames_corrupted: u64,
    /// Shard workers that crashed and restarted with arbitrary rehydrated
    /// state this round (chaos injection only).
    pub restarts: u64,
    /// Byzantine state rewrites applied this round (one per compromised
    /// node per hot round; see `selfstab_engine::adversary::ByzPlan`).
    pub byz_rewrites: u64,
    /// Directed links whose inbound delivery was down this round under the
    /// asymmetric-link model (each leaves a stale perceived state; see
    /// `selfstab_engine::adversary::AsymPlan`).
    pub asym_links_down: u64,
}

impl RuntimeCounters {
    /// Total chaos-injected fault events this round: dropped + duplicated +
    /// delayed + corrupted frames, worker restarts, Byzantine rewrites, and
    /// downed link directions. Zero for every round of a run with no chaos
    /// plan.
    pub fn faults(&self) -> u64 {
        self.frames_dropped
            + self.frames_duped
            + self.frames_delayed
            + self.frames_corrupted
            + self.restarts
            + self.byz_rewrites
            + self.asym_links_down
    }
}

/// What happened in one observed round.
///
/// Under the synchronous daemon a round is one simultaneous firing of all
/// privileged nodes; under the central daemon it is a single move; in the
/// beacon simulator it is one beacon period.
#[derive(Clone, Debug)]
pub struct RoundStats {
    /// 1-based index of the round that was just applied.
    pub round: usize,
    /// Number of privileged nodes at the start of the round (under the
    /// synchronous daemon every one of them moved; in the beacon simulator
    /// this counts the nodes that changed state during the period).
    pub privileged: usize,
    /// Number of guard evaluations the round cost: `n` under the full
    /// sweep, the active-set size under active scheduling (in the beacon
    /// simulator, the rule evaluations performed during the period). The
    /// decay of this count is the frontier of Lemmas 9–10.
    pub evaluated: usize,
    /// Moves applied **in this round only**, indexed like
    /// [`crate::protocol::Protocol::rule_names`].
    pub moves_per_rule: Vec<u64>,
    /// Wall-clock time the round took (simulated time, one beacon
    /// interval, for the beacon simulator).
    pub duration_micros: u64,
    /// Beacon-layer counters (simulator only).
    pub beacon: Option<BeaconCounters>,
    /// Shard/wire counters (sharded runtime only).
    pub runtime: Option<RuntimeCounters>,
    /// Intra-round phase profile, one [`ShardProfile`] per executor lane
    /// (executors that profile their rounds only; `None` elsewhere).
    pub profile: Option<RoundProfile>,
}

/// Execution hooks, called by `run_observed` on every executor.
///
/// All methods default to no-ops so an observer implements only what it
/// needs. The call order per round is `on_round_start` → `on_move` (once
/// per applied move) → `on_round_end`; `on_finish` fires exactly once, when
/// the execution ends for any reason (including immediately, at a
/// fixpoint, in which case no round hooks fire at all).
pub trait Observer<S> {
    /// Whether the executor should spend cycles on observation. Executors
    /// test this *compile-time* constant before timing rounds, assembling
    /// [`RoundStats`], or invoking any hook — the unit observer `()` sets
    /// it to `false`, making the unobserved path cost-free.
    const ENABLED: bool = true;

    /// A round is about to be applied. `round` is 1-based; `states` is the
    /// global state *before* the round.
    fn on_round_start(&mut self, round: usize, states: &[S]) {
        let _ = (round, states);
    }

    /// A node fired rule `rule` and its state is now `next`.
    fn on_move(&mut self, node: Node, rule: usize, next: &S) {
        let _ = (node, rule, next);
    }

    /// A round was applied. `states` is the global state *after* it.
    fn on_round_end(&mut self, stats: &RoundStats, states: &[S]) {
        let _ = (stats, states);
    }

    /// The execution ended with `outcome`; `states` is the final state.
    fn on_finish(&mut self, outcome: &Outcome, states: &[S]) {
        let _ = (outcome, states);
    }
}

/// The disabled observer: all hooks compile away.
impl<S> Observer<S> for () {
    const ENABLED: bool = false;
}

/// Forwarding, so an observer owned by the caller can be passed by mutable
/// reference and inspected after the run.
impl<S, O: Observer<S>> Observer<S> for &mut O {
    const ENABLED: bool = O::ENABLED;

    fn on_round_start(&mut self, round: usize, states: &[S]) {
        (**self).on_round_start(round, states);
    }

    fn on_move(&mut self, node: Node, rule: usize, next: &S) {
        (**self).on_move(node, rule, next);
    }

    fn on_round_end(&mut self, stats: &RoundStats, states: &[S]) {
        (**self).on_round_end(stats, states);
    }

    fn on_finish(&mut self, outcome: &Outcome, states: &[S]) {
        (**self).on_finish(outcome, states);
    }
}

/// Fan-out to two observers (nest tuples for more).
impl<S, A: Observer<S>, B: Observer<S>> Observer<S> for (A, B) {
    const ENABLED: bool = A::ENABLED || B::ENABLED;

    fn on_round_start(&mut self, round: usize, states: &[S]) {
        self.0.on_round_start(round, states);
        self.1.on_round_start(round, states);
    }

    fn on_move(&mut self, node: Node, rule: usize, next: &S) {
        self.0.on_move(node, rule, next);
        self.1.on_move(node, rule, next);
    }

    fn on_round_end(&mut self, stats: &RoundStats, states: &[S]) {
        self.0.on_round_end(stats, states);
        self.1.on_round_end(stats, states);
    }

    fn on_finish(&mut self, outcome: &Outcome, states: &[S]) {
        self.0.on_finish(outcome, states);
        self.1.on_finish(outcome, states);
    }
}

/// A run-time-optional observer: `None` observes nothing (but, unlike
/// `()`, still pays the `ENABLED` bookkeeping — use it to toggle
/// observation from configuration, not to disable it statically).
impl<S, O: Observer<S>> Observer<S> for Option<O> {
    const ENABLED: bool = O::ENABLED;

    fn on_round_start(&mut self, round: usize, states: &[S]) {
        if let Some(o) = self {
            o.on_round_start(round, states);
        }
    }

    fn on_move(&mut self, node: Node, rule: usize, next: &S) {
        if let Some(o) = self {
            o.on_move(node, rule, next);
        }
    }

    fn on_round_end(&mut self, stats: &RoundStats, states: &[S]) {
        if let Some(o) = self {
            o.on_round_end(stats, states);
        }
    }

    fn on_finish(&mut self, outcome: &Outcome, states: &[S]) {
        if let Some(o) = self {
            o.on_finish(outcome, states);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enabled_propagates_through_combinators() {
        struct Probe;
        impl Observer<u8> for Probe {}
        const { assert!(!<() as Observer<u8>>::ENABLED) };
        const { assert!(<Probe as Observer<u8>>::ENABLED) };
        const { assert!(<&mut Probe as Observer<u8>>::ENABLED) };
        const { assert!(<Option<Probe> as Observer<u8>>::ENABLED) };
        const { assert!(<(Probe, Probe) as Observer<u8>>::ENABLED) };
        const { assert!(<((), Probe) as Observer<u8>>::ENABLED) };
        const { assert!(!<((), ()) as Observer<u8>>::ENABLED) };
    }

    #[test]
    fn tuple_fans_out_and_option_gates() {
        #[derive(Default)]
        struct Count {
            starts: usize,
            moves: usize,
            ends: usize,
            finishes: usize,
        }
        impl Observer<u8> for Count {
            fn on_round_start(&mut self, _: usize, _: &[u8]) {
                self.starts += 1;
            }
            fn on_move(&mut self, _: Node, _: usize, _: &u8) {
                self.moves += 1;
            }
            fn on_round_end(&mut self, _: &RoundStats, _: &[u8]) {
                self.ends += 1;
            }
            fn on_finish(&mut self, _: &Outcome, _: &[u8]) {
                self.finishes += 1;
            }
        }
        let stats = RoundStats {
            round: 1,
            privileged: 1,
            evaluated: 1,
            moves_per_rule: vec![1],
            duration_micros: 0,
            beacon: None,
            runtime: None,
            profile: None,
        };
        let mut pair = (Count::default(), Some(Count::default()));
        let mut none: Option<Count> = None;
        let states = [0u8];
        pair.on_round_start(1, &states);
        pair.on_move(Node(0), 0, &1);
        pair.on_round_end(&stats, &states);
        pair.on_finish(&Outcome::Stabilized, &states);
        none.on_round_start(1, &states);
        assert_eq!(
            pair.0.starts + pair.0.moves + pair.0.ends + pair.0.finishes,
            4
        );
        let inner = pair.1.unwrap();
        assert_eq!(inner.starts + inner.moves + inner.ends + inner.finishes, 4);
        assert!(none.is_none());
    }
}
