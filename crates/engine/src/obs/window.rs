//! Rolling-window sample statistics for live telemetry.
//!
//! A resident service cannot report whole-run aggregates — "p99 recovery
//! latency since boot three days ago" hides this hour's regression. The
//! types here keep a bounded ring of the most recent samples and answer
//! windowed and recency-decayed quantiles over it, plus a timestamp ring
//! for event rates. Everything is `std`-only, allocation-bounded by the
//! window capacity, and deterministic given the sample sequence, so the
//! sim environment can proptest telemetry output exactly.

#![deny(missing_docs)]

use std::collections::VecDeque;

use selfstab_analysis::Histogram;

/// A bounded ring of the most recent `u64` samples with windowed and
/// recency-decayed quantiles.
///
/// `push` evicts the oldest sample once the window is full, so memory is
/// fixed at the capacity chosen at construction. Quantile queries sort a
/// copy of the window — `O(W log W)` where `W` is the (small) capacity —
/// which keeps the *recording* path to a ring write and leaves the
/// sorting cost on the scrape path, where it belongs.
#[derive(Clone, Debug)]
pub struct RollingWindow {
    cap: usize,
    samples: VecDeque<u64>,
    pushed: u64,
}

impl RollingWindow {
    /// A window retaining the last `cap` samples (`cap` is clamped to at
    /// least 1).
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        RollingWindow {
            cap,
            samples: VecDeque::with_capacity(cap),
            pushed: 0,
        }
    }

    /// Record a sample, evicting the oldest if the window is full.
    pub fn push(&mut self, value: u64) {
        if self.samples.len() == self.cap {
            self.samples.pop_front();
        }
        self.samples.push_back(value);
        self.pushed = self.pushed.saturating_add(1);
    }

    /// Samples currently retained (≤ capacity).
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples are retained.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Lifetime count of samples ever pushed (monotone; survives eviction).
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// The most recent sample, if any.
    pub fn last(&self) -> Option<u64> {
        self.samples.back().copied()
    }

    /// The largest retained sample, if any.
    pub fn max(&self) -> Option<u64> {
        self.samples.iter().max().copied()
    }

    /// Mean of the retained samples; `None` when empty (never NaN).
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        let sum: u128 = self.samples.iter().map(|&v| v as u128).sum();
        Some(sum as f64 / self.samples.len() as f64)
    }

    /// The smallest retained sample `v` such that at least `q` of the
    /// window is `≤ v` (inverse CDF; `q` clamped to `[0, 1]`). `None`
    /// when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted: Vec<u64> = self.samples.iter().copied().collect();
        sorted.sort_unstable();
        let need = (q.clamp(0.0, 1.0) * sorted.len() as f64).ceil().max(1.0) as usize;
        Some(sorted[need.min(sorted.len()) - 1])
    }

    /// Quantile with samples weighted by recency: the newest sample has
    /// weight 1 and weights halve every `half_life` positions back, so a
    /// burst of recent slow events moves the decayed p99 long before it
    /// would shift the uniform one. `half_life` is clamped to ≥ 1 sample;
    /// `None` when empty.
    pub fn decayed_quantile(&self, q: f64, half_life: f64) -> Option<u64> {
        if self.samples.is_empty() {
            return None;
        }
        let half_life = if half_life.is_finite() && half_life >= 1.0 {
            half_life
        } else {
            1.0
        };
        let newest = self.samples.len() - 1;
        let mut weighted: Vec<(u64, f64)> = self
            .samples
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, 0.5f64.powf((newest - i) as f64 / half_life)))
            .collect();
        weighted.sort_unstable_by_key(|&(v, _)| v);
        let total: f64 = weighted.iter().map(|&(_, w)| w).sum();
        let need = q.clamp(0.0, 1.0) * total;
        let mut seen = 0.0;
        for &(v, w) in &weighted {
            seen += w;
            if seen >= need {
                return Some(v);
            }
        }
        weighted.last().map(|&(v, _)| v)
    }

    /// The retained samples folded into a dense [`Histogram`] (for
    /// [`Histogram::merge`] into cumulative aggregates offline).
    pub fn histogram(&self) -> Histogram {
        Histogram::of(self.samples.iter().map(|&v| v as usize))
    }
}

/// A bounded ring of event timestamps answering "events per second as of
/// now", computed over the retained window.
#[derive(Clone, Debug)]
pub struct RateWindow {
    cap: usize,
    stamps: VecDeque<u64>,
    total: u64,
}

impl RateWindow {
    /// A window retaining the last `cap` event timestamps (clamped ≥ 1).
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        RateWindow {
            cap,
            stamps: VecDeque::with_capacity(cap),
            total: 0,
        }
    }

    /// Record an event at `now_micros` (monotone timestamps expected; a
    /// regression is tolerated and simply shortens the measured span).
    pub fn mark(&mut self, now_micros: u64) {
        if self.stamps.len() == self.cap {
            self.stamps.pop_front();
        }
        self.stamps.push_back(now_micros);
        self.total = self.total.saturating_add(1);
    }

    /// Lifetime count of events ever marked (monotone).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Events per second over the retained window, evaluated at
    /// `now_micros`. Defined as retained-count divided by the span from
    /// the oldest retained stamp to `now` (span clamped to ≥ 1 µs), so
    /// the result is finite — 0.0 when no events are retained, never NaN.
    pub fn per_sec(&self, now_micros: u64) -> f64 {
        let Some(&oldest) = self.stamps.front() else {
            return 0.0;
        };
        let span = now_micros.saturating_sub(oldest).max(1);
        self.stamps.len() as f64 * 1_000_000.0 / span as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_evicts_oldest_and_counts_lifetime() {
        let mut w = RollingWindow::new(3);
        assert!(w.is_empty());
        assert_eq!(w.quantile(0.5), None);
        for v in 1..=5 {
            w.push(v);
        }
        assert_eq!(w.len(), 3);
        assert_eq!(w.pushed(), 5);
        assert_eq!(w.last(), Some(5));
        assert_eq!(w.max(), Some(5));
        // Window holds {3, 4, 5}.
        assert_eq!(w.quantile(0.0), Some(3));
        assert_eq!(w.quantile(0.5), Some(4));
        assert_eq!(w.quantile(1.0), Some(5));
        assert_eq!(w.mean(), Some(4.0));
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut w = RollingWindow::new(0);
        w.push(7);
        w.push(9);
        assert_eq!(w.len(), 1);
        assert_eq!(w.quantile(0.5), Some(9));
    }

    #[test]
    fn decayed_quantile_favors_recent_samples() {
        // 16 old slow samples, then 16 recent fast ones. The uniform
        // median straddles both popuations; a 4-sample half-life decays
        // the old block to negligible weight, so the decayed median (and
        // even the decayed p99) sits in the recent fast block.
        let mut w = RollingWindow::new(32);
        for _ in 0..16 {
            w.push(1000);
        }
        for _ in 0..16 {
            w.push(10);
        }
        assert_eq!(w.quantile(0.99), Some(1000));
        assert_eq!(w.decayed_quantile(0.5, 4.0), Some(10));
        assert!(w.decayed_quantile(0.99, 4.0).unwrap() <= 1000);
        // Degenerate half-life clamps instead of producing NaN weights.
        assert!(w.decayed_quantile(0.5, f64::NAN).is_some());
        assert!(RollingWindow::new(4).decayed_quantile(0.5, 4.0).is_none());
    }

    #[test]
    fn histogram_snapshot_merges() {
        let mut w = RollingWindow::new(4);
        for v in [2, 2, 3, 4, 4] {
            w.push(v);
        }
        // Window holds {2, 3, 4, 4}.
        let h = w.histogram();
        assert_eq!(h.total(), 4);
        assert_eq!(h.count(4), 2);
        let mut cumulative = Histogram::of([1usize]);
        cumulative.merge(&h);
        assert_eq!(cumulative.total(), 5);
    }

    #[test]
    fn rate_window_is_finite() {
        let mut r = RateWindow::new(8);
        assert_eq!(r.per_sec(123), 0.0);
        for i in 0..4 {
            r.mark(i * 1_000_000);
        }
        assert_eq!(r.total(), 4);
        // 4 events retained, oldest at t=0, now=4s → 1 events/sec.
        assert!((r.per_sec(4_000_000) - 1.0).abs() < 1e-9);
        // Clock regression: span clamps to 1 µs, stays finite.
        assert!(r.per_sec(0).is_finite());
        // Eviction: window forgets the oldest stamps.
        for i in 4..20 {
            r.mark(i * 1_000_000);
        }
        assert_eq!(r.total(), 20);
        assert!((r.per_sec(20_000_000) - 1.0).abs() < 0.25);
    }
}
