//! A `chrome://tracing` (Trace Event Format) timeline of an execution.
//!
//! [`ChromeTraceWriter`] emits one complete (`"ph": "X"`) event per round,
//! a counter (`"ph": "C"`) event tracking the privileged-node count, and an
//! instant (`"ph": "i"`) event when the run finishes. The resulting JSON
//! loads directly into `chrome://tracing` or [Perfetto](https://ui.perfetto.dev):
//! the round track shows where convergence time is spent, and the
//! privileged counter visualizes the paper's monotone progress arguments
//! (the count shrinks towards zero as the protocol stabilizes).
//!
//! Timestamps are synthesized from the cumulative round durations, so
//! synchronous-engine traces show wall-clock rounds and beacon-simulator
//! traces show simulated beacon periods.

use super::{Observer, RoundStats, PHASES};
use crate::sync::Outcome;
use selfstab_json::{Json, ToJson};

/// Buffers Trace Event Format events during a run; write the file out with
/// [`ChromeTraceWriter::write_to`] (or grab the JSON string) afterwards.
#[derive(Default)]
pub struct ChromeTraceWriter {
    rule_names: Vec<String>,
    events: Vec<Json>,
    /// Cumulative timeline position, µs.
    ts: u64,
    /// Lanes that already got a `process_name` metadata event (emitted once
    /// per shard, on the first profiled round that mentions it).
    named_lanes: std::collections::BTreeSet<usize>,
}

impl ChromeTraceWriter {
    /// A writer that labels per-rule move counts generically (`rule 0`,
    /// `rule 1`, …).
    pub fn new() -> Self {
        ChromeTraceWriter::default()
    }

    /// A writer that labels per-rule move counts with the protocol's rule
    /// names.
    pub fn with_rule_names(names: &[&str]) -> Self {
        ChromeTraceWriter {
            rule_names: names.iter().map(|s| s.to_string()).collect(),
            ..ChromeTraceWriter::default()
        }
    }

    fn rule_label(&self, rule: usize) -> String {
        self.rule_names
            .get(rule)
            .cloned()
            .unwrap_or_else(|| format!("rule {rule}"))
    }

    /// Number of events buffered so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events have been buffered.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The trace as a Trace Event Format JSON document (object form, with
    /// a `traceEvents` array — both Chrome and Perfetto accept it).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("traceEvents", Json::Array(self.events.clone())),
            ("displayTimeUnit", "ms".to_json()),
        ])
    }

    /// Render the trace document as a compact JSON string.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_string()
    }

    /// Write the trace document to `path`.
    pub fn write_to(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_json_string())
    }
}

impl<S> Observer<S> for ChromeTraceWriter {
    fn on_round_end(&mut self, stats: &RoundStats, _states: &[S]) {
        // Chrome collapses zero-duration slices; floor at 1 µs.
        let dur = stats.duration_micros.max(1);
        let mut args = vec![
            ("privileged".to_string(), stats.privileged.to_json()),
            ("evaluated".to_string(), stats.evaluated.to_json()),
            (
                "moves".to_string(),
                stats.moves_per_rule.iter().sum::<u64>().to_json(),
            ),
        ];
        for (rule, &count) in stats.moves_per_rule.iter().enumerate() {
            if count > 0 {
                args.push((self.rule_label(rule), count.to_json()));
            }
        }
        if let Some(b) = &stats.beacon {
            args.push(("deliveries".to_string(), b.deliveries.to_json()));
            args.push(("losses".to_string(), b.losses.to_json()));
            args.push(("stale_views".to_string(), b.stale_views.to_json()));
        }
        if let Some(rt) = &stats.runtime {
            args.push(("frames".to_string(), rt.frames.to_json()));
            args.push((
                "frames_suppressed".to_string(),
                rt.frames_suppressed.to_json(),
            ));
            args.push(("bytes_on_wire".to_string(), rt.bytes_on_wire.to_json()));
            args.push((
                "max_channel_depth".to_string(),
                rt.max_channel_depth.to_json(),
            ));
        }
        self.events.push(Json::obj([
            ("name", format!("round {}", stats.round).to_json()),
            ("cat", "round".to_json()),
            ("ph", "X".to_json()),
            ("ts", self.ts.to_json()),
            ("dur", dur.to_json()),
            ("pid", 0u64.to_json()),
            ("tid", 0u64.to_json()),
            ("args", Json::Object(args)),
        ]));
        self.events.push(Json::obj([
            ("name", "privileged".to_json()),
            ("ph", "C".to_json()),
            ("ts", self.ts.to_json()),
            ("pid", 0u64.to_json()),
            ("args", Json::obj([("count", stats.privileged.to_json())])),
        ]));
        if let Some(rt) = &stats.runtime {
            // Wire-traffic counter track (sharded runtime only).
            self.events.push(Json::obj([
                ("name", "wire".to_json()),
                ("ph", "C".to_json()),
                ("ts", self.ts.to_json()),
                ("pid", 0u64.to_json()),
                (
                    "args",
                    Json::obj([
                        ("bytes", rt.bytes_on_wire.to_json()),
                        ("channel_depth", rt.max_channel_depth.to_json()),
                        ("frames_suppressed", rt.frames_suppressed.to_json()),
                    ]),
                ),
            ]));
            if rt.faults() > 0 {
                // Injected-fault counter track: emitted only on rounds that
                // recorded chaos events, so fault-free traces are unchanged.
                self.events.push(Json::obj([
                    ("name", "faults".to_json()),
                    ("ph", "C".to_json()),
                    ("ts", self.ts.to_json()),
                    ("pid", 0u64.to_json()),
                    (
                        "args",
                        Json::obj([
                            ("dropped", rt.frames_dropped.to_json()),
                            ("duped", rt.frames_duped.to_json()),
                            ("delayed", rt.frames_delayed.to_json()),
                            ("corrupted", rt.frames_corrupted.to_json()),
                            ("restarts", rt.restarts.to_json()),
                            ("byz_rewrites", rt.byz_rewrites.to_json()),
                            ("asym_links_down", rt.asym_links_down.to_json()),
                        ]),
                    ),
                ]));
            }
        }
        if let Some(profile) = &stats.profile {
            // One nested track per executor lane: pid = shard + 1 keeps the
            // aggregate round track (pid 0) on top, and the B/E span pairs
            // lay the lane's phases out sequentially inside this round's
            // ts window. Span sums are accumulated per phase, so the track
            // shows *where* the lane's round went, not individual calls.
            for lane in &profile.shards {
                let pid = (lane.shard + 1) as u64;
                if self.named_lanes.insert(lane.shard) {
                    self.events.push(Json::obj([
                        ("name", "process_name".to_json()),
                        ("ph", "M".to_json()),
                        ("pid", pid.to_json()),
                        (
                            "args",
                            Json::obj([("name", format!("shard {}", lane.shard).to_json())]),
                        ),
                    ]));
                }
                let mut cursor = self.ts;
                for phase in PHASES {
                    let micros = lane.spans.micros(phase);
                    if micros == 0 {
                        continue;
                    }
                    self.events.push(Json::obj([
                        ("name", phase.label().to_json()),
                        ("cat", "phase".to_json()),
                        ("ph", "B".to_json()),
                        ("ts", cursor.to_json()),
                        ("pid", pid.to_json()),
                        ("tid", 0u64.to_json()),
                        (
                            "args",
                            Json::obj([("count", lane.spans.count(phase).to_json())]),
                        ),
                    ]));
                    cursor += micros;
                    self.events.push(Json::obj([
                        ("name", phase.label().to_json()),
                        ("cat", "phase".to_json()),
                        ("ph", "E".to_json()),
                        ("ts", cursor.to_json()),
                        ("pid", pid.to_json()),
                        ("tid", 0u64.to_json()),
                    ]));
                }
                if stats.runtime.is_some() {
                    // Backpressure gauge: this lane's inbox, sampled (and
                    // re-armed) at the end of the round's exchange.
                    self.events.push(Json::obj([
                        ("name", "inbox depth".to_json()),
                        ("ph", "C".to_json()),
                        ("ts", self.ts.to_json()),
                        ("pid", pid.to_json()),
                        (
                            "args",
                            Json::obj([
                                ("depth", lane.inbox_depth.to_json()),
                                ("max_depth", lane.inbox_max_depth.to_json()),
                            ]),
                        ),
                    ]));
                }
            }
        }
        self.ts += dur;
    }

    fn on_finish(&mut self, outcome: &Outcome, _states: &[S]) {
        let label = match outcome {
            Outcome::Stabilized => "stabilized".to_string(),
            Outcome::Cycle { period, .. } => format!("cycle (period {period})"),
            Outcome::RoundLimit => "round limit".to_string(),
        };
        self.events.push(Json::obj([
            ("name", label.to_json()),
            ("ph", "i".to_json()),
            ("s", "g".to_json()),
            ("ts", self.ts.to_json()),
            ("pid", 0u64.to_json()),
            ("tid", 0u64.to_json()),
        ]));
        // Close the privileged counter track at zero/current level.
        self.events.push(Json::obj([
            ("name", "privileged".to_json()),
            ("ph", "C".to_json()),
            ("ts", self.ts.to_json()),
            ("pid", 0u64.to_json()),
            ("args", Json::obj([("count", 0u64.to_json())])),
        ]));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use selfstab_graph::Node;

    #[test]
    fn emits_loadable_trace_events() {
        let mut w = ChromeTraceWriter::with_rule_names(&["accept", "propose"]);
        let states = [0u8; 3];
        <ChromeTraceWriter as Observer<u8>>::on_round_start(&mut w, 1, &states);
        <ChromeTraceWriter as Observer<u8>>::on_move(&mut w, Node(0), 1, &1u8);
        <ChromeTraceWriter as Observer<u8>>::on_move(&mut w, Node(2), 0, &1u8);
        w.on_round_end(
            &RoundStats {
                round: 1,
                privileged: 2,
                evaluated: 3,
                moves_per_rule: vec![1, 1],
                duration_micros: 7,
                beacon: None,
                runtime: None,
                profile: None,
            },
            &states,
        );
        <ChromeTraceWriter as Observer<u8>>::on_finish(&mut w, &Outcome::Stabilized, &states);
        assert_eq!(w.len(), 4);
        let doc = Json::parse(&w.to_json_string()).unwrap();
        let events = doc.get("traceEvents").and_then(Json::as_array).unwrap();
        assert_eq!(events.len(), 4);
        assert_eq!(events[0].get("ph").and_then(Json::as_str), Some("X"));
        assert_eq!(events[0].get("dur").and_then(Json::as_u64), Some(7));
        let args = events[0].get("args").unwrap();
        assert_eq!(args.get("privileged").and_then(Json::as_u64), Some(2));
        assert_eq!(args.get("accept").and_then(Json::as_u64), Some(1));
        // Counter then instant then final counter.
        assert_eq!(events[1].get("ph").and_then(Json::as_str), Some("C"));
        assert_eq!(events[2].get("ph").and_then(Json::as_str), Some("i"));
        assert_eq!(
            events[2].get("name").and_then(Json::as_str),
            Some("stabilized")
        );
    }

    #[test]
    fn fault_counter_track_appears_only_on_chaotic_rounds() {
        use super::super::RuntimeCounters;
        let mut w = ChromeTraceWriter::new();
        let states = [0u8];
        let mk = |round: usize, dropped: u64| RoundStats {
            round,
            privileged: 1,
            evaluated: 1,
            moves_per_rule: vec![1],
            duration_micros: 5,
            beacon: None,
            runtime: Some(RuntimeCounters {
                shard_moves: vec![1],
                frames: 4,
                frames_dropped: dropped,
                ..RuntimeCounters::default()
            }),
            profile: None,
        };
        w.on_round_end(&mk(1, 0), &states);
        w.on_round_end(&mk(2, 3), &states);
        let doc = w.to_json();
        let faults: Vec<&Json> = doc
            .get("traceEvents")
            .and_then(Json::as_array)
            .unwrap()
            .iter()
            .filter(|e| e.get("name").and_then(Json::as_str) == Some("faults"))
            .collect();
        assert_eq!(faults.len(), 1, "clean round emits no fault counter");
        let args = faults[0].get("args").unwrap();
        assert_eq!(args.get("dropped").and_then(Json::as_u64), Some(3));
        assert_eq!(faults[0].get("ts").and_then(Json::as_u64), Some(5));
    }

    #[test]
    fn profiled_rounds_emit_per_shard_phase_tracks() {
        use super::super::{Phase, PhaseSpans, RoundProfile, RuntimeCounters, ShardProfile};
        let mut w = ChromeTraceWriter::new();
        let states = [0u8; 2];
        let lane = |shard: usize, compute_us: u64| {
            let mut spans = PhaseSpans::new();
            spans.add_micros(Phase::Compute, compute_us, 1);
            spans.add_micros(Phase::BarrierWait, 3, 2);
            ShardProfile {
                shard,
                spans,
                round_micros: compute_us + 3,
                inbox_max_depth: 2,
                inbox_depth: 1,
            }
        };
        let mk = |round: usize| RoundStats {
            round,
            privileged: 1,
            evaluated: 2,
            moves_per_rule: vec![1],
            duration_micros: 20,
            beacon: None,
            runtime: Some(RuntimeCounters {
                shard_moves: vec![1, 0],
                ..RuntimeCounters::default()
            }),
            profile: Some(RoundProfile {
                shards: vec![lane(0, 10), lane(1, 4)],
            }),
        };
        w.on_round_end(&mk(1), &states);
        w.on_round_end(&mk(2), &states);
        let doc = w.to_json();
        let events = doc.get("traceEvents").and_then(Json::as_array).unwrap();
        let by = |ph: &str| -> Vec<&Json> {
            events
                .iter()
                .filter(|e| e.get("ph").and_then(Json::as_str) == Some(ph))
                .collect()
        };
        // process_name metadata once per lane, not once per round.
        let meta = by("M");
        assert_eq!(meta.len(), 2);
        assert_eq!(
            meta[0]
                .get("args")
                .and_then(|a| a.get("name"))
                .and_then(Json::as_str),
            Some("shard 0")
        );
        // Two phases per lane, two lanes, two rounds: 8 B/E pairs, and the
        // span pairs stay inside each round's ts window on pid = shard + 1.
        let begins = by("B");
        let ends = by("E");
        assert_eq!(begins.len(), 8);
        assert_eq!(ends.len(), 8);
        assert_eq!(
            begins[0].get("name").and_then(Json::as_str),
            Some("compute")
        );
        assert_eq!(begins[0].get("pid").and_then(Json::as_u64), Some(1));
        assert_eq!(begins[0].get("ts").and_then(Json::as_u64), Some(0));
        assert_eq!(ends[0].get("ts").and_then(Json::as_u64), Some(10));
        // Round 2's spans start at the round-2 window (ts = 20).
        assert_eq!(begins[4].get("ts").and_then(Json::as_u64), Some(20));
        // One inbox-depth counter per lane per round.
        let depth: Vec<&Json> = by("C")
            .into_iter()
            .filter(|e| e.get("name").and_then(Json::as_str) == Some("inbox depth"))
            .collect();
        assert_eq!(depth.len(), 4);
        assert_eq!(
            depth[0]
                .get("args")
                .and_then(|a| a.get("max_depth"))
                .and_then(Json::as_u64),
            Some(2)
        );
    }

    #[test]
    fn timeline_is_monotone() {
        let mut w = ChromeTraceWriter::new();
        let states = [0u8];
        for round in 1..=3usize {
            <ChromeTraceWriter as Observer<u8>>::on_round_start(&mut w, round, &states);
            w.on_round_end(
                &RoundStats {
                    round,
                    privileged: 1,
                    evaluated: 1,
                    moves_per_rule: vec![1],
                    duration_micros: 10,
                    beacon: None,
                    runtime: None,
                    profile: None,
                },
                &states,
            );
        }
        let doc = w.to_json();
        let ts: Vec<u64> = doc
            .get("traceEvents")
            .and_then(Json::as_array)
            .unwrap()
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .map(|e| e.get("ts").and_then(Json::as_u64).unwrap())
            .collect();
        assert_eq!(ts, vec![0, 10, 20]);
    }
}
