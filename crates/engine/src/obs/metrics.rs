//! Per-round convergence metrics: the paper's quantities, sampled live.
//!
//! [`MetricsCollector`] records, for every observed round, the privileged
//! count, the per-rule move counts, the wall-clock round latency (fed into
//! a log₂-bucketed [`Histogram`]), the beacon-layer counters when present,
//! and a caller-supplied set of [`Gauge`]s evaluated on the post-round
//! global state. Gauges are how protocol-level summaries plug in without
//! the engine depending on any protocol crate: `selfstab-core` provides
//! `smm::types::census_gauges` (the Fig. 2 node-type census and the
//! matched-pair count |M|), and an SMI set-size gauge is a one-line
//! closure.

use super::{BeaconCounters, Observer, RoundProfile, RoundStats, RuntimeCounters, PHASES};
use crate::sync::Outcome;
use selfstab_analysis::Histogram;
use selfstab_json::{Json, ToJson};

/// A named measurement over a global state, evaluated after every round.
pub type Gauge<S> = Box<dyn FnMut(&[S]) -> u64>;

/// One observed round, as recorded by [`MetricsCollector`].
#[derive(Clone, Debug)]
pub struct RoundRecord {
    /// 1-based round index.
    pub round: usize,
    /// Privileged nodes at round start.
    pub privileged: usize,
    /// Guard evaluations the round cost (see [`RoundStats::evaluated`]).
    pub evaluated: usize,
    /// Moves applied this round, per rule.
    pub moves_per_rule: Vec<u64>,
    /// Wall-clock (or simulated) duration of the round, µs.
    pub duration_micros: u64,
    /// Gauge values on the post-round state, index-aligned with
    /// [`MetricsCollector::gauge_names`].
    pub gauges: Vec<u64>,
    /// Beacon-layer counters (simulator runs only).
    pub beacon: Option<BeaconCounters>,
    /// Shard/wire counters (sharded-runtime runs only).
    pub runtime: Option<RuntimeCounters>,
    /// Per-lane phase profile (executors that profile their rounds only).
    pub profile: Option<RoundProfile>,
}

/// Collects per-round convergence metrics during an observed run.
#[derive(Default)]
pub struct MetricsCollector<S> {
    gauge_names: Vec<String>,
    gauge_fns: Vec<Gauge<S>>,
    initial_gauges: Option<Vec<u64>>,
    rounds: Vec<RoundRecord>,
    latency: Histogram,
    outcome: Option<Outcome>,
}

impl<S> MetricsCollector<S> {
    /// A collector with no gauges (privileged counts, per-rule moves and
    /// latencies are always recorded).
    pub fn new() -> Self {
        MetricsCollector {
            gauge_names: Vec::new(),
            gauge_fns: Vec::new(),
            initial_gauges: None,
            rounds: Vec::new(),
            latency: Histogram::new(),
            outcome: None,
        }
    }

    /// Add a named gauge, evaluated on the global state after every round
    /// (and once on the initial state).
    pub fn with_gauge(
        mut self,
        name: impl Into<String>,
        f: impl FnMut(&[S]) -> u64 + 'static,
    ) -> Self {
        self.gauge_names.push(name.into());
        self.gauge_fns.push(Box::new(f));
        self
    }

    /// Add a batch of boxed gauges (e.g. `selfstab-core`'s
    /// `smm::types::census_gauges`).
    pub fn with_gauges(mut self, gauges: impl IntoIterator<Item = (String, Gauge<S>)>) -> Self {
        for (name, f) in gauges {
            self.gauge_names.push(name);
            self.gauge_fns.push(f);
        }
        self
    }

    /// The gauge names, in the order of [`RoundRecord::gauges`].
    pub fn gauge_names(&self) -> &[String] {
        &self.gauge_names
    }

    /// Gauge values on the initial state (recorded when round 1 starts;
    /// `None` if the run was already at a fixpoint).
    pub fn initial_gauges(&self) -> Option<&[u64]> {
        self.initial_gauges.as_deref()
    }

    /// The recorded rounds, in order.
    pub fn rounds(&self) -> &[RoundRecord] {
        &self.rounds
    }

    /// Why the observed execution ended (`None` until `on_finish`).
    pub fn outcome(&self) -> Option<&Outcome> {
        self.outcome.as_ref()
    }

    /// Histogram of round latencies in log₂ buckets: a round of `d` µs
    /// lands in bucket `⌈log₂(d+1)⌉` (bucket 0 = sub-microsecond rounds).
    pub fn latency_histogram(&self) -> &Histogram {
        &self.latency
    }

    /// The time series of one gauge: its value on the initial state (if
    /// recorded) followed by its value after every round. `None` if the
    /// gauge name is unknown.
    pub fn gauge_series(&self, name: &str) -> Option<Vec<u64>> {
        let idx = self.gauge_names.iter().position(|n| n == name)?;
        let mut series = Vec::with_capacity(self.rounds.len() + 1);
        if let Some(init) = &self.initial_gauges {
            series.push(init[idx]);
        }
        series.extend(self.rounds.iter().map(|r| r.gauges[idx]));
        Some(series)
    }

    fn eval_gauges(&mut self, states: &[S]) -> Vec<u64> {
        self.gauge_fns.iter_mut().map(|f| f(states)).collect()
    }

    /// Rounds between the last observed fault event (dropped, duplicated,
    /// delayed or corrupted frame, or a shard restart) and stabilization —
    /// the re-stabilization time under chaos. `None` when the run recorded
    /// no fault events or did not stabilize.
    pub fn recovery_rounds(&self) -> Option<usize> {
        if self.outcome != Some(Outcome::Stabilized) {
            return None;
        }
        let last_fault = self
            .rounds
            .iter()
            .filter(|r| r.runtime.as_ref().is_some_and(|rt| rt.faults() > 0))
            .map(|r| r.round)
            .max()?;
        let last = self.rounds.last().map(|r| r.round).unwrap_or(0);
        Some(last - last_fault)
    }

    /// Render a per-round Markdown table: round, privileged, moves, then
    /// one column per gauge, plus beacon counters when present.
    pub fn render_table(&self) -> String {
        let has_beacon = self.rounds.iter().any(|r| r.beacon.is_some());
        let has_runtime = self.rounds.iter().any(|r| r.runtime.is_some());
        // Chaos columns appear only when some round actually recorded a
        // fault event, so fault-free runs render byte-identical tables.
        let has_chaos = self
            .rounds
            .iter()
            .any(|r| r.runtime.as_ref().is_some_and(|rt| rt.faults() > 0));
        // Adversary columns likewise appear only when a Byzantine rewrite
        // or a downed link direction was actually recorded.
        let has_adv = self.rounds.iter().any(|r| {
            r.runtime
                .as_ref()
                .is_some_and(|rt| rt.byz_rewrites > 0 || rt.asym_links_down > 0)
        });
        // Skew columns only make sense with more than one lane: a serial
        // (single-lane) profile renders the legacy table unchanged.
        let has_skew = self
            .rounds
            .iter()
            .any(|r| r.profile.as_ref().is_some_and(|p| p.shards.len() > 1));
        let mut out = String::from("| round | privileged | evaluated | moves |");
        for name in &self.gauge_names {
            out.push_str(&format!(" {name} |"));
        }
        if has_beacon {
            out.push_str(" deliveries | losses | stale views |");
        }
        if has_runtime {
            out.push_str(" frames | suppressed | wire bytes | max chan depth |");
        }
        if has_chaos {
            out.push_str(" dropped | duped | delayed | corrupted | restarts |");
        }
        if has_adv {
            out.push_str(" byz rewrites | links down |");
        }
        if has_skew {
            out.push_str(" max lane µs | skew | straggler | barrier share |");
        }
        out.push('\n');
        let extra = if has_beacon { 3 } else { 0 }
            + if has_runtime { 4 } else { 0 }
            + if has_chaos { 5 } else { 0 }
            + if has_adv { 2 } else { 0 }
            + if has_skew { 4 } else { 0 };
        out.push_str(&"|---".repeat(4 + self.gauge_names.len() + extra));
        out.push_str("|\n");
        if let Some(init) = &self.initial_gauges {
            out.push_str("| 0 (init) | — | — | — |");
            for v in init {
                out.push_str(&format!(" {v} |"));
            }
            for _ in 0..extra {
                out.push_str(" — |");
            }
            out.push('\n');
        }
        for r in &self.rounds {
            let moves: u64 = r.moves_per_rule.iter().sum();
            out.push_str(&format!(
                "| {} | {} | {} | {moves} |",
                r.round, r.privileged, r.evaluated
            ));
            for v in &r.gauges {
                out.push_str(&format!(" {v} |"));
            }
            if has_beacon {
                let b = r.beacon.clone().unwrap_or_default();
                out.push_str(&format!(
                    " {} | {} | {} |",
                    b.deliveries, b.losses, b.stale_views
                ));
            }
            if has_runtime {
                let rt = r.runtime.clone().unwrap_or_default();
                out.push_str(&format!(
                    " {} | {} | {} | {} |",
                    rt.frames, rt.frames_suppressed, rt.bytes_on_wire, rt.max_channel_depth
                ));
            }
            if has_chaos {
                let rt = r.runtime.clone().unwrap_or_default();
                out.push_str(&format!(
                    " {} | {} | {} | {} | {} |",
                    rt.frames_dropped,
                    rt.frames_duped,
                    rt.frames_delayed,
                    rt.frames_corrupted,
                    rt.restarts
                ));
            }
            if has_adv {
                let rt = r.runtime.clone().unwrap_or_default();
                out.push_str(&format!(" {} | {} |", rt.byz_rewrites, rt.asym_links_down));
            }
            if has_skew {
                match &r.profile {
                    Some(p) => out.push_str(&format!(
                        " {} | {:.2} | {} | {:.2} |",
                        p.max_round_micros(),
                        p.skew(),
                        p.straggler()
                            .map(|s| s.shard.to_string())
                            .unwrap_or_else(|| "—".to_string()),
                        p.barrier_wait_share(),
                    )),
                    None => out.push_str(" — | — | — | — |"),
                }
            }
            out.push('\n');
        }
        out
    }

    /// Serialize everything recorded to JSON.
    pub fn to_json(&self) -> Json {
        let rounds: Vec<Json> = self
            .rounds
            .iter()
            .map(|r| {
                let mut fields = vec![
                    ("round".to_string(), r.round.to_json()),
                    ("privileged".to_string(), r.privileged.to_json()),
                    ("evaluated".to_string(), r.evaluated.to_json()),
                    ("moves_per_rule".to_string(), r.moves_per_rule.to_json()),
                    ("duration_micros".to_string(), r.duration_micros.to_json()),
                    ("gauges".to_string(), r.gauges.to_json()),
                ];
                if let Some(b) = &r.beacon {
                    fields.push(("beacon".to_string(), beacon_json(b)));
                }
                if let Some(rt) = &r.runtime {
                    fields.push(("runtime".to_string(), runtime_json(rt)));
                }
                if let Some(p) = &r.profile {
                    fields.push(("profile".to_string(), profile_json(p)));
                }
                Json::Object(fields)
            })
            .collect();
        Json::obj([
            ("gauge_names", self.gauge_names.to_json()),
            (
                "initial_gauges",
                self.initial_gauges
                    .as_ref()
                    .map(|g| g.to_json())
                    .unwrap_or(Json::Null),
            ),
            ("rounds", Json::Array(rounds)),
            ("latency_log2_histogram", self.latency.to_json()),
            (
                "outcome",
                match &self.outcome {
                    None => Json::Null,
                    Some(Outcome::Stabilized) => "stabilized".to_json(),
                    Some(Outcome::Cycle { period, .. }) => {
                        format!("cycle (period {period})").to_json()
                    }
                    Some(Outcome::RoundLimit) => "round limit".to_json(),
                },
            ),
        ])
    }
}

fn beacon_json(b: &BeaconCounters) -> Json {
    Json::obj([
        ("deliveries", b.deliveries.to_json()),
        ("losses", b.losses.to_json()),
        ("collisions", b.collisions.to_json()),
        ("stale_views", b.stale_views.to_json()),
        ("jitter_abs_sum_micros", b.jitter_abs_sum_micros.to_json()),
    ])
}

fn runtime_json(rt: &RuntimeCounters) -> Json {
    Json::obj([
        ("shard_moves", rt.shard_moves.to_json()),
        ("frames", rt.frames.to_json()),
        ("bytes_on_wire", rt.bytes_on_wire.to_json()),
        ("max_channel_depth", rt.max_channel_depth.to_json()),
        ("frames_suppressed", rt.frames_suppressed.to_json()),
        ("frames_dropped", rt.frames_dropped.to_json()),
        ("frames_duped", rt.frames_duped.to_json()),
        ("frames_delayed", rt.frames_delayed.to_json()),
        ("frames_corrupted", rt.frames_corrupted.to_json()),
        ("restarts", rt.restarts.to_json()),
        ("byz_rewrites", rt.byz_rewrites.to_json()),
        ("asym_links_down", rt.asym_links_down.to_json()),
    ])
}

/// Serialize a [`RoundProfile`] — per-lane phase spans plus the derived
/// skew summary (max/mean lane time, straggler lane, barrier-wait share).
/// Shared by [`MetricsCollector::to_json`] and the JSONL event log so the
/// offline `analyze` report reads one schema regardless of the artifact.
pub fn profile_json(p: &RoundProfile) -> Json {
    let shards: Vec<Json> = p
        .shards
        .iter()
        .map(|lane| {
            let spans: Vec<(String, Json)> = PHASES
                .iter()
                .filter(|&&ph| lane.spans.micros(ph) > 0 || lane.spans.count(ph) > 0)
                .map(|&ph| {
                    (
                        ph.label().to_string(),
                        Json::obj([
                            ("micros", lane.spans.micros(ph).to_json()),
                            ("count", lane.spans.count(ph).to_json()),
                        ]),
                    )
                })
                .collect();
            Json::obj([
                ("shard", lane.shard.to_json()),
                ("round_micros", lane.round_micros.to_json()),
                ("inbox_max_depth", lane.inbox_max_depth.to_json()),
                ("inbox_depth", lane.inbox_depth.to_json()),
                ("spans", Json::Object(spans)),
            ])
        })
        .collect();
    Json::obj([
        ("shards", Json::Array(shards)),
        ("max_round_micros", p.max_round_micros().to_json()),
        ("mean_round_micros", p.mean_round_micros().to_json()),
        ("skew", p.skew().to_json()),
        (
            "straggler",
            p.straggler()
                .map(|s| s.shard.to_json())
                .unwrap_or(Json::Null),
        ),
        ("barrier_wait_share", p.barrier_wait_share().to_json()),
    ])
}

fn log2_bucket(micros: u64) -> usize {
    (u64::BITS - micros.leading_zeros()) as usize
}

impl<S> Observer<S> for MetricsCollector<S> {
    fn on_round_start(&mut self, round: usize, states: &[S]) {
        if round == 1 {
            let init = self.eval_gauges(states);
            self.initial_gauges = Some(init);
        }
    }

    fn on_round_end(&mut self, stats: &RoundStats, states: &[S]) {
        let gauges = self.eval_gauges(states);
        self.latency.add(log2_bucket(stats.duration_micros));
        self.rounds.push(RoundRecord {
            round: stats.round,
            privileged: stats.privileged,
            evaluated: stats.evaluated,
            moves_per_rule: stats.moves_per_rule.clone(),
            duration_micros: stats.duration_micros,
            gauges,
            beacon: stats.beacon.clone(),
            runtime: stats.runtime.clone(),
            profile: stats.profile.clone(),
        });
    }

    fn on_finish(&mut self, outcome: &Outcome, _states: &[S]) {
        self.outcome = Some(outcome.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use selfstab_graph::Node;

    fn stats(round: usize, privileged: usize, micros: u64) -> RoundStats {
        RoundStats {
            round,
            privileged,
            evaluated: privileged,
            moves_per_rule: vec![privileged as u64],
            duration_micros: micros,
            beacon: None,
            runtime: None,
            profile: None,
        }
    }

    #[test]
    fn records_rounds_gauges_and_latency() {
        let mut c: MetricsCollector<u8> =
            MetricsCollector::new().with_gauge("sum", |s: &[u8]| s.iter().map(|&x| x as u64).sum());
        let s0 = [0u8, 2];
        let s1 = [2u8, 2];
        c.on_round_start(1, &s0);
        c.on_move(Node(0), 0, &2);
        c.on_round_end(&stats(1, 1, 3), &s1);
        c.on_finish(&Outcome::Stabilized, &s1);
        assert_eq!(c.initial_gauges(), Some(&[2u64][..]));
        assert_eq!(c.rounds().len(), 1);
        assert_eq!(c.rounds()[0].gauges, vec![4]);
        assert_eq!(c.gauge_series("sum"), Some(vec![2, 4]));
        assert_eq!(c.gauge_series("nope"), None);
        assert_eq!(c.outcome(), Some(&Outcome::Stabilized));
        // 3 µs lands in log2 bucket 2.
        assert_eq!(c.latency_histogram().count(2), 1);
        let table = c.render_table();
        assert!(table.contains("| 0 (init) | — | — | — | 2 |"), "{table}");
        assert!(table.contains("| 1 | 1 | 1 | 1 | 4 |"), "{table}");
        let json = c.to_json();
        assert_eq!(
            json.get("outcome").and_then(Json::as_str),
            Some("stabilized")
        );
        assert_eq!(
            json.get("rounds").and_then(Json::as_array).unwrap().len(),
            1
        );
    }

    #[test]
    fn chaos_columns_appear_only_when_faults_fired() {
        let runtime_stats = |round: usize, dropped: u64, restarts: u64| {
            let mut s = stats(round, 1, 1);
            s.runtime = Some(RuntimeCounters {
                shard_moves: vec![1],
                frames: 2,
                frames_dropped: dropped,
                restarts,
                ..RuntimeCounters::default()
            });
            s
        };

        // A fault-free sharded run keeps the legacy table byte-identical.
        let mut clean: MetricsCollector<u8> = MetricsCollector::new();
        clean.on_round_end(&runtime_stats(1, 0, 0), &[0u8]);
        clean.on_finish(&Outcome::Stabilized, &[0u8]);
        let table = clean.render_table();
        assert!(
            table.contains("| frames | suppressed | wire bytes | max chan depth |"),
            "{table}"
        );
        assert!(!table.contains("dropped"), "{table}");
        assert_eq!(clean.recovery_rounds(), None, "no faults, no recovery");

        // With faults the chaos columns and the recovery measure appear.
        let mut chaotic: MetricsCollector<u8> = MetricsCollector::new();
        chaotic.on_round_end(&runtime_stats(1, 3, 1), &[0u8]);
        chaotic.on_round_end(&runtime_stats(2, 0, 0), &[0u8]);
        chaotic.on_round_end(&runtime_stats(3, 0, 0), &[0u8]);
        chaotic.on_finish(&Outcome::Stabilized, &[0u8]);
        let table = chaotic.render_table();
        assert!(
            table.contains("| dropped | duped | delayed | corrupted | restarts |"),
            "{table}"
        );
        assert!(table.contains("| 3 | 0 | 0 | 0 | 1 |"), "{table}");
        assert_eq!(
            chaotic.recovery_rounds(),
            Some(2),
            "stabilized two rounds after the last fault event"
        );
        let json = chaotic.to_json();
        let rounds = json.get("rounds").and_then(Json::as_array).unwrap();
        let rt = rounds[0].get("runtime").unwrap();
        assert_eq!(rt.get("frames_dropped").and_then(Json::as_u64), Some(3));
        assert_eq!(rt.get("restarts").and_then(Json::as_u64), Some(1));
    }

    #[test]
    fn skew_columns_appear_only_with_multiple_lanes() {
        use super::super::{Phase, PhaseSpans, ShardProfile};
        let lane = |shard: usize, micros: u64, barrier: u64| {
            let mut spans = PhaseSpans::new();
            spans.add_micros(Phase::Compute, micros - barrier, 1);
            spans.add_micros(Phase::BarrierWait, barrier, 2);
            ShardProfile {
                shard,
                spans,
                round_micros: micros,
                inbox_max_depth: shard as u64,
                inbox_depth: 0,
            }
        };

        // Single-lane (serial) profile: the legacy table is unchanged.
        let mut serial: MetricsCollector<u8> = MetricsCollector::new();
        let mut s = stats(1, 1, 5);
        s.profile = Some(RoundProfile {
            shards: vec![lane(0, 5, 0)],
        });
        serial.on_round_end(&s, &[0u8]);
        assert!(!serial.render_table().contains("skew"));

        // Two lanes: skew columns name the straggler.
        let mut sharded: MetricsCollector<u8> = MetricsCollector::new();
        let mut s = stats(1, 1, 10);
        s.profile = Some(RoundProfile {
            shards: vec![lane(0, 10, 2), lane(1, 4, 2)],
        });
        sharded.on_round_end(&s, &[0u8]);
        let table = sharded.render_table();
        assert!(
            table.contains("| max lane µs | skew | straggler | barrier share |"),
            "{table}"
        );
        // max 10, mean 7 → skew 1.43; straggler is lane 0.
        assert!(table.contains("| 10 | 1.43 | 0 |"), "{table}");

        let json = sharded.to_json();
        let p = json.get("rounds").and_then(Json::as_array).unwrap()[0]
            .get("profile")
            .unwrap();
        assert_eq!(p.get("straggler").and_then(Json::as_u64), Some(0));
        assert_eq!(p.get("max_round_micros").and_then(Json::as_u64), Some(10));
        let shards = p.get("shards").and_then(Json::as_array).unwrap();
        let spans = shards[0].get("spans").unwrap();
        assert_eq!(
            spans
                .get("compute")
                .and_then(|s| s.get("micros"))
                .and_then(Json::as_u64),
            Some(8)
        );
        assert_eq!(
            spans
                .get("barrier_wait")
                .and_then(|s| s.get("count"))
                .and_then(Json::as_u64),
            Some(2)
        );
    }

    #[test]
    fn log2_buckets() {
        assert_eq!(log2_bucket(0), 0);
        assert_eq!(log2_bucket(1), 1);
        assert_eq!(log2_bucket(2), 2);
        assert_eq!(log2_bucket(3), 2);
        assert_eq!(log2_bucket(4), 3);
        assert_eq!(log2_bucket(1_000_000), 20);
    }
}
