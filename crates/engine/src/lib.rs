//! Execution engine for self-stabilizing guarded-rule protocols.
//!
//! A self-stabilizing protocol (Dijkstra 1974) is a set of guarded rules
//! `guard(local view) → assignment` per node. Which privileged (rule-enabled)
//! nodes actually move at each instant is decided by a *daemon*:
//!
//! * the **synchronous daemon** ([`sync`]) moves *every* privileged node
//!   simultaneously — this is the beacon-driven model of the paper, where a
//!   round ends once every node has heard every neighbor's state;
//! * the **central daemon** ([`central`]) moves exactly one privileged node
//!   per step — the classical adversarial model the Hsu–Huang baseline was
//!   designed for;
//! * the **distributed daemon** ([`distributed`]) moves an arbitrary
//!   non-empty subset per step, interpolating between the two.
//!
//! On top of the executors the crate provides oscillation detection
//! (non-stabilizing executions provably cycle, because the system is
//! deterministic and finite — [`sync`] catches that), fault injection
//! ([`faults`]), brute-force verification over *all* initial states and all
//! small connected topologies ([`exhaustive`]), and a data-parallel
//! synchronous executor ([`par`]) that is bit-identical to the serial one.
//!
//! Every executor also has an observed entry point
//! (e.g. [`sync::SyncExecutor::run_observed`]) threading the zero-cost
//! [`obs::Observer`] hooks through the loop; [`obs`] ships observers for
//! convergence metrics, Chrome-trace timelines, and JSONL event logs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod active;
pub mod adversary;
pub mod central;
pub mod chaos;
pub mod compose;
pub mod distributed;
pub mod exhaustive;
pub mod faults;
pub mod obs;
pub mod par;
pub mod potential;
pub mod protocol;
pub mod record;
pub mod sync;
#[cfg(test)]
pub(crate) mod testutil;

pub use active::{ActiveSet, Schedule};
pub use adversary::{AsymPlan, ByzPlan, ByzStrategy, Perception};
pub use chaos::{ChaosRun, ChurnFeed, ChurnSchedule};
pub use obs::{Observer, RoundStats, RuntimeCounters};
pub use protocol::{InitialState, Move, Protocol, View, WireError, WireState};
pub use sync::{Outcome, Run, SyncExecutor};
