//! The distributed daemon: an arbitrary non-empty subset of privileged
//! nodes fires at each step.
//!
//! This interpolates between the central daemon (singleton subsets) and the
//! synchronous daemon (the full privileged set, which the paper's beacon
//! model guarantees). The experiment suite uses it to show *why* the paper's
//! algorithms target the synchronous model: protocols proved for one daemon
//! need not converge under another.

use crate::protocol::{InitialState, Move, Protocol, View};
use crate::sync::{Outcome, Run};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use selfstab_graph::{Graph, Node};

/// Subset-selection policy for the distributed daemon.
pub enum SubsetPolicy {
    /// Every privileged node fires independently with probability `p`; if
    /// the sampled subset is empty one uniformly random privileged node
    /// fires instead (the daemon must pick a non-empty subset).
    Bernoulli {
        /// Per-node firing probability.
        p: f64,
        /// Seeded RNG.
        rng: StdRng,
    },
    /// All privileged nodes fire: identical to the synchronous daemon.
    All,
    /// A maximal set of privileged nodes no two of which are adjacent fires
    /// (greedy by index). Simultaneous moves by non-adjacent nodes are
    /// serializable, so this "locally central" subset preserves
    /// central-daemon convergence proofs.
    IndependentGreedy,
    /// Each round every privileged node draws a fresh random priority and
    /// fires iff it strictly beats all privileged neighbors (ties, which
    /// have negligible probability over `u64`, block both). This is the
    /// randomized local-mutual-exclusion daemon refinement of Beauquier,
    /// Datta, Gradinariu & Magniette (DISC 2000) that the paper alludes to;
    /// in a real network the priority rides on the beacon message.
    RandomPriority {
        /// Seeded RNG for the per-round priorities.
        rng: StdRng,
    },
}

impl SubsetPolicy {
    /// Seeded Bernoulli policy.
    pub fn bernoulli(p: f64, seed: u64) -> Self {
        SubsetPolicy::Bernoulli {
            p,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Seeded random-priority local-mutex policy.
    pub fn random_priority(seed: u64) -> Self {
        SubsetPolicy::RandomPriority {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Choose the subset of `privileged` nodes that fires this step.
    /// Public so custom executors (and tests) can reuse the policies.
    pub fn select(&mut self, graph: &Graph, privileged: &[Node]) -> Vec<Node> {
        debug_assert!(!privileged.is_empty());
        match self {
            SubsetPolicy::All => privileged.to_vec(),
            SubsetPolicy::Bernoulli { p, rng } => {
                let mut chosen: Vec<Node> = privileged
                    .iter()
                    .copied()
                    .filter(|_| rng.random_bool(*p))
                    .collect();
                if chosen.is_empty() {
                    chosen.push(privileged[rng.random_range(0..privileged.len())]);
                }
                chosen
            }
            SubsetPolicy::IndependentGreedy => {
                let mut blocked = vec![false; graph.n()];
                let mut chosen = Vec::new();
                for &v in privileged {
                    if !blocked[v.index()] {
                        chosen.push(v);
                        for &u in graph.neighbors(v) {
                            blocked[u.index()] = true;
                        }
                    }
                }
                chosen
            }
            SubsetPolicy::RandomPriority { rng } => {
                let mut priority = vec![None::<u64>; graph.n()];
                for &v in privileged {
                    priority[v.index()] = Some(rng.random());
                }
                privileged
                    .iter()
                    .copied()
                    .filter(|&v| {
                        let mine = priority[v.index()].expect("privileged node has priority");
                        graph
                            .neighbors(v)
                            .iter()
                            .all(|&u| priority[u.index()].is_none_or(|p| mine > p))
                    })
                    .collect()
            }
        }
    }
}

/// Distributed-daemon executor. Reuses [`Run`]/[`Outcome`] from the
/// synchronous module; "rounds" count daemon steps.
pub struct DistributedExecutor<'a, P: Protocol> {
    graph: &'a Graph,
    proto: &'a P,
}

impl<'a, P: Protocol> DistributedExecutor<'a, P> {
    /// New executor on `graph` for `proto`.
    pub fn new(graph: &'a Graph, proto: &'a P) -> Self {
        DistributedExecutor { graph, proto }
    }

    /// Run under the distributed daemon with the given subset policy.
    pub fn run(
        &self,
        init: InitialState<P::State>,
        policy: &mut SubsetPolicy,
        max_steps: usize,
    ) -> Run<P::State> {
        let mut states = init.materialize(self.graph, self.proto);
        let mut moves_per_rule = vec![0u64; self.proto.rule_names().len()];
        let mut step = 0usize;
        loop {
            let privileged: Vec<(Node, Move<P::State>)> = self
                .graph
                .nodes()
                .filter_map(|v| {
                    let view = View::new(v, self.graph.neighbors(v), &states);
                    self.proto.step(view).map(|m| (v, m))
                })
                .collect();
            if privileged.is_empty() {
                return Run {
                    final_states: states,
                    rounds: step,
                    moves_per_rule,
                    outcome: Outcome::Stabilized,
                    trace: None,
                };
            }
            if step >= max_steps {
                return Run {
                    final_states: states,
                    rounds: step,
                    moves_per_rule,
                    outcome: Outcome::RoundLimit,
                    trace: None,
                };
            }
            let nodes: Vec<Node> = privileged.iter().map(|&(v, _)| v).collect();
            let chosen = policy.select(self.graph, &nodes);
            for (v, m) in privileged {
                if chosen.contains(&v) {
                    moves_per_rule[m.rule] += 1;
                    states[v.index()] = m.next;
                }
            }
            step += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::SyncExecutor;
    use crate::testutil::MaxProto;
    use selfstab_graph::generators;

    #[test]
    fn all_policy_matches_synchronous() {
        let g = generators::grid(4, 4);
        let init = InitialState::Random { seed: 3 };
        let sync_run = SyncExecutor::new(&g, &MaxProto).run(init.clone(), 100);
        let dist_run =
            DistributedExecutor::new(&g, &MaxProto).run(init, &mut SubsetPolicy::All, 100);
        assert_eq!(sync_run.final_states, dist_run.final_states);
        assert_eq!(sync_run.rounds, dist_run.rounds);
    }

    #[test]
    fn bernoulli_converges_for_max() {
        let g = generators::cycle(12);
        let mut policy = SubsetPolicy::bernoulli(0.3, 7);
        let run = DistributedExecutor::new(&g, &MaxProto).run(
            InitialState::Random { seed: 4 },
            &mut policy,
            10_000,
        );
        assert!(run.stabilized());
        let max = *run.final_states.iter().max().unwrap();
        assert!(run.final_states.iter().all(|&s| s == max));
    }

    #[test]
    fn independent_greedy_selects_independent_set() {
        let g = generators::path(6);
        let mut policy = SubsetPolicy::IndependentGreedy;
        let all: Vec<Node> = g.nodes().collect();
        let chosen = policy.select(&g, &all);
        for (i, &u) in chosen.iter().enumerate() {
            for &v in &chosen[i + 1..] {
                assert!(!g.has_edge(u, v), "{u:?} and {v:?} adjacent");
            }
        }
        // Greedy by index on a path picks alternating nodes.
        assert_eq!(chosen, vec![Node(0), Node(2), Node(4)]);
    }

    #[test]
    fn random_priority_selects_independent_set() {
        let g = generators::complete(8);
        let mut policy = SubsetPolicy::random_priority(1);
        let all: Vec<Node> = g.nodes().collect();
        for _ in 0..20 {
            let chosen = policy.select(&g, &all);
            // On a complete graph, at most one node can win.
            assert_eq!(chosen.len(), 1);
        }
    }

    #[test]
    fn random_priority_converges_for_max() {
        let g = generators::grid(5, 5);
        let mut policy = SubsetPolicy::random_priority(9);
        let run = DistributedExecutor::new(&g, &MaxProto).run(
            InitialState::Random { seed: 2 },
            &mut policy,
            100_000,
        );
        assert!(run.stabilized());
    }
}
