//! Potential-function tracking along executions.
//!
//! Self-stabilization proofs (the paper's Lemmas 1 and 9–10 included) hinge
//! on a quantity that moves monotonically round over round — `|M_t|` for
//! SMM, the fixed prefix of the ID order for SMI. This module evaluates a
//! user-supplied potential after every round and reports the series plus
//! simple shape facts, so tests can check proof arguments *empirically*
//! instead of only checking endpoints.

use crate::protocol::{InitialState, Protocol};
use crate::sync::{Run, SyncExecutor};
use selfstab_graph::Graph;

/// A recorded potential series: `values[0]` is the initial state's
/// potential, `values[t]` the potential after round `t`.
#[derive(Clone, Debug)]
pub struct PotentialSeries<V> {
    /// The per-round potential values.
    pub values: Vec<V>,
}

impl<V: PartialOrd> PotentialSeries<V> {
    /// Is the series non-decreasing?
    pub fn is_non_decreasing(&self) -> bool {
        self.values.windows(2).all(|w| w[0] <= w[1])
    }

    /// Is the series non-increasing?
    pub fn is_non_increasing(&self) -> bool {
        self.values.windows(2).all(|w| w[0] >= w[1])
    }

    /// Is the series strictly increasing at least every `k` steps — i.e.
    /// over every window of `k` rounds there is strict progress? (The
    /// Lemma 10 shape with `k = 2`.)
    pub fn strictly_increases_every(&self, k: usize) -> bool {
        assert!(k >= 1);
        if self.values.len() <= k {
            return true;
        }
        (0..self.values.len() - k).all(|t| self.values[t] < self.values[t + k])
    }
}

/// Run `proto` synchronously while evaluating `phi` on the global state
/// after every round (and once on the initial state).
pub fn track<P, V, F>(
    graph: &Graph,
    proto: &P,
    init: InitialState<P::State>,
    max_rounds: usize,
    phi: F,
) -> (Run<P::State>, PotentialSeries<V>)
where
    P: Protocol,
    F: Fn(&Graph, &[P::State]) -> V,
{
    let initial_states = init.materialize(graph, proto);
    let mut values = vec![phi(graph, &initial_states)];
    let exec = SyncExecutor::new(graph, proto);
    let run = exec.run_with_observer(
        InitialState::Explicit(initial_states),
        max_rounds,
        |_round, _moves, states| {
            values.push(phi(graph, states));
        },
    );
    (run, PotentialSeries { values })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::MaxProto;
    use selfstab_graph::generators;

    #[test]
    fn series_shape_helpers() {
        let s = PotentialSeries {
            values: vec![1, 1, 2, 2, 3],
        };
        assert!(s.is_non_decreasing());
        assert!(!s.is_non_increasing());
        assert!(s.strictly_increases_every(2));
        assert!(!s.strictly_increases_every(1));
        let short = PotentialSeries { values: vec![5] };
        assert!(short.is_non_decreasing());
        assert!(short.strictly_increases_every(3));
    }

    #[test]
    fn max_proto_sum_is_non_decreasing() {
        let g = generators::grid(4, 4);
        let (run, series) = track(
            &g,
            &MaxProto,
            InitialState::Random { seed: 3 },
            100,
            |_, states| states.iter().map(|&s| s as u64).sum::<u64>(),
        );
        assert!(run.stabilized());
        assert_eq!(series.values.len(), run.rounds() + 1);
        assert!(series.is_non_decreasing());
    }

    #[test]
    fn count_of_maximal_values_strictly_grows() {
        let g = generators::path(12);
        let mut init = vec![0u8; 12];
        init[0] = 3;
        let (run, series) = track(
            &g,
            &MaxProto,
            InitialState::Explicit(init),
            100,
            |_, states| states.iter().filter(|&&s| s == 3).count(),
        );
        assert!(run.stabilized());
        assert!(series.strictly_increases_every(1), "{:?}", series.values);
    }
}
