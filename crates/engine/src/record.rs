//! Recording, serializing, and validating executions.
//!
//! A recorded run is the forensic artifact of a distributed-algorithm bug
//! report: the topology, the protocol's rule names, and the full state
//! trace. [`to_json`]/[`from_json`] round-trip it;
//! [`validate_trace`] replays a trace against a protocol and checks every
//! transition obeys the synchronous semantics — so a trace captured
//! elsewhere (another implementation, a testbed log) can be machine-checked
//! against this reference implementation.

use crate::protocol::Protocol;
use crate::sync::SyncExecutor;
use selfstab_graph::{Graph, Node};
use serde::de::DeserializeOwned;
use serde::{Deserialize, Serialize};

/// A self-contained serialized execution.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RecordedRun<S> {
    /// The topology the run executed on.
    pub graph: Graph,
    /// Rule names of the protocol (for display; not needed to validate).
    pub rule_names: Vec<String>,
    /// `trace[t]` = global state at time `t`.
    pub trace: Vec<Vec<S>>,
    /// Whether the final state is a fixpoint.
    pub stabilized: bool,
}

/// Record an already-executed trace (e.g. `Run::trace`) into a portable
/// structure.
pub fn record<P: Protocol>(
    graph: &Graph,
    proto: &P,
    trace: Vec<Vec<P::State>>,
    stabilized: bool,
) -> RecordedRun<P::State> {
    RecordedRun {
        graph: graph.clone(),
        rule_names: proto.rule_names().iter().map(|s| s.to_string()).collect(),
        trace,
        stabilized,
    }
}

/// Serialize to JSON.
pub fn to_json<S: Serialize>(run: &RecordedRun<S>) -> String {
    serde_json::to_string(run).expect("recorded runs are serializable")
}

/// Deserialize from JSON.
pub fn from_json<S: DeserializeOwned>(s: &str) -> Result<RecordedRun<S>, serde_json::Error> {
    serde_json::from_str(s)
}

/// Why a trace failed validation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceError {
    /// Two consecutive global states differ at a node the protocol did not
    /// move, or agree where it had to move.
    WrongTransition {
        /// The offending round (`t → t+1`).
        round: usize,
        /// The first offending node.
        node: Node,
    },
    /// The trace claims stabilization but the final state has privileged
    /// nodes (or vice versa).
    WrongTermination,
    /// A state vector has the wrong length.
    ShapeMismatch,
}

/// Validate that `rec.trace` is a genuine synchronous execution of `proto`
/// on `rec.graph`: at every step, exactly the privileged nodes move, each
/// to its prescribed next state.
pub fn validate_trace<P: Protocol>(proto: &P, rec: &RecordedRun<P::State>) -> Result<(), TraceError> {
    let exec = SyncExecutor::new(&rec.graph, proto);
    let n = rec.graph.n();
    for states in &rec.trace {
        if states.len() != n {
            return Err(TraceError::ShapeMismatch);
        }
    }
    for (t, pair) in rec.trace.windows(2).enumerate() {
        let (cur, next) = (&pair[0], &pair[1]);
        let moves = exec.privileged_moves(cur);
        let mut expected = cur.clone();
        for (v, m) in moves {
            expected[v.index()] = m.next;
        }
        if let Some(i) = (0..n).find(|&i| expected[i] != next[i]) {
            return Err(TraceError::WrongTransition {
                round: t,
                node: Node::from(i),
            });
        }
    }
    if let Some(last) = rec.trace.last() {
        let quiet = exec.privileged_moves(last).is_empty();
        if quiet != rec.stabilized {
            return Err(TraceError::WrongTermination);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::InitialState;
    use crate::testutil::MaxProto;
    use selfstab_graph::generators;

    fn traced_run() -> (selfstab_graph::Graph, RecordedRun<u8>) {
        let g = generators::grid(3, 3);
        let run = SyncExecutor::new(&g, &MaxProto)
            .with_trace()
            .run(InitialState::Random { seed: 4 }, 100);
        assert!(run.stabilized());
        let rec = record(&g, &MaxProto, run.trace.clone().unwrap(), run.stabilized());
        (g, rec)
    }

    #[test]
    fn json_roundtrip() {
        let (_, rec) = traced_run();
        let json = to_json(&rec);
        let back: RecordedRun<u8> = from_json(&json).unwrap();
        assert_eq!(back.trace, rec.trace);
        assert_eq!(back.stabilized, rec.stabilized);
        assert_eq!(back.graph, rec.graph);
        assert_eq!(back.rule_names, vec!["copy-max"]);
    }

    #[test]
    fn genuine_traces_validate() {
        let (_, rec) = traced_run();
        assert_eq!(validate_trace(&MaxProto, &rec), Ok(()));
    }

    #[test]
    fn tampered_traces_are_rejected() {
        let (_, mut rec) = traced_run();
        // Tamper with a middle state.
        let mid = rec.trace.len() / 2;
        rec.trace[mid][0] = rec.trace[mid][0].wrapping_add(1);
        assert!(matches!(
            validate_trace(&MaxProto, &rec),
            Err(TraceError::WrongTransition { .. })
        ));
    }

    #[test]
    fn wrong_termination_flag_rejected() {
        let (_, mut rec) = traced_run();
        rec.stabilized = false;
        assert_eq!(
            validate_trace(&MaxProto, &rec),
            Err(TraceError::WrongTermination)
        );
    }

    #[test]
    fn shape_mismatch_rejected() {
        let (_, mut rec) = traced_run();
        rec.trace[0].pop();
        assert_eq!(validate_trace(&MaxProto, &rec), Err(TraceError::ShapeMismatch));
    }
}
