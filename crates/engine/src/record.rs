//! Recording, serializing, and validating executions.
//!
//! A recorded run is the forensic artifact of a distributed-algorithm bug
//! report: the topology, the protocol's rule names, and the full state
//! trace. [`to_json`]/[`from_json`] round-trip it;
//! [`validate_trace`] replays a trace against a protocol and checks every
//! transition obeys the synchronous semantics — so a trace captured
//! elsewhere (another implementation, a testbed log) can be machine-checked
//! against this reference implementation.

use crate::protocol::Protocol;
use crate::sync::SyncExecutor;
use selfstab_graph::{Graph, Node};
use selfstab_json::{FromJson, Json, JsonError, ToJson};
use std::fmt;

/// A self-contained serialized execution.
#[derive(Clone, Debug)]
pub struct RecordedRun<S> {
    /// The topology the run executed on.
    pub graph: Graph,
    /// Rule names of the protocol (for display; not needed to validate).
    pub rule_names: Vec<String>,
    /// `trace[t]` = global state at time `t`.
    pub trace: Vec<Vec<S>>,
    /// Whether the final state is a fixpoint.
    pub stabilized: bool,
}

/// Record an already-executed trace (e.g. `Run::trace`) into a portable
/// structure.
pub fn record<P: Protocol>(
    graph: &Graph,
    proto: &P,
    trace: Vec<Vec<P::State>>,
    stabilized: bool,
) -> RecordedRun<P::State> {
    RecordedRun {
        graph: graph.clone(),
        rule_names: proto.rule_names().iter().map(|s| s.to_string()).collect(),
        trace,
        stabilized,
    }
}

impl<S: ToJson> ToJson for RecordedRun<S> {
    fn to_json(&self) -> Json {
        Json::obj([
            ("graph", self.graph.to_json()),
            ("rule_names", self.rule_names.to_json()),
            ("trace", self.trace.to_json()),
            ("stabilized", self.stabilized.to_json()),
        ])
    }
}

impl<S: FromJson> FromJson for RecordedRun<S> {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(RecordedRun {
            graph: Graph::from_json(value.field("graph")?)?,
            rule_names: Vec::<String>::from_json(value.field("rule_names")?)?,
            trace: Vec::<Vec<S>>::from_json(value.field("trace")?)?,
            stabilized: bool::from_json(value.field("stabilized")?)?,
        })
    }
}

/// Serialize to JSON.
pub fn to_json<S: ToJson>(run: &RecordedRun<S>) -> String {
    run.to_json().to_string()
}

/// Deserialize from JSON.
pub fn from_json<S: FromJson>(s: &str) -> Result<RecordedRun<S>, JsonError> {
    RecordedRun::from_json(&Json::parse(s)?)
}

/// Why a trace failed validation.
///
/// Every variant names the offending round, and the [`fmt::Display`] output
/// includes it, so a rejected testbed log can be opened at the right line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceError {
    /// A node changed state in round `t → t+1` although no rule was
    /// enabled for it at time `t`.
    UnprivilegedMove {
        /// The offending round (transition `t → t+1`).
        round: usize,
        /// The node that moved without privilege.
        node: Node,
    },
    /// A node was privileged at time `t` but its state is unchanged at
    /// `t+1` — illegal under the synchronous daemon, where every
    /// privileged node moves.
    MissedMove {
        /// The offending round (transition `t → t+1`).
        round: usize,
        /// The privileged node that failed to move.
        node: Node,
    },
    /// A privileged node moved, but not to the state its enabled rule
    /// prescribes.
    WrongTransition {
        /// The offending round (`t → t+1`).
        round: usize,
        /// The first offending node.
        node: Node,
    },
    /// The trace claims stabilization but the final state has privileged
    /// nodes (or vice versa).
    WrongTermination {
        /// Index of the final state in the trace.
        round: usize,
    },
    /// A state vector has the wrong length.
    ShapeMismatch {
        /// Index of the malformed state vector.
        round: usize,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::UnprivilegedMove { round, node } => write!(
                f,
                "round {round}: node {node:?} moved without being privileged"
            ),
            TraceError::MissedMove { round, node } => {
                write!(f, "round {round}: privileged node {node:?} failed to move")
            }
            TraceError::WrongTransition { round, node } => write!(
                f,
                "round {round}: node {node:?} moved to a state its enabled rule does not prescribe"
            ),
            TraceError::WrongTermination { round } => write!(
                f,
                "round {round}: stabilization flag contradicts the final state's privileges"
            ),
            TraceError::ShapeMismatch { round } => write!(
                f,
                "round {round}: state vector length does not match the graph"
            ),
        }
    }
}

impl std::error::Error for TraceError {}

/// Validate that `rec.trace` is a genuine synchronous execution of `proto`
/// on `rec.graph`: at every step, exactly the privileged nodes move, each
/// to its prescribed next state.
pub fn validate_trace<P: Protocol>(
    proto: &P,
    rec: &RecordedRun<P::State>,
) -> Result<(), TraceError> {
    let exec = SyncExecutor::new(&rec.graph, proto);
    let n = rec.graph.n();
    for (t, states) in rec.trace.iter().enumerate() {
        if states.len() != n {
            return Err(TraceError::ShapeMismatch { round: t });
        }
    }
    for (t, pair) in rec.trace.windows(2).enumerate() {
        let (cur, next) = (&pair[0], &pair[1]);
        let moves = exec.privileged_moves(cur);
        let mut expected = cur.clone();
        for (v, m) in moves {
            expected[v.index()] = m.next;
        }
        for i in 0..n {
            if expected[i] == next[i] {
                continue;
            }
            let node = Node::from(i);
            let moved = cur[i] != next[i];
            let privileged = expected[i] != cur[i];
            return Err(match (privileged, moved) {
                (false, _) => TraceError::UnprivilegedMove { round: t, node },
                (true, false) => TraceError::MissedMove { round: t, node },
                (true, true) => TraceError::WrongTransition { round: t, node },
            });
        }
    }
    if let Some(last) = rec.trace.last() {
        let quiet = exec.privileged_moves(last).is_empty();
        if quiet != rec.stabilized {
            return Err(TraceError::WrongTermination {
                round: rec.trace.len() - 1,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::InitialState;
    use crate::testutil::MaxProto;
    use selfstab_graph::generators;

    fn traced_run() -> (selfstab_graph::Graph, RecordedRun<u8>) {
        let g = generators::grid(3, 3);
        let run = SyncExecutor::new(&g, &MaxProto)
            .with_trace()
            .run(InitialState::Random { seed: 4 }, 100);
        assert!(run.stabilized());
        let rec = record(&g, &MaxProto, run.trace.clone().unwrap(), run.stabilized());
        (g, rec)
    }

    #[test]
    fn json_roundtrip() {
        let (_, rec) = traced_run();
        let json = to_json(&rec);
        let back: RecordedRun<u8> = from_json(&json).unwrap();
        assert_eq!(back.trace, rec.trace);
        assert_eq!(back.stabilized, rec.stabilized);
        assert_eq!(back.graph, rec.graph);
        assert_eq!(back.rule_names, vec!["copy-max"]);
    }

    #[test]
    fn genuine_traces_validate() {
        let (_, rec) = traced_run();
        assert_eq!(validate_trace(&MaxProto, &rec), Ok(()));
    }

    #[test]
    fn tampered_traces_are_rejected() {
        let (_, mut rec) = traced_run();
        // Tamper with a middle state.
        let mid = rec.trace.len() / 2;
        rec.trace[mid][0] = rec.trace[mid][0].wrapping_add(1);
        let err = validate_trace(&MaxProto, &rec).unwrap_err();
        assert!(
            matches!(
                err,
                TraceError::UnprivilegedMove { .. }
                    | TraceError::MissedMove { .. }
                    | TraceError::WrongTransition { .. }
            ),
            "{err:?}"
        );
    }

    /// Satellite: the two asymmetric tamper branches, each surviving a JSON
    /// round-trip, each reporting the exact offending round in `Display`.
    #[test]
    fn unprivileged_move_caught_after_roundtrip() {
        let (g, rec) = traced_run();
        let exec = SyncExecutor::new(&g, &MaxProto);
        // Find a (round, node) where the node is NOT privileged, then make
        // it move anyway.
        let (t, v) = (0..rec.trace.len() - 1)
            .find_map(|t| {
                let moves = exec.privileged_moves(&rec.trace[t]);
                (0..g.n())
                    .map(Node::from)
                    .find(|v| moves.iter().all(|(u, _)| u != v))
                    .map(|v| (t, v))
            })
            .expect("some node is unprivileged at some round");
        let mut bad = rec.clone();
        bad.trace[t + 1][v.index()] = bad.trace[t][v.index()].wrapping_add(101);
        let back: RecordedRun<u8> = from_json(&to_json(&bad)).unwrap();
        let err = validate_trace(&MaxProto, &back).unwrap_err();
        assert_eq!(err, TraceError::UnprivilegedMove { round: t, node: v });
        assert!(err.to_string().contains(&format!("round {t}")), "{err}");
        assert!(
            err.to_string().contains("without being privileged"),
            "{err}"
        );
    }

    #[test]
    fn missed_move_caught_after_roundtrip() {
        let (g, rec) = traced_run();
        let exec = SyncExecutor::new(&g, &MaxProto);
        // Find a (round, node) where the node IS privileged, then freeze it.
        let (t, v) = (0..rec.trace.len() - 1)
            .find_map(|t| {
                exec.privileged_moves(&rec.trace[t])
                    .first()
                    .map(|(u, _)| (t, *u))
            })
            .expect("a non-final round has a privileged node");
        let mut bad = rec.clone();
        bad.trace[t + 1][v.index()] = bad.trace[t][v.index()];
        let back: RecordedRun<u8> = from_json(&to_json(&bad)).unwrap();
        let err = validate_trace(&MaxProto, &back).unwrap_err();
        assert_eq!(err, TraceError::MissedMove { round: t, node: v });
        assert!(err.to_string().contains(&format!("round {t}")), "{err}");
        assert!(err.to_string().contains("failed to move"), "{err}");
    }

    #[test]
    fn wrong_termination_flag_rejected() {
        let (_, mut rec) = traced_run();
        rec.stabilized = false;
        let last = rec.trace.len() - 1;
        assert_eq!(
            validate_trace(&MaxProto, &rec),
            Err(TraceError::WrongTermination { round: last })
        );
    }

    #[test]
    fn shape_mismatch_rejected() {
        let (_, mut rec) = traced_run();
        rec.trace[0].pop();
        assert_eq!(
            validate_trace(&MaxProto, &rec),
            Err(TraceError::ShapeMismatch { round: 0 })
        );
    }
}
