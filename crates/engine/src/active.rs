//! Active-set (dirty-node) round scheduling.
//!
//! The synchronous daemon's semantics are defined by a full sweep: every
//! round, every node's guards are evaluated against the previous round's
//! states. But a guard is a pure function of the node's *closed
//! neighborhood* `N[v] = {v} ∪ N(v)` — exactly the information a beacon
//! round delivers — so re-evaluating a node whose closed neighborhood did
//! not change must return the same answer it returned last round. Under the
//! synchronous daemon "the same answer" is always *not privileged*: a node
//! that was privileged in round `r` moved in round `r` (every privileged
//! node fires), so it is in its own closed neighborhood's dirty set for
//! round `r + 1`.
//!
//! It follows that the set
//!
//! ```text
//! active(r + 1) = ⋃ { N[u] : u moved in round r },   active(1) = V
//! ```
//!
//! is a superset of the privileged set of round `r + 1`, and evaluating
//! only `active(r + 1)` yields move-for-move, state-for-state, and
//! round-for-round identical executions to the full sweep — this is pure
//! evaluation pruning, not a different daemon. The paper's own analysis
//! says this prunes a lot: after round 1 the `A¹`/`P_A` classes are empty
//! (Lemmas 4–7) and while moves continue only a shrinking frontier is
//! privileged (Lemmas 9–10), so total evaluation work tracks *moves*, not
//! `n · rounds`.
//!
//! [`ActiveSet`] is the worklist shared by [`crate::sync::SyncExecutor`],
//! [`crate::par::ParSyncExecutor`], and the sharded runtime executor. Cost
//! per round is `O(f log f)` for a frontier of `f` dirty nodes (marking is
//! `O(1)` amortized per closed-neighborhood edge; one sort restores the
//! node order the executors report moves in), independent of `n` after the
//! initial full round.

use selfstab_graph::{Graph, Node};

/// How an executor decides which nodes to evaluate each round.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum Schedule {
    /// Evaluate every node every round (the literal paper semantics).
    Full,
    /// Evaluate only nodes whose closed neighborhood changed in the
    /// previous round. Identical results, provably (and property-tested).
    #[default]
    Active,
}

impl Schedule {
    /// Parse a CLI-style name (`full` / `active`).
    pub fn parse(name: &str) -> Result<Schedule, String> {
        match name {
            "full" => Ok(Schedule::Full),
            "active" => Ok(Schedule::Active),
            other => Err(format!("unknown schedule '{other}' (expected full|active)")),
        }
    }
}

impl std::fmt::Display for Schedule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Schedule::Full => "full",
            Schedule::Active => "active",
        })
    }
}

/// A deduplicating worklist of dirty nodes, iterated in node order.
///
/// The two-phase protocol per round is: mark (`insert` /
/// [`ActiveSet::insert_closed`]) while applying moves, then [`ActiveSet::seal`]
/// once to restore sorted order before the next evaluation pass. Executors
/// keep two sets and ping-pong between them; [`ActiveSet::clear`] is `O(len)`,
/// not `O(n)`.
#[derive(Clone, Debug)]
pub struct ActiveSet {
    in_set: Vec<bool>,
    nodes: Vec<Node>,
}

impl ActiveSet {
    /// An empty set over `n` nodes.
    pub fn empty(n: usize) -> Self {
        ActiveSet {
            in_set: vec![false; n],
            nodes: Vec::new(),
        }
    }

    /// The full set over `n` nodes (round 1: every node is dirty).
    pub fn full(n: usize) -> Self {
        ActiveSet {
            in_set: vec![true; n],
            nodes: (0..n).map(|i| Node(i as u32)).collect(),
        }
    }

    /// Mark one node dirty (no-op if already marked).
    pub fn insert(&mut self, v: Node) {
        if !self.in_set[v.index()] {
            self.in_set[v.index()] = true;
            self.nodes.push(v);
        }
    }

    /// Mark the closed neighborhood `N[v]` dirty — the propagation rule for
    /// a node `v` that just moved.
    pub fn insert_closed(&mut self, graph: &Graph, v: Node) {
        self.insert(v);
        for &w in graph.neighbors(v) {
            self.insert(w);
        }
    }

    /// Restore node order after a marking phase. Call once per round,
    /// before [`ActiveSet::nodes`] feeds the next evaluation pass.
    pub fn seal(&mut self) {
        self.nodes.sort_unstable();
    }

    /// The dirty nodes, in node order if [`ActiveSet::seal`] was called
    /// after the last insertion.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Whether `v` is marked dirty.
    pub fn contains(&self, v: Node) -> bool {
        self.in_set[v.index()]
    }

    /// Number of dirty nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether no node is dirty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Unmark everything, in `O(len)`.
    pub fn clear(&mut self) {
        for v in self.nodes.drain(..) {
            self.in_set[v.index()] = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use selfstab_graph::generators;

    #[test]
    fn full_set_is_every_node_in_order() {
        let s = ActiveSet::full(4);
        assert_eq!(s.len(), 4);
        assert!(!s.is_empty());
        assert_eq!(s.nodes(), &[Node(0), Node(1), Node(2), Node(3)]);
        assert!(s.contains(Node(3)));
    }

    #[test]
    fn insert_dedups_and_seal_sorts() {
        let mut s = ActiveSet::empty(5);
        s.insert(Node(3));
        s.insert(Node(1));
        s.insert(Node(3));
        s.seal();
        assert_eq!(s.nodes(), &[Node(1), Node(3)]);
        assert!(s.contains(Node(1)));
        assert!(!s.contains(Node(0)));
    }

    #[test]
    fn insert_closed_marks_the_closed_neighborhood() {
        let g = generators::star(5); // hub 0, leaves 1..=4
        let mut s = ActiveSet::empty(5);
        s.insert_closed(&g, Node(2));
        s.seal();
        assert_eq!(s.nodes(), &[Node(0), Node(2)]);
        let mut s = ActiveSet::empty(5);
        s.insert_closed(&g, Node(0));
        s.seal();
        assert_eq!(s.len(), 5, "hub's closed neighborhood is everything");
    }

    #[test]
    fn clear_resets_flags_for_reuse() {
        let g = generators::cycle(6);
        let mut s = ActiveSet::empty(6);
        s.insert_closed(&g, Node(0));
        s.clear();
        assert!(s.is_empty());
        assert!((0..6).all(|i| !s.contains(Node(i as u32))));
        s.insert(Node(5));
        s.seal();
        assert_eq!(s.nodes(), &[Node(5)]);
    }

    #[test]
    fn schedule_parses_and_displays() {
        assert_eq!(Schedule::parse("full"), Ok(Schedule::Full));
        assert_eq!(Schedule::parse("active"), Ok(Schedule::Active));
        assert!(Schedule::parse("lazy").is_err());
        assert_eq!(Schedule::Active.to_string(), "active");
        assert_eq!(Schedule::Full.to_string(), "full");
        assert_eq!(Schedule::default(), Schedule::Active);
    }
}
