//! Fault injection: transient state corruption and topology churn.
//!
//! The defining property of a self-stabilizing protocol is recovery from
//! *any* transient fault: corrupted memory is just an arbitrary state, and a
//! topology change (the paper's motivating fault: hosts moving in and out of
//! radio range) leaves the old state vector in place on a new graph. Both
//! are modelled here as transformations of a stabilized state vector, after
//! which the executor is re-run to measure **re-stabilization cost**.

use crate::protocol::{InitialState, Protocol};
use crate::sync::{Run, SyncExecutor};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use selfstab_graph::mutate::{Churn, TopologyEvent};
use selfstab_graph::{Graph, Node};

/// Why a fault-recovery experiment could not run (consistent with the
/// runtime's typed `RuntimeError`: experiment preconditions are reported,
/// not panicked).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultError {
    /// The pre-fault run did not stabilize within the round budget; there
    /// is no legitimate configuration to perturb. Oscillating protocols
    /// (e.g. the clockwise-C4 ablation) land here instead of panicking.
    InitialRunNotStabilized {
        /// The round budget that was exhausted.
        max_rounds: usize,
    },
}

impl std::fmt::Display for FaultError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultError::InitialRunNotStabilized { max_rounds } => write!(
                f,
                "protocol did not stabilize within {max_rounds} rounds before fault injection"
            ),
        }
    }
}

impl std::error::Error for FaultError {}

/// A crash-restart scheduled *inside* a run, for the in-process executors
/// ([`SyncExecutor`] / `ParSyncExecutor`): entering round `round` (0-based,
/// counting applied rounds — the same clock as the sharded runtime's
/// `CrashSpec`), `ceil(frac · n)` nodes lose their state and rehydrate with
/// arbitrary values, the paper's adversarial-restart fault fired mid-run
/// instead of between runs ([`corrupt_and_recover`]).
///
/// Victims are chosen by a partial Fisher–Yates over a selection stream
/// derived from `seed`, then rehydrated **in ascending node order** from a
/// fresh generator seeded with `seed` itself. With `frac = 1.0` the
/// selection stream is unused and the procedure is exactly the sharded
/// runtime's crash-restart of one shard holding the whole graph, so the
/// equivalence suite pins serial crash semantics against the runtime's at
/// 1 shard by passing `FaultPlan::restart_seed(0, round)` as `seed`.
#[derive(Clone, Debug, PartialEq)]
pub struct CrashAt {
    /// Round at whose top the crash fires (0-based applied-round count).
    pub round: usize,
    /// Fraction of the nodes that crash, in `(0, 1]`.
    pub frac: f64,
    /// Seed for victim selection and state rehydration.
    pub seed: u64,
}

impl CrashAt {
    /// Parse a CLI-style `<round>:<frac>` spec (seed 0; attach one with
    /// [`CrashAt::with_seed`]).
    pub fn parse(spec: &str) -> Result<CrashAt, String> {
        let (round, frac) = spec
            .split_once(':')
            .ok_or_else(|| format!("bad crash spec '{spec}' (expected <round>:<frac>)"))?;
        let round: usize = round
            .parse()
            .map_err(|_| format!("bad crash round '{round}' in '{spec}'"))?;
        let frac: f64 = frac
            .parse()
            .map_err(|_| format!("bad crash fraction '{frac}' in '{spec}'"))?;
        if !(frac > 0.0 && frac <= 1.0) {
            return Err(format!(
                "crash fraction must be in (0, 1], got {frac} in '{spec}'"
            ));
        }
        Ok(CrashAt {
            round,
            frac,
            seed: 0,
        })
    }

    /// Replace the rehydration seed.
    pub fn with_seed(mut self, seed: u64) -> CrashAt {
        self.seed = seed;
        self
    }

    /// Number of victims on an `n`-node graph: `ceil(frac · n)`, clamped
    /// to `1..=n` (for `n > 0`).
    pub fn victims(&self, n: usize) -> usize {
        ((self.frac * n as f64).ceil() as usize).clamp(1, n.max(1))
    }

    /// Fire the crash: overwrite the victims' states with arbitrary ones,
    /// in ascending node order. Returns the victims, sorted.
    pub fn apply<P: Protocol>(
        &self,
        proto: &P,
        graph: &Graph,
        states: &mut [P::State],
    ) -> Vec<Node> {
        assert_eq!(states.len(), graph.n());
        let n = graph.n();
        let k = self.victims(n);
        let mut victims: Vec<Node> = graph.nodes().collect();
        if k < n {
            let mut pick = StdRng::seed_from_u64(self.seed ^ 0x7c7a_15eb_ca5e_5eed);
            for i in 0..k {
                let j = pick.random_range(i..victims.len());
                victims.swap(i, j);
            }
            victims.truncate(k);
            victims.sort();
        }
        // A fresh generator, consumed in node order: with every node a
        // victim this is byte-for-byte the runtime's shard rehydration.
        let mut rng = StdRng::seed_from_u64(self.seed);
        for &v in &victims {
            states[v.index()] = proto.arbitrary_state(v, graph.neighbors(v), &mut rng);
        }
        victims
    }
}

/// Overwrite the states of `k` distinct random nodes with arbitrary states.
/// Returns the corrupted nodes.
pub fn corrupt_random_nodes<P: Protocol>(
    proto: &P,
    graph: &Graph,
    states: &mut [P::State],
    k: usize,
    rng: &mut StdRng,
) -> Vec<Node> {
    assert_eq!(states.len(), graph.n());
    let k = k.min(graph.n());
    let mut victims: Vec<Node> = graph.nodes().collect();
    // Partial Fisher–Yates: choose k distinct victims.
    for i in 0..k {
        let j = rng.random_range(i..victims.len());
        victims.swap(i, j);
    }
    victims.truncate(k);
    for &v in &victims {
        states[v.index()] = proto.arbitrary_state(v, graph.neighbors(v), rng);
    }
    victims
}

/// Result of a fault-recovery experiment.
#[derive(Clone, Debug)]
pub struct Recovery<S> {
    /// The re-stabilization run (starting from the perturbed state).
    pub run: Run<S>,
    /// Nodes whose final state differs from their pre-fault state — a
    /// measure of fault containment ("how far did the disturbance spread").
    pub perturbed_nodes: usize,
}

/// Everything `corrupt_and_recover` produces: the initial (pre-fault) run
/// and the recovery from the corrupted configuration.
pub type CorruptOutcome<S> = (Run<S>, Recovery<S>);

/// Stabilize, corrupt `k` node states, and re-stabilize.
///
/// Returns `(initial_run, recovery)`, or [`FaultError`] if the initial run
/// does not stabilize within `max_rounds` (only stabilizing protocols have
/// a legitimate configuration to perturb).
pub fn corrupt_and_recover<P: Protocol>(
    graph: &Graph,
    proto: &P,
    k: usize,
    seed: u64,
    max_rounds: usize,
) -> Result<CorruptOutcome<P::State>, FaultError> {
    let exec = SyncExecutor::new(graph, proto);
    let initial = exec.run(InitialState::Random { seed }, max_rounds);
    if !initial.stabilized() {
        return Err(FaultError::InitialRunNotStabilized { max_rounds });
    }
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    let mut states = initial.final_states.clone();
    corrupt_random_nodes(proto, graph, &mut states, k, &mut rng);
    let run = exec.run(InitialState::Explicit(states), max_rounds);
    let perturbed_nodes = run
        .final_states
        .iter()
        .zip(&initial.final_states)
        .filter(|(a, b)| a != b)
        .count();
    Ok((
        initial,
        Recovery {
            run,
            perturbed_nodes,
        },
    ))
}

/// Everything `churn_and_recover` produces: the post-churn graph, the
/// applied events, the initial (pre-fault) run, and the recovery.
pub type ChurnOutcome<S> = (Graph, Vec<TopologyEvent>, Run<S>, Recovery<S>);

/// Stabilize, apply `k` connectivity-preserving topology changes, and
/// re-stabilize **on the new graph** keeping the old states (the paper's
/// mobility fault). Returns the changed graph, the applied events, and the
/// recovery, or [`FaultError`] if the initial run does not stabilize.
pub fn churn_and_recover<P: Protocol>(
    graph: &Graph,
    proto: &P,
    k: usize,
    seed: u64,
    max_rounds: usize,
) -> Result<ChurnOutcome<P::State>, FaultError> {
    let exec = SyncExecutor::new(graph, proto);
    let initial = exec.run(InitialState::Random { seed }, max_rounds);
    if !initial.stabilized() {
        return Err(FaultError::InitialRunNotStabilized { max_rounds });
    }
    let mut rng = StdRng::seed_from_u64(seed ^ 0xd1b5_4a32_d192_ed03);
    let mut new_graph = graph.clone();
    let events = Churn::default().apply(&mut new_graph, k, &mut rng);
    let exec2 = SyncExecutor::new(&new_graph, proto);
    let run = exec2.run(
        InitialState::Explicit(initial.final_states.clone()),
        max_rounds,
    );
    let perturbed_nodes = run
        .final_states
        .iter()
        .zip(&initial.final_states)
        .filter(|(a, b)| a != b)
        .count();
    Ok((
        new_graph,
        events,
        initial.clone(),
        Recovery {
            run,
            perturbed_nodes,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::MaxProto;
    use selfstab_graph::generators;
    use selfstab_graph::traversal::is_connected;

    #[test]
    fn crash_at_parses_and_validates() {
        assert_eq!(
            CrashAt::parse("3:0.5"),
            Ok(CrashAt {
                round: 3,
                frac: 0.5,
                seed: 0,
            })
        );
        assert_eq!(CrashAt::parse("7:1").unwrap().with_seed(9).seed, 9);
        assert!(CrashAt::parse("3").is_err());
        assert!(CrashAt::parse("x:0.5").is_err());
        assert!(CrashAt::parse("3:nope").is_err());
        assert!(CrashAt::parse("3:0").is_err());
        assert!(CrashAt::parse("3:1.5").is_err());
        assert!(CrashAt::parse("3:-0.1").is_err());
    }

    #[test]
    fn crash_at_rehydrates_sorted_victims() {
        let g = generators::cycle(10);
        let crash = CrashAt {
            round: 0,
            frac: 0.4,
            seed: 42,
        };
        assert_eq!(crash.victims(10), 4);
        let mut states = vec![9u8; 10];
        let victims = crash.apply(&MaxProto, &g, &mut states);
        assert_eq!(victims.len(), 4);
        assert!(
            victims.windows(2).all(|w| w[0] < w[1]),
            "sorted: {victims:?}"
        );
        // Only victims may change, and the same spec replays identically.
        for v in g.nodes() {
            if !victims.contains(&v) {
                assert_eq!(states[v.index()], 9);
            }
        }
        let mut again = vec![9u8; 10];
        assert_eq!(crash.apply(&MaxProto, &g, &mut again), victims);
        assert_eq!(again, states, "deterministic in the seed");
    }

    #[test]
    fn corruption_hits_exactly_k_distinct_nodes() {
        let g = generators::complete(10);
        let mut states = vec![9u8; 10];
        let mut rng = StdRng::seed_from_u64(1);
        // Corrupt with a protocol whose arbitrary states are < 4, so any
        // corrupted node is identifiable.
        let victims = corrupt_random_nodes(&MaxProto, &g, &mut states, 4, &mut rng);
        assert_eq!(victims.len(), 4);
        let mut unique = victims.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), 4, "victims must be distinct");
        let changed = states.iter().filter(|&&s| s != 9).count();
        assert!(changed <= 4);
    }

    #[test]
    fn k_larger_than_n_is_clamped() {
        let g = generators::path(3);
        let mut states = vec![9u8; 3];
        let mut rng = StdRng::seed_from_u64(2);
        let victims = corrupt_random_nodes(&MaxProto, &g, &mut states, 100, &mut rng);
        assert_eq!(victims.len(), 3);
    }

    #[test]
    fn recover_from_corruption() {
        let g = generators::grid(4, 4);
        let (initial, recovery) = corrupt_and_recover(&g, &MaxProto, 3, 7, 1_000).unwrap();
        assert!(initial.stabilized());
        assert!(recovery.run.stabilized());
        // MaxProto's legitimate states are constant vectors at the max; the
        // recovered vector must again be constant.
        let m = *recovery.run.final_states.iter().max().unwrap();
        assert!(recovery.run.final_states.iter().all(|&s| s == m));
    }

    #[test]
    fn recover_from_churn() {
        let g = generators::cycle(12);
        let (new_g, events, initial, recovery) =
            churn_and_recover(&g, &MaxProto, 5, 3, 1_000).unwrap();
        assert!(is_connected(&new_g));
        assert!(!events.is_empty());
        assert!(initial.stabilized());
        assert!(recovery.run.stabilized());
    }

    #[test]
    fn unstabilized_initial_run_is_a_typed_error_not_a_panic() {
        // A budget of 0 rounds cannot stabilize from a random start on a
        // grid, so both experiments must report the precondition failure.
        let g = generators::grid(4, 4);
        let err = corrupt_and_recover(&g, &MaxProto, 2, 5, 0).unwrap_err();
        assert_eq!(err, FaultError::InitialRunNotStabilized { max_rounds: 0 });
        assert!(err.to_string().contains("did not stabilize"), "{err}");
        let err = churn_and_recover(&g, &MaxProto, 2, 5, 0).unwrap_err();
        assert_eq!(err, FaultError::InitialRunNotStabilized { max_rounds: 0 });
    }
}
