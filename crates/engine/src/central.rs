//! The central daemon: the classical adversarial scheduler.
//!
//! At each step exactly one privileged node fires. The Hsu–Huang maximal
//! matching baseline (Inform. Process. Lett. 43, 1992) is proved correct
//! under this model; the paper observes it can be converted to the
//! synchronous model but "the resulting protocol is not as fast" — this
//! module provides the central-daemon reference execution, and
//! `selfstab-core::transformer` provides the conversion.
//!
//! The daemon's node-selection policy is pluggable so experiments can probe
//! adversarial schedules; complexity is measured in *moves* (rounds are not
//! meaningful under a central daemon).

use crate::protocol::{InitialState, Move, Protocol, View};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use selfstab_graph::{Graph, Ids, Node};

/// An adversary callback: picks the index of the node to fire from the
/// privileged list.
pub type AdversaryFn = Box<dyn FnMut(&[Node]) -> usize + Send>;

/// Node-selection policy for the central daemon.
// One Scheduler exists per execution; variant size skew is irrelevant.
#[allow(clippy::large_enum_variant)]
pub enum Scheduler {
    /// Always the privileged node with the smallest index.
    First,
    /// Always the privileged node with the largest index.
    Last,
    /// Uniformly random among privileged nodes (seeded).
    Random(StdRng),
    /// Round-robin: the next privileged node at or after a rotating cursor —
    /// a weakly fair schedule.
    RoundRobin {
        /// Current cursor position (next index to consider).
        cursor: usize,
    },
    /// Minimum protocol ID among privileged nodes.
    MinId(Ids),
    /// Maximum protocol ID among privileged nodes.
    MaxId(Ids),
    /// Arbitrary adversary: a user closure picks the index into the
    /// privileged list.
    Adversary(AdversaryFn),
}

impl Scheduler {
    /// A seeded random scheduler.
    pub fn random(seed: u64) -> Self {
        Scheduler::Random(StdRng::seed_from_u64(seed))
    }

    /// Pick one node from the (non-empty) privileged list.
    fn pick(&mut self, privileged: &[Node]) -> Node {
        debug_assert!(!privileged.is_empty());
        match self {
            Scheduler::First => privileged[0],
            Scheduler::Last => *privileged.last().expect("non-empty"),
            Scheduler::Random(rng) => privileged[rng.random_range(0..privileged.len())],
            Scheduler::RoundRobin { cursor } => {
                let chosen = privileged
                    .iter()
                    .copied()
                    .find(|v| v.index() >= *cursor)
                    .unwrap_or(privileged[0]);
                *cursor = chosen.index() + 1;
                chosen
            }
            Scheduler::MinId(ids) => ids
                .min_by_id(privileged.iter().copied())
                .expect("non-empty"),
            Scheduler::MaxId(ids) => ids
                .max_by_id(privileged.iter().copied())
                .expect("non-empty"),
            Scheduler::Adversary(f) => {
                let i = f(privileged);
                privileged[i.min(privileged.len() - 1)]
            }
        }
    }
}

/// Result of a central-daemon execution.
#[derive(Clone, Debug)]
pub struct CentralRun<S> {
    /// Global state when the execution ended.
    pub final_states: Vec<S>,
    /// Total individual moves executed.
    pub moves: u64,
    /// Moves per rule.
    pub moves_per_rule: Vec<u64>,
    /// Whether a fixpoint was reached within the move budget.
    pub stabilized: bool,
}

/// Central-daemon executor.
pub struct CentralExecutor<'a, P: Protocol> {
    graph: &'a Graph,
    proto: &'a P,
}

impl<'a, P: Protocol> CentralExecutor<'a, P> {
    /// New executor on `graph` for `proto`.
    pub fn new(graph: &'a Graph, proto: &'a P) -> Self {
        CentralExecutor { graph, proto }
    }

    fn privileged(&self, states: &[P::State]) -> Vec<(Node, Move<P::State>)> {
        self.graph
            .nodes()
            .filter_map(|v| {
                let view = View::new(v, self.graph.neighbors(v), states);
                self.proto.step(view).map(|m| (v, m))
            })
            .collect()
    }

    /// Run under the central daemon until fixpoint or `max_moves`.
    pub fn run(
        &self,
        init: InitialState<P::State>,
        scheduler: &mut Scheduler,
        max_moves: u64,
    ) -> CentralRun<P::State> {
        let mut states = init.materialize(self.graph, self.proto);
        let mut moves_per_rule = vec![0u64; self.proto.rule_names().len()];
        let mut moves = 0u64;
        loop {
            let privileged = self.privileged(&states);
            if privileged.is_empty() {
                return CentralRun {
                    final_states: states,
                    moves,
                    moves_per_rule,
                    stabilized: true,
                };
            }
            if moves >= max_moves {
                return CentralRun {
                    final_states: states,
                    moves,
                    moves_per_rule,
                    stabilized: false,
                };
            }
            let nodes: Vec<Node> = privileged.iter().map(|&(v, _)| v).collect();
            let chosen = scheduler.pick(&nodes);
            let (_, mv) = privileged
                .into_iter()
                .find(|&(v, _)| v == chosen)
                .expect("scheduler picked a privileged node");
            moves_per_rule[mv.rule] += 1;
            states[chosen.index()] = mv.next;
            moves += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::MaxProto;
    use selfstab_graph::generators;

    #[test]
    fn central_max_stabilizes_under_all_schedulers() {
        let g = generators::path(8);
        let exec = CentralExecutor::new(&g, &MaxProto);
        let init = vec![0u8, 0, 0, 3, 0, 0, 0, 1];
        let mut scheds = vec![
            Scheduler::First,
            Scheduler::Last,
            Scheduler::random(5),
            Scheduler::RoundRobin { cursor: 0 },
            Scheduler::MinId(Ids::reversed(8)),
            Scheduler::MaxId(Ids::identity(8)),
            Scheduler::Adversary(Box::new(|p| p.len() / 2)),
        ];
        for sched in &mut scheds {
            let run = exec.run(InitialState::Explicit(init.clone()), sched, 10_000);
            assert!(run.stabilized);
            assert!(run.final_states.iter().all(|&s| s == 3));
            assert_eq!(run.moves, run.moves_per_rule.iter().sum::<u64>());
        }
    }

    #[test]
    fn move_budget_respected() {
        let g = generators::path(64);
        let exec = CentralExecutor::new(&g, &MaxProto);
        let mut init = vec![0u8; 64];
        init[0] = 3;
        let run = exec.run(InitialState::Explicit(init), &mut Scheduler::First, 5);
        assert!(!run.stabilized);
        assert_eq!(run.moves, 5);
    }

    #[test]
    fn round_robin_is_weakly_fair() {
        // Under round-robin on a path seeded at one end, the max spreads in
        // O(n) total moves per sweep; just assert it terminates quickly.
        let g = generators::path(32);
        let exec = CentralExecutor::new(&g, &MaxProto);
        let mut init = vec![0u8; 32];
        init[31] = 2;
        let run = exec.run(
            InitialState::Explicit(init),
            &mut Scheduler::RoundRobin { cursor: 0 },
            10_000,
        );
        assert!(run.stabilized);
        assert_eq!(run.moves, 31);
    }
}
