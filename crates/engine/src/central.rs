//! The central daemon: the classical adversarial scheduler.
//!
//! At each step exactly one privileged node fires. The Hsu–Huang maximal
//! matching baseline (Inform. Process. Lett. 43, 1992) is proved correct
//! under this model; the paper observes it can be converted to the
//! synchronous model but "the resulting protocol is not as fast" — this
//! module provides the central-daemon reference execution, and
//! `selfstab-core::transformer` provides the conversion.
//!
//! The daemon's node-selection policy is pluggable so experiments can probe
//! adversarial schedules; complexity is measured in *moves* (rounds are not
//! meaningful under a central daemon).

use crate::obs::{Observer, RoundStats};
use crate::protocol::{InitialState, Move, Protocol, View};
use crate::sync::Outcome;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use selfstab_graph::{Graph, Ids, Node};

/// An adversary callback: picks the index of the node to fire from the
/// privileged list.
pub type AdversaryFn = Box<dyn FnMut(&[Node]) -> usize + Send>;

/// Node-selection policy for the central daemon.
// One Scheduler exists per execution; variant size skew is irrelevant.
#[allow(clippy::large_enum_variant)]
pub enum Scheduler {
    /// Always the privileged node with the smallest index.
    First,
    /// Always the privileged node with the largest index.
    Last,
    /// Uniformly random among privileged nodes (seeded).
    Random(StdRng),
    /// Round-robin: the next privileged node at or after a rotating cursor —
    /// a weakly fair schedule.
    RoundRobin {
        /// Current cursor position (next index to consider).
        cursor: usize,
    },
    /// Minimum protocol ID among privileged nodes.
    MinId(Ids),
    /// Maximum protocol ID among privileged nodes.
    MaxId(Ids),
    /// Arbitrary adversary: a user closure picks the index into the
    /// privileged list.
    Adversary(AdversaryFn),
}

impl Scheduler {
    /// A seeded random scheduler.
    pub fn random(seed: u64) -> Self {
        Scheduler::Random(StdRng::seed_from_u64(seed))
    }

    /// Pick one node from the (non-empty) privileged list.
    fn pick(&mut self, privileged: &[Node]) -> Node {
        debug_assert!(!privileged.is_empty());
        match self {
            Scheduler::First => privileged[0],
            Scheduler::Last => *privileged.last().expect("non-empty"),
            Scheduler::Random(rng) => privileged[rng.random_range(0..privileged.len())],
            Scheduler::RoundRobin { cursor } => {
                let chosen = privileged
                    .iter()
                    .copied()
                    .find(|v| v.index() >= *cursor)
                    .unwrap_or(privileged[0]);
                *cursor = chosen.index() + 1;
                chosen
            }
            Scheduler::MinId(ids) => ids
                .min_by_id(privileged.iter().copied())
                .expect("non-empty"),
            Scheduler::MaxId(ids) => ids
                .max_by_id(privileged.iter().copied())
                .expect("non-empty"),
            Scheduler::Adversary(f) => {
                let i = f(privileged);
                privileged[i.min(privileged.len() - 1)]
            }
        }
    }
}

/// Result of a central-daemon execution.
#[derive(Clone, Debug)]
pub struct CentralRun<S> {
    /// Global state when the execution ended.
    pub final_states: Vec<S>,
    /// Total individual moves executed.
    pub moves: u64,
    /// Moves per rule.
    pub moves_per_rule: Vec<u64>,
    /// Whether a fixpoint was reached within the move budget.
    pub stabilized: bool,
}

/// Central-daemon executor.
pub struct CentralExecutor<'a, P: Protocol> {
    graph: &'a Graph,
    proto: &'a P,
}

impl<'a, P: Protocol> CentralExecutor<'a, P> {
    /// New executor on `graph` for `proto`.
    pub fn new(graph: &'a Graph, proto: &'a P) -> Self {
        CentralExecutor { graph, proto }
    }

    fn privileged(&self, states: &[P::State]) -> Vec<(Node, Move<P::State>)> {
        self.graph
            .nodes()
            .filter_map(|v| {
                let view = View::new(v, self.graph.neighbors(v), states);
                self.proto.step(view).map(|m| (v, m))
            })
            .collect()
    }

    /// Run under the central daemon until fixpoint or `max_moves`.
    pub fn run(
        &self,
        init: InitialState<P::State>,
        scheduler: &mut Scheduler,
        max_moves: u64,
    ) -> CentralRun<P::State> {
        self.run_observed(init, scheduler, max_moves, &mut ())
    }

    /// Run under the central daemon, firing the [`Observer`] hooks. Each
    /// daemon step is reported as a one-move round: `on_round_start` sees
    /// the pre-step state, `on_move` the single firing, and `on_round_end`
    /// a [`RoundStats`] whose `privileged` field is the size of the
    /// privileged set the scheduler chose from. `on_finish` reports
    /// [`Outcome::Stabilized`] or — when the move budget ran out —
    /// [`Outcome::RoundLimit`].
    pub fn run_observed<O: Observer<P::State>>(
        &self,
        init: InitialState<P::State>,
        scheduler: &mut Scheduler,
        max_moves: u64,
        obs: &mut O,
    ) -> CentralRun<P::State> {
        let mut states = init.materialize(self.graph, self.proto);
        let mut moves_per_rule = vec![0u64; self.proto.rule_names().len()];
        let mut moves = 0u64;
        loop {
            let privileged = self.privileged(&states);
            if privileged.is_empty() {
                if O::ENABLED {
                    obs.on_finish(&Outcome::Stabilized, &states);
                }
                return CentralRun {
                    final_states: states,
                    moves,
                    moves_per_rule,
                    stabilized: true,
                };
            }
            if moves >= max_moves {
                if O::ENABLED {
                    obs.on_finish(&Outcome::RoundLimit, &states);
                }
                return CentralRun {
                    final_states: states,
                    moves,
                    moves_per_rule,
                    stabilized: false,
                };
            }
            let timer = O::ENABLED.then(std::time::Instant::now);
            if O::ENABLED {
                obs.on_round_start(moves as usize + 1, &states);
            }
            let nodes: Vec<Node> = privileged.iter().map(|&(v, _)| v).collect();
            let chosen = scheduler.pick(&nodes);
            let (_, mv) = privileged
                .into_iter()
                .find(|&(v, _)| v == chosen)
                .expect("scheduler picked a privileged node");
            let rule = mv.rule;
            moves_per_rule[rule] += 1;
            states[chosen.index()] = mv.next;
            moves += 1;
            if O::ENABLED {
                obs.on_move(chosen, rule, &states[chosen.index()]);
                let mut round_moves = vec![0u64; moves_per_rule.len()];
                round_moves[rule] = 1;
                let stats = RoundStats {
                    round: moves as usize,
                    privileged: nodes.len(),
                    // The central daemon sweeps every node to find the
                    // privileged set before each move.
                    evaluated: states.len(),
                    moves_per_rule: round_moves,
                    duration_micros: timer.map(|t| t.elapsed().as_micros() as u64).unwrap_or(0),
                    beacon: None,
                    runtime: None,
                    profile: None,
                };
                obs.on_round_end(&stats, &states);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::MaxProto;
    use selfstab_graph::generators;

    #[test]
    fn central_max_stabilizes_under_all_schedulers() {
        let g = generators::path(8);
        let exec = CentralExecutor::new(&g, &MaxProto);
        let init = vec![0u8, 0, 0, 3, 0, 0, 0, 1];
        let mut scheds = vec![
            Scheduler::First,
            Scheduler::Last,
            Scheduler::random(5),
            Scheduler::RoundRobin { cursor: 0 },
            Scheduler::MinId(Ids::reversed(8)),
            Scheduler::MaxId(Ids::identity(8)),
            Scheduler::Adversary(Box::new(|p| p.len() / 2)),
        ];
        for sched in &mut scheds {
            let run = exec.run(InitialState::Explicit(init.clone()), sched, 10_000);
            assert!(run.stabilized);
            assert!(run.final_states.iter().all(|&s| s == 3));
            assert_eq!(run.moves, run.moves_per_rule.iter().sum::<u64>());
        }
    }

    #[test]
    fn move_budget_respected() {
        let g = generators::path(64);
        let exec = CentralExecutor::new(&g, &MaxProto);
        let mut init = vec![0u8; 64];
        init[0] = 3;
        let run = exec.run(InitialState::Explicit(init), &mut Scheduler::First, 5);
        assert!(!run.stabilized);
        assert_eq!(run.moves, 5);
    }

    #[test]
    fn observed_central_run_reports_each_move_as_a_round() {
        use crate::obs::MetricsCollector;
        let g = generators::path(8);
        let exec = CentralExecutor::new(&g, &MaxProto);
        let init = vec![0u8, 0, 0, 3, 0, 0, 0, 1];
        let mut metrics = MetricsCollector::new().with_gauge("maxed", |s: &[u8]| {
            s.iter().filter(|&&x| x == 3).count() as u64
        });
        let run = exec.run_observed(
            InitialState::Explicit(init),
            &mut Scheduler::RoundRobin { cursor: 0 },
            10_000,
            &mut metrics,
        );
        assert!(run.stabilized);
        assert_eq!(metrics.rounds().len() as u64, run.moves);
        assert_eq!(metrics.outcome(), Some(&Outcome::Stabilized));
        for r in metrics.rounds() {
            assert_eq!(r.moves_per_rule.iter().sum::<u64>(), 1);
            assert!(r.privileged >= 1);
        }
        let series = metrics.gauge_series("maxed").unwrap();
        assert_eq!(series.last(), Some(&8));
    }

    #[test]
    fn round_robin_is_weakly_fair() {
        // Under round-robin on a path seeded at one end, the max spreads in
        // O(n) total moves per sweep; just assert it terminates quickly.
        let g = generators::path(32);
        let exec = CentralExecutor::new(&g, &MaxProto);
        let mut init = vec![0u8; 32];
        init[31] = 2;
        let run = exec.run(
            InitialState::Explicit(init),
            &mut Scheduler::RoundRobin { cursor: 0 },
            10_000,
        );
        assert!(run.stabilized);
        assert_eq!(run.moves, 31);
    }
}
