//! Property-based tests for the execution engine itself, using the paper's
//! SMM-shaped state space indirectly through a local toy protocol (the
//! engine must uphold its contracts for *any* protocol).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use selfstab_engine::central::{CentralExecutor, Scheduler};
use selfstab_engine::distributed::{DistributedExecutor, SubsetPolicy};
use selfstab_engine::par::ParSyncExecutor;
use selfstab_engine::protocol::{InitialState, Move, Protocol, View};
use selfstab_engine::sync::SyncExecutor;
use selfstab_graph::{generators, Graph, Node};

/// The shared toy protocol: spread the maximum value.
struct MaxProto;
impl Protocol for MaxProto {
    type State = u8;
    fn rule_names(&self) -> &'static [&'static str] {
        &["copy-max"]
    }
    fn default_state(&self) -> u8 {
        0
    }
    fn arbitrary_state(&self, _: Node, _: &[Node], rng: &mut StdRng) -> u8 {
        rng.random_range(0..6)
    }
    fn enumerate_states(&self, _: Node, _: &[Node]) -> Vec<u8> {
        (0..6).collect()
    }
    fn step(&self, view: View<'_, u8>) -> Option<Move<u8>> {
        let m = view.neighbor_states().map(|(_, &s)| s).max()?;
        (m > *view.own()).then_some(Move { rule: 0, next: m })
    }
    fn is_legitimate(&self, _: &Graph, states: &[u8]) -> bool {
        states.windows(2).all(|w| w[0] == w[1])
    }
}

fn arb_connected(max_n: usize) -> impl Strategy<Value = Graph> {
    (2..=max_n, any::<u64>()).prop_map(|(n, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut g = generators::random_tree(n, &mut rng);
        for _ in 0..n {
            let a = rng.random_range(0..n);
            let b = rng.random_range(0..n);
            if a != b {
                g.add_edge(Node::from(a), Node::from(b));
            }
        }
        g
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Serial and parallel synchronous executors are bit-identical.
    #[test]
    fn par_equals_serial(g in arb_connected(30), seed in any::<u64>()) {
        let serial = SyncExecutor::new(&g, &MaxProto).run(InitialState::Random { seed }, 200);
        let par = ParSyncExecutor::new(&g, &MaxProto)
            .with_threads(3)
            .run(InitialState::Random { seed }, 200);
        prop_assert_eq!(serial.final_states, par.final_states);
        prop_assert_eq!(serial.rounds, par.rounds);
        prop_assert_eq!(serial.moves_per_rule, par.moves_per_rule);
    }

    /// The synchronous daemon equals the distributed daemon with the All
    /// policy, and both end legitimate.
    #[test]
    fn sync_equals_distributed_all(g in arb_connected(25), seed in any::<u64>()) {
        let a = SyncExecutor::new(&g, &MaxProto).run(InitialState::Random { seed }, 200);
        let b = DistributedExecutor::new(&g, &MaxProto)
            .run(InitialState::Random { seed }, &mut SubsetPolicy::All, 200);
        prop_assert!(a.stabilized());
        prop_assert_eq!(&a.final_states, &b.final_states);
        prop_assert!(MaxProto.is_legitimate(&g, &a.final_states));
    }

    /// All central schedulers drive MaxProto to the same fixpoint (it is
    /// confluent) within n * states moves.
    #[test]
    fn central_schedulers_confluent(g in arb_connected(15), seed in any::<u64>()) {
        let exec = CentralExecutor::new(&g, &MaxProto);
        let budget = (g.n() * 6) as u64;
        let reference = exec.run(
            InitialState::Random { seed },
            &mut Scheduler::First,
            budget,
        );
        prop_assert!(reference.stabilized);
        for mut sched in [Scheduler::Last, Scheduler::random(seed), Scheduler::RoundRobin { cursor: 0 }] {
            let run = exec.run(InitialState::Random { seed }, &mut sched, budget);
            prop_assert!(run.stabilized);
            prop_assert_eq!(&run.final_states, &reference.final_states);
        }
    }

    /// Rounds never exceed the diameter for MaxProto (information travels
    /// one hop per round).
    #[test]
    fn rounds_bounded_by_diameter(g in arb_connected(20), seed in any::<u64>()) {
        let run = SyncExecutor::new(&g, &MaxProto).run(InitialState::Random { seed }, 200);
        prop_assert!(run.stabilized());
        let dia = selfstab_graph::traversal::diameter(&g).expect("connected");
        prop_assert!(run.rounds() <= dia.max(1));
    }

    /// Traces recorded by the executor always validate, and tampering is
    /// always caught.
    #[test]
    fn trace_validation_sound_and_complete(
        g in arb_connected(12),
        seed in any::<u64>(),
        tamper in any::<u64>(),
    ) {
        use selfstab_engine::record::{record, validate_trace, TraceError};
        let run = SyncExecutor::new(&g, &MaxProto)
            .with_trace()
            .run(InitialState::Random { seed }, 200);
        let trace = run.trace.clone().unwrap();
        let rec = record(&g, &MaxProto, trace.clone(), run.stabilized());
        prop_assert_eq!(validate_trace(&MaxProto, &rec), Ok(()));
        if trace.len() >= 2 {
            let mut bad = rec.clone();
            let t = (tamper as usize) % (trace.len() - 1);
            let v = (tamper as usize / 7) % g.n();
            // Set a mid-trace cell to an impossible value.
            bad.trace[t + 1][v] = 200;
            let verdict = validate_trace(&MaxProto, &bad);
            let caught = matches!(
                verdict,
                Err(TraceError::WrongTransition { .. })
                    | Err(TraceError::UnprivilegedMove { .. })
                    | Err(TraceError::MissedMove { .. })
                    | Err(TraceError::WrongTermination { .. })
            );
            prop_assert!(caught, "tampering not caught: {verdict:?}");
        }
    }

    /// Random-priority and greedy-independent subsets always select
    /// pairwise non-adjacent nodes.
    #[test]
    fn subset_policies_select_independent_sets(g in arb_connected(20), seed in any::<u64>()) {
        let privileged: Vec<Node> = g.nodes().collect();
        for mut policy in [SubsetPolicy::IndependentGreedy, SubsetPolicy::random_priority(seed)] {
            let chosen = policy.select(&g, &privileged);
            for (i, &u) in chosen.iter().enumerate() {
                for &v in &chosen[i + 1..] {
                    prop_assert!(!g.has_edge(u, v), "{u:?}-{v:?} adjacent");
                }
            }
        }
    }
}
