//! Deterministic seed spreading.
//!
//! Every experiment cell (topology × size × repetition) derives its RNG seed
//! from a master seed with SplitMix64, so cells are independent,
//! reproducible in isolation, and stable when the sweep grid changes shape.

/// One SplitMix64 step: a high-quality 64-bit mixer.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Derive a child seed from a master seed and a list of coordinates
/// (e.g. `[family_index, n, repetition]`).
pub fn derive(master: u64, coords: &[u64]) -> u64 {
    let mut s = splitmix64(master);
    for &c in coords {
        s = splitmix64(s ^ c.wrapping_mul(0xff51_afd7_ed55_8ccd));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(derive(1, &[2, 3]), derive(1, &[2, 3]));
    }

    #[test]
    fn sensitive_to_every_coordinate() {
        let base = derive(1, &[2, 3]);
        assert_ne!(base, derive(2, &[2, 3]));
        assert_ne!(base, derive(1, &[3, 3]));
        assert_ne!(base, derive(1, &[2, 4]));
        assert_ne!(base, derive(1, &[2]));
    }

    #[test]
    fn spreads_consecutive_inputs() {
        // Weak avalanche check: consecutive masters give wildly different
        // outputs (hamming distance well above 10 of 64 bits).
        for m in 0..50u64 {
            let d = (splitmix64(m) ^ splitmix64(m + 1)).count_ones();
            assert!(d > 10, "poor diffusion at {m}: {d} bits");
        }
    }
}
