//! Integer histograms for experiment reporting (degree distributions,
//! rounds distributions, repair-size distributions).

use selfstab_json::{FromJson, Json, JsonError, ToJson};

/// A dense histogram over small non-negative integers.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
}

impl ToJson for Histogram {
    fn to_json(&self) -> Json {
        Json::obj([
            ("counts", self.counts.to_json()),
            ("total", self.total.to_json()),
        ])
    }
}

impl FromJson for Histogram {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(Histogram {
            counts: Vec::<u64>::from_json(value.field("counts")?)?,
            total: u64::from_json(value.field("total")?)?,
        })
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Build from samples.
    pub fn of(samples: impl IntoIterator<Item = usize>) -> Self {
        let mut h = Histogram::new();
        for s in samples {
            h.add(s);
        }
        h
    }

    /// Record one sample.
    pub fn add(&mut self, value: usize) {
        if value >= self.counts.len() {
            self.counts.resize(value + 1, 0);
        }
        self.counts[value] += 1;
        self.total += 1;
    }

    /// Number of samples recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Count at `value`.
    pub fn count(&self, value: usize) -> u64 {
        self.counts.get(value).copied().unwrap_or(0)
    }

    /// Largest value with a non-zero count, if any.
    pub fn max_value(&self) -> Option<usize> {
        self.counts.iter().rposition(|&c| c > 0)
    }

    /// The mode (smallest in case of ties), if any samples exist.
    pub fn mode(&self) -> Option<usize> {
        if self.total == 0 {
            return None;
        }
        let best = self.counts.iter().max().copied().unwrap_or(0);
        self.counts.iter().position(|&c| c == best)
    }

    /// Empirical cumulative distribution at `value` (fraction of samples
    /// `<= value`); NaN when empty. The bound saturates, so
    /// `cdf(usize::MAX)` is exact instead of panicking on `value + 1`.
    pub fn cdf(&self, value: usize) -> f64 {
        if self.total == 0 {
            return f64::NAN;
        }
        let below: u64 = self.counts.iter().take(value.saturating_add(1)).sum();
        below as f64 / self.total as f64
    }

    /// The smallest value whose cumulative share of samples is at least
    /// `q` (inverse-CDF quantile; `q` clamped to `[0, 1]`). `quantile(0.5)`
    /// is the median, `quantile(0.99)` the p99; `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<usize> {
        if self.total == 0 {
            return None;
        }
        let need = (q.clamp(0.0, 1.0) * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (value, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= need {
                return Some(value);
            }
        }
        self.max_value()
    }

    /// Fold every sample of `other` into `self`. Counts and totals add
    /// with saturation, so merging pathological histograms degrades to a
    /// pinned count instead of wrapping.
    pub fn merge(&mut self, other: &Histogram) {
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine = mine.saturating_add(*theirs);
        }
        self.total = self.total.saturating_add(other.total);
    }

    /// A compact sparkline-ish text rendering, e.g. `0:3 1:10 2:4`.
    pub fn render(&self) -> String {
        self.counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(v, c)| format!("{v}:{c}"))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basics() {
        let h = Histogram::of([1, 2, 2, 5]);
        assert_eq!(h.total(), 4);
        assert_eq!(h.count(2), 2);
        assert_eq!(h.count(3), 0);
        assert_eq!(h.count(99), 0);
        assert_eq!(h.max_value(), Some(5));
        assert_eq!(h.mode(), Some(2));
        assert_eq!(h.render(), "1:1 2:2 5:1");
    }

    #[test]
    fn cdf() {
        let h = Histogram::of([0, 1, 2, 3]);
        assert_eq!(h.cdf(0), 0.25);
        assert_eq!(h.cdf(3), 1.0);
        assert_eq!(h.cdf(100), 1.0);
        assert!(Histogram::new().cdf(1).is_nan());
    }

    #[test]
    fn cdf_at_usize_max_saturates_instead_of_overflowing() {
        let h = Histogram::of([0, 1, 2, 3]);
        assert_eq!(h.cdf(usize::MAX), 1.0);
        assert_eq!(h.cdf(usize::MAX - 1), 1.0);
        assert!(Histogram::new().cdf(usize::MAX).is_nan());
    }

    #[test]
    fn quantiles() {
        let h = Histogram::of([1, 2, 2, 5]);
        assert_eq!(h.quantile(0.0), Some(1));
        assert_eq!(h.quantile(0.25), Some(1));
        assert_eq!(h.quantile(0.5), Some(2));
        assert_eq!(h.quantile(0.75), Some(2));
        assert_eq!(h.quantile(0.99), Some(5));
        assert_eq!(h.quantile(1.0), Some(5));
        assert_eq!(Histogram::new().quantile(0.5), None);
        let single = Histogram::of([7]);
        assert_eq!(single.quantile(0.5), Some(7));
    }

    #[test]
    fn merge_folds_counts_and_totals() {
        let mut a = Histogram::of([1, 2, 2]);
        let b = Histogram::of([2, 5]);
        a.merge(&b);
        assert_eq!(a.total(), 5);
        assert_eq!(a.count(2), 3);
        assert_eq!(a.count(5), 1);
        assert_eq!(a.max_value(), Some(5));
        // Merging an empty histogram is a no-op; merging into an empty
        // histogram is a copy.
        let before = a.clone();
        a.merge(&Histogram::new());
        assert_eq!(a, before);
        let mut empty = Histogram::new();
        empty.merge(&b);
        assert_eq!(empty, b);
    }

    #[test]
    fn merge_saturates_instead_of_overflowing() {
        let mut a = Histogram::new();
        for _ in 0..3 {
            a.add(0);
        }
        let mut near_max = Histogram::new();
        near_max.add(0);
        // Repeated self-merge doubling overflows u64 at the 64th merge;
        // saturation pins the count instead of wrapping, and further
        // merges keep it pinned.
        for _ in 0..64 {
            let snapshot = near_max.clone();
            near_max.merge(&snapshot);
        }
        near_max.merge(&a);
        assert_eq!(near_max.count(0), u64::MAX);
        assert_eq!(near_max.total(), u64::MAX);
    }

    #[test]
    fn quantile_edge_cases() {
        // Empty histogram: every quantile is None, even out-of-range qs.
        let empty = Histogram::new();
        assert_eq!(empty.quantile(0.0), None);
        assert_eq!(empty.quantile(1.0), None);
        assert_eq!(empty.quantile(f64::NAN), None);
        // Single-bucket histogram: every quantile is that bucket.
        let single = Histogram::of([4, 4, 4]);
        for q in [-1.0, 0.0, 0.25, 0.5, 0.99, 1.0, 2.0] {
            assert_eq!(single.quantile(q), Some(4), "q={q}");
        }
        // Out-of-range q clamps rather than panicking or skipping buckets.
        let h = Histogram::of([1, 2, 2, 5]);
        assert_eq!(h.quantile(-0.5), Some(1));
        assert_eq!(h.quantile(1.5), Some(5));
    }

    #[test]
    fn empty() {
        let h = Histogram::new();
        assert_eq!(h.total(), 0);
        assert_eq!(h.max_value(), None);
        assert_eq!(h.mode(), None);
        assert_eq!(h.render(), "");
    }
}
