//! Descriptive statistics over experiment samples.

use selfstab_json::{FromJson, Json, JsonError, ToJson};

/// Summary statistics of a sample.
#[derive(Clone, Debug, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean (NaN for empty samples).
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Median (mean of middle pair for even sizes).
    pub median: f64,
    /// First quartile (25th percentile, linear interpolation).
    pub q1: f64,
    /// Third quartile (75th percentile, linear interpolation).
    pub q3: f64,
    /// 95th percentile (nearest-rank).
    pub p95: f64,
}

impl ToJson for Summary {
    fn to_json(&self) -> Json {
        Json::obj([
            ("n", self.n.to_json()),
            ("mean", self.mean.to_json()),
            ("std", self.std.to_json()),
            ("min", self.min.to_json()),
            ("max", self.max.to_json()),
            ("median", self.median.to_json()),
            ("q1", self.q1.to_json()),
            ("q3", self.q3.to_json()),
            ("p95", self.p95.to_json()),
        ])
    }
}

impl FromJson for Summary {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(Summary {
            n: value.parse_field("n")?,
            mean: value.parse_field("mean")?,
            std: value.parse_field("std")?,
            min: value.parse_field("min")?,
            max: value.parse_field("max")?,
            median: value.parse_field("median")?,
            q1: value.parse_field("q1")?,
            q3: value.parse_field("q3")?,
            p95: value.parse_field("p95")?,
        })
    }
}

impl Summary {
    /// Summarize a sample (empty samples yield NaN fields and `n = 0`).
    pub fn of(samples: &[f64]) -> Summary {
        let n = samples.len();
        if n == 0 {
            return Summary {
                n: 0,
                mean: f64::NAN,
                std: f64::NAN,
                min: f64::NAN,
                max: f64::NAN,
                median: f64::NAN,
                q1: f64::NAN,
                q3: f64::NAN,
                p95: f64::NAN,
            };
        }
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in samples"));
        let median = if n % 2 == 1 {
            sorted[n / 2]
        } else {
            (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
        };
        let p95_idx = ((0.95 * n as f64).ceil() as usize).clamp(1, n) - 1;
        Summary {
            n,
            mean,
            std: var.sqrt(),
            min: sorted[0],
            max: sorted[n - 1],
            median,
            q1: quantile(&sorted, 0.25),
            q3: quantile(&sorted, 0.75),
            p95: sorted[p95_idx],
        }
    }

    /// Interquartile range `q3 − q1`: the spread measure the bench
    /// comparator's noise gate uses (robust to a single outlier rep,
    /// unlike the standard deviation).
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }

    /// Summarize integer samples.
    pub fn of_usize(samples: impl IntoIterator<Item = usize>) -> Summary {
        let v: Vec<f64> = samples.into_iter().map(|x| x as f64).collect();
        Summary::of(&v)
    }

    /// `mean ± std` with two decimals, for tables.
    pub fn mean_pm_std(&self) -> String {
        format!("{:.2} ± {:.2}", self.mean, self.std)
    }
}

/// Linearly interpolated quantile of an already-sorted, non-empty sample.
fn quantile(sorted: &[f64], q: f64) -> f64 {
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let pos = q * (n - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_summary() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.n, 4);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.median, 2.5);
        assert!((s.std - (1.25f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn odd_median_and_p95() {
        let s = Summary::of(&[5.0, 1.0, 3.0]);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.p95, 5.0);
        let s = Summary::of_usize(1..=100);
        assert_eq!(s.p95, 95.0);
        assert_eq!(s.median, 50.5);
    }

    #[test]
    fn empty_and_singleton() {
        let s = Summary::of(&[]);
        assert_eq!(s.n, 0);
        assert!(s.mean.is_nan());
        assert!(s.q1.is_nan());
        let s = Summary::of(&[7.0]);
        assert_eq!(s.mean, 7.0);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.median, 7.0);
        assert_eq!(s.p95, 7.0);
        assert_eq!(s.q1, 7.0);
        assert_eq!(s.q3, 7.0);
        assert_eq!(s.iqr(), 0.0);
    }

    #[test]
    fn quartiles_interpolate_and_roundtrip() {
        // 1..=5 sorted: q1 at position 1.0 → 2.0, q3 at position 3.0 → 4.0.
        let s = Summary::of(&[5.0, 3.0, 1.0, 4.0, 2.0]);
        assert_eq!(s.q1, 2.0);
        assert_eq!(s.q3, 4.0);
        assert_eq!(s.iqr(), 2.0);
        // Even size interpolates: [1,2,3,4] → q1 = 1.75, q3 = 3.25.
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert!((s.q1 - 1.75).abs() < 1e-12);
        assert!((s.q3 - 3.25).abs() < 1e-12);
        // JSON round-trip keeps the new fields.
        let back = Summary::from_json(&s.to_json()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn formatting() {
        let s = Summary::of(&[2.0, 2.0]);
        assert_eq!(s.mean_pm_std(), "2.00 ± 0.00");
    }
}
