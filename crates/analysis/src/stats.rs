//! Descriptive statistics over experiment samples.

use selfstab_json::{FromJson, Json, JsonError, ToJson};

/// Summary statistics of a sample.
#[derive(Clone, Debug, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean (NaN for empty samples).
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Median (mean of middle pair for even sizes).
    pub median: f64,
    /// 95th percentile (nearest-rank).
    pub p95: f64,
}

impl ToJson for Summary {
    fn to_json(&self) -> Json {
        Json::obj([
            ("n", self.n.to_json()),
            ("mean", self.mean.to_json()),
            ("std", self.std.to_json()),
            ("min", self.min.to_json()),
            ("max", self.max.to_json()),
            ("median", self.median.to_json()),
            ("p95", self.p95.to_json()),
        ])
    }
}

impl FromJson for Summary {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(Summary {
            n: usize::from_json(value.field("n")?)?,
            mean: f64::from_json(value.field("mean")?)?,
            std: f64::from_json(value.field("std")?)?,
            min: f64::from_json(value.field("min")?)?,
            max: f64::from_json(value.field("max")?)?,
            median: f64::from_json(value.field("median")?)?,
            p95: f64::from_json(value.field("p95")?)?,
        })
    }
}

impl Summary {
    /// Summarize a sample (empty samples yield NaN fields and `n = 0`).
    pub fn of(samples: &[f64]) -> Summary {
        let n = samples.len();
        if n == 0 {
            return Summary {
                n: 0,
                mean: f64::NAN,
                std: f64::NAN,
                min: f64::NAN,
                max: f64::NAN,
                median: f64::NAN,
                p95: f64::NAN,
            };
        }
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in samples"));
        let median = if n % 2 == 1 {
            sorted[n / 2]
        } else {
            (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
        };
        let p95_idx = ((0.95 * n as f64).ceil() as usize).clamp(1, n) - 1;
        Summary {
            n,
            mean,
            std: var.sqrt(),
            min: sorted[0],
            max: sorted[n - 1],
            median,
            p95: sorted[p95_idx],
        }
    }

    /// Summarize integer samples.
    pub fn of_usize(samples: impl IntoIterator<Item = usize>) -> Summary {
        let v: Vec<f64> = samples.into_iter().map(|x| x as f64).collect();
        Summary::of(&v)
    }

    /// `mean ± std` with two decimals, for tables.
    pub fn mean_pm_std(&self) -> String {
        format!("{:.2} ± {:.2}", self.mean, self.std)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_summary() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.n, 4);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.median, 2.5);
        assert!((s.std - (1.25f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn odd_median_and_p95() {
        let s = Summary::of(&[5.0, 1.0, 3.0]);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.p95, 5.0);
        let s = Summary::of_usize(1..=100);
        assert_eq!(s.p95, 95.0);
        assert_eq!(s.median, 50.5);
    }

    #[test]
    fn empty_and_singleton() {
        let s = Summary::of(&[]);
        assert_eq!(s.n, 0);
        assert!(s.mean.is_nan());
        let s = Summary::of(&[7.0]);
        assert_eq!(s.mean, 7.0);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.median, 7.0);
        assert_eq!(s.p95, 7.0);
    }

    #[test]
    fn formatting() {
        let s = Summary::of(&[2.0, 2.0]);
        assert_eq!(s.mean_pm_std(), "2.00 ± 0.00");
    }
}
