//! Markdown / CSV table rendering for the experiment harness.

use std::fmt::Display;

/// A simple column-oriented table builder.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    pub fn row(&mut self, cells: &[&dyn Display]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows
            .push(cells.iter().map(|c| c.to_string()).collect());
        self
    }

    /// Append a row of pre-rendered strings.
    pub fn row_strings(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as GitHub-flavoured Markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push('|');
        for h in &self.header {
            out.push_str(&format!(" {h} |"));
        }
        out.push_str("\n|");
        for _ in &self.header {
            out.push_str("---|");
        }
        out.push('\n');
        for row in &self.rows {
            out.push('|');
            for c in row {
                out.push_str(&format!(" {c} |"));
            }
            out.push('\n');
        }
        out
    }

    /// Render as CSV (naive quoting: fields containing commas or quotes are
    /// double-quoted).
    pub fn to_csv(&self) -> String {
        fn field(s: &str) -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = self
            .header
            .iter()
            .map(|h| field(h))
            .collect::<Vec<_>>()
            .join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| field(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_rendering() {
        let mut t = Table::new(&["n", "rounds"]);
        t.row(&[&8, &3.5]).row(&[&16, &"7"]);
        let md = t.to_markdown();
        assert_eq!(md, "| n | rounds |\n|---|---|\n| 8 | 3.5 |\n| 16 | 7 |\n");
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_rendering_with_quotes() {
        let mut t = Table::new(&["a", "b"]);
        t.row_strings(vec!["x,y".into(), "say \"hi\"".into()]);
        assert_eq!(t.to_csv(), "a,b\n\"x,y\",\"say \"\"hi\"\"\"\n");
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn width_checked() {
        Table::new(&["a"]).row(&[&1, &2]);
    }
}
