//! Experiment support for the `selfstab` workspace.
//!
//! Small, dependency-light building blocks the harness and benches share:
//! descriptive [`stats`], ordinary least squares in [`regression`] (used to
//! check the *shape* of round-complexity claims, e.g. SMI's `O(n)`),
//! [`table`] rendering for EXPERIMENTS.md, and deterministic [`seeds`]
//! spreading so every experiment cell is reproducible in isolation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod histogram;
pub mod regression;
pub mod seeds;
pub mod stats;
pub mod table;

pub use histogram::Histogram;
pub use regression::linear_fit;
pub use stats::Summary;
pub use table::Table;
