//! Experiment support for the `selfstab` workspace.
//!
//! Small, dependency-light building blocks the harness and benches share:
//! descriptive [`stats`], ordinary least squares in [`regression`] (used to
//! check the *shape* of round-complexity claims, e.g. SMI's `O(n)`),
//! [`table`] rendering for EXPERIMENTS.md, deterministic [`seeds`]
//! spreading so every experiment cell is reproducible in isolation, and
//! [`skew`] aggregation of per-shard profile samples for the offline
//! `analyze` report, and the [`gate`] noise model the bench comparator
//! uses to separate regressions from run-to-run wobble.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gate;
pub mod histogram;
pub mod regression;
pub mod seeds;
pub mod skew;
pub mod stats;
pub mod table;

pub use gate::{Direction, MetricPoint, NoiseGate, Verdict};
pub use histogram::Histogram;
pub use regression::linear_fit;
pub use skew::{LaneTotals, SkewAccumulator};
pub use stats::Summary;
pub use table::Table;
