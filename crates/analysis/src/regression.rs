//! Ordinary least squares for complexity-shape checks.
//!
//! The paper's bounds are asymptotic (`n + 1` rounds, `O(n)` rounds); the
//! experiment harness fits `rounds = a·n + b` to the measured worst cases
//! and reports slope and `R²` so EXPERIMENTS.md can state "the growth is
//! linear with slope ≈ …" instead of eyeballing.

use selfstab_json::{FromJson, Json, JsonError, ToJson};

/// The result of a univariate least-squares fit `y = slope · x + intercept`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinearFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination (1 = perfect fit; NaN when `y` is
    /// constant).
    pub r2: f64,
}

impl ToJson for LinearFit {
    fn to_json(&self) -> Json {
        Json::obj([
            ("slope", self.slope.to_json()),
            ("intercept", self.intercept.to_json()),
            ("r2", self.r2.to_json()),
        ])
    }
}

impl FromJson for LinearFit {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(LinearFit {
            slope: f64::from_json(value.field("slope")?)?,
            intercept: f64::from_json(value.field("intercept")?)?,
            r2: f64::from_json(value.field("r2")?)?,
        })
    }
}

/// Fit `y = a·x + b` by ordinary least squares. Panics if fewer than two
/// points or all `x` identical.
pub fn linear_fit(points: &[(f64, f64)]) -> LinearFit {
    assert!(points.len() >= 2, "need at least two points");
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let (mx, my) = (sx / n, sy / n);
    let sxx: f64 = points.iter().map(|p| (p.0 - mx) * (p.0 - mx)).sum();
    let sxy: f64 = points.iter().map(|p| (p.0 - mx) * (p.1 - my)).sum();
    assert!(sxx > 0.0, "all x values identical");
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let ss_res: f64 = points
        .iter()
        .map(|p| {
            let e = p.1 - (slope * p.0 + intercept);
            e * e
        })
        .sum();
    let ss_tot: f64 = points.iter().map(|p| (p.1 - my) * (p.1 - my)).sum();
    LinearFit {
        slope,
        intercept,
        r2: 1.0 - ss_res / ss_tot,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.0 * i as f64 + 2.0)).collect();
        let fit = linear_fit(&pts);
        assert!((fit.slope - 3.0).abs() < 1e-12);
        assert!((fit.intercept - 2.0).abs() < 1e-12);
        assert!((fit.r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_line_has_high_r2() {
        let pts: Vec<(f64, f64)> = (0..50)
            .map(|i| {
                let x = i as f64;
                (x, 2.0 * x + if i % 2 == 0 { 0.5 } else { -0.5 })
            })
            .collect();
        let fit = linear_fit(&pts);
        assert!((fit.slope - 2.0).abs() < 0.01);
        assert!(fit.r2 > 0.99);
    }

    #[test]
    fn anti_correlation() {
        let fit = linear_fit(&[(0.0, 10.0), (1.0, 8.0), (2.0, 6.0)]);
        assert!((fit.slope + 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn rejects_single_point() {
        linear_fit(&[(1.0, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "identical")]
    fn rejects_vertical_line() {
        linear_fit(&[(1.0, 1.0), (1.0, 2.0)]);
    }
}
