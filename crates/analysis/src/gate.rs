//! Noise-aware regression gating for bench trajectories.
//!
//! The bench observatory records, per matrix cell, a median and an
//! interquartile range over its repetitions. Comparing two artifacts cell
//! by cell needs a *noise model*, or every run-to-run wobble becomes a CI
//! failure: [`NoiseGate::judge`] flags a delta only when it clears **both**
//! a relative bound (so microscopic absolute changes on fast cells don't
//! trip) **and** the pooled IQR of the two samples (so a delta inside the
//! measured run-to-run spread is called noise, not a regression). The gate
//! is pure data — medians and IQRs in, a [`Verdict`] out — so the same
//! logic serves the CLI comparator and the test fixtures.

use selfstab_json::{FromJson, Json, JsonError, ToJson};

use crate::stats::Summary;

/// One metric's measurement: the median over repetitions and the spread.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MetricPoint {
    /// Median over repetitions.
    pub median: f64,
    /// Interquartile range over repetitions (0 for a single rep, which
    /// makes the gate purely relative-bound for deterministic quantities).
    pub iqr: f64,
}

impl MetricPoint {
    /// The point a [`Summary`] measured.
    pub fn of(summary: &Summary) -> MetricPoint {
        MetricPoint {
            median: summary.median,
            iqr: summary.iqr(),
        }
    }
}

impl ToJson for MetricPoint {
    fn to_json(&self) -> Json {
        Json::obj([
            ("median", self.median.to_json()),
            ("iqr", self.iqr.to_json()),
        ])
    }
}

impl FromJson for MetricPoint {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(MetricPoint {
            median: value.parse_field("median")?,
            iqr: value.parse_field("iqr")?,
        })
    }
}

/// Which direction of change is an improvement for a metric.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Throughput-style metrics: a *drop* is a regression.
    HigherIsBetter,
    /// Cost-style metrics (bytes per round, rounds): a *rise* is a
    /// regression.
    LowerIsBetter,
}

/// The comparator's cell-level verdict.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Delta inside the noise gate (or exactly zero).
    Unchanged,
    /// Delta cleared the gate in the good direction.
    Improved,
    /// Delta cleared the gate in the bad direction.
    Regressed,
}

/// The noise model: a delta is *significant* only when it exceeds both the
/// relative bound and the pooled IQR of the two samples.
#[derive(Clone, Copy, Debug)]
pub struct NoiseGate {
    /// Relative bound on `|current − baseline| / baseline` (e.g. `0.10`
    /// for 10 %).
    pub rel_threshold: f64,
}

impl Default for NoiseGate {
    fn default() -> Self {
        NoiseGate {
            rel_threshold: 0.10,
        }
    }
}

impl NoiseGate {
    /// A gate with an explicit relative bound.
    pub fn with_threshold(rel_threshold: f64) -> Self {
        NoiseGate { rel_threshold }
    }

    /// Pooled spread of the two samples: the mean of the two IQRs. A delta
    /// below it is within the run-to-run wobble either artifact measured.
    pub fn pooled_iqr(base: MetricPoint, current: MetricPoint) -> f64 {
        (base.iqr + current.iqr) / 2.0
    }

    /// Relative delta `(current − baseline) / baseline`; 0 when the
    /// baseline median is 0 or either median is not finite.
    pub fn rel_delta(base: MetricPoint, current: MetricPoint) -> f64 {
        if !base.median.is_finite() || !current.median.is_finite() || base.median == 0.0 {
            return 0.0;
        }
        (current.median - base.median) / base.median
    }

    /// Judge one metric's delta between two artifacts.
    pub fn judge(&self, base: MetricPoint, current: MetricPoint, dir: Direction) -> Verdict {
        let rel = Self::rel_delta(base, current);
        let abs = (current.median - base.median).abs();
        if rel.abs() <= self.rel_threshold || abs <= Self::pooled_iqr(base, current) {
            return Verdict::Unchanged;
        }
        let worse = match dir {
            Direction::HigherIsBetter => rel < 0.0,
            Direction::LowerIsBetter => rel > 0.0,
        };
        if worse {
            Verdict::Regressed
        } else {
            Verdict::Improved
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(median: f64, iqr: f64) -> MetricPoint {
        MetricPoint { median, iqr }
    }

    #[test]
    fn clean_regression_and_improvement_are_flagged() {
        let gate = NoiseGate::default();
        // 2× rounds/sec drop: far past 10 % and past the (tiny) IQRs.
        let base = pt(1000.0, 10.0);
        let halved = pt(500.0, 10.0);
        assert_eq!(
            gate.judge(base, halved, Direction::HigherIsBetter),
            Verdict::Regressed
        );
        assert_eq!(
            gate.judge(halved, base, Direction::HigherIsBetter),
            Verdict::Improved
        );
        // For a cost metric the same doubling flips sign.
        assert_eq!(
            gate.judge(halved, base, Direction::LowerIsBetter),
            Verdict::Regressed
        );
    }

    #[test]
    fn noise_inside_either_bound_is_unchanged() {
        let gate = NoiseGate::default();
        // 5 % delta: inside the relative bound.
        assert_eq!(
            gate.judge(pt(1000.0, 0.0), pt(950.0, 0.0), Direction::HigherIsBetter),
            Verdict::Unchanged
        );
        // 20 % delta but the pooled IQR covers it: noisy cell, not a
        // regression.
        assert_eq!(
            gate.judge(
                pt(1000.0, 300.0),
                pt(800.0, 200.0),
                Direction::HigherIsBetter
            ),
            Verdict::Unchanged
        );
        // Same medians are always unchanged, IQR or not.
        assert_eq!(
            gate.judge(pt(7.0, 0.0), pt(7.0, 0.0), Direction::LowerIsBetter),
            Verdict::Unchanged
        );
    }

    #[test]
    fn degenerate_baselines_never_flag() {
        let gate = NoiseGate::default();
        assert_eq!(
            gate.judge(pt(0.0, 0.0), pt(100.0, 0.0), Direction::LowerIsBetter),
            Verdict::Unchanged
        );
        assert_eq!(
            gate.judge(pt(f64::NAN, 0.0), pt(100.0, 0.0), Direction::HigherIsBetter),
            Verdict::Unchanged
        );
    }

    #[test]
    fn metric_point_roundtrips_and_reads_summaries() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        let p = MetricPoint::of(&s);
        assert_eq!(p.median, 3.0);
        assert_eq!(p.iqr, 2.0);
        let back = MetricPoint::from_json(&p.to_json()).unwrap();
        assert_eq!(back, p);
    }
}
