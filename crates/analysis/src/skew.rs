//! Cross-round shard-skew aggregation for profiled runs.
//!
//! [`SkewAccumulator`] folds per-round, per-lane samples — round time and
//! inbox high-water mark — into the totals the offline `analyze` report
//! prints: which lane is the overall straggler, how uneven the rounds were
//! on average, and where backpressure peaked. It is pure data (plain
//! integers in, summaries out) so it can be fed from a live observer or
//! from a parsed JSONL artifact alike.

/// Per-lane running totals, as accumulated by [`SkewAccumulator`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LaneTotals {
    /// Sum of this lane's round times, µs.
    pub total_micros: u64,
    /// Rounds in which this lane was the slowest.
    pub straggler_rounds: usize,
    /// Deepest the lane's inbox ever got.
    pub max_inbox_depth: u64,
    /// 1-based round where `max_inbox_depth` was observed.
    pub peak_round: usize,
}

/// Accumulates per-round `(lane, round_micros, inbox_max_depth)` samples
/// into per-lane totals and a mean per-round skew.
#[derive(Clone, Debug, Default)]
pub struct SkewAccumulator {
    lanes: Vec<LaneTotals>,
    rounds: usize,
    skew_sum: f64,
}

impl SkewAccumulator {
    /// An empty accumulator.
    pub fn new() -> Self {
        SkewAccumulator::default()
    }

    /// Fold in one round's samples: `(lane index, round µs, inbox peak)`.
    /// Lanes may appear in any order; unseen lane indices grow the table.
    pub fn record_round(&mut self, round: usize, samples: &[(usize, u64, u64)]) {
        if samples.is_empty() {
            return;
        }
        self.rounds += 1;
        let max = samples.iter().map(|&(_, us, _)| us).max().unwrap_or(0);
        let mean = samples.iter().map(|&(_, us, _)| us).sum::<u64>() as f64 / samples.len() as f64;
        self.skew_sum += if mean > 0.0 { max as f64 / mean } else { 1.0 };
        // Ties go to the lowest lane index, matching the engine's
        // per-round straggler choice.
        let straggler = samples
            .iter()
            .filter(|&&(_, us, _)| us == max)
            .map(|&(lane, _, _)| lane)
            .min();
        for &(lane, micros, depth) in samples {
            if lane >= self.lanes.len() {
                self.lanes.resize(lane + 1, LaneTotals::default());
            }
            let t = &mut self.lanes[lane];
            t.total_micros += micros;
            if Some(lane) == straggler {
                t.straggler_rounds += 1;
            }
            if depth > t.max_inbox_depth {
                t.max_inbox_depth = depth;
                t.peak_round = round;
            }
        }
    }

    /// Rounds folded in so far.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Per-lane totals, indexed by lane.
    pub fn lanes(&self) -> &[LaneTotals] {
        &self.lanes
    }

    /// The lane that was the slowest most often (ties to the lower index);
    /// `None` before any round is recorded.
    pub fn straggler(&self) -> Option<usize> {
        self.lanes
            .iter()
            .enumerate()
            .max_by(|(ia, a), (ib, b)| {
                (a.straggler_rounds, std::cmp::Reverse(*ia))
                    .cmp(&(b.straggler_rounds, std::cmp::Reverse(*ib)))
            })
            .map(|(i, _)| i)
    }

    /// Mean over rounds of (slowest lane time / mean lane time); 1.0 for a
    /// perfectly balanced run, or when nothing was recorded.
    pub fn mean_skew(&self) -> f64 {
        if self.rounds == 0 {
            1.0
        } else {
            self.skew_sum / self.rounds as f64
        }
    }

    /// Lanes sorted by inbox high-water mark, deepest first — the
    /// "hot channels" list. Only lanes that ever saw a queued message.
    pub fn hot_channels(&self) -> Vec<(usize, u64, usize)> {
        let mut hot: Vec<(usize, u64, usize)> = self
            .lanes
            .iter()
            .enumerate()
            .filter(|(_, t)| t.max_inbox_depth > 0)
            .map(|(i, t)| (i, t.max_inbox_depth, t.peak_round))
            .collect();
        hot.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        hot
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_stragglers_and_skew() {
        let mut acc = SkewAccumulator::new();
        acc.record_round(1, &[(0, 10, 3), (1, 2, 0)]);
        acc.record_round(2, &[(0, 4, 1), (1, 8, 5)]);
        acc.record_round(3, &[(0, 9, 0), (1, 3, 2)]);
        assert_eq!(acc.rounds(), 3);
        assert_eq!(acc.straggler(), Some(0), "lane 0 slowest in 2 of 3 rounds");
        assert_eq!(acc.lanes()[0].total_micros, 23);
        assert_eq!(acc.lanes()[1].straggler_rounds, 1);
        // Round skews: 10/6, 8/6, 9/6 → mean 1.5.
        assert!((acc.mean_skew() - 1.5).abs() < 1e-9);
        // Lane 1 peaked deeper (5, in round 2) than lane 0 (3, round 1).
        assert_eq!(acc.hot_channels(), vec![(1, 5, 2), (0, 3, 1)]);
    }

    #[test]
    fn empty_and_tied_rounds_are_well_defined() {
        let mut acc = SkewAccumulator::new();
        assert_eq!(acc.straggler(), None);
        assert_eq!(acc.mean_skew(), 1.0);
        acc.record_round(1, &[]);
        assert_eq!(acc.rounds(), 0, "empty sample set is not a round");
        // A tie bills the straggler round to the lowest lane index.
        acc.record_round(1, &[(0, 5, 0), (1, 5, 0)]);
        assert_eq!(acc.straggler(), Some(0));
        assert_eq!(acc.mean_skew(), 1.0);
        // All-zero round times count as perfectly balanced, not NaN.
        acc.record_round(2, &[(0, 0, 0), (1, 0, 0)]);
        assert!(acc.mean_skew().is_finite());
    }
}
