//! A resident sharded session: graph, states, and partition survive
//! between mutation epochs instead of being torn down per run.
//!
//! [`crate::chaos::run_churned_sharded`] — and any driver that interleaves
//! topology mutations with convergence waves — needs to run the sharded
//! executor repeatedly on an *evolving* graph while the protocol state
//! carries over. Naively that means re-partitioning (O(n+m) coarsening)
//! and re-materializing states at every churn boundary. A
//! [`ResidentSession`] owns all three resident pieces:
//!
//! * the **live graph**, mutated in place between waves;
//! * the **state vector**, carried explicitly from wave to wave;
//! * the **partition**, computed once — the node→shard map is a function
//!   of node identity only, so edge churn on a fixed node set never
//!   invalidates it (send/receive plans *are* re-derived from the current
//!   adjacency each wave, which is O(boundary), not O(n+m)).
//!
//! The session also owns the **absolute round clock**: observer hooks and
//! fault-plan round offsets are shifted so a segmented execution reports
//! one continuous timeline, indistinguishable from a single long run.
//! Worker threads themselves are scoped per wave (they borrow the mutated
//! graph), so "resident" here means resident *state*, not parked threads —
//! the costs that scale with n stay amortized.

use selfstab_core::partition::Partition;
use selfstab_engine::active::Schedule;
use selfstab_engine::obs::{Observer, RoundStats};
use selfstab_engine::protocol::{InitialState, Protocol, WireState};
use selfstab_engine::sync::Outcome;
use selfstab_graph::{Graph, Node};

use crate::chaos::FaultPlan;
use crate::executor::{RuntimeError, RuntimeExecutor};

/// Forwards observer hooks with the round index shifted by the absolute
/// round of the current convergence wave, and swallows per-wave
/// `on_finish` calls (the driver fires the real one once, at the end).
struct OffsetObserver<'a, O> {
    inner: &'a mut O,
    base: usize,
}

impl<S, O: Observer<S>> Observer<S> for OffsetObserver<'_, O> {
    const ENABLED: bool = O::ENABLED;

    fn on_round_start(&mut self, round: usize, states: &[S]) {
        self.inner.on_round_start(self.base + round, states);
    }

    fn on_move(&mut self, node: Node, rule: usize, next: &S) {
        self.inner.on_move(node, rule, next);
    }

    fn on_round_end(&mut self, stats: &RoundStats, states: &[S]) {
        let mut shifted = stats.clone();
        shifted.round += self.base;
        self.inner.on_round_end(&shifted, states);
    }

    fn on_finish(&mut self, _outcome: &Outcome, _states: &[S]) {}
}

/// A sharded execution session that persists across mutation epochs.
pub struct ResidentSession<'a, P: Protocol>
where
    P::State: WireState,
{
    graph: Graph,
    proto: &'a P,
    partition: Partition,
    schedule: Schedule,
    channel_cap: Option<usize>,
    states: Vec<P::State>,
    moves_per_rule: Vec<u64>,
    clock: usize,
}

impl<'a, P: Protocol> ResidentSession<'a, P>
where
    P::State: WireState,
{
    /// Open a session: clones the graph, materializes the initial states,
    /// and computes the partition once.
    ///
    /// # Panics
    /// Panics if `shards == 0` (same contract as [`RuntimeExecutor::new`]).
    pub fn new(
        graph: &Graph,
        proto: &'a P,
        shards: usize,
        schedule: Schedule,
        channel_cap: Option<usize>,
        init: InitialState<P::State>,
    ) -> Self {
        let graph = graph.clone();
        let states = init.materialize(&graph, proto);
        let partition = Partition::coarsened(&graph, shards);
        let moves_per_rule = vec![0u64; proto.rule_names().len()];
        ResidentSession {
            graph,
            proto,
            partition,
            schedule,
            channel_cap,
            states,
            moves_per_rule,
            clock: 0,
        }
    }

    /// The live topology (mutate between waves via [`Self::graph_mut`]).
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Mutable access to the live topology. Edge mutations only — the
    /// partition is built for this node set and is reused across waves.
    pub fn graph_mut(&mut self) -> &mut Graph {
        &mut self.graph
    }

    /// The current protocol states (one per node).
    pub fn states(&self) -> &[P::State] {
        &self.states
    }

    /// The absolute round clock: total rounds elapsed across all waves,
    /// including fast-forwarded quiescent gaps.
    pub fn clock(&self) -> usize {
        self.clock
    }

    /// Total moves per rule accumulated across all waves.
    pub fn moves_per_rule(&self) -> &[u64] {
        &self.moves_per_rule
    }

    /// Fast-forward the clock over a quiescent gap (rounds in which no
    /// node is privileged are move-free by definition).
    ///
    /// # Panics
    /// Panics if `round` is behind the current clock.
    pub fn advance_clock_to(&mut self, round: usize) {
        assert!(round >= self.clock, "clock may only advance");
        self.clock = round;
    }

    /// Run one convergence wave of at most `budget` rounds on the current
    /// graph from the current states. States, clock, and move totals are
    /// updated in place; observer hooks fire on the absolute round clock
    /// (per-wave `on_finish` is swallowed — fire the real one yourself when
    /// the session ends). The fault plan, if any, is re-anchored at the
    /// current clock so its absolute round fields keep meaning.
    pub fn converge<O: Observer<P::State>>(
        &mut self,
        budget: usize,
        fault: Option<&FaultPlan>,
        obs: &mut O,
    ) -> Result<Outcome, RuntimeError> {
        let mut exec = RuntimeExecutor::new(&self.graph, self.proto, self.partition.k())
            .with_schedule(self.schedule)
            .with_partition(self.partition.clone());
        if let Some(cap) = self.channel_cap {
            exec = exec.with_channel_cap(cap);
        }
        if let Some(f) = fault {
            exec = exec.with_chaos(f.clone().with_round_offset(self.clock));
        }
        let mut wave_obs = OffsetObserver {
            inner: obs,
            base: self.clock,
        };
        let states = std::mem::take(&mut self.states);
        let run = exec.run_observed(InitialState::Explicit(states), budget, &mut wave_obs)?;
        for (acc, &m) in self.moves_per_rule.iter_mut().zip(&run.moves_per_rule) {
            *acc += m;
        }
        self.states = run.final_states;
        self.clock += run.rounds;
        Ok(run.outcome)
    }

    /// Close the session, yielding `(graph, states, moves_per_rule, clock)`.
    pub fn into_parts(self) -> (Graph, Vec<P::State>, Vec<u64>, usize) {
        (self.graph, self.states, self.moves_per_rule, self.clock)
    }
}
