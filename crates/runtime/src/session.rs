//! A resident sharded session: graph, states, and partition survive
//! between mutation epochs instead of being torn down per run.
//!
//! [`crate::chaos::run_churned_sharded`] — and any driver that interleaves
//! topology mutations with convergence waves — needs to run the sharded
//! executor repeatedly on an *evolving* graph while the protocol state
//! carries over. Naively that means re-partitioning (O(n+m) coarsening)
//! and re-materializing states at every churn boundary. A
//! [`ResidentSession`] owns all three resident pieces:
//!
//! * the **live graph**, mutated in place between waves;
//! * the **state vector**, carried explicitly from wave to wave;
//! * the **partition**, computed once — the node→shard map is a function
//!   of node identity only, so edge churn on a fixed node set never
//!   invalidates it (send/receive plans *are* re-derived from the current
//!   adjacency each wave, which is O(boundary), not O(n+m)).
//!
//! The session also owns the **absolute round clock**: observer hooks and
//! fault-plan round offsets are shifted so a segmented execution reports
//! one continuous timeline, indistinguishable from a single long run.
//! Worker threads themselves are scoped per wave (they borrow the mutated
//! graph), so "resident" here means resident *state*, not parked threads —
//! the costs that scale with n stay amortized.

use selfstab_core::partition::Partition;
use selfstab_engine::active::Schedule;
use selfstab_engine::obs::{Observer, RoundStats};
use selfstab_engine::protocol::{InitialState, Protocol, WireState};
use selfstab_engine::sync::Outcome;
use selfstab_graph::{Graph, Node};

use crate::chaos::FaultPlan;
use crate::executor::{RuntimeError, RuntimeExecutor};

/// The result of one convergence wave run by [`converge_wave`]: the
/// updated state vector plus everything a resident caller needs to keep
/// its own bookkeeping (clock, move totals, carried frontier) current.
pub struct Wave<S> {
    /// How the wave ended ([`Outcome::Stabilized`] or
    /// [`Outcome::RoundLimit`]; the runtime has no cycle detection).
    pub outcome: Outcome,
    /// Applied rounds this wave.
    pub rounds: usize,
    /// Moves per rule this wave.
    pub moves_per_rule: Vec<u64>,
    /// The post-wave state vector.
    pub states: Vec<S>,
    /// Dirty frontier left by a `RoundLimit` cut (empty on
    /// stabilization); pass it as the next wave's `seed` to resume.
    pub frontier: Vec<Node>,
}

/// Run one sharded convergence wave: at most `budget` rounds over
/// `graph` from `states`, partitioned by `partition`, with observer
/// hooks fired on the absolute round clock (`clock_base + wave round`;
/// the per-wave `on_finish` is swallowed — fire the real one when the
/// resident execution ends). `seed`, when given under
/// [`Schedule::Active`], starts the worklist from those nodes instead of
/// the full set — see [`RuntimeExecutor::with_active_seed`] for the
/// soundness contract. The fault plan, if any, is re-anchored at
/// `clock_base` so its absolute round fields keep meaning.
///
/// This is the shared engine under [`ResidentSession::converge`] and the
/// service crate's sharded drain backend.
#[allow(clippy::too_many_arguments)]
pub fn converge_wave<P: Protocol, O: Observer<P::State>>(
    graph: &Graph,
    proto: &P,
    partition: &Partition,
    schedule: Schedule,
    channel_cap: Option<usize>,
    seed: Option<&[Node]>,
    fault: Option<&FaultPlan>,
    states: Vec<P::State>,
    budget: usize,
    clock_base: usize,
    obs: &mut O,
) -> Result<Wave<P::State>, RuntimeError>
where
    P::State: WireState,
{
    let mut exec =
        RuntimeExecutor::from_partition(graph, proto, partition.clone()).with_schedule(schedule);
    if let Some(cap) = channel_cap {
        exec = exec.with_channel_cap(cap);
    }
    if let Some(seed) = seed {
        exec = exec.with_active_seed(seed.to_vec());
    }
    if let Some(f) = fault {
        exec = exec.with_chaos(f.clone().with_round_offset(clock_base));
    }
    let mut wave_obs = OffsetObserver {
        inner: obs,
        base: clock_base,
    };
    let resident = exec.run_resident(InitialState::Explicit(states), budget, &mut wave_obs)?;
    Ok(Wave {
        outcome: resident.run.outcome,
        rounds: resident.run.rounds,
        moves_per_rule: resident.run.moves_per_rule,
        states: resident.run.final_states,
        frontier: resident.frontier,
    })
}

/// Forwards observer hooks with the round index shifted by the absolute
/// round of the current convergence wave, and swallows per-wave
/// `on_finish` calls (the driver fires the real one once, at the end).
struct OffsetObserver<'a, O> {
    inner: &'a mut O,
    base: usize,
}

impl<S, O: Observer<S>> Observer<S> for OffsetObserver<'_, O> {
    const ENABLED: bool = O::ENABLED;

    fn on_round_start(&mut self, round: usize, states: &[S]) {
        self.inner.on_round_start(self.base + round, states);
    }

    fn on_move(&mut self, node: Node, rule: usize, next: &S) {
        self.inner.on_move(node, rule, next);
    }

    fn on_round_end(&mut self, stats: &RoundStats, states: &[S]) {
        let mut shifted = stats.clone();
        shifted.round += self.base;
        self.inner.on_round_end(&shifted, states);
    }

    fn on_finish(&mut self, _outcome: &Outcome, _states: &[S]) {}
}

/// A sharded execution session that persists across mutation epochs.
pub struct ResidentSession<'a, P: Protocol>
where
    P::State: WireState,
{
    graph: Graph,
    proto: &'a P,
    partition: Partition,
    schedule: Schedule,
    channel_cap: Option<usize>,
    states: Vec<P::State>,
    moves_per_rule: Vec<u64>,
    clock: usize,
}

impl<'a, P: Protocol> ResidentSession<'a, P>
where
    P::State: WireState,
{
    /// Open a session: clones the graph, materializes the initial states,
    /// and computes the partition once.
    ///
    /// # Panics
    /// Panics if `shards == 0` (same contract as [`RuntimeExecutor::new`]).
    pub fn new(
        graph: &Graph,
        proto: &'a P,
        shards: usize,
        schedule: Schedule,
        channel_cap: Option<usize>,
        init: InitialState<P::State>,
    ) -> Self {
        let graph = graph.clone();
        let states = init.materialize(&graph, proto);
        let partition = Partition::coarsened(&graph, shards);
        let moves_per_rule = vec![0u64; proto.rule_names().len()];
        ResidentSession {
            graph,
            proto,
            partition,
            schedule,
            channel_cap,
            states,
            moves_per_rule,
            clock: 0,
        }
    }

    /// The live topology (mutate between waves via [`Self::graph_mut`]).
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Mutable access to the live topology. Edge mutations only — the
    /// partition is built for this node set and is reused across waves.
    pub fn graph_mut(&mut self) -> &mut Graph {
        &mut self.graph
    }

    /// The current protocol states (one per node).
    pub fn states(&self) -> &[P::State] {
        &self.states
    }

    /// The absolute round clock: total rounds elapsed across all waves,
    /// including fast-forwarded quiescent gaps.
    pub fn clock(&self) -> usize {
        self.clock
    }

    /// Total moves per rule accumulated across all waves.
    pub fn moves_per_rule(&self) -> &[u64] {
        &self.moves_per_rule
    }

    /// Fast-forward the clock over a quiescent gap (rounds in which no
    /// node is privileged are move-free by definition).
    ///
    /// # Panics
    /// Panics if `round` is behind the current clock.
    pub fn advance_clock_to(&mut self, round: usize) {
        assert!(round >= self.clock, "clock may only advance");
        self.clock = round;
    }

    /// Run one convergence wave of at most `budget` rounds on the current
    /// graph from the current states. States, clock, and move totals are
    /// updated in place; observer hooks fire on the absolute round clock
    /// (per-wave `on_finish` is swallowed — fire the real one yourself when
    /// the session ends). The fault plan, if any, is re-anchored at the
    /// current clock so its absolute round fields keep meaning.
    pub fn converge<O: Observer<P::State>>(
        &mut self,
        budget: usize,
        fault: Option<&FaultPlan>,
        obs: &mut O,
    ) -> Result<Outcome, RuntimeError> {
        let states = std::mem::take(&mut self.states);
        let wave = converge_wave(
            &self.graph,
            self.proto,
            &self.partition,
            self.schedule,
            self.channel_cap,
            None,
            fault,
            states,
            budget,
            self.clock,
            obs,
        )?;
        for (acc, &m) in self.moves_per_rule.iter_mut().zip(&wave.moves_per_rule) {
            *acc += m;
        }
        self.states = wave.states;
        self.clock += wave.rounds;
        Ok(wave.outcome)
    }

    /// Close the session, yielding `(graph, states, moves_per_rule, clock)`.
    pub fn into_parts(self) -> (Graph, Vec<P::State>, Vec<u64>, usize) {
        (self.graph, self.states, self.moves_per_rule, self.clock)
    }
}
