//! Bounded MPSC channels for cross-shard beacon traffic.
//!
//! A deliberately small mailbox primitive: a `Mutex<VecDeque>` plus two
//! condvars, a hard capacity, and a high-water mark. The capacity is the
//! backpressure mechanism the runtime's observability reports on — a
//! channel running at its cap means the receiving shard is the bottleneck.
//!
//! The executor's exchange loop uses only the non-blocking [`Sender::try_send`]
//! / [`Receiver::try_recv`] pair (blocking sends between mutually-sending
//! shards with full channels would deadlock); the blocking [`Sender::send`]
//! and [`Receiver::recv`] exist for tests and simpler producer/consumer
//! uses.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

/// Why a [`Sender::try_send`] did not enqueue.
#[derive(Debug, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The channel is at capacity; the value is handed back.
    Full(T),
    /// The receiver was dropped; the value is handed back.
    Disconnected(T),
}

struct Shared<T> {
    queue: Mutex<Inner<T>>,
    not_full: Condvar,
    not_empty: Condvar,
    cap: usize,
}

struct Inner<T> {
    items: VecDeque<T>,
    /// Deepest the queue has ever been (backpressure gauge).
    max_depth: usize,
    senders: usize,
    receiver_alive: bool,
}

/// The sending half; clone one per producer.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half; exactly one per channel.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Create a bounded channel with room for `cap` in-flight values.
///
/// # Panics
/// Panics if `cap == 0` (a zero-capacity mailbox can never deliver under
/// the non-blocking exchange protocol).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    assert!(cap > 0, "channel capacity must be positive");
    let shared = Arc::new(Shared {
        queue: Mutex::new(Inner {
            items: VecDeque::new(),
            max_depth: 0,
            senders: 1,
            receiver_alive: true,
        }),
        not_full: Condvar::new(),
        not_empty: Condvar::new(),
        cap,
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Enqueue without blocking; hands the value back when full or when the
    /// receiver is gone.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let mut q = self.shared.queue.lock().unwrap();
        if !q.receiver_alive {
            return Err(TrySendError::Disconnected(value));
        }
        if q.items.len() >= self.shared.cap {
            return Err(TrySendError::Full(value));
        }
        q.items.push_back(value);
        q.max_depth = q.max_depth.max(q.items.len());
        drop(q);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Enqueue, blocking while the channel is full. Hands the value back
    /// (as `Err`) only if the receiver is dropped.
    pub fn send(&self, value: T) -> Result<(), T> {
        let mut q = self.shared.queue.lock().unwrap();
        loop {
            if !q.receiver_alive {
                return Err(value);
            }
            if q.items.len() < self.shared.cap {
                q.items.push_back(value);
                q.max_depth = q.max_depth.max(q.items.len());
                drop(q);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            q = self.shared.not_full.wait(q).unwrap();
        }
    }

    /// Current queue depth (racy; for gauges only).
    pub fn depth(&self) -> usize {
        self.shared.queue.lock().unwrap().items.len()
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.queue.lock().unwrap().senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut q = self.shared.queue.lock().unwrap();
        q.senders -= 1;
        if q.senders == 0 {
            drop(q);
            // Wake a receiver blocked on an empty queue so it can observe
            // the disconnect.
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Dequeue without blocking; `None` when the queue is currently empty
    /// (regardless of sender liveness).
    pub fn try_recv(&self) -> Option<T> {
        let mut q = self.shared.queue.lock().unwrap();
        let item = q.items.pop_front();
        if item.is_some() {
            drop(q);
            self.shared.not_full.notify_one();
        }
        item
    }

    /// Dequeue, blocking while the queue is empty; `None` once the queue is
    /// empty *and* every sender is gone.
    pub fn recv(&self) -> Option<T> {
        let mut q = self.shared.queue.lock().unwrap();
        loop {
            if let Some(item) = q.items.pop_front() {
                drop(q);
                self.shared.not_full.notify_one();
                return Some(item);
            }
            if q.senders == 0 {
                return None;
            }
            q = self.shared.not_empty.wait(q).unwrap();
        }
    }

    /// Current queue depth (racy; for gauges only).
    pub fn depth(&self) -> usize {
        self.shared.queue.lock().unwrap().items.len()
    }

    /// Deepest the queue has ever been.
    pub fn max_depth(&self) -> usize {
        self.shared.queue.lock().unwrap().max_depth
    }

    /// Read *and reset* the high-water mark: returns the deepest the queue
    /// got since the last call (or creation), then re-arms the mark at the
    /// current depth. Sampling [`Receiver::max_depth`] every round reports
    /// a cumulative maximum — one early burst shadows every later round —
    /// so per-round backpressure gauges must consume the mark instead.
    pub fn take_max_depth(&self) -> usize {
        let mut q = self.shared.queue.lock().unwrap();
        let max = q.max_depth;
        q.max_depth = q.items.len();
        max
    }

    /// Park on the channel's condvar until a message is available, every
    /// sender is gone, or `timeout` elapses; returns whether the queue is
    /// non-empty. The bounded-backoff primitive for pump loops that also
    /// have *outbound* work to retry: a busy-wait burns a core, an unbounded
    /// wait never retries the sends, this does neither.
    pub fn wait_nonempty(&self, timeout: std::time::Duration) -> bool {
        let q = self.shared.queue.lock().unwrap();
        if !q.items.is_empty() || q.senders == 0 {
            return !q.items.is_empty();
        }
        let (q, _) = self
            .shared
            .not_empty
            .wait_timeout(q, timeout)
            .expect("channel mutex");
        !q.items.is_empty()
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.shared.queue.lock().unwrap().receiver_alive = false;
        self.shared.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_order_and_depth_tracking() {
        let (tx, rx) = bounded(4);
        for i in 0..4 {
            tx.try_send(i).unwrap();
        }
        assert_eq!(rx.depth(), 4);
        assert_eq!(tx.try_send(9), Err(TrySendError::Full(9)));
        assert_eq!(
            (0..4).map(|_| rx.try_recv().unwrap()).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
        assert_eq!(rx.try_recv(), None);
        assert_eq!(rx.max_depth(), 4);
    }

    #[test]
    fn take_max_depth_resets_the_high_water_mark() {
        let (tx, rx) = bounded(8);
        for i in 0..4 {
            tx.try_send(i).unwrap();
        }
        for _ in 0..4 {
            rx.try_recv().unwrap();
        }
        // First take sees the burst; the second starts from a clean mark
        // (the cumulative `max_depth` would report 4 forever).
        assert_eq!(rx.take_max_depth(), 4);
        assert_eq!(rx.take_max_depth(), 0);
        tx.try_send(9).unwrap();
        tx.try_send(10).unwrap();
        assert_eq!(rx.take_max_depth(), 2);
        // Re-armed at the *current* depth, not zero: the two queued items
        // are still the deepest the next window has seen.
        assert_eq!(rx.max_depth(), 2);
    }

    #[test]
    fn blocking_send_applies_backpressure() {
        let (tx, rx) = bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let t = thread::spawn(move || {
            // Blocks until the main thread drains one slot.
            tx.send(3).unwrap();
        });
        assert_eq!(rx.recv(), Some(1));
        t.join().unwrap();
        assert_eq!(rx.recv(), Some(2));
        assert_eq!(rx.recv(), Some(3));
        // All senders dropped: recv reports disconnect, not a hang.
        assert_eq!(rx.recv(), None);
    }

    #[test]
    fn mpsc_from_many_threads_delivers_everything() {
        let (tx, rx) = bounded(3);
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let tx = tx.clone();
                thread::spawn(move || {
                    for i in 0..25 {
                        tx.send(p * 100 + i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let mut got = Vec::new();
        while let Some(v) = rx.recv() {
            got.push(v);
        }
        for p in producers {
            p.join().unwrap();
        }
        assert_eq!(got.len(), 100);
        got.sort_unstable();
        got.dedup();
        assert_eq!(got.len(), 100, "no duplicates, nothing lost");
        assert!(rx.max_depth() <= 3, "bound respected");
    }

    #[test]
    fn wait_nonempty_wakes_on_send_and_times_out_when_idle() {
        let (tx, rx) = bounded(2);
        // Empty and idle: times out false, promptly.
        assert!(!rx.wait_nonempty(std::time::Duration::from_millis(5)));
        let t = thread::spawn(move || {
            thread::sleep(std::time::Duration::from_millis(10));
            tx.try_send(7u8).unwrap();
        });
        // Wakes well before the (generous) timeout once the send lands.
        assert!(rx.wait_nonempty(std::time::Duration::from_secs(10)));
        assert_eq!(rx.try_recv(), Some(7));
        t.join().unwrap();
        // All senders gone: returns immediately instead of sleeping.
        let start = std::time::Instant::now();
        assert!(!rx.wait_nonempty(std::time::Duration::from_secs(10)));
        assert!(start.elapsed() < std::time::Duration::from_secs(1));
    }

    #[test]
    fn dropped_receiver_fails_sends() {
        let (tx, rx) = bounded::<u8>(1);
        drop(rx);
        assert_eq!(tx.try_send(1), Err(TrySendError::Disconnected(1)));
        assert_eq!(tx.send(2), Err(2));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = bounded::<u8>(0);
    }
}
