//! [`RuntimeExecutor`]: the sharded mailbox runtime.
//!
//! The graph is partitioned into K shards
//! ([`selfstab_core::partition::Partition::coarsened`]); one worker thread
//! owns each shard's node states. Every worker keeps a full-length state
//! vector, but only its *owned* entries are authoritative — entries for
//! boundary neighbors in other shards are ghosts, refreshed once per round
//! by [`Beacon`] frames arriving through bounded channels. Interior entries
//! of other shards go stale, which is harmless: a guard only ever reads the
//! node itself (owned) and its neighbors (owned or ghost).
//!
//! **A runtime round is exactly a paper round.** Per iteration every worker
//! (1) evaluates the guards of its owned nodes against its current view,
//! (2) publishes its move count into a parity-indexed atomic and crosses a
//! barrier, so all workers agree on the *global* move count, (3) takes the
//! same termination decision [`SyncExecutor`] would — stabilized when no
//! node moved anywhere, round limit before applying the would-be moves —
//! and otherwise (4) applies its own moves and exchanges boundary beacons.
//! Rule evaluation order inside a shard is node order, and applications are
//! per-node disjoint, so the post-round global state is *identical* to the
//! serial executor's, round for round, for any shard count.
//!
//! **The exchange cannot deadlock.** Beacons bound for the same shard are
//! batched into one message per round, and senders never block: each worker
//! pumps — `try_send` its pending batch, drain everything in its own
//! mailbox — until all batches are out and the expected number (a static
//! property of the partition) has arrived. A full peer channel therefore
//! never stops a worker from emptying its own mailbox, which is what
//! unblocks the peer.
//!
//! **At most one round of frames is ever in flight.** A worker sends round
//! r+1 frames only after the round-(r+1) barriers, which every peer reaches
//! only after completely draining its round-r frames. The round tag in each
//! frame turns this invariant into a checked assertion instead of silent
//! state corruption.

use crate::channel::{bounded, Receiver, Sender, TrySendError};
use crate::wire::Beacon;
use selfstab_core::partition::Partition;
use selfstab_engine::obs::{Observer, RoundStats, RuntimeCounters};
use selfstab_engine::protocol::{InitialState, Protocol, View, WireState};
use selfstab_engine::sync::{Outcome, Run, SyncExecutor};
use selfstab_graph::{Graph, Node};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Barrier;

/// Default bound on each cross-shard channel (batch messages; one message
/// carries every beacon one shard sends another for one round).
pub const DEFAULT_CHANNEL_CAP: usize = 1024;

/// Sharded message-passing executor with [`SyncExecutor`]-identical
/// synchronous-round semantics.
pub struct RuntimeExecutor<'a, P: Protocol>
where
    P::State: WireState,
{
    graph: &'a Graph,
    proto: &'a P,
    partition: Partition,
    channel_cap: usize,
}

/// Everything a worker thread needs to run its shard.
struct ShardPlan {
    owned: Vec<Node>,
    /// Per neighbor shard, the boundary nodes whose beacons it needs. All
    /// of a target's frames travel as one concatenated batch message per
    /// round, in deterministic (shard, node) order.
    sends: Vec<(usize, Vec<Node>)>,
    /// Batch messages this shard receives per round (= number of shards
    /// with an edge into it; static for a fixed partition).
    expected_in: usize,
}

/// One applied round as journaled by a worker (observer replay input).
struct RoundJournal<S> {
    moves: Vec<(Node, usize, S)>,
    moves_per_rule: Vec<u64>,
    frames: u64,
    bytes: u64,
    max_depth: u64,
    duration_micros: u64,
}

/// What a worker hands back to the coordinator.
struct WorkerOut<S> {
    shard: usize,
    owned_final: Vec<(Node, S)>,
    moves_per_rule: Vec<u64>,
    rounds: usize,
    outcome: Outcome,
    journal: Vec<RoundJournal<S>>,
}

impl<'a, P: Protocol> RuntimeExecutor<'a, P>
where
    P::State: WireState,
{
    /// New executor over `shards` worker shards (coarsening-based
    /// partition, default channel capacity).
    ///
    /// # Panics
    /// Panics if `shards == 0`.
    pub fn new(graph: &'a Graph, proto: &'a P, shards: usize) -> Self {
        RuntimeExecutor {
            graph,
            proto,
            partition: Partition::coarsened(graph, shards),
            channel_cap: DEFAULT_CHANNEL_CAP,
        }
    }

    /// Override the per-channel frame bound.
    ///
    /// # Panics
    /// Panics if `cap == 0`.
    pub fn with_channel_cap(mut self, cap: usize) -> Self {
        assert!(cap > 0, "channel capacity must be positive");
        self.channel_cap = cap;
        self
    }

    /// The topology this executor runs on.
    pub fn graph(&self) -> &Graph {
        self.graph
    }

    /// The shard assignment in use.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// Number of shards (= worker threads).
    pub fn shards(&self) -> usize {
        self.partition.k()
    }

    /// Per-shard send/receive plans, derived once from the partition.
    fn plans(&self) -> Vec<ShardPlan> {
        let k = self.partition.k();
        let shard_of = &self.partition.shard_of;
        let mut plans: Vec<ShardPlan> = self
            .partition
            .shards
            .iter()
            .map(|owned| ShardPlan {
                owned: owned.clone(),
                sends: Vec::new(),
                expected_in: 0,
            })
            .collect();
        let mut pairs: Vec<Vec<(usize, Node)>> = vec![Vec::new(); k];
        for v in self.graph.nodes() {
            let s = shard_of[v.index()] as usize;
            let mut targets: Vec<usize> = self
                .graph
                .neighbors(v)
                .iter()
                .map(|w| shard_of[w.index()] as usize)
                .filter(|&t| t != s)
                .collect();
            targets.sort_unstable();
            targets.dedup();
            for t in targets {
                pairs[s].push((t, v));
            }
        }
        for (s, mut list) in pairs.into_iter().enumerate() {
            list.sort_unstable();
            for (t, v) in list {
                let appended = match plans[s].sends.last_mut() {
                    Some((last, nodes)) if *last == t => {
                        nodes.push(v);
                        true
                    }
                    _ => false,
                };
                if !appended {
                    plans[s].sends.push((t, vec![v]));
                    plans[t].expected_in += 1;
                }
            }
        }
        debug_assert_eq!(k, plans.len());
        plans
    }

    /// Execute from `init` for at most `max_rounds` rounds.
    pub fn run(&self, init: InitialState<P::State>, max_rounds: usize) -> Run<P::State> {
        self.run_observed(init, max_rounds, &mut ())
    }

    /// Execute, firing [`Observer`] hooks with the same call pattern as
    /// [`SyncExecutor::run_observed`] (moves reported in global node order)
    /// plus per-round [`RuntimeCounters`] in [`RoundStats::runtime`].
    ///
    /// Unlike the serial executor there is no cycle detection: a
    /// non-stabilizing execution ends with [`Outcome::RoundLimit`]. Workers
    /// journal their rounds locally (only when `O::ENABLED`) and the hooks
    /// replay on the calling thread after the workers join, so observers
    /// need not be `Send`.
    pub fn run_observed<O: Observer<P::State>>(
        &self,
        init: InitialState<P::State>,
        max_rounds: usize,
        obs: &mut O,
    ) -> Run<P::State> {
        let initial = init.materialize(self.graph, self.proto);
        let k = self.partition.k();
        let plans = self.plans();

        // One bounded mailbox per shard; every worker can send to every
        // other shard's mailbox.
        let mut senders: Vec<Sender<Vec<u8>>> = Vec::with_capacity(k);
        let mut receivers: Vec<Receiver<Vec<u8>>> = Vec::with_capacity(k);
        for _ in 0..k {
            let (tx, rx) = bounded(self.channel_cap);
            senders.push(tx);
            receivers.push(rx);
        }

        let barrier = Barrier::new(k);
        // Parity-indexed global move accumulators: round r adds to slot
        // r % 2; the slot is re-zeroed (by the second barrier's leader)
        // only after every worker has read it.
        let accum = [AtomicU64::new(0), AtomicU64::new(0)];
        let journal_enabled = O::ENABLED;

        let mut outs: Vec<WorkerOut<P::State>> = std::thread::scope(|scope| {
            let handles: Vec<_> = plans
                .into_iter()
                .zip(receivers)
                .enumerate()
                .map(|(shard, (plan, mailbox))| {
                    let senders = senders.clone();
                    let states = initial.clone();
                    let barrier = &barrier;
                    let accum = &accum;
                    scope.spawn(move || {
                        run_shard(
                            ShardCtx {
                                shard,
                                graph: self.graph,
                                proto: self.proto,
                                plan,
                                senders,
                                mailbox,
                                barrier,
                                accum,
                                max_rounds,
                                journal_enabled,
                            },
                            states,
                        )
                    })
                })
                .collect();
            // The coordinator's sender clones must die or workers' final
            // mailbox drops would still see live senders (harmless here,
            // but keep ownership honest).
            drop(senders);
            handles
                .into_iter()
                .map(|h| h.join().expect("shard worker panicked"))
                .collect()
        });
        outs.sort_by_key(|o| o.shard);

        // All workers take identical termination decisions.
        let rounds = outs[0].rounds;
        let outcome = outs[0].outcome.clone();
        debug_assert!(outs
            .iter()
            .all(|o| o.rounds == rounds && o.outcome == outcome));

        let mut moves_per_rule = vec![0u64; self.proto.rule_names().len()];
        let mut final_states = initial.clone();
        for out in &outs {
            for (acc, &m) in moves_per_rule.iter_mut().zip(&out.moves_per_rule) {
                *acc += m;
            }
            for (v, s) in &out.owned_final {
                final_states[v.index()] = s.clone();
            }
        }

        if O::ENABLED {
            replay_journals(obs, &initial, &final_states, &outcome, rounds, &outs);
        }

        Run {
            final_states,
            rounds,
            moves_per_rule,
            outcome,
            trace: None,
        }
    }
}

/// Borrowed context for one shard worker.
struct ShardCtx<'scope, P: Protocol> {
    shard: usize,
    graph: &'scope Graph,
    proto: &'scope P,
    plan: ShardPlan,
    senders: Vec<Sender<Vec<u8>>>,
    mailbox: Receiver<Vec<u8>>,
    barrier: &'scope Barrier,
    accum: &'scope [AtomicU64; 2],
    max_rounds: usize,
    journal_enabled: bool,
}

/// The worker loop: evaluate → agree on the global move count → decide →
/// apply → exchange.
fn run_shard<P: Protocol>(ctx: ShardCtx<'_, P>, mut states: Vec<P::State>) -> WorkerOut<P::State>
where
    P::State: WireState,
{
    let ShardCtx {
        shard,
        graph,
        proto,
        plan,
        senders,
        mailbox,
        barrier,
        accum,
        max_rounds,
        journal_enabled,
    } = ctx;
    let mut moves_per_rule = vec![0u64; proto.rule_names().len()];
    let mut journal = Vec::new();
    let mut round = 0usize;
    let outcome = loop {
        let timer = journal_enabled.then(std::time::Instant::now);

        let moves: Vec<(Node, selfstab_engine::protocol::Move<P::State>)> = plan
            .owned
            .iter()
            .filter_map(|&v| {
                let view = View::new(v, graph.neighbors(v), &states);
                proto.step(view).map(|m| (v, m))
            })
            .collect();

        let slot = &accum[round % 2];
        slot.fetch_add(moves.len() as u64, Ordering::SeqCst);
        barrier.wait();
        let total = slot.load(Ordering::SeqCst);
        if barrier.wait().is_leader() {
            // Safe: every worker has read `slot`, and its next write is two
            // rounds away, behind the next barrier.
            slot.store(0, Ordering::SeqCst);
        }

        if total == 0 {
            break Outcome::Stabilized;
        }
        if round >= max_rounds {
            // Mirror SyncExecutor: the computed moves are NOT applied.
            break Outcome::RoundLimit;
        }

        let mut round_moves = journal_enabled.then(|| vec![0u64; moves_per_rule.len()]);
        let mut journal_moves = journal_enabled.then(Vec::new);
        for (v, m) in moves {
            moves_per_rule[m.rule] += 1;
            if let Some(rm) = round_moves.as_mut() {
                rm[m.rule] += 1;
            }
            if let Some(jm) = journal_moves.as_mut() {
                jm.push((v, m.rule, m.next.clone()));
            }
            states[v.index()] = m.next;
        }
        round += 1;

        let xch = exchange::<P>(round, &plan, &senders, &mailbox, &mut states);

        if journal_enabled {
            journal.push(RoundJournal {
                moves: journal_moves.unwrap_or_default(),
                moves_per_rule: round_moves.unwrap_or_default(),
                frames: xch.frames,
                bytes: xch.bytes,
                max_depth: xch.max_depth,
                duration_micros: timer.map(|t| t.elapsed().as_micros() as u64).unwrap_or(0),
            });
        }
    };

    WorkerOut {
        shard,
        owned_final: plan
            .owned
            .iter()
            .map(|&v| (v, states[v.index()].clone()))
            .collect(),
        moves_per_rule,
        rounds: round,
        outcome,
        journal,
    }
}

struct ExchangeStats {
    frames: u64,
    bytes: u64,
    max_depth: u64,
}

/// Pump the post-round boundary states out and the neighbors' in. Never
/// blocks on a full peer channel: a stalled send always falls through to
/// draining our own mailbox, which is what un-stalls the peer.
fn exchange<P: Protocol>(
    round: usize,
    plan: &ShardPlan,
    senders: &[Sender<Vec<u8>>],
    mailbox: &Receiver<Vec<u8>>,
    states: &mut [P::State],
) -> ExchangeStats
where
    P::State: WireState,
{
    let mut stats = ExchangeStats {
        frames: 0,
        bytes: 0,
        max_depth: 0,
    };
    let mut next = 0usize;
    let mut pending: Option<(usize, u64, Vec<u8>)> = None;
    let mut received = 0usize;
    while pending.is_some() || next < plan.sends.len() || received < plan.expected_in {
        let mut progress = false;

        if pending.is_none() && next < plan.sends.len() {
            // Batch every beacon bound for shard `t` into one message.
            let (t, nodes) = &plan.sends[next];
            next += 1;
            let mut batch = Vec::with_capacity(nodes.len() * (crate::wire::HEADER_LEN + 8));
            for &v in nodes {
                Beacon {
                    round: round as u32,
                    node: v,
                    state: states[v.index()].clone(),
                }
                .encode_into(&mut batch);
            }
            pending = Some((*t, nodes.len() as u64, batch));
        }
        if let Some((t, frames, bytes)) = pending.take() {
            let len = bytes.len() as u64;
            match senders[t].try_send(bytes) {
                Ok(()) => {
                    stats.frames += frames;
                    stats.bytes += len;
                    stats.max_depth = stats.max_depth.max(senders[t].depth() as u64);
                    progress = true;
                }
                Err(TrySendError::Full(bytes)) => pending = Some((t, frames, bytes)),
                Err(TrySendError::Disconnected(_)) => {
                    unreachable!("peer mailboxes outlive the exchange")
                }
            }
        }

        while let Some(bytes) = mailbox.try_recv() {
            let mut rest = &bytes[..];
            while !rest.is_empty() {
                let (beacon, used) = Beacon::<P::State>::decode_prefix(rest)
                    .expect("malformed beacon frame on shard channel");
                assert_eq!(
                    beacon.round as usize, round,
                    "beacon from a different round in flight"
                );
                states[beacon.node.index()] = beacon.state;
                rest = &rest[used..];
            }
            received += 1;
            progress = true;
        }

        if !progress {
            std::thread::yield_now();
        }
    }
    debug_assert_eq!(received, plan.expected_in);
    stats
}

/// Re-fire the observer hooks on the coordinator from the workers'
/// journals, in [`SyncExecutor`]'s order: per round, moves sorted by node.
fn replay_journals<S: Clone + PartialEq + std::fmt::Debug, O: Observer<S>>(
    obs: &mut O,
    initial: &[S],
    final_states: &[S],
    outcome: &Outcome,
    rounds: usize,
    outs: &[WorkerOut<S>],
) {
    let n_rules = outs
        .iter()
        .map(|o| o.moves_per_rule.len())
        .max()
        .unwrap_or(0);
    let mut states = initial.to_vec();
    for r in 0..rounds {
        obs.on_round_start(r + 1, &states);
        let mut moves: Vec<&(Node, usize, S)> = outs
            .iter()
            .flat_map(|o| o.journal[r].moves.iter())
            .collect();
        moves.sort_by_key(|(v, _, _)| *v);
        let privileged = moves.len();
        for &(v, rule, ref next) in moves {
            states[v.index()] = next.clone();
            obs.on_move(v, rule, &states[v.index()]);
        }
        let mut moves_per_rule = vec![0u64; n_rules];
        let mut runtime = RuntimeCounters {
            shard_moves: vec![0; outs.len()],
            ..RuntimeCounters::default()
        };
        let mut duration = 0u64;
        for out in outs {
            let j = &out.journal[r];
            for (acc, &m) in moves_per_rule.iter_mut().zip(&j.moves_per_rule) {
                *acc += m;
            }
            runtime.shard_moves[out.shard] = j.moves_per_rule.iter().sum();
            runtime.frames += j.frames;
            runtime.bytes_on_wire += j.bytes;
            runtime.max_channel_depth = runtime.max_channel_depth.max(j.max_depth);
            duration = duration.max(j.duration_micros);
        }
        obs.on_round_end(
            &RoundStats {
                round: r + 1,
                privileged,
                moves_per_rule,
                duration_micros: duration,
                beacon: None,
                runtime: Some(runtime),
            },
            &states,
        );
    }
    debug_assert_eq!(states, final_states, "journal replay reproduces the run");
    obs.on_finish(outcome, final_states);
}

/// Convenience: assert a runtime run matches the serial executor on the
/// same inputs (used by tests and the CI smoke target).
pub fn assert_matches_sync<P: Protocol>(
    graph: &Graph,
    proto: &P,
    init: InitialState<P::State>,
    max_rounds: usize,
    shards: usize,
) where
    P::State: WireState,
{
    let serial = SyncExecutor::new(graph, proto).run(init.clone(), max_rounds);
    let sharded = RuntimeExecutor::new(graph, proto, shards).run(init, max_rounds);
    assert_eq!(serial.outcome, sharded.outcome, "outcome (shards={shards})");
    assert_eq!(serial.rounds, sharded.rounds, "rounds (shards={shards})");
    assert_eq!(
        serial.moves_per_rule, sharded.moves_per_rule,
        "moves per rule (shards={shards})"
    );
    assert_eq!(
        serial.final_states, sharded.final_states,
        "final states (shards={shards})"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use selfstab_core::smi::Smi;
    use selfstab_core::smm::{SelectPolicy, Smm};
    use selfstab_engine::obs::MetricsCollector;
    use selfstab_graph::{generators, Ids};

    #[test]
    fn matches_sync_executor_on_smm() {
        let g = generators::grid(6, 5);
        let smm = Smm::paper(Ids::identity(g.n()));
        for shards in [1, 2, 4, 8] {
            for seed in 0..3 {
                assert_matches_sync(&g, &smm, InitialState::Random { seed }, g.n() + 1, shards);
            }
        }
    }

    #[test]
    fn matches_sync_executor_on_smi() {
        let g = generators::petersen();
        let smi = Smi::new(Ids::identity(g.n()));
        for shards in [1, 2, 4, 8] {
            assert_matches_sync(&g, &smi, InitialState::Random { seed: 11 }, 100, shards);
        }
    }

    #[test]
    fn fixpoint_start_is_zero_rounds() {
        let g = generators::path(8);
        let smi = Smi::new(Ids::identity(g.n()));
        // All-true on a path is not independent; all nodes in with no
        // neighbors out — use a stabilized state instead.
        let stable = SyncExecutor::new(&g, &smi).run_random(1, 100).final_states;
        let run = RuntimeExecutor::new(&g, &smi, 4).run(InitialState::Explicit(stable), 100);
        assert!(run.stabilized());
        assert_eq!(run.rounds, 0);
        assert_eq!(run.total_moves(), 0);
    }

    #[test]
    fn round_limit_mirrors_sync_semantics() {
        // C4 under arbitrary-choice R2 (clockwise) oscillates forever; with
        // a round limit both executors must stop at the same (unapplied)
        // point.
        let g = generators::cycle(4);
        let smm = Smm::with_policies(
            Ids::identity(g.n()),
            SelectPolicy::Clockwise,
            SelectPolicy::Clockwise,
        );
        for shards in [1, 2, 4] {
            assert_matches_sync(&g, &smm, InitialState::Default, 13, shards);
        }
    }

    #[test]
    fn tiny_channel_capacity_still_completes() {
        // Capacity 1 forces maximal backpressure; the pump must still
        // deliver every frame without deadlock.
        let g = generators::complete(12);
        let smm = Smm::paper(Ids::identity(g.n()));
        let run_small = RuntimeExecutor::new(&g, &smm, 4)
            .with_channel_cap(1)
            .run(InitialState::Random { seed: 5 }, g.n() + 1);
        let serial = SyncExecutor::new(&g, &smm).run(InitialState::Random { seed: 5 }, g.n() + 1);
        assert_eq!(run_small.final_states, serial.final_states);
        assert_eq!(run_small.rounds, serial.rounds);
    }

    #[test]
    fn observer_replay_matches_serial_hooks() {
        let g = generators::grid(4, 4);
        let smm = Smm::paper(Ids::identity(g.n()));
        let init = InitialState::Random { seed: 3 };

        let mut serial_m = MetricsCollector::new();
        let serial =
            SyncExecutor::new(&g, &smm).run_observed(init.clone(), g.n() + 1, &mut serial_m);
        let mut sharded_m = MetricsCollector::new();
        let sharded =
            RuntimeExecutor::new(&g, &smm, 4).run_observed(init, g.n() + 1, &mut sharded_m);

        assert_eq!(serial.final_states, sharded.final_states);
        assert_eq!(serial_m.rounds().len(), sharded_m.rounds().len());
        for (a, b) in serial_m.rounds().iter().zip(sharded_m.rounds()) {
            assert_eq!(a.round, b.round);
            assert_eq!(a.privileged, b.privileged);
            assert_eq!(a.moves_per_rule, b.moves_per_rule);
            let rt = b.runtime.as_ref().expect("runtime counters present");
            assert_eq!(
                rt.shard_moves.iter().sum::<u64>(),
                a.moves_per_rule.iter().sum::<u64>(),
                "shard moves partition the round's moves"
            );
        }
        // Frames flowed (4 shards on a connected grid must have cut edges).
        assert!(sharded_m
            .rounds()
            .iter()
            .all(|r| r.runtime.as_ref().unwrap().frames > 0));
        assert_eq!(serial_m.outcome(), sharded_m.outcome());
    }

    #[test]
    fn more_shards_than_nodes() {
        let g = generators::path(3);
        let smi = Smi::new(Ids::identity(g.n()));
        assert_matches_sync(&g, &smi, InitialState::Random { seed: 2 }, 50, 8);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        let g = generators::path(3);
        let smi = Smi::new(Ids::identity(g.n()));
        let _ = RuntimeExecutor::new(&g, &smi, 0);
    }
}
