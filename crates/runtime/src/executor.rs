//! [`RuntimeExecutor`]: the sharded mailbox runtime.
//!
//! The graph is partitioned into K shards
//! ([`selfstab_core::partition::Partition::coarsened`]); one worker thread
//! owns each shard's node states. Every worker keeps a full-length state
//! vector, but only its *owned* entries are authoritative — entries for
//! boundary neighbors in other shards are ghosts, refreshed by [`Beacon`]
//! frames arriving through bounded channels. Interior entries of other
//! shards go stale, which is harmless: a guard only ever reads the node
//! itself (owned) and its neighbors (owned or ghost).
//!
//! **A runtime round is exactly a paper round.** Per iteration every worker
//! (1) evaluates the guards of its owned nodes against its current view,
//! (2) publishes its move count into a parity-indexed atomic and crosses a
//! barrier, so all workers agree on the *global* move count, (3) takes the
//! same termination decision [`SyncExecutor`] would — stabilized when no
//! node moved anywhere, round limit before applying the would-be moves —
//! and otherwise (4) applies its own moves and exchanges boundary beacons.
//! Rule evaluation order inside a shard is node order, and applications are
//! per-node disjoint, so the post-round global state is *identical* to the
//! serial executor's, round for round, for any shard count.
//!
//! **Active scheduling becomes delta beacons.** Under the default
//! [`Schedule::Active`] each worker keeps the engine's dirty-node worklist
//! (see [`selfstab_engine::active`]) restricted to its owned nodes, and the
//! wire protocol turns the same invariant into bandwidth: a boundary node's
//! beacon is sent only in rounds where the node *moved*. Ghost entries are
//! seeded from the shared initial state, so an unsent beacon means — and
//! only ever means — "unchanged", and each received beacon marks the
//! sender's closed neighborhood dirty on the receiving side. One batch
//! message still travels per neighbor-shard pair per round (possibly
//! empty), keeping the static `expected_in` accounting and the no-deadlock
//! pump argument of the full schedule.
//!
//! **The exchange cannot deadlock.** Beacons bound for the same shard are
//! batched into one message per round, and senders never block: each worker
//! pumps — `try_send` its pending batch, drain everything in its own
//! mailbox — until all batches are out and the expected number (a static
//! property of the partition) has arrived. A full peer channel therefore
//! never stops a worker from emptying its own mailbox, which is what
//! unblocks the peer. An idle pump iteration parks on the mailbox condvar
//! with a bounded timeout rather than spinning.
//!
//! **At most one round of frames is ever in flight.** A worker sends round
//! r+1 frames only after the round-(r+1) barriers, which every peer reaches
//! only after completely draining its round-r frames. The round tag in each
//! frame turns this invariant into a checked [`RuntimeError::RoundTag`]
//! instead of silent state corruption.
//!
//! **Failures propagate; they do not hang or abort.** A worker that hits a
//! wire error poisons the shared [`PoisonBarrier`] (waking peers parked on
//! it) and drops its mailbox (failing peers' sends); peers fold into
//! [`RuntimeError::Aborted`], the coordinator joins everyone, and
//! [`RuntimeExecutor::run`] returns the most informative error. A panicking
//! worker poisons the barrier from its drop guard and surfaces as
//! [`RuntimeError::WorkerPanic`].

use crate::barrier::PoisonBarrier;
use crate::channel::{bounded, Receiver, Sender, TrySendError};
use crate::chaos::{FaultPlan, FrameFate};
use crate::wire::{frame_extent, Beacon};
use rand::rngs::StdRng;
use rand::SeedableRng;
use selfstab_core::partition::Partition;
use selfstab_engine::active::{ActiveSet, Schedule};
use selfstab_engine::adversary::{AsymPlan, ByzPlan, Perception};
use selfstab_engine::obs::{
    Observer, Phase, PhaseSpans, RoundProfile, RoundStats, RuntimeCounters, ShardProfile,
};
use selfstab_engine::protocol::{InitialState, Protocol, View, WireError, WireState};
use selfstab_engine::sync::{Outcome, Run, SyncExecutor};
use selfstab_graph::{Graph, Node};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Default bound on each cross-shard channel (batch messages; one message
/// carries every beacon one shard sends another for one round).
pub const DEFAULT_CHANNEL_CAP: usize = 1024;

/// Idle pump iterations spent yielding before parking on the mailbox.
const SPIN_LIMIT: u32 = 16;

/// How long an idle pump iteration parks on the mailbox condvar before
/// re-checking its pending send and the abort flag.
const IDLE_PARK: Duration = Duration::from_micros(500);

/// Why a sharded run failed. The runtime returns errors instead of
/// panicking worker threads: a malformed frame or an overflowing encode
/// surfaces here, with every worker joined and no thread left behind.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RuntimeError {
    /// A beacon failed to encode or decode on a shard boundary.
    Wire {
        /// Shard that hit the error.
        shard: usize,
        /// The underlying wire-format error.
        error: WireError,
    },
    /// A beacon carried a round tag other than the round being exchanged —
    /// the "at most one round in flight" invariant was violated.
    RoundTag {
        /// Shard that received the frame.
        shard: usize,
        /// Round tag carried by the frame.
        got: u32,
        /// Round tag the exchange expected.
        expected: u32,
    },
    /// `max_rounds` exceeds the `u32` beacon round-tag range.
    MaxRoundsOverflow {
        /// The requested round limit.
        max_rounds: usize,
    },
    /// A worker thread panicked (the panic payload goes to stderr; the run
    /// is torn down via the poisoned barrier).
    WorkerPanic {
        /// Shard whose worker panicked.
        shard: usize,
    },
    /// A worker shut down because a peer failed first; the peer's error is
    /// reported instead of this one whenever the coordinator has it.
    Aborted {
        /// Shard that observed the teardown.
        shard: usize,
    },
    /// The configured [`FaultPlan`] is inconsistent with this executor
    /// (out-of-range probabilities or a crash aimed at a nonexistent
    /// shard); rejected before any worker spawns.
    InvalidPlan {
        /// What was wrong with the plan.
        reason: String,
    },
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::Wire { shard, error } => {
                write!(f, "shard {shard}: beacon wire error: {error}")
            }
            RuntimeError::RoundTag {
                shard,
                got,
                expected,
            } => write!(
                f,
                "shard {shard}: beacon round tag {got} arrived during round {expected}"
            ),
            RuntimeError::MaxRoundsOverflow { max_rounds } => write!(
                f,
                "max_rounds {max_rounds} exceeds the u32 beacon round-tag range"
            ),
            RuntimeError::WorkerPanic { shard } => write!(f, "shard {shard}: worker panicked"),
            RuntimeError::Aborted { shard } => {
                write!(f, "shard {shard}: aborted after a peer shard failed")
            }
            RuntimeError::InvalidPlan { reason } => write!(f, "invalid fault plan: {reason}"),
        }
    }
}

impl std::error::Error for RuntimeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RuntimeError::Wire { error, .. } => Some(error),
            _ => None,
        }
    }
}

/// How much a worker's error explains about the root cause; the
/// coordinator reports the highest-ranked one.
fn error_rank(e: &RuntimeError) -> u8 {
    match e {
        RuntimeError::Wire { .. }
        | RuntimeError::RoundTag { .. }
        | RuntimeError::InvalidPlan { .. } => 3,
        RuntimeError::MaxRoundsOverflow { .. } => 2,
        RuntimeError::WorkerPanic { .. } => 1,
        RuntimeError::Aborted { .. } => 0,
    }
}

/// Sharded message-passing executor with [`SyncExecutor`]-identical
/// synchronous-round semantics.
pub struct RuntimeExecutor<'a, P: Protocol>
where
    P::State: WireState,
{
    graph: &'a Graph,
    proto: &'a P,
    partition: Partition,
    channel_cap: usize,
    schedule: Schedule,
    chaos: Option<FaultPlan>,
    active_seed: Option<Vec<Node>>,
}

/// A [`Run`] plus the dirty frontier left behind when the round limit cut
/// the execution short — what a resident caller needs to carry recovery
/// work across waves (see [`RuntimeExecutor::run_resident`]).
pub struct ResidentRun<S> {
    /// The run result, identical to [`RuntimeExecutor::run_observed`]'s.
    pub run: Run<S>,
    /// Nodes whose closed neighborhoods were dirtied by the last applied
    /// round but never re-evaluated: empty when the run stabilized; under
    /// [`Schedule::Active`] exactly the serial active-set worklist at the
    /// cut (sorted, deduplicated); under [`Schedule::Full`] conservatively
    /// every node. Re-seeding the next wave with this set resumes the
    /// execution as if the limit had never fired.
    pub frontier: Vec<Node>,
}

/// Everything a worker thread needs to run its shard.
struct ShardPlan {
    owned: Vec<Node>,
    /// Per neighbor shard, the boundary nodes whose beacons it needs. All
    /// of a target's frames travel as one concatenated batch message per
    /// round, in deterministic (shard, node) order.
    sends: Vec<(usize, Vec<Node>)>,
    /// Batch messages this shard receives per round (= number of shards
    /// with an edge into it; static for a fixed partition, under either
    /// schedule — delta rounds send empty batches rather than none).
    expected_in: usize,
}

/// One applied round as journaled by a worker (observer replay input).
struct RoundJournal<S> {
    moves: Vec<(Node, usize, S)>,
    moves_per_rule: Vec<u64>,
    evaluated: usize,
    frames: u64,
    suppressed: u64,
    bytes: u64,
    max_depth: u64,
    duration_micros: u64,
    /// Chaos counters for this round's exchange (all zero without a plan).
    dropped: u64,
    duped: u64,
    delayed: u64,
    corrupted: u64,
    /// Byzantine rewrites this worker's owned nodes took this round,
    /// applied *after* `moves` (replay applies them in the same order).
    byz: Vec<(Node, S)>,
    /// Inbound directions the asymmetric-link model held down this round.
    asym_down: u64,
    /// The rehydrated owned states, when this worker crash-restarted at the
    /// top of this round (replay applies them before the round's moves).
    restart: Option<Vec<(Node, S)>>,
    /// Phase spans for this round (compute / encode / send / recv_wait /
    /// barrier_wait / rehydrate).
    spans: PhaseSpans,
    /// This worker's mailbox high-water mark for the round (consumed and
    /// reset at the round boundary via `Receiver::take_max_depth`).
    inbox_max_depth: u64,
    /// Mailbox depth left after the round's exchange drained (normally 0).
    inbox_depth: u64,
}

/// What a worker hands back to the coordinator.
struct WorkerOut<S> {
    shard: usize,
    owned_final: Vec<(Node, S)>,
    moves_per_rule: Vec<u64>,
    rounds: usize,
    outcome: Outcome,
    journal: Vec<RoundJournal<S>>,
    /// Owned share of the dirty frontier at a `RoundLimit` exit (empty on
    /// stabilization).
    frontier: Vec<Node>,
}

impl<'a, P: Protocol> RuntimeExecutor<'a, P>
where
    P::State: WireState,
{
    /// New executor over `shards` worker shards (coarsening-based
    /// partition, default channel capacity, [`Schedule::Active`] delta
    /// beacons).
    ///
    /// # Panics
    /// Panics if `shards == 0`.
    pub fn new(graph: &'a Graph, proto: &'a P, shards: usize) -> Self {
        Self::from_partition(graph, proto, Partition::coarsened(graph, shards))
    }

    /// New executor over a precomputed shard assignment, skipping the
    /// O(n+m) coarsening run entirely — the resident paths reuse one
    /// partition across many waves (see [`RuntimeExecutor::with_partition`]
    /// for why that is sound under edge churn).
    ///
    /// # Panics
    /// Panics if the partition was built for a different node count.
    pub fn from_partition(graph: &'a Graph, proto: &'a P, partition: Partition) -> Self {
        assert_eq!(
            partition.shard_of.len(),
            graph.n(),
            "partition covers a different node set"
        );
        RuntimeExecutor {
            graph,
            proto,
            partition,
            channel_cap: DEFAULT_CHANNEL_CAP,
            schedule: Schedule::default(),
            chaos: None,
            active_seed: None,
        }
    }

    /// Override the per-channel frame bound.
    ///
    /// # Panics
    /// Panics if `cap == 0`.
    pub fn with_channel_cap(mut self, cap: usize) -> Self {
        assert!(cap > 0, "channel capacity must be positive");
        self.channel_cap = cap;
        self
    }

    /// Choose between full per-round re-evaluation/re-broadcast and the
    /// active schedule (dirty-node evaluation + delta beacons). Results are
    /// identical; only evaluations and wire traffic differ.
    pub fn with_schedule(mut self, schedule: Schedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Start the [`Schedule::Active`] worklist from `seed` instead of the
    /// full node set.
    ///
    /// Soundness contract (the engine's active-schedule invariant): `seed`
    /// must contain every node that could be privileged in the initial
    /// configuration — e.g. the perturbed closed neighborhoods of a
    /// previously stabilized state, or the frontier a prior round-limited
    /// run reported (see [`ResidentRun::frontier`]). Nodes outside the
    /// seed's closure are never evaluated, so an unsound seed can yield a
    /// false `Stabilized`. Ignored under [`Schedule::Full`], which always
    /// sweeps every node.
    pub fn with_active_seed(mut self, seed: Vec<Node>) -> Self {
        self.active_seed = Some(seed);
        self
    }

    /// Reuse a precomputed shard assignment instead of re-running the
    /// coarsening partitioner. The node→shard map is a function of node
    /// identity only, so a partition stays valid across edge churn on a
    /// fixed node set — resident sessions exploit this to skip the O(n+m)
    /// re-partition on every mutation epoch (send/receive plans are still
    /// re-derived from the current graph each run).
    ///
    /// # Panics
    /// Panics if the partition was built for a different node count.
    pub fn with_partition(mut self, partition: Partition) -> Self {
        assert_eq!(
            partition.shard_of.len(),
            self.graph.n(),
            "partition covers a different node set"
        );
        self.partition = partition;
        self
    }

    /// Install a deterministic chaos [`FaultPlan`]: dropped / duplicated /
    /// delayed / bit-corrupted boundary beacons and scheduled shard
    /// crash-restarts. With no plan the executor is byte-for-byte the clean
    /// runtime (no per-frame decision is ever consulted); with a plan the
    /// run stays fully deterministic in the plan's seed. The plan is
    /// validated by [`RuntimeExecutor::run`], which returns
    /// [`RuntimeError::InvalidPlan`] for out-of-range probabilities or a
    /// crash aimed at a nonexistent shard.
    pub fn with_chaos(mut self, plan: FaultPlan) -> Self {
        self.chaos = Some(plan);
        self
    }

    /// The topology this executor runs on.
    pub fn graph(&self) -> &Graph {
        self.graph
    }

    /// The shard assignment in use.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// Number of shards (= worker threads).
    pub fn shards(&self) -> usize {
        self.partition.k()
    }

    /// Per-shard send/receive plans, derived once from the partition.
    fn plans(&self) -> Vec<ShardPlan> {
        let k = self.partition.k();
        let shard_of = &self.partition.shard_of;
        let mut plans: Vec<ShardPlan> = self
            .partition
            .shards
            .iter()
            .map(|owned| ShardPlan {
                owned: owned.clone(),
                sends: Vec::new(),
                expected_in: 0,
            })
            .collect();
        let mut pairs: Vec<Vec<(usize, Node)>> = vec![Vec::new(); k];
        for v in self.graph.nodes() {
            let s = shard_of[v.index()] as usize;
            let mut targets: Vec<usize> = self
                .graph
                .neighbors(v)
                .iter()
                .map(|w| shard_of[w.index()] as usize)
                .filter(|&t| t != s)
                .collect();
            targets.sort_unstable();
            targets.dedup();
            for t in targets {
                pairs[s].push((t, v));
            }
        }
        for (s, mut list) in pairs.into_iter().enumerate() {
            list.sort_unstable();
            for (t, v) in list {
                let appended = match plans[s].sends.last_mut() {
                    Some((last, nodes)) if *last == t => {
                        nodes.push(v);
                        true
                    }
                    _ => false,
                };
                if !appended {
                    plans[s].sends.push((t, vec![v]));
                    plans[t].expected_in += 1;
                }
            }
        }
        debug_assert_eq!(k, plans.len());
        plans
    }

    /// Execute from `init` for at most `max_rounds` rounds.
    pub fn run(
        &self,
        init: InitialState<P::State>,
        max_rounds: usize,
    ) -> Result<Run<P::State>, RuntimeError> {
        self.run_observed(init, max_rounds, &mut ())
    }

    /// Execute, firing [`Observer`] hooks with the same call pattern as
    /// [`SyncExecutor::run_observed`] (moves reported in global node order)
    /// plus per-round [`RuntimeCounters`] in [`RoundStats::runtime`].
    ///
    /// Unlike the serial executor there is no cycle detection: a
    /// non-stabilizing execution ends with [`Outcome::RoundLimit`]. Workers
    /// journal their rounds locally (only when `O::ENABLED`) and the hooks
    /// replay on the calling thread after the workers join, so observers
    /// need not be `Send`.
    pub fn run_observed<O: Observer<P::State>>(
        &self,
        init: InitialState<P::State>,
        max_rounds: usize,
        obs: &mut O,
    ) -> Result<Run<P::State>, RuntimeError> {
        Ok(self.run_resident(init, max_rounds, obs)?.run)
    }

    /// Like [`RuntimeExecutor::run_observed`], but also report the dirty
    /// frontier a `RoundLimit` exit left behind, so a resident caller can
    /// seed the next wave (via [`RuntimeExecutor::with_active_seed`]) and
    /// resume exactly where the budget cut the execution.
    pub fn run_resident<O: Observer<P::State>>(
        &self,
        init: InitialState<P::State>,
        max_rounds: usize,
        obs: &mut O,
    ) -> Result<ResidentRun<P::State>, RuntimeError> {
        // Beacon round tags are u32; rounds never exceed max_rounds, so
        // checking the limit once makes every later cast exact.
        if u32::try_from(max_rounds).is_err() {
            return Err(RuntimeError::MaxRoundsOverflow { max_rounds });
        }
        let k = self.partition.k();
        if let Some(fault) = &self.chaos {
            fault
                .check_probabilities()
                .map_err(|reason| RuntimeError::InvalidPlan { reason })?;
            if let Some(c) = fault.crashes.iter().find(|c| c.shard >= k) {
                return Err(RuntimeError::InvalidPlan {
                    reason: format!("crash shard {} out of range (shards = {k})", c.shard),
                });
            }
            if let Some(b) = fault.byz.iter().find(|b| b.index() >= self.graph.n()) {
                return Err(RuntimeError::InvalidPlan {
                    reason: format!(
                        "byzantine node {} out of range (n = {})",
                        b.0,
                        self.graph.n()
                    ),
                });
            }
        }
        let initial = init.materialize(self.graph, self.proto);
        let plans = self.plans();

        // One bounded mailbox per shard; every worker can send to every
        // other shard's mailbox.
        let mut senders: Vec<Sender<Vec<u8>>> = Vec::with_capacity(k);
        let mut receivers: Vec<Receiver<Vec<u8>>> = Vec::with_capacity(k);
        for _ in 0..k {
            let (tx, rx) = bounded(self.channel_cap);
            senders.push(tx);
            receivers.push(rx);
        }

        let barrier = PoisonBarrier::new(k);
        // Parity-indexed global move accumulators: round r adds to slot
        // r % 2; the slot is re-zeroed (by the second barrier's leader)
        // only after every worker has read it.
        let accum = [AtomicU64::new(0), AtomicU64::new(0)];
        let journal_enabled = O::ENABLED;
        let schedule = self.schedule;
        let fault = self.chaos.as_ref();
        let seed = self.active_seed.as_deref();

        let results: Vec<Result<WorkerOut<P::State>, RuntimeError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = plans
                .into_iter()
                .zip(receivers)
                .enumerate()
                .map(|(shard, (plan, mailbox))| {
                    let senders = senders.clone();
                    let states = initial.clone();
                    let barrier = &barrier;
                    let accum = &accum;
                    scope.spawn(move || {
                        run_shard(
                            ShardCtx {
                                shard,
                                graph: self.graph,
                                proto: self.proto,
                                plan,
                                senders,
                                mailbox,
                                barrier,
                                accum,
                                max_rounds,
                                schedule,
                                seed,
                                journal_enabled,
                                fault,
                            },
                            states,
                        )
                    })
                })
                .collect();
            // The coordinator's sender clones must die or workers' final
            // mailbox drops would still see live senders (harmless here,
            // but keep ownership honest).
            drop(senders);
            handles
                .into_iter()
                .enumerate()
                .map(|(shard, h)| match h.join() {
                    Ok(result) => result,
                    // The drop guard already poisoned the barrier.
                    Err(_) => Err(RuntimeError::WorkerPanic { shard }),
                })
                .collect()
        });

        let mut outs: Vec<WorkerOut<P::State>> = Vec::with_capacity(k);
        let mut error: Option<RuntimeError> = None;
        for result in results {
            match result {
                Ok(out) => outs.push(out),
                Err(e) => {
                    error = Some(match error.take() {
                        Some(prev) if error_rank(&prev) >= error_rank(&e) => prev,
                        _ => e,
                    })
                }
            }
        }
        if let Some(e) = error {
            return Err(e);
        }
        outs.sort_by_key(|o| o.shard);

        // All workers take identical termination decisions.
        let rounds = outs[0].rounds;
        let outcome = outs[0].outcome.clone();
        debug_assert!(outs
            .iter()
            .all(|o| o.rounds == rounds && o.outcome == outcome));

        let mut moves_per_rule = vec![0u64; self.proto.rule_names().len()];
        let mut final_states = initial.clone();
        for out in &outs {
            for (acc, &m) in moves_per_rule.iter_mut().zip(&out.moves_per_rule) {
                *acc += m;
            }
            for (v, s) in &out.owned_final {
                final_states[v.index()] = s.clone();
            }
        }

        if O::ENABLED {
            replay_journals(obs, &initial, &final_states, &outcome, rounds, &outs);
        }

        // Owned frontiers are disjoint across shards; concatenate and sort
        // to recover the serial worklist's canonical node order.
        let mut frontier: Vec<Node> = outs
            .iter()
            .flat_map(|o| o.frontier.iter().copied())
            .collect();
        frontier.sort_unstable();

        Ok(ResidentRun {
            run: Run {
                final_states,
                rounds,
                moves_per_rule,
                outcome,
                trace: None,
            },
            frontier,
        })
    }
}

/// Borrowed context for one shard worker.
struct ShardCtx<'scope, P: Protocol> {
    shard: usize,
    graph: &'scope Graph,
    proto: &'scope P,
    plan: ShardPlan,
    senders: Vec<Sender<Vec<u8>>>,
    mailbox: Receiver<Vec<u8>>,
    barrier: &'scope PoisonBarrier,
    accum: &'scope [AtomicU64; 2],
    max_rounds: usize,
    schedule: Schedule,
    seed: Option<&'scope [Node]>,
    journal_enabled: bool,
    fault: Option<&'scope FaultPlan>,
}

/// A delayed beacon buffered sender-side by chaos injection.
struct DelayedFrame<S> {
    deliver_round: usize,
    /// Index into `ShardPlan::sends`.
    slot: usize,
    /// Index of the node within that send entry's node list.
    pos: usize,
    node: Node,
    state: S,
}

/// Per-worker chaos bookkeeping, allocated only when a plan is installed.
///
/// `acked[slot][pos]` models the value the target shard's ghost of that
/// boundary node *actually* holds, maintained from the sender-side fate
/// decisions (which are deterministic, so the model is exact): delivered
/// and duplicated frames update it, dropped and corrupted frames leave it,
/// delayed frames update it at delivery. `None` means unknown (the target
/// crashed and rehydrated arbitrary ghosts). A boundary beacon is
/// (re-)sent whenever the model disagrees with the node's current state,
/// which is what repairs chaos losses; and the run may not report
/// `Stabilized` while any entry disagrees — that is the signal preventing
/// false stabilization on stale ghosts.
struct ChaosState<S> {
    acked: Vec<Vec<Option<S>>>,
    delayed: Vec<DelayedFrame<S>>,
    /// Whether the last exchange left any `acked` entry out of sync.
    lagging: bool,
}

/// Poisons the barrier if the worker unwinds, so peers parked on it fail
/// over to [`RuntimeError::Aborted`] instead of hanging.
struct PanicGuard<'a>(&'a PoisonBarrier);

impl Drop for PanicGuard<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.poison();
        }
    }
}

/// The worker entry point: run the loop, and on *any* failure poison the
/// barrier before returning so no peer is left parked.
fn run_shard<P: Protocol>(
    ctx: ShardCtx<'_, P>,
    states: Vec<P::State>,
) -> Result<WorkerOut<P::State>, RuntimeError>
where
    P::State: WireState,
{
    let guard = PanicGuard(ctx.barrier);
    let result = shard_loop(ctx, states);
    if let Err(e) = &result {
        guard.0.poison();
        debug_assert!(!matches!(e, RuntimeError::WorkerPanic { .. }));
    }
    result
}

/// The worker loop: evaluate → agree on the global move count → decide →
/// apply → exchange.
fn shard_loop<P: Protocol>(
    ctx: ShardCtx<'_, P>,
    mut states: Vec<P::State>,
) -> Result<WorkerOut<P::State>, RuntimeError>
where
    P::State: WireState,
{
    let ShardCtx {
        shard,
        graph,
        proto,
        plan,
        senders,
        mailbox,
        barrier,
        accum,
        max_rounds,
        schedule,
        seed,
        journal_enabled,
        fault,
    } = ctx;
    let n = states.len();
    // Chaos bookkeeping; ghosts are seeded from the shared initial state,
    // so every modeled ghost starts in sync.
    let mut chaos: Option<ChaosState<P::State>> = fault.map(|_| ChaosState {
        acked: plan
            .sends
            .iter()
            .map(|(_, nodes)| {
                nodes
                    .iter()
                    .map(|&v| Some(states[v.index()].clone()))
                    .collect()
            })
            .collect(),
        delayed: Vec::new(),
        lagging: false,
    });
    // Adversarial sub-plans. Hashes are keyed on node identity and the
    // round — never on shards — so every worker takes the same decisions
    // the serial executor would.
    let byz: Option<ByzPlan> = fault.and_then(|f| f.byz_plan());
    let asym: Option<AsymPlan> = fault.and_then(|f| f.asym_plan());
    // Perceived-neighbor-state rows for this worker's owned nodes. The
    // neighbor entries read during refresh are owned states or ghosts,
    // which (absent frame chaos) equal the serial executor's states at
    // every round start — so the perceived views match serially too.
    let mut perception: Option<Perception<P::State>> = asym
        .as_ref()
        .map(|_| Perception::new(graph, &plan.owned, &states));
    let mut owned_mask = vec![false; n];
    for &v in &plan.owned {
        owned_mask[v.index()] = true;
    }
    // Active-mode worklists (ping-pong pair), plus a per-round moved mask
    // driving delta-beacon suppression. The sets span all n nodes: marking
    // a ghost is how a received beacon dirties its owned neighbors, and
    // evaluation filters through `owned_mask`. Every worker starts from
    // the same seed (full set by default), so the union of the per-worker
    // worklists equals the serial worklist in every round.
    let mut active = (schedule == Schedule::Active).then(|| {
        let cur = match seed {
            Some(seed) => {
                let mut cur = ActiveSet::empty(n);
                for &v in seed {
                    cur.insert(v);
                }
                cur.seal();
                cur
            }
            None => ActiveSet::full(n),
        };
        (cur, ActiveSet::empty(n), vec![false; n])
    });
    let mut moved_list: Vec<Node> = Vec::new();

    let mut moves_per_rule = vec![0u64; proto.rule_names().len()];
    let mut journal = Vec::new();
    let mut round = 0usize;
    let abort = |shard| RuntimeError::Aborted { shard };
    let outcome = loop {
        let timer = journal_enabled.then(std::time::Instant::now);
        let mut spans = journal_enabled.then(PhaseSpans::new);

        // Injected crash-restarts fire at the top of the round, before
        // evaluation. Every worker consults the same plan, so the peers of
        // a crashed shard know to distrust their model of its ghosts. An
        // injected crash never touches the barrier: the round protocol
        // resumes with the rehydrated worker, while a *real* panic still
        // poisons the barrier through the PanicGuard.
        let mut pending_restart: Option<Vec<(Node, P::State)>> = None;
        let t_rehydrate = journal_enabled.then(std::time::Instant::now);
        let mut rehydrated = false;
        if let (Some(f), Some(ch)) = (fault, chaos.as_mut()) {
            if round < max_rounds {
                for crashed in f.crashes_at(round) {
                    if crashed == shard {
                        // This worker "crashes": it loses every state entry
                        // — owned and ghost — and rehydrates arbitrarily,
                        // exactly the adversarial restart of the paper's
                        // fault model.
                        let mut rng = StdRng::seed_from_u64(f.restart_seed(shard, round));
                        for v in graph.nodes() {
                            states[v.index()] =
                                proto.arbitrary_state(v, graph.neighbors(v), &mut rng);
                        }
                        // A restarted node has no memory of who it told
                        // what: rebroadcast everything until re-acked.
                        for row in &mut ch.acked {
                            row.fill(None);
                        }
                        ch.delayed.clear();
                        ch.lagging = true;
                        // Every owned node must re-enter evaluation.
                        if let Some((cur, _, _)) = active.as_mut() {
                            for &v in &plan.owned {
                                cur.insert(v);
                            }
                            cur.seal();
                        }
                        rehydrated = true;
                        if journal_enabled {
                            pending_restart = Some(
                                plan.owned
                                    .iter()
                                    .map(|&v| (v, states[v.index()].clone()))
                                    .collect(),
                            );
                        }
                    } else {
                        // A peer crashed: its ghosts of our boundary nodes
                        // are garbage now, whatever we delivered before.
                        for (si, (t, _)) in plan.sends.iter().enumerate() {
                            if *t == crashed {
                                ch.acked[si].fill(None);
                                ch.lagging = true;
                            }
                        }
                    }
                }
            }
        }

        if rehydrated {
            if let (Some(t0), Some(sp)) = (t_rehydrate, spans.as_mut()) {
                sp.add_nanos(Phase::Rehydrate, t0.elapsed().as_nanos() as u64);
            }
        }

        let byz_hot = byz.as_ref().is_some_and(|b| b.hot(round));
        let asym_live = asym.as_ref().is_some_and(|a| a.hot(round));
        let asym_sweep = asym.as_ref().is_some_and(|a| a.sweep(round));
        // Deliver this round's inbound beacons under the asymmetric-link
        // model (after any crash rehydration, mirroring the serial order).
        let mut asym_down = 0u64;
        if asym_live {
            if let (Some(a), Some(per)) = (asym.as_ref(), perception.as_mut()) {
                asym_down = per.refresh(graph, a, round, &states);
            }
        }

        let mut evaluated = 0usize;
        let mut moves: Vec<(Node, selfstab_engine::protocol::Move<P::State>)> = Vec::new();
        span(spans.as_mut(), Phase::Compute, || {
            if asym_live {
                // Evaluate every owned node on its *perceived* neighbor
                // states (worklist pruning is unsound while links fail —
                // see `AsymPlan::sweep`).
                let per = perception.as_ref().expect("asym plan implies perception");
                evaluated = plan.owned.len();
                for (pos, &v) in plan.owned.iter().enumerate() {
                    let view = View::with_overlay(v, graph.neighbors(v), &states, per.row(pos));
                    if let Some(m) = proto.step(view) {
                        moves.push((v, m));
                    }
                }
                return;
            }
            match active.as_ref() {
                // Catch-up round after the asym window closes: true views,
                // but a full owned sweep — perception may have just caught
                // up, changing views without any neighbor moving.
                Some((cur, _, _)) if !asym_sweep => {
                    for &v in cur.nodes() {
                        if !owned_mask[v.index()] {
                            continue;
                        }
                        evaluated += 1;
                        let view = View::new(v, graph.neighbors(v), &states);
                        if let Some(m) = proto.step(view) {
                            moves.push((v, m));
                        }
                    }
                }
                _ => {
                    evaluated = plan.owned.len();
                    for &v in &plan.owned {
                        let view = View::new(v, graph.neighbors(v), &states);
                        if let Some(m) = proto.step(view) {
                            moves.push((v, m));
                        }
                    }
                }
            }
        });

        // Under a chaos plan a worker must keep the run alive — even with
        // zero privileged nodes anywhere — while a receiver's ghost is
        // known-stale (lost frames awaiting re-broadcast), a delayed frame
        // is still buffered, or a crash is still scheduled. Otherwise the
        // run could report `Stabilized` from views the faults made stale.
        // A hot Byzantine adversary will keep rewriting states, and a
        // lagging perception can still surface moves once missed beacons
        // land: both also keep the run alive (the serial executor's
        // `byz_hot` / `asym_keep` terms in its stabilization check).
        let asym_keep = asym_live && perception.as_ref().is_some_and(|p| p.lagging());
        let signal = byz_hot
            || asym_keep
            || match (fault, chaos.as_ref()) {
                (Some(f), Some(ch)) => {
                    ch.lagging || !ch.delayed.is_empty() || f.crash_pending(round)
                }
                _ => false,
            };
        let slot = &accum[round % 2];
        slot.fetch_add(moves.len() as u64 + u64::from(signal), Ordering::SeqCst);
        span(spans.as_mut(), Phase::BarrierWait, || barrier.wait()).map_err(|_| abort(shard))?;
        let total = slot.load(Ordering::SeqCst);
        if span(spans.as_mut(), Phase::BarrierWait, || barrier.wait()).map_err(|_| abort(shard))? {
            // Safe: every worker has read `slot`, and its next write is two
            // rounds away, behind the next barrier.
            slot.store(0, Ordering::SeqCst);
        }

        if total == 0 {
            break Outcome::Stabilized;
        }
        if round >= max_rounds {
            // Mirror SyncExecutor: the computed moves are NOT applied.
            break Outcome::RoundLimit;
        }

        // Byzantine writes for this worker's owned compromised nodes,
        // computed from the round's *pre-apply* snapshot (the states every
        // node evaluated on) and applied after the honest moves — "as if
        // the node moved". Keyed on (seed, round, node) only, and a node's
        // neighbors are owned states or ghosts equal to the serial
        // executor's, so every shard count produces the serial writes.
        let byz_writes: Vec<(Node, P::State)> = if byz_hot {
            let bp = byz.as_ref().expect("byz_hot implies a plan");
            plan.owned
                .iter()
                .filter(|&&v| bp.is_byz(v))
                .map(|&b| (b, bp.state_for(proto, graph, b, round, &states)))
                .collect()
        } else {
            Vec::new()
        };

        let mut round_moves = journal_enabled.then(|| vec![0u64; moves_per_rule.len()]);
        let mut journal_moves = journal_enabled.then(Vec::new);
        for (v, m) in moves {
            moves_per_rule[m.rule] += 1;
            if let Some(rm) = round_moves.as_mut() {
                rm[m.rule] += 1;
            }
            if let Some(jm) = journal_moves.as_mut() {
                jm.push((v, m.rule, m.next.clone()));
            }
            states[v.index()] = m.next;
            if let Some((_, next, moved)) = active.as_mut() {
                next.insert_closed(graph, v);
                moved[v.index()] = true;
                moved_list.push(v);
            }
        }
        // A rewrite matching the node's current state is a no-op on both
        // executors (the serial one skips it too, keeping the worklists
        // identical); only state-changing rewrites apply and journal.
        let mut byz_applied: Vec<(Node, P::State)> = Vec::new();
        for (b, s) in byz_writes {
            if states[b.index()] == s {
                continue;
            }
            // The rewrite changes b's guards and its neighbors': the whole
            // closed neighborhood re-enters evaluation. Receivers dirty on
            // beacon arrival, so invalidate b's acked entries to force the
            // beacon out — the value alone can't drive the send, because a
            // rewrite may land back on the value the receivers' ghosts
            // already hold (honest move reverted within the same round).
            states[b.index()] = s.clone();
            if let Some((_, next, _)) = active.as_mut() {
                next.insert_closed(graph, b);
            }
            if let Some(ch) = chaos.as_mut() {
                for (si, (_, nodes)) in plan.sends.iter().enumerate() {
                    if let Ok(j) = nodes.binary_search(&b) {
                        ch.acked[si][j] = None;
                    }
                }
            }
            if journal_enabled {
                byz_applied.push((b, s));
            }
        }
        round += 1;

        let (moved_mask, next_active) = match active.as_mut() {
            Some((_, next, moved)) => (Some(&moved[..]), Some(next)),
            None => (None, None),
        };
        let xch = exchange::<P>(
            shard,
            graph,
            round,
            &plan,
            &senders,
            &mailbox,
            barrier,
            &mut states,
            moved_mask,
            next_active,
            fault,
            chaos.as_mut(),
            spans.as_mut(),
        )?;

        if let Some((cur, next, moved)) = active.as_mut() {
            next.seal();
            cur.clear();
            std::mem::swap(cur, next);
            for v in moved_list.drain(..) {
                moved[v.index()] = false;
            }
        }

        if journal_enabled {
            journal.push(RoundJournal {
                moves: journal_moves.unwrap_or_default(),
                moves_per_rule: round_moves.unwrap_or_default(),
                evaluated,
                frames: xch.frames,
                suppressed: xch.suppressed,
                bytes: xch.bytes,
                max_depth: xch.max_depth,
                duration_micros: timer.map(|t| t.elapsed().as_micros() as u64).unwrap_or(0),
                dropped: xch.dropped,
                duped: xch.duped,
                delayed: xch.delayed,
                corrupted: xch.corrupted,
                byz: byz_applied,
                asym_down,
                restart: pending_restart,
                spans: spans.unwrap_or_default(),
                inbox_max_depth: xch.inbox_max_depth,
                inbox_depth: xch.inbox_depth,
            });
        }
    };

    // On a RoundLimit cut, `cur` is the worklist whose (unapplied) moves
    // the limit vetoed — exactly what the next wave must re-evaluate. Only
    // owned entries are reported: ghost markings reappear on their owning
    // shard, so the union over workers is the serial worklist with no node
    // lost or double-counted. The full schedule has no worklist; report
    // every owned node as a conservative frontier.
    let frontier: Vec<Node> = if outcome == Outcome::RoundLimit {
        match active.as_ref() {
            Some((cur, _, _)) => cur
                .nodes()
                .iter()
                .copied()
                .filter(|v| owned_mask[v.index()])
                .collect(),
            None => plan.owned.clone(),
        }
    } else {
        Vec::new()
    };

    Ok(WorkerOut {
        shard,
        owned_final: plan
            .owned
            .iter()
            .map(|&v| (v, states[v.index()].clone()))
            .collect(),
        moves_per_rule,
        rounds: round,
        outcome,
        journal,
        frontier,
    })
}

struct ExchangeStats {
    frames: u64,
    suppressed: u64,
    bytes: u64,
    max_depth: u64,
    dropped: u64,
    duped: u64,
    delayed: u64,
    corrupted: u64,
    inbox_max_depth: u64,
    inbox_depth: u64,
}

/// Run `f`, attributing its wall-clock to `phase` when profiling is on
/// (`spans` is `Some` exactly when the observer is enabled — the
/// unobserved path takes the `None` arm and never reads a clock).
#[inline]
fn span<T>(spans: Option<&mut PhaseSpans>, phase: Phase, f: impl FnOnce() -> T) -> T {
    match spans {
        Some(spans) => {
            let t0 = std::time::Instant::now();
            let out = f();
            spans.add_nanos(phase, t0.elapsed().as_nanos() as u64);
            out
        }
        None => f(),
    }
}

/// Pump the post-round boundary states out and the neighbors' in. Never
/// blocks on a full peer channel: a stalled send always falls through to
/// draining our own mailbox, which is what un-stalls the peer. When
/// `moved` is given (active schedule), unmoved boundary nodes are
/// suppressed from the batch — an empty batch still travels, so
/// `expected_in` stays static — and every received beacon dirties its
/// closed neighborhood in `next_active`.
#[allow(clippy::too_many_arguments)]
fn exchange<P: Protocol>(
    shard: usize,
    graph: &Graph,
    round: usize,
    plan: &ShardPlan,
    senders: &[Sender<Vec<u8>>],
    mailbox: &Receiver<Vec<u8>>,
    barrier: &PoisonBarrier,
    states: &mut [P::State],
    moved: Option<&[bool]>,
    mut next_active: Option<&mut ActiveSet>,
    fault: Option<&FaultPlan>,
    mut chaos: Option<&mut ChaosState<P::State>>,
    mut prof: Option<&mut PhaseSpans>,
) -> Result<ExchangeStats, RuntimeError>
where
    P::State: WireState,
{
    let mut stats = ExchangeStats {
        frames: 0,
        suppressed: 0,
        bytes: 0,
        max_depth: 0,
        dropped: 0,
        duped: 0,
        delayed: 0,
        corrupted: 0,
        inbox_max_depth: 0,
        inbox_depth: 0,
    };
    // Exact: run_observed rejects max_rounds beyond u32 up front.
    let round_tag = round as u32;
    let mut next = 0usize;
    let mut pending: Option<(usize, u64, Vec<u8>)> = None;
    let mut received = 0usize;
    let mut idle_spins = 0u32;
    while pending.is_some() || next < plan.sends.len() || received < plan.expected_in {
        let mut progress = false;

        if pending.is_none() && next < plan.sends.len() {
            let t_enc = prof.is_some().then(std::time::Instant::now);
            // Batch every beacon bound for shard `t` into one message.
            let si = next;
            let (t, nodes) = &plan.sends[si];
            next += 1;
            let mut batch = Vec::with_capacity(nodes.len() * (crate::wire::HEADER_LEN + 8));
            let mut frames = 0u64;
            if let (Some(f), Some(ch)) = (fault, chaos.as_deref_mut()) {
                // Chaos path. First re-deliver any frames whose delay
                // expires this round, *before* fresh frames, so a fresh
                // value for the same node deterministically wins.
                let mut di = 0;
                while di < ch.delayed.len() {
                    if ch.delayed[di].slot == si && ch.delayed[di].deliver_round == round {
                        let d = ch.delayed.remove(di);
                        Beacon {
                            // Tagged with the *delivery* round: the staleness
                            // is in the value, the frame itself obeys the
                            // one-round-in-flight invariant.
                            round: round_tag,
                            node: d.node,
                            state: d.state.clone(),
                        }
                        .encode_into(&mut batch)
                        .map_err(|error| RuntimeError::Wire { shard, error })?;
                        frames += 1;
                        ch.acked[si][d.pos] = Some(d.state);
                    } else {
                        di += 1;
                    }
                }
                // Fresh frames: under the active schedule, a beacon is sent
                // iff the modeled receiver ghost disagrees with the current
                // state — which both restores delta suppression *and*
                // re-broadcasts anything chaos lost until it lands. The
                // full schedule stays paper-literal and sends everything.
                for (j, &v) in nodes.iter().enumerate() {
                    let cur = &states[v.index()];
                    if moved.is_some() && ch.acked[si][j].as_ref() == Some(cur) {
                        stats.suppressed += 1;
                        continue;
                    }
                    match f.fate(round, v, *t) {
                        FrameFate::Drop => stats.dropped += 1,
                        FrameFate::Delay => {
                            ch.delayed.push(DelayedFrame {
                                deliver_round: round + f.delay_rounds,
                                slot: si,
                                pos: j,
                                node: v,
                                state: cur.clone(),
                            });
                            stats.delayed += 1;
                        }
                        fate @ (FrameFate::Deliver | FrameFate::Duplicate) => {
                            let copies = if fate == FrameFate::Duplicate { 2 } else { 1 };
                            for _ in 0..copies {
                                Beacon {
                                    round: round_tag,
                                    node: v,
                                    state: cur.clone(),
                                }
                                .encode_into(&mut batch)
                                .map_err(|error| RuntimeError::Wire { shard, error })?;
                                frames += 1;
                            }
                            if copies == 2 {
                                stats.duped += 1;
                            }
                            ch.acked[si][j] = Some(cur.clone());
                        }
                        FrameFate::Corrupt => {
                            let start = batch.len();
                            Beacon {
                                round: round_tag,
                                node: v,
                                state: cur.clone(),
                            }
                            .encode_into(&mut batch)
                            .map_err(|error| RuntimeError::Wire { shard, error })?;
                            f.corrupt_frame(round, v, &mut batch[start..]);
                            frames += 1;
                            // The receiver detects and discards the frame;
                            // `acked` stays stale, forcing a re-broadcast.
                        }
                    }
                }
            } else {
                for &v in nodes {
                    if let Some(moved) = moved {
                        if !moved[v.index()] {
                            stats.suppressed += 1;
                            continue;
                        }
                    }
                    Beacon {
                        round: round_tag,
                        node: v,
                        state: states[v.index()].clone(),
                    }
                    .encode_into(&mut batch)
                    .map_err(|error| RuntimeError::Wire { shard, error })?;
                    frames += 1;
                }
            }
            pending = Some((*t, frames, batch));
            if let (Some(t0), Some(sp)) = (t_enc, prof.as_mut()) {
                sp.add_nanos(Phase::Encode, t0.elapsed().as_nanos() as u64);
            }
        }
        if let Some((t, frames, bytes)) = pending.take() {
            let t_send = prof.is_some().then(std::time::Instant::now);
            let len = bytes.len() as u64;
            match senders[t].try_send(bytes) {
                Ok(()) => {
                    stats.frames += frames;
                    stats.bytes += len;
                    stats.max_depth = stats.max_depth.max(senders[t].depth() as u64);
                    progress = true;
                }
                Err(TrySendError::Full(bytes)) => pending = Some((t, frames, bytes)),
                // A peer tearing down dropped its mailbox; fold into the
                // abort path (the peer's own error outranks ours).
                Err(TrySendError::Disconnected(_)) => return Err(RuntimeError::Aborted { shard }),
            }
            if let (Some(t0), Some(sp)) = (t_send, prof.as_mut()) {
                sp.add_nanos(Phase::Send, t0.elapsed().as_nanos() as u64);
            }
        }

        let t_recv = prof.is_some().then(std::time::Instant::now);
        while let Some(bytes) = mailbox.try_recv() {
            let mut rest = &bytes[..];
            while !rest.is_empty() {
                let (beacon, used) = match Beacon::<P::State>::decode_prefix(rest) {
                    Ok(decoded) => decoded,
                    Err(error) => {
                        // Under a fault plan a bit-corrupted frame is an
                        // *expected* event: strict decoding is the detection
                        // mechanism, and the untouched length field lets us
                        // discard exactly the bad frame and keep walking the
                        // batch. Without a plan (or if the extent itself is
                        // gone) a malformed frame is still fatal.
                        if fault.is_some() {
                            if let Some(extent) = frame_extent(rest) {
                                stats.corrupted += 1;
                                rest = &rest[extent..];
                                continue;
                            }
                        }
                        return Err(RuntimeError::Wire { shard, error });
                    }
                };
                if beacon.round != round_tag {
                    return Err(RuntimeError::RoundTag {
                        shard,
                        got: beacon.round,
                        expected: round_tag,
                    });
                }
                states[beacon.node.index()] = beacon.state;
                if let Some(next_active) = next_active.as_deref_mut() {
                    // Receipt == the sender moved this round: its closed
                    // neighborhood (our side of it) is dirty for the next.
                    next_active.insert_closed(graph, beacon.node);
                }
                rest = &rest[used..];
            }
            received += 1;
            progress = true;
        }

        if progress {
            idle_spins = 0;
        } else {
            if barrier.is_poisoned() {
                return Err(RuntimeError::Aborted { shard });
            }
            idle_spins += 1;
            if idle_spins <= SPIN_LIMIT {
                std::thread::yield_now();
            } else {
                // Park on the mailbox condvar; the bound keeps pending
                // sends retried and the poison flag observed.
                mailbox.wait_nonempty(IDLE_PARK);
            }
        }
        if let (Some(t0), Some(sp)) = (t_recv, prof.as_mut()) {
            // Draining, decoding, and idle parking all bill to `recv_wait`:
            // from the shard's point of view it is the time spent waiting
            // on (or absorbing) the rest of the cluster.
            sp.add_nanos(Phase::RecvWait, t0.elapsed().as_nanos() as u64);
        }
    }
    debug_assert_eq!(received, plan.expected_in);
    if let (Some(_), Some(ch)) = (fault, chaos) {
        // A ghost we model as stale (or unknown, after a crash) means the
        // global state is not yet coherent: raise the lagging signal so
        // this round cannot report stabilization. Receiving beacons above
        // only wrote *ghost* entries, never this worker's owned boundary
        // states, so the `acked` rows compared here are still current.
        ch.lagging = plan.sends.iter().enumerate().any(|(si, (_, nodes))| {
            nodes
                .iter()
                .enumerate()
                .any(|(j, &v)| ch.acked[si][j].as_ref() != Some(&states[v.index()]))
        });
    }
    if prof.is_some() {
        // Consume (and re-arm) the inbox high-water mark so each round's
        // gauge reflects that round's backpressure, not a cumulative max.
        stats.inbox_max_depth = mailbox.take_max_depth() as u64;
        stats.inbox_depth = mailbox.depth() as u64;
    }
    Ok(stats)
}

/// Re-fire the observer hooks on the coordinator from the workers'
/// journals, in [`SyncExecutor`]'s order: per round, moves sorted by node.
fn replay_journals<S: Clone + PartialEq + std::fmt::Debug, O: Observer<S>>(
    obs: &mut O,
    initial: &[S],
    final_states: &[S],
    outcome: &Outcome,
    rounds: usize,
    outs: &[WorkerOut<S>],
) {
    let n_rules = outs
        .iter()
        .map(|o| o.moves_per_rule.len())
        .max()
        .unwrap_or(0);
    let mut states = initial.to_vec();
    for r in 0..rounds {
        obs.on_round_start(r + 1, &states);
        // An injected crash rehydrated the shard's owned states to
        // arbitrary values *before* this round's evaluation; the journal
        // carries them so the replayed trajectory matches the run.
        for out in outs {
            if let Some(rehydrated) = &out.journal[r].restart {
                for (v, s) in rehydrated {
                    states[v.index()] = s.clone();
                }
            }
        }
        let mut moves: Vec<&(Node, usize, S)> = outs
            .iter()
            .flat_map(|o| o.journal[r].moves.iter())
            .collect();
        moves.sort_by_key(|(v, _, _)| *v);
        let privileged = moves.len();
        for &(v, rule, ref next) in moves {
            states[v.index()] = next.clone();
            obs.on_move(v, rule, &states[v.index()]);
        }
        // Byzantine rewrites land after the honest moves (the workers'
        // apply order); they are not moves, so no on_move hook fires.
        for out in outs {
            for (b, s) in &out.journal[r].byz {
                states[b.index()] = s.clone();
            }
        }
        let mut moves_per_rule = vec![0u64; n_rules];
        let mut evaluated = 0usize;
        let mut runtime = RuntimeCounters {
            shard_moves: vec![0; outs.len()],
            ..RuntimeCounters::default()
        };
        let mut duration = 0u64;
        let mut profile = RoundProfile {
            shards: Vec::with_capacity(outs.len()),
        };
        for out in outs {
            let j = &out.journal[r];
            for (acc, &m) in moves_per_rule.iter_mut().zip(&j.moves_per_rule) {
                *acc += m;
            }
            evaluated += j.evaluated;
            runtime.shard_moves[out.shard] = j.moves_per_rule.iter().sum();
            runtime.frames += j.frames;
            runtime.frames_suppressed += j.suppressed;
            runtime.bytes_on_wire += j.bytes;
            runtime.max_channel_depth = runtime.max_channel_depth.max(j.max_depth);
            runtime.frames_dropped += j.dropped;
            runtime.frames_duped += j.duped;
            runtime.frames_delayed += j.delayed;
            runtime.frames_corrupted += j.corrupted;
            runtime.restarts += u64::from(j.restart.is_some());
            runtime.byz_rewrites += j.byz.len() as u64;
            runtime.asym_links_down += j.asym_down;
            duration = duration.max(j.duration_micros);
            profile.shards.push(ShardProfile {
                shard: out.shard,
                spans: j.spans.clone(),
                round_micros: j.duration_micros,
                inbox_max_depth: j.inbox_max_depth,
                inbox_depth: j.inbox_depth,
            });
        }
        profile.shards.sort_by_key(|s| s.shard);
        obs.on_round_end(
            &RoundStats {
                round: r + 1,
                privileged,
                evaluated,
                moves_per_rule,
                duration_micros: duration,
                beacon: None,
                runtime: Some(runtime),
                profile: Some(profile),
            },
            &states,
        );
    }
    debug_assert_eq!(states, final_states, "journal replay reproduces the run");
    obs.on_finish(outcome, final_states);
}

/// Convenience: assert a runtime run matches the serial executor on the
/// same inputs (used by tests and the CI smoke target). The serial run is
/// done under both schedules and the runtime under its default (active)
/// schedule, so a pass pins all three to the same execution.
pub fn assert_matches_sync<P: Protocol>(
    graph: &Graph,
    proto: &P,
    init: InitialState<P::State>,
    max_rounds: usize,
    shards: usize,
) where
    P::State: WireState,
{
    let serial = SyncExecutor::new(graph, proto)
        .with_schedule(Schedule::Full)
        .run(init.clone(), max_rounds);
    let serial_active = SyncExecutor::new(graph, proto)
        .with_schedule(Schedule::Active)
        .run(init.clone(), max_rounds);
    assert_eq!(serial.outcome, serial_active.outcome, "outcome (schedule)");
    assert_eq!(serial.rounds, serial_active.rounds, "rounds (schedule)");
    assert_eq!(
        serial.final_states, serial_active.final_states,
        "final states (schedule)"
    );
    let sharded = RuntimeExecutor::new(graph, proto, shards)
        .run(init, max_rounds)
        .expect("runtime run failed");
    assert_eq!(serial.outcome, sharded.outcome, "outcome (shards={shards})");
    assert_eq!(serial.rounds, sharded.rounds, "rounds (shards={shards})");
    assert_eq!(
        serial.moves_per_rule, sharded.moves_per_rule,
        "moves per rule (shards={shards})"
    );
    assert_eq!(
        serial.final_states, sharded.final_states,
        "final states (shards={shards})"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use selfstab_core::smi::Smi;
    use selfstab_core::smm::{SelectPolicy, Smm};
    use selfstab_engine::obs::MetricsCollector;
    use selfstab_graph::{generators, Ids};

    #[test]
    fn matches_sync_executor_on_smm() {
        let g = generators::grid(6, 5);
        let smm = Smm::paper(Ids::identity(g.n()));
        for shards in [1, 2, 4, 8] {
            for seed in 0..3 {
                assert_matches_sync(&g, &smm, InitialState::Random { seed }, g.n() + 1, shards);
            }
        }
    }

    #[test]
    fn matches_sync_executor_on_smi() {
        let g = generators::petersen();
        let smi = Smi::new(Ids::identity(g.n()));
        for shards in [1, 2, 4, 8] {
            assert_matches_sync(&g, &smi, InitialState::Random { seed: 11 }, 100, shards);
        }
    }

    #[test]
    fn full_schedule_matches_active_schedule() {
        let g = generators::grid(6, 6);
        let smm = Smm::paper(Ids::identity(g.n()));
        for seed in 0..3 {
            let init = InitialState::Random { seed };
            let full = RuntimeExecutor::new(&g, &smm, 4)
                .with_schedule(Schedule::Full)
                .run(init.clone(), g.n() + 1)
                .unwrap();
            let active = RuntimeExecutor::new(&g, &smm, 4)
                .with_schedule(Schedule::Active)
                .run(init, g.n() + 1)
                .unwrap();
            assert_eq!(full.final_states, active.final_states);
            assert_eq!(full.rounds, active.rounds);
            assert_eq!(full.moves_per_rule, active.moves_per_rule);
        }
    }

    #[test]
    fn active_schedule_suppresses_beacons_and_matches_serial_evaluated() {
        let g = generators::grid(8, 8);
        let smm = Smm::paper(Ids::identity(g.n()));
        let init = InitialState::Random { seed: 9 };

        let mut serial_m = MetricsCollector::new();
        SyncExecutor::new(&g, &smm).run_observed(init.clone(), g.n() + 1, &mut serial_m);

        let mut full_m = MetricsCollector::new();
        RuntimeExecutor::new(&g, &smm, 4)
            .with_schedule(Schedule::Full)
            .run_observed(init.clone(), g.n() + 1, &mut full_m)
            .unwrap();
        let mut active_m = MetricsCollector::new();
        RuntimeExecutor::new(&g, &smm, 4)
            .with_schedule(Schedule::Active)
            .run_observed(init, g.n() + 1, &mut active_m)
            .unwrap();

        assert_eq!(serial_m.rounds().len(), active_m.rounds().len());
        for ((s, f), a) in serial_m
            .rounds()
            .iter()
            .zip(full_m.rounds())
            .zip(active_m.rounds())
        {
            // The sharded active worklists partition the serial one.
            assert_eq!(a.evaluated, s.evaluated, "round {}", s.round);
            assert_eq!(f.evaluated, g.n(), "full schedule sweeps all nodes");
            let frt = f.runtime.as_ref().unwrap();
            let art = a.runtime.as_ref().unwrap();
            assert_eq!(frt.frames_suppressed, 0);
            assert_eq!(
                art.frames + art.frames_suppressed,
                frt.frames,
                "every boundary beacon is either sent or suppressed"
            );
            assert!(art.bytes_on_wire <= frt.bytes_on_wire);
        }
        // Convergence tail: some rounds must actually suppress traffic.
        assert!(
            active_m
                .rounds()
                .iter()
                .any(|r| r.runtime.as_ref().unwrap().frames_suppressed > 0),
            "active schedule never suppressed a beacon"
        );
    }

    #[test]
    fn fixpoint_start_is_zero_rounds() {
        let g = generators::path(8);
        let smi = Smi::new(Ids::identity(g.n()));
        // All-true on a path is not independent; all nodes in with no
        // neighbors out — use a stabilized state instead.
        let stable = SyncExecutor::new(&g, &smi).run_random(1, 100).final_states;
        let run = RuntimeExecutor::new(&g, &smi, 4)
            .run(InitialState::Explicit(stable), 100)
            .unwrap();
        assert!(run.stabilized());
        assert_eq!(run.rounds, 0);
        assert_eq!(run.total_moves(), 0);
    }

    #[test]
    fn round_limit_mirrors_sync_semantics() {
        // C4 under arbitrary-choice R2 (clockwise) oscillates forever; with
        // a round limit both executors must stop at the same (unapplied)
        // point.
        let g = generators::cycle(4);
        let smm = Smm::with_policies(
            Ids::identity(g.n()),
            SelectPolicy::Clockwise,
            SelectPolicy::Clockwise,
        );
        for shards in [1, 2, 4] {
            assert_matches_sync(&g, &smm, InitialState::Default, 13, shards);
        }
    }

    #[test]
    fn max_rounds_beyond_round_tag_range_is_rejected() {
        if usize::BITS <= 32 {
            return; // the overflow cannot be expressed on this target
        }
        let g = generators::path(4);
        let smi = Smi::new(Ids::identity(g.n()));
        let err = RuntimeExecutor::new(&g, &smi, 2)
            .run(InitialState::Default, (u32::MAX as usize) + 1)
            .unwrap_err();
        assert_eq!(
            err,
            RuntimeError::MaxRoundsOverflow {
                max_rounds: (u32::MAX as usize) + 1
            }
        );
        // The boundary itself is fine.
        assert!(RuntimeExecutor::new(&g, &smi, 2)
            .run(InitialState::Random { seed: 1 }, u32::MAX as usize)
            .is_ok());
    }

    #[test]
    fn tiny_channel_capacity_still_completes() {
        // Capacity 1 forces maximal backpressure; the pump must still
        // deliver every frame without deadlock.
        let g = generators::complete(12);
        let smm = Smm::paper(Ids::identity(g.n()));
        let run_small = RuntimeExecutor::new(&g, &smm, 4)
            .with_channel_cap(1)
            .run(InitialState::Random { seed: 5 }, g.n() + 1)
            .unwrap();
        let serial = SyncExecutor::new(&g, &smm).run(InitialState::Random { seed: 5 }, g.n() + 1);
        assert_eq!(run_small.final_states, serial.final_states);
        assert_eq!(run_small.rounds, serial.rounds);
    }

    #[test]
    fn observer_replay_matches_serial_hooks() {
        let g = generators::grid(4, 4);
        let smm = Smm::paper(Ids::identity(g.n()));
        let init = InitialState::Random { seed: 3 };

        let mut serial_m = MetricsCollector::new();
        let serial =
            SyncExecutor::new(&g, &smm).run_observed(init.clone(), g.n() + 1, &mut serial_m);
        let mut sharded_m = MetricsCollector::new();
        let sharded = RuntimeExecutor::new(&g, &smm, 4)
            .run_observed(init, g.n() + 1, &mut sharded_m)
            .unwrap();

        assert_eq!(serial.final_states, sharded.final_states);
        assert_eq!(serial_m.rounds().len(), sharded_m.rounds().len());
        for (a, b) in serial_m.rounds().iter().zip(sharded_m.rounds()) {
            assert_eq!(a.round, b.round);
            assert_eq!(a.privileged, b.privileged);
            assert_eq!(a.evaluated, b.evaluated);
            assert_eq!(a.moves_per_rule, b.moves_per_rule);
            let rt = b.runtime.as_ref().expect("runtime counters present");
            assert_eq!(
                rt.shard_moves.iter().sum::<u64>(),
                a.moves_per_rule.iter().sum::<u64>(),
                "shard moves partition the round's moves"
            );
        }
        assert_eq!(serial_m.outcome(), sharded_m.outcome());
    }

    #[test]
    fn more_shards_than_nodes() {
        let g = generators::path(3);
        let smi = Smi::new(Ids::identity(g.n()));
        assert_matches_sync(&g, &smi, InitialState::Random { seed: 2 }, 50, 8);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        let g = generators::path(3);
        let smi = Smi::new(Ids::identity(g.n()));
        let _ = RuntimeExecutor::new(&g, &smi, 0);
    }
}
