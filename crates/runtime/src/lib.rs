//! Sharded message-passing runtime for self-stabilizing protocols.
//!
//! The in-process executors of `selfstab-engine` evaluate every node
//! against one shared state vector. That is faithful to the paper's
//! synchronous model but caps a run at what one memory bus serves. This
//! crate re-introduces the paper's *messages*: the graph is partitioned
//! into K shards ([`selfstab_core::partition`]), one mailbox worker per
//! shard owns its nodes' states, and neighbor states cross shard
//! boundaries as compact binary [`wire::Beacon`] frames through bounded
//! [`channel`]s with explicit backpressure.
//!
//! The centerpiece is [`RuntimeExecutor`]: for any
//! [`Protocol`](selfstab_engine::protocol::Protocol) whose state is
//! [`WireState`](selfstab_engine::protocol::WireState)-encodable it
//! produces the *same states, round for round*, as the serial
//! [`SyncExecutor`](selfstab_engine::sync::SyncExecutor) — the per-round
//! barrier is exactly the paper's "every node has heard every neighbor"
//! round boundary — while scaling rule evaluation across worker threads.
//! Observer hooks (`run_observed`) report per-shard move counts, frames
//! and bytes on the wire, and channel-depth gauges through
//! [`RoundStats::runtime`](selfstab_engine::obs::RoundStats::runtime).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod barrier;
pub mod channel;
pub mod chaos;
pub mod executor;
pub mod session;
pub mod wire;

pub use barrier::{PoisonBarrier, Poisoned};
pub use chaos::{run_churned_sharded, CrashSpec, FaultPlan, FrameFate};
pub use executor::{
    assert_matches_sync, ResidentRun, RuntimeError, RuntimeExecutor, DEFAULT_CHANNEL_CAP,
};
pub use session::{converge_wave, ResidentSession, Wave};
pub use wire::{frame_extent, Beacon, HEADER_LEN, WIRE_VERSION};
