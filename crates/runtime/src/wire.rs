//! The beacon wire format: how a node's state crosses a shard boundary.
//!
//! In the paper's system model every node periodically broadcasts a beacon
//! carrying its current state; a synchronous round ends once every node has
//! heard every neighbor. Inside one process the executors share a state
//! vector instead — the sharded runtime restores the message: boundary
//! states travel between shard workers as encoded [`Beacon`] frames.
//!
//! Frame layout, all integers little-endian:
//!
//! ```text
//! offset  size  field
//! 0       1     version        (== WIRE_VERSION)
//! 1       4     round tag      (round the carried state belongs to)
//! 5       4     node id
//! 9       2     payload length L
//! 11      L     state payload  (the node's WireState encoding)
//! ```
//!
//! Decoding is strict: wrong version, short buffer, trailing bytes after
//! the payload, or a payload the state doesn't consume exactly are all
//! errors — a malformed frame must never silently become a state.

use selfstab_engine::protocol::{WireError, WireState};
use selfstab_graph::Node;

/// Version byte of the frame layout.
pub const WIRE_VERSION: u8 = 1;

/// Fixed header size preceding the payload.
pub const HEADER_LEN: usize = 11;

/// One beacon: node `node`'s state as of synchronous round `round`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Beacon<S> {
    /// Round tag: the number of rounds applied to produce `state`.
    pub round: u32,
    /// The broadcasting node.
    pub node: Node,
    /// The broadcast state.
    pub state: S,
}

impl<S: WireState> Beacon<S> {
    /// Encode the frame into a fresh buffer. Errors (leaving nothing
    /// observable) if the state encoding overflows the u16 payload field.
    pub fn encode(&self) -> Result<Vec<u8>, WireError> {
        let mut buf = Vec::with_capacity(HEADER_LEN + 8);
        self.encode_into(&mut buf)?;
        Ok(buf)
    }

    /// Append the frame to `buf` — frames concatenate into batch messages
    /// (one per neighbor shard per round) and split back out with
    /// [`Beacon::decode_prefix`].
    ///
    /// A state encoding longer than the u16 payload field can express is
    /// reported as [`WireError::PayloadTooLarge`]; `buf` is rolled back to
    /// its prior length, so a batch under construction stays valid.
    pub fn encode_into(&self, buf: &mut Vec<u8>) -> Result<(), WireError> {
        let start = buf.len();
        buf.push(WIRE_VERSION);
        buf.extend_from_slice(&self.round.to_le_bytes());
        buf.extend_from_slice(&self.node.0.to_le_bytes());
        let len_at = buf.len();
        buf.extend_from_slice(&0u16.to_le_bytes());
        self.state.encode(buf);
        let payload = buf.len() - len_at - 2;
        let Ok(payload) = u16::try_from(payload) else {
            buf.truncate(start);
            return Err(WireError::PayloadTooLarge(payload));
        };
        buf[len_at..len_at + 2].copy_from_slice(&payload.to_le_bytes());
        Ok(())
    }

    /// Decode a frame that must span `bytes` exactly.
    pub fn decode(bytes: &[u8]) -> Result<Self, WireError> {
        let (beacon, used) = Self::decode_prefix(bytes)?;
        if used < bytes.len() {
            return Err(WireError::TrailingBytes);
        }
        Ok(beacon)
    }

    /// Decode one frame from the front of `bytes`, returning it and the
    /// number of bytes consumed (for walking a batch of concatenated
    /// frames).
    pub fn decode_prefix(bytes: &[u8]) -> Result<(Self, usize), WireError> {
        if bytes.len() < HEADER_LEN {
            return Err(WireError::Truncated);
        }
        if bytes[0] != WIRE_VERSION {
            return Err(WireError::Header("version"));
        }
        let round = u32::from_le_bytes(bytes[1..5].try_into().expect("4 bytes"));
        let node = Node(u32::from_le_bytes(bytes[5..9].try_into().expect("4 bytes")));
        let len = u16::from_le_bytes(bytes[9..11].try_into().expect("2 bytes")) as usize;
        if bytes.len() < HEADER_LEN + len {
            return Err(WireError::Truncated);
        }
        let state = S::decode(&bytes[HEADER_LEN..HEADER_LEN + len])?;
        Ok((Beacon { round, node, state }, HEADER_LEN + len))
    }
}

/// The total extent (header + declared payload length) of the frame at the
/// front of `bytes`, if the buffer holds at least that many bytes — without
/// validating the version byte or decoding the payload.
///
/// This is the chaos-tolerant receiver's skip rule: a bit-corrupted frame
/// fails [`Beacon::decode_prefix`] (strict decoding is the detection
/// mechanism), but the injector never touches the length field, so the
/// receiver can discard exactly the corrupted frame and keep walking the
/// batch. Returns `None` when even the claimed extent is not present, in
/// which case the batch is unrecoverable.
pub fn frame_extent(bytes: &[u8]) -> Option<usize> {
    if bytes.len() < HEADER_LEN {
        return None;
    }
    let len = u16::from_le_bytes(bytes[9..11].try_into().expect("2 bytes")) as usize;
    let extent = HEADER_LEN + len;
    (bytes.len() >= extent).then_some(extent)
}

#[cfg(test)]
mod tests {
    use super::*;
    use selfstab_core::smm::Pointer;

    #[test]
    fn roundtrips_losslessly() {
        let frames = [
            Beacon {
                round: 0,
                node: Node(0),
                state: Pointer::NULL,
            },
            Beacon {
                round: 7,
                node: Node(3),
                state: Pointer(Some(Node(12))),
            },
            Beacon {
                round: u32::MAX,
                node: Node(u32::MAX),
                state: Pointer(Some(Node(u32::MAX))),
            },
        ];
        for f in frames {
            let bytes = f.encode().unwrap();
            assert_eq!(Beacon::<Pointer>::decode(&bytes), Ok(f));
        }
        // And for the other protocol state types the runtime carries.
        let smi = Beacon {
            round: 3,
            node: Node(9),
            state: true,
        };
        assert_eq!(Beacon::<bool>::decode(&smi.encode().unwrap()), Ok(smi));
        let coloring = Beacon {
            round: 1,
            node: Node(2),
            state: 0xDEAD_BEEFu32,
        };
        assert_eq!(
            Beacon::<u32>::decode(&coloring.encode().unwrap()),
            Ok(coloring)
        );
    }

    #[test]
    fn concatenated_frames_split_back_out() {
        let frames = [
            Beacon {
                round: 4,
                node: Node(0),
                state: Pointer::NULL,
            },
            Beacon {
                round: 4,
                node: Node(17),
                state: Pointer(Some(Node(2))),
            },
            Beacon {
                round: 4,
                node: Node(3),
                state: Pointer(Some(Node(17))),
            },
        ];
        let mut batch = Vec::new();
        for f in &frames {
            f.encode_into(&mut batch).unwrap();
        }
        let mut rest = &batch[..];
        let mut decoded = Vec::new();
        while !rest.is_empty() {
            let (f, used) = Beacon::<Pointer>::decode_prefix(rest).expect("valid prefix");
            decoded.push(f);
            rest = &rest[used..];
        }
        assert_eq!(decoded, frames);
        // A batch is not a single frame: exact decode rejects it.
        assert_eq!(
            Beacon::<Pointer>::decode(&batch),
            Err(WireError::TrailingBytes)
        );
    }

    #[test]
    fn layout_is_stable_little_endian() {
        let f = Beacon {
            round: 0x0102_0304,
            node: Node(0x0A0B_0C0D),
            state: Pointer(Some(Node(5))),
        };
        let bytes = f.encode().unwrap();
        assert_eq!(
            bytes,
            vec![
                WIRE_VERSION, // version
                0x04,
                0x03,
                0x02,
                0x01, // round, LE
                0x0D,
                0x0C,
                0x0B,
                0x0A, // node, LE
                0x05,
                0x00, // payload length = 5, LE
                0x01,
                0x05,
                0x00,
                0x00,
                0x00, // Some tag + pointee 5, LE
            ]
        );
    }

    #[test]
    fn rejects_malformed_frames() {
        let good = Beacon {
            round: 2,
            node: Node(1),
            state: Pointer(Some(Node(4))),
        }
        .encode()
        .unwrap();

        // Wrong version byte.
        let mut bad = good.clone();
        bad[0] = 9;
        assert_eq!(
            Beacon::<Pointer>::decode(&bad),
            Err(WireError::Header("version"))
        );

        // Every truncation of the frame fails.
        for cut in 0..good.len() {
            assert!(
                Beacon::<Pointer>::decode(&good[..cut]).is_err(),
                "cut at {cut} must not decode"
            );
        }

        // Trailing garbage after the declared payload.
        let mut long = good.clone();
        long.push(0);
        assert_eq!(
            Beacon::<Pointer>::decode(&long),
            Err(WireError::TrailingBytes)
        );

        // Declared length longer than the state's encoding: the state
        // decode must reject the leftover bytes.
        let mut padded = good.clone();
        padded[9] += 1; // claim one extra payload byte
        padded.push(0);
        assert_eq!(
            Beacon::<Pointer>::decode(&padded),
            Err(WireError::TrailingBytes)
        );

        // Undefined option tag inside the payload.
        let mut badtag = good;
        badtag[HEADER_LEN] = 7;
        assert_eq!(
            Beacon::<Pointer>::decode(&badtag),
            Err(WireError::BadTag(7))
        );
    }

    /// A state whose encoding is wider than the u16 payload field.
    struct Oversized;
    impl WireState for Oversized {
        fn encode(&self, buf: &mut Vec<u8>) {
            buf.resize(buf.len() + 70_000, 0xAB);
        }
        fn decode_prefix(_: &[u8]) -> Result<(Self, usize), WireError> {
            Err(WireError::Truncated)
        }
    }

    #[test]
    fn frame_extent_reads_the_length_field_only() {
        let good = Beacon {
            round: 2,
            node: Node(1),
            state: Pointer(Some(Node(4))),
        }
        .encode()
        .unwrap();
        assert_eq!(frame_extent(&good), Some(good.len()));
        // A frame with a mangled version byte still reports its extent.
        let mut bad = good.clone();
        bad[0] ^= 0xA5;
        assert_eq!(frame_extent(&bad), Some(good.len()));
        // Short buffers and truncated payloads do not.
        assert_eq!(frame_extent(&good[..HEADER_LEN - 1]), None);
        assert_eq!(frame_extent(&good[..good.len() - 1]), None);
        // Extra bytes after the frame are a batch, not an error.
        let mut batch = good.clone();
        batch.extend_from_slice(&good);
        assert_eq!(frame_extent(&batch), Some(good.len()));
    }

    #[test]
    fn oversized_payload_is_an_error_not_a_panic() {
        let frame = Beacon {
            round: 1,
            node: Node(0),
            state: Oversized,
        };
        assert_eq!(frame.encode(), Err(WireError::PayloadTooLarge(70_000)));
        // A batch under construction is rolled back, not corrupted.
        let mut batch = Beacon {
            round: 1,
            node: Node(1),
            state: 5u32,
        }
        .encode()
        .unwrap();
        let before = batch.clone();
        assert_eq!(
            frame.encode_into(&mut batch),
            Err(WireError::PayloadTooLarge(70_000))
        );
        assert_eq!(batch, before, "failed append leaves the batch intact");
    }
}
