//! Deterministic chaos injection for the sharded runtime.
//!
//! A [`FaultPlan`] describes an adversary acting on the live execution: it
//! drops, duplicates, delays, or bit-corrupts beacon frames at the channel
//! boundary, and crashes shard workers mid-run (the worker loses *all* of
//! its state and rehydrates every entry — owned and ghost — from
//! [`Protocol::arbitrary_state`]).
//! Stale cached beacons, garbage restart states, and re-ordered deliveries
//! are exactly the transient faults the paper's self-stabilization theorems
//! tolerate, so a legitimate run must re-converge from any of them.
//!
//! **Every decision is a pure hash.** The fate of a frame is a
//! splitmix64-style hash of `(seed, round, node, target shard)` mapped to
//! `[0, 1)` and partitioned into `[drop][dup][delay][corrupt][clean]`
//! bands. No RNG state is threaded through the workers, so the injected
//! fault sequence is identical regardless of thread interleaving, and a
//! run with the same plan is reproducible frame for frame. When no plan is
//! installed the executor never consults this module — the clean hot path
//! is byte-for-byte the non-chaos executor.
//!
//! **Why the runtime still terminates correctly.** Under a plan, each
//! sender tracks the value each receiver's ghost actually holds (it can:
//! fates are sender-side and deterministic). A boundary beacon is sent
//! whenever that model disagrees with the node's current state, so a
//! dropped or corrupted frame is automatically re-broadcast until it
//! lands, and the run is not allowed to report `Stabilized` while any
//! ghost is known-stale, any delayed frame is still buffered, or any crash
//! is still scheduled. See `DESIGN.md` §9.

use selfstab_engine::active::Schedule;
use selfstab_engine::adversary::{AsymPlan, ByzPlan, ByzStrategy};
use selfstab_engine::chaos::{ChaosRun, ChurnSchedule};
use selfstab_engine::obs::Observer;
use selfstab_engine::protocol::{InitialState, Protocol, WireState};
use selfstab_engine::sync::Run;
use selfstab_graph::{Graph, Node};

use crate::executor::RuntimeError;
use crate::session::ResidentSession;

/// What the chaos layer decided to do with one outbound beacon frame.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FrameFate {
    /// Deliver normally.
    Deliver,
    /// Do not send; the receiver keeps its cached ghost.
    Drop,
    /// Send two identical copies.
    Duplicate,
    /// Buffer sender-side; deliver `delay_rounds` rounds later (tagged with
    /// the delivery round, so the round-tag invariant still holds).
    Delay,
    /// Flip the version byte and XOR the payload; the receiver's strict
    /// decode detects and discards the frame.
    Corrupt,
}

/// One scheduled worker crash: at the start of round `round` (0-based, the
/// same clock as `max_rounds`), shard `shard`'s worker loses its state and
/// restarts with arbitrary rehydration.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct CrashSpec {
    /// Shard whose worker crashes.
    pub shard: usize,
    /// Round at which the crash fires.
    pub round: usize,
}

impl CrashSpec {
    /// Parse the CLI form `SHARD@ROUND`, e.g. `1@5`.
    pub fn parse(spec: &str) -> Result<CrashSpec, String> {
        let (shard, round) = spec
            .split_once('@')
            .ok_or_else(|| format!("bad crash spec '{spec}' (expected SHARD@ROUND, e.g. 1@5)"))?;
        let shard = shard
            .parse::<usize>()
            .map_err(|_| format!("bad crash shard '{shard}' (expected a shard index)"))?;
        let round = round
            .parse::<usize>()
            .map_err(|_| format!("bad crash round '{round}' (expected a round number)"))?;
        Ok(CrashSpec { shard, round })
    }
}

/// A rejected chaos spec: what was wrong and where.
///
/// [`FaultPlan::parse_spec`] is strict — duplicate keys and unknown keys are
/// hard errors rather than last-write-wins or silently ignored, so a typo'd
/// benchmark spec fails loudly instead of measuring the wrong adversary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SpecError {
    /// The spec string was empty.
    Empty,
    /// An item was not of the form `key=value`.
    BadItem(String),
    /// The same key appeared twice.
    DuplicateKey(String),
    /// The key is not one this parser knows.
    UnknownKey(String),
    /// The value could not be parsed for its key.
    BadValue {
        /// The key whose value was rejected.
        key: String,
        /// The offending value text.
        value: String,
    },
    /// The items parsed individually but the plan is semantically invalid
    /// (probability bands, cross-key requirements).
    Invalid(String),
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::Empty => {
                write!(f, "empty chaos spec (try e.g. drop=0.1,dup=0.02,delay=2)")
            }
            SpecError::BadItem(item) => {
                write!(f, "bad chaos spec item '{item}' (expected key=value)")
            }
            SpecError::DuplicateKey(key) => {
                write!(f, "duplicate chaos key '{key}' (each key may appear once)")
            }
            SpecError::UnknownKey(key) => write!(
                f,
                "unknown chaos key '{key}' \
                 (expected drop|dup|delay|delayp|corrupt|until|byz|strat|asym)"
            ),
            SpecError::BadValue { key, value } => {
                write!(f, "bad chaos value '{value}' for '{key}'")
            }
            SpecError::Invalid(reason) => write!(f, "invalid chaos spec: {reason}"),
        }
    }
}

impl std::error::Error for SpecError {}

/// A deterministic, seeded description of the faults to inject into a run.
///
/// Probabilities are per-frame; `drop + dup + delay_p + corrupt` must not
/// exceed 1. All round fields are in absolute rounds on the executor's
/// clock (round 0 evaluates the initial states).
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// Per-frame probability of [`FrameFate::Drop`].
    pub drop: f64,
    /// Per-frame probability of [`FrameFate::Duplicate`].
    pub dup: f64,
    /// Per-frame probability of [`FrameFate::Delay`].
    pub delay_p: f64,
    /// How many rounds a delayed frame is buffered before delivery.
    pub delay_rounds: usize,
    /// Per-frame probability of [`FrameFate::Corrupt`].
    pub corrupt: f64,
    /// Frame chaos applies only while `round <= until`; `None` means the
    /// whole run. (Crashes fire at their own rounds regardless.) The
    /// Byzantine and asymmetric-link adversaries share this window.
    pub until: Option<usize>,
    /// Scheduled worker crash-restarts.
    pub crashes: Vec<CrashSpec>,
    /// Byzantine nodes (sorted, deduplicated): each hot round their states
    /// are rewritten with [`ByzStrategy`]-chosen adversarial values, which
    /// then ride the normal beacon machinery to every reader. See
    /// [`selfstab_engine::adversary::ByzPlan`].
    pub byz: Vec<Node>,
    /// How Byzantine nodes pick their advertised states.
    pub byz_strategy: ByzStrategy,
    /// Per-*direction*, per-round link-down probability: a link can pass
    /// `u → v` while dropping `v → u`. See
    /// [`selfstab_engine::adversary::AsymPlan`].
    pub asym: f64,
    /// Seed mixed into every per-frame fate hash and every restart RNG.
    pub seed: u64,
    /// Added to relative rounds before hashing — composition hook for
    /// drivers that run the plan in segments (mid-run churn rebuilds the
    /// executor; the plan's clock must keep counting absolute rounds).
    round_offset: usize,
}

impl FaultPlan {
    /// A plan that injects nothing (builder starting point).
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            drop: 0.0,
            dup: 0.0,
            delay_p: 0.0,
            delay_rounds: 0,
            corrupt: 0.0,
            until: None,
            crashes: Vec::new(),
            byz: Vec::new(),
            byz_strategy: ByzStrategy::RandomPointer,
            asym: 0.0,
            seed,
            round_offset: 0,
        }
    }

    /// Set the per-frame drop probability.
    pub fn with_drop(mut self, p: f64) -> Self {
        self.drop = p;
        self
    }

    /// Set the per-frame duplication probability.
    pub fn with_dup(mut self, p: f64) -> Self {
        self.dup = p;
        self
    }

    /// Set the per-frame delay probability and the delay length in rounds.
    pub fn with_delay(mut self, p: f64, rounds: usize) -> Self {
        self.delay_p = p;
        self.delay_rounds = rounds;
        self
    }

    /// Set the per-frame corruption probability.
    pub fn with_corrupt(mut self, p: f64) -> Self {
        self.corrupt = p;
        self
    }

    /// Stop injecting frame chaos after round `until` (inclusive).
    pub fn with_until(mut self, until: usize) -> Self {
        self.until = Some(until);
        self
    }

    /// Schedule a worker crash-restart.
    pub fn with_crash(mut self, shard: usize, round: usize) -> Self {
        self.crashes.push(CrashSpec { shard, round });
        self
    }

    /// Mark `nodes` as Byzantine with the given state-rewriting strategy.
    pub fn with_byz(mut self, mut nodes: Vec<Node>, strategy: ByzStrategy) -> Self {
        nodes.sort_unstable();
        nodes.dedup();
        self.byz = nodes;
        self.byz_strategy = strategy;
        self
    }

    /// Set the per-direction, per-round link-down probability.
    pub fn with_asym(mut self, p: f64) -> Self {
        self.asym = p;
        self
    }

    /// The Byzantine sub-plan, on the plan's clock and window, or `None`
    /// when no node is compromised.
    pub fn byz_plan(&self) -> Option<ByzPlan> {
        if self.byz.is_empty() {
            return None;
        }
        let mut p = ByzPlan::new(self.byz.clone(), self.byz_strategy, self.seed)
            .with_round_offset(self.round_offset);
        if let Some(u) = self.until {
            p = p.with_until(u);
        }
        Some(p)
    }

    /// The asymmetric-link sub-plan, on the plan's clock and window, or
    /// `None` when `asym == 0`.
    pub fn asym_plan(&self) -> Option<AsymPlan> {
        if self.asym <= 0.0 {
            return None;
        }
        let mut p = AsymPlan::new(self.asym, self.seed).with_round_offset(self.round_offset);
        if let Some(u) = self.until {
            p = p.with_until(u);
        }
        Some(p)
    }

    /// Whether the plan carries a Byzantine or asymmetric-link adversary.
    pub fn has_adversary(&self) -> bool {
        !self.byz.is_empty() || self.asym > 0.0
    }

    /// Shift the plan's round clock: a driver running the plan in segments
    /// (e.g. mid-run churn, which rebuilds the executor per epoch) passes
    /// the segment's starting absolute round so hashes, `until`, and crash
    /// rounds stay on the global clock.
    pub fn with_round_offset(mut self, offset: usize) -> Self {
        self.round_offset = offset;
        self
    }

    /// Parse the CLI spec `key=value[,key=value...]` with keys `drop`,
    /// `dup`, `delay` (rounds; enables delaying with probability 0.1 unless
    /// `delayp` overrides it), `delayp`, `corrupt`, `until`,
    /// `byz` (`+`-separated node ids, e.g. `byz=3+17+42`),
    /// `strat` (`random|mimic|oscillate`; requires `byz`), and `asym`
    /// (per-direction link-down probability).
    ///
    /// Strict: duplicate keys and unknown keys are [`SpecError`]s, never
    /// last-write-wins or silently ignored.
    pub fn parse_spec(spec: &str, seed: u64) -> Result<FaultPlan, SpecError> {
        let mut plan = FaultPlan::new(seed);
        let mut delay_p_explicit = false;
        let mut strat: Option<ByzStrategy> = None;
        if spec.trim().is_empty() {
            return Err(SpecError::Empty);
        }
        let mut seen: Vec<&str> = Vec::new();
        for part in spec.split(',') {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| SpecError::BadItem(part.to_string()))?;
            let key = key.trim();
            if seen.contains(&key) {
                return Err(SpecError::DuplicateKey(key.to_string()));
            }
            seen.push(key);
            let bad = || SpecError::BadValue {
                key: key.to_string(),
                value: value.to_string(),
            };
            let fprob = || value.parse::<f64>().map_err(|_| bad());
            match key {
                "drop" => plan.drop = fprob()?,
                "dup" => plan.dup = fprob()?,
                "corrupt" => plan.corrupt = fprob()?,
                "asym" => plan.asym = fprob()?,
                "delayp" => {
                    plan.delay_p = fprob()?;
                    delay_p_explicit = true;
                }
                "delay" => {
                    plan.delay_rounds = value.parse::<usize>().map_err(|_| bad())?;
                }
                "until" => {
                    plan.until = Some(value.parse::<usize>().map_err(|_| bad())?);
                }
                "byz" => {
                    let mut nodes = Vec::new();
                    for id in value.split('+') {
                        nodes.push(Node(id.trim().parse::<u32>().map_err(|_| bad())?));
                    }
                    nodes.sort_unstable();
                    nodes.dedup();
                    plan.byz = nodes;
                }
                "strat" => strat = Some(ByzStrategy::parse(value.trim()).map_err(|_| bad())?),
                other => return Err(SpecError::UnknownKey(other.to_string())),
            }
        }
        if let Some(s) = strat {
            if plan.byz.is_empty() {
                return Err(SpecError::Invalid(
                    "strat=... requires byz=ID+ID+... (no Byzantine nodes named)".into(),
                ));
            }
            plan.byz_strategy = s;
        }
        if plan.delay_rounds > 0 && !delay_p_explicit {
            plan.delay_p = 0.1;
        }
        plan.check_probabilities().map_err(SpecError::Invalid)?;
        Ok(plan)
    }

    /// Validate probability bands. Shard bounds are checked by the executor
    /// (which knows its shard count).
    pub fn check_probabilities(&self) -> Result<(), String> {
        for (name, p) in [
            ("drop", self.drop),
            ("dup", self.dup),
            ("delayp", self.delay_p),
            ("corrupt", self.corrupt),
        ] {
            if !p.is_finite() || !(0.0..=1.0).contains(&p) {
                return Err(format!("chaos probability {name}={p} is not in [0, 1]"));
            }
        }
        let total = self.drop + self.dup + self.delay_p + self.corrupt;
        if total > 1.0 {
            return Err(format!(
                "chaos probabilities sum to {total} > 1 (drop + dup + delayp + corrupt)"
            ));
        }
        if self.delay_p > 0.0 && self.delay_rounds == 0 {
            return Err("chaos delayp > 0 requires delay=K rounds (K >= 1)".into());
        }
        // Per-direction, drawn independently of the frame-fate bands, so it
        // is bounded alone rather than summed into them.
        if !self.asym.is_finite() || !(0.0..=1.0).contains(&self.asym) {
            return Err(format!(
                "chaos probability asym={} is not in [0, 1]",
                self.asym
            ));
        }
        Ok(())
    }

    /// Whether any per-frame fault has nonzero probability.
    pub fn has_frame_chaos(&self) -> bool {
        self.drop > 0.0 || self.dup > 0.0 || self.delay_p > 0.0 || self.corrupt > 0.0
    }

    /// Whether frame chaos applies in (relative) round `round`.
    pub fn frames_hot(&self, round: usize) -> bool {
        self.has_frame_chaos() && self.until.is_none_or(|u| round + self.round_offset <= u)
    }

    /// The fate of the beacon `node` sends toward shard `target` in
    /// (relative) round `round`. Pure in its inputs and the plan seed.
    pub fn fate(&self, round: usize, node: Node, target: usize) -> FrameFate {
        if !self.frames_hot(round) {
            return FrameFate::Deliver;
        }
        let h = self.frame_hash(round, node, target);
        // 53 uniform mantissa bits; the same draw is partitioned into the
        // fault bands so band boundaries move smoothly with the rates.
        let u = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        if u < self.drop {
            FrameFate::Drop
        } else if u < self.drop + self.dup {
            FrameFate::Duplicate
        } else if u < self.drop + self.dup + self.delay_p {
            FrameFate::Delay
        } else if u < self.drop + self.dup + self.delay_p + self.corrupt {
            FrameFate::Corrupt
        } else {
            FrameFate::Deliver
        }
    }

    /// Corrupt an encoded frame in place: flip the version byte (so the
    /// strict decode *must* reject the frame as [`WireError::Header`])
    /// and XOR the payload with hash bytes for realism. The length field is
    /// left intact so a chaos-aware receiver can skip the frame and keep
    /// walking the batch (see [`crate::wire::frame_extent`]).
    ///
    /// [`WireError::Header`]: selfstab_engine::protocol::WireError::Header
    pub fn corrupt_frame(&self, round: usize, node: Node, frame: &mut [u8]) {
        debug_assert!(frame.len() >= crate::wire::HEADER_LEN);
        frame[0] ^= 0xA5;
        let mut h = self.frame_hash(round, node, usize::MAX);
        for b in frame.iter_mut().skip(crate::wire::HEADER_LEN) {
            *b ^= (h & 0xFF) as u8;
            h = h.rotate_right(8);
        }
    }

    /// Shards whose workers crash at (relative) round `round`.
    pub fn crashes_at(&self, round: usize) -> impl Iterator<Item = usize> + '_ {
        let abs = round + self.round_offset;
        self.crashes
            .iter()
            .filter(move |c| c.round == abs)
            .map(|c| c.shard)
    }

    /// Whether any crash is scheduled strictly after (relative) round
    /// `round` — such a crash must keep the run alive even if the protocol
    /// has already quiesced, so the fault actually fires.
    pub fn crash_pending(&self, round: usize) -> bool {
        let abs = round + self.round_offset;
        self.crashes.iter().any(|c| c.round > abs)
    }

    /// Deterministic seed for shard `shard`'s arbitrary-state rehydration
    /// after a crash at (relative) round `round`.
    pub fn restart_seed(&self, shard: usize, round: usize) -> u64 {
        let mut h = splitmix64(self.seed ^ 0xC3A5_C85C_97CB_3127);
        h = splitmix64(h ^ (round + self.round_offset) as u64);
        splitmix64(h ^ shard as u64)
    }

    fn frame_hash(&self, round: usize, node: Node, target: usize) -> u64 {
        let mut h = splitmix64(self.seed);
        h = splitmix64(h ^ (round + self.round_offset) as u64);
        h = splitmix64(h ^ u64::from(node.0));
        splitmix64(h ^ target as u64)
    }
}

/// The splitmix64 output function: a cheap, statistically solid bijection
/// on u64 (Steele et al., "Fast splittable pseudorandom number
/// generators"). Used as a stateless hash so fault decisions need no RNG
/// object and no ordering between workers.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Sharded execution under live topology churn (and, optionally, a frame/
/// crash [`FaultPlan`] on top).
///
/// The run is segmented at churn boundaries pulled from the schedule's
/// [`ChurnFeed`] cursor: each segment is one convergence wave of a
/// [`ResidentSession`] (graph, states, and partition stay resident; the
/// fault plan's round offset and the observer's round indices advance on
/// the absolute clock across segments). Between waves the feed's
/// connectivity-preserving [`TopologyEvent`]s mutate the session's graph;
/// every wave starts from a full active worklist, a sound superset of the
/// churned endpoints' closed neighborhoods.
///
/// Semantics (outcome, rounds, final states) match the serial reference
/// [`selfstab_engine::chaos::run_churned_serial`] exactly when no fault
/// plan is installed — asserted by tests at 1–8 shards.
///
/// [`ChurnFeed`]: selfstab_engine::chaos::ChurnFeed
/// [`TopologyEvent`]: selfstab_graph::mutate::TopologyEvent
#[allow(clippy::too_many_arguments)]
pub fn run_churned_sharded<P: Protocol, O: Observer<P::State>>(
    graph: &Graph,
    proto: &P,
    shards: usize,
    schedule: Schedule,
    channel_cap: Option<usize>,
    fault: Option<&FaultPlan>,
    churn: &ChurnSchedule,
    init: InitialState<P::State>,
    max_rounds: usize,
    obs: &mut O,
) -> Result<ChaosRun<P::State>, RuntimeError>
where
    P::State: WireState,
{
    let mut feed = churn
        .feed()
        .map_err(|reason| RuntimeError::InvalidPlan { reason })?;
    let mut session = ResidentSession::new(graph, proto, shards, schedule, channel_cap, init);

    let outcome = loop {
        let remaining = max_rounds - session.clock();
        let budget = match feed.next_boundary() {
            Some(b) => (b - session.clock()).min(remaining),
            None => remaining,
        };
        let outcome = session.converge(budget, fault, obs)?;

        let boundary = match feed.next_boundary() {
            // Final stretch, or the next boundary is beyond the budget: the
            // wave outcome is the run outcome (a RoundLimit here is a real
            // one — the absolute budget is exhausted).
            None => break outcome,
            Some(b) if b > max_rounds => break outcome,
            Some(b) => b,
        };
        // Advance to the churn boundary. A stabilized wave fast-forwards
        // the quiescent gap (those rounds are move-free by definition); a
        // budget-capped RoundLimit simply reached the boundary with moves
        // still pending.
        session.advance_clock_to(boundary);
        feed.next_events(boundary, session.graph_mut());
    };
    obs.on_finish(&outcome, session.states());
    let (graph, final_states, moves_per_rule, rounds) = session.into_parts();
    let last_fault_round = feed.last_fault_round();
    Ok(ChaosRun {
        run: Run {
            final_states,
            rounds,
            moves_per_rule,
            outcome,
            trace: None,
        },
        graph,
        events: feed.into_events(),
        last_fault_round,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{frame_extent, Beacon, HEADER_LEN};
    use selfstab_engine::protocol::WireError;

    #[test]
    fn parse_spec_full_form() {
        let p = FaultPlan::parse_spec("drop=0.1,dup=0.02,delay=2,corrupt=0.01,until=40", 7)
            .expect("valid spec");
        assert_eq!(p.drop, 0.1);
        assert_eq!(p.dup, 0.02);
        assert_eq!(p.delay_rounds, 2);
        assert_eq!(p.delay_p, 0.1, "delay=K implies delayp=0.1 by default");
        assert_eq!(p.corrupt, 0.01);
        assert_eq!(p.until, Some(40));
        assert_eq!(p.seed, 7);
        let q = FaultPlan::parse_spec("delay=3,delayp=0.5", 0).expect("valid spec");
        assert_eq!((q.delay_p, q.delay_rounds), (0.5, 3));
    }

    #[test]
    fn parse_spec_adversarial_keys() {
        let p = FaultPlan::parse_spec("byz=17+3+17,strat=mimic,asym=0.2,until=30", 9)
            .expect("valid spec");
        assert_eq!(p.byz, vec![Node(3), Node(17)], "sorted and deduplicated");
        assert_eq!(p.byz_strategy, ByzStrategy::MimicNeighbor);
        assert_eq!(p.asym, 0.2);
        assert!(p.has_adversary());
        let byz = p.byz_plan().expect("byz sub-plan");
        assert_eq!(byz.nodes, vec![Node(3), Node(17)]);
        assert_eq!(byz.until, Some(30));
        let asym = p.asym_plan().expect("asym sub-plan");
        assert_eq!((asym.p, asym.until), (0.2, Some(30)));

        let q = FaultPlan::parse_spec("byz=4", 9).expect("strategy defaults to random");
        assert_eq!(q.byz_strategy, ByzStrategy::RandomPointer);
        assert!(q.asym_plan().is_none(), "asym=0 means no sub-plan");
        assert!(!FaultPlan::new(0).has_adversary());
    }

    #[test]
    fn parse_spec_rejects_malformed() {
        assert_eq!(FaultPlan::parse_spec("", 0), Err(SpecError::Empty));
        assert_eq!(
            FaultPlan::parse_spec("drop", 0),
            Err(SpecError::BadItem("drop".into()))
        );
        assert_eq!(
            FaultPlan::parse_spec("drop=x", 0),
            Err(SpecError::BadValue {
                key: "drop".into(),
                value: "x".into()
            })
        );
        assert_eq!(
            FaultPlan::parse_spec("warp=0.1", 0),
            Err(SpecError::UnknownKey("warp".into()))
        );
        assert!(matches!(
            FaultPlan::parse_spec("drop=1.5", 0),
            Err(SpecError::Invalid(_))
        ));
        assert!(matches!(
            FaultPlan::parse_spec("drop=0.6,dup=0.6", 0),
            Err(SpecError::Invalid(_))
        ));
        assert!(
            matches!(
                FaultPlan::parse_spec("delayp=0.1", 0),
                Err(SpecError::Invalid(_))
            ),
            "delayp without delay rounds"
        );
    }

    #[test]
    fn parse_spec_rejects_duplicate_keys() {
        // Last-write-wins would silently measure drop=0.3; reject instead.
        assert_eq!(
            FaultPlan::parse_spec("drop=0.1,drop=0.3", 0),
            Err(SpecError::DuplicateKey("drop".into()))
        );
        assert_eq!(
            FaultPlan::parse_spec("byz=1,asym=0.1,byz=2", 0),
            Err(SpecError::DuplicateKey("byz".into()))
        );
    }

    #[test]
    fn parse_spec_rejects_bad_adversarial_values() {
        assert_eq!(
            FaultPlan::parse_spec("byz=1+x", 0),
            Err(SpecError::BadValue {
                key: "byz".into(),
                value: "1+x".into()
            })
        );
        assert_eq!(
            FaultPlan::parse_spec("byz=1,strat=chaotic", 0),
            Err(SpecError::BadValue {
                key: "strat".into(),
                value: "chaotic".into()
            })
        );
        assert!(
            matches!(
                FaultPlan::parse_spec("strat=mimic", 0),
                Err(SpecError::Invalid(_))
            ),
            "strat without byz"
        );
        assert!(matches!(
            FaultPlan::parse_spec("asym=1.5", 0),
            Err(SpecError::Invalid(_))
        ));
    }

    #[test]
    fn crash_spec_parses() {
        assert_eq!(
            CrashSpec::parse("1@5"),
            Ok(CrashSpec { shard: 1, round: 5 })
        );
        assert!(CrashSpec::parse("15").is_err());
        assert!(CrashSpec::parse("a@5").is_err());
        assert!(CrashSpec::parse("1@b").is_err());
    }

    #[test]
    fn fates_are_deterministic_and_respect_until() {
        let p = FaultPlan::new(42).with_drop(0.5).with_until(10);
        let a: Vec<_> = (0..64).map(|r| p.fate(r, Node(3), 1)).collect();
        let b: Vec<_> = (0..64).map(|r| p.fate(r, Node(3), 1)).collect();
        assert_eq!(a, b, "pure hash: same inputs, same fates");
        assert!(a[..11].contains(&FrameFate::Drop), "50% drop hits");
        assert!(
            a[11..].iter().all(|f| *f == FrameFate::Deliver),
            "no chaos after until"
        );
        // The offset shifts the clock: relative round 0 at offset 11 is
        // absolute round 11, past `until`.
        let shifted = p.clone().with_round_offset(11);
        assert_eq!(shifted.fate(0, Node(3), 1), FrameFate::Deliver);
        assert_eq!(
            shifted.clone().with_round_offset(4).fate(2, Node(3), 1),
            p.fate(6, Node(3), 1)
        );
    }

    #[test]
    fn band_partition_covers_all_fates() {
        let p = FaultPlan::new(1)
            .with_drop(0.25)
            .with_dup(0.25)
            .with_delay(0.25, 2)
            .with_corrupt(0.2);
        let mut seen = [0usize; 5];
        for r in 0..400 {
            let idx = match p.fate(r, Node(0), 0) {
                FrameFate::Drop => 0,
                FrameFate::Duplicate => 1,
                FrameFate::Delay => 2,
                FrameFate::Corrupt => 3,
                FrameFate::Deliver => 4,
            };
            seen[idx] += 1;
        }
        assert!(seen.iter().all(|&c| c > 0), "all bands drawn: {seen:?}");
    }

    #[test]
    fn corrupt_frame_is_detected_and_skippable() {
        let beacon = Beacon {
            round: 3,
            node: Node(9),
            state: 0xDEAD_BEEFu32,
        };
        let mut bytes = beacon.encode().unwrap();
        let clean_len = bytes.len();
        let p = FaultPlan::new(5).with_corrupt(1.0);
        p.corrupt_frame(3, Node(9), &mut bytes);
        // The strict decode rejects the frame through the Wire error path.
        assert_eq!(
            Beacon::<u32>::decode_prefix(&bytes),
            Err(WireError::Header("version"))
        );
        // But the length field is intact, so a batch walker can skip it.
        assert_eq!(frame_extent(&bytes), Some(clean_len));
        assert!(bytes[HEADER_LEN..] != beacon.encode().unwrap()[HEADER_LEN..]);
    }

    #[test]
    fn crash_queries() {
        let p = FaultPlan::new(0).with_crash(1, 5).with_crash(0, 9);
        assert_eq!(p.crashes_at(5).collect::<Vec<_>>(), vec![1]);
        assert_eq!(p.crashes_at(4).count(), 0);
        assert!(p.crash_pending(5), "crash at 9 still pending");
        assert!(!p.crash_pending(9));
        let shifted = p.with_round_offset(4);
        assert_eq!(shifted.crashes_at(1).collect::<Vec<_>>(), vec![1]);
        assert_eq!(
            shifted.restart_seed(1, 1),
            FaultPlan::new(0).restart_seed(1, 5),
            "restart seeds are on the absolute clock"
        );
    }
}
