//! A reusable barrier that can be *poisoned*.
//!
//! `std::sync::Barrier` has no failure path: if one worker exits its loop
//! early (a wire decode error, a mismatched round tag), every peer parked
//! on the barrier waits forever and the process hangs. [`PoisonBarrier`]
//! adds exactly one capability — [`PoisonBarrier::poison`] wakes every
//! current and future waiter with [`Poisoned`] — so a failing shard worker
//! can tear the whole runtime down instead of deadlocking it.
//!
//! The happy path is the classic generation-counting condvar barrier:
//! `wait` returns `Ok(true)` for exactly one caller per crossing (the
//! "leader", used to reset shared per-round accumulators), `Ok(false)` for
//! the rest.

use std::sync::{Condvar, Mutex};

/// Error returned by [`PoisonBarrier::wait`] once the barrier is poisoned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Poisoned;

impl std::fmt::Display for Poisoned {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("barrier poisoned: a peer worker failed")
    }
}

impl std::error::Error for Poisoned {}

struct State {
    arrived: usize,
    generation: u64,
    poisoned: bool,
}

/// A reusable counting barrier with a poison switch.
pub struct PoisonBarrier {
    state: Mutex<State>,
    cv: Condvar,
    count: usize,
}

impl PoisonBarrier {
    /// A barrier releasing every `count` waiters.
    ///
    /// # Panics
    /// Panics if `count == 0`.
    pub fn new(count: usize) -> Self {
        assert!(count > 0, "barrier needs at least one participant");
        PoisonBarrier {
            state: Mutex::new(State {
                arrived: 0,
                generation: 0,
                poisoned: false,
            }),
            cv: Condvar::new(),
            count,
        }
    }

    /// Block until `count` threads have called `wait` (or the barrier is
    /// poisoned). Exactly one caller per crossing gets `Ok(true)`.
    pub fn wait(&self) -> Result<bool, Poisoned> {
        let mut s = self.state.lock().expect("barrier mutex");
        if s.poisoned {
            return Err(Poisoned);
        }
        s.arrived += 1;
        if s.arrived == self.count {
            s.arrived = 0;
            s.generation += 1;
            drop(s);
            self.cv.notify_all();
            return Ok(true);
        }
        let gen = s.generation;
        while s.generation == gen && !s.poisoned {
            s = self.cv.wait(s).expect("barrier mutex");
        }
        if s.generation == gen {
            // Only poisoning can have ended the wait.
            return Err(Poisoned);
        }
        Ok(false)
    }

    /// Poison the barrier: every parked waiter wakes with [`Poisoned`], and
    /// every future [`PoisonBarrier::wait`] fails immediately.
    pub fn poison(&self) {
        self.state.lock().expect("barrier mutex").poisoned = true;
        self.cv.notify_all();
    }

    /// Whether [`PoisonBarrier::poison`] has been called.
    pub fn is_poisoned(&self) -> bool {
        self.state.lock().expect("barrier mutex").poisoned
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn releases_all_with_one_leader_per_crossing() {
        let barrier = Arc::new(PoisonBarrier::new(4));
        let leaders = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                let leaders = Arc::clone(&leaders);
                thread::spawn(move || {
                    for _ in 0..50 {
                        if barrier.wait().expect("no poison") {
                            leaders.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(leaders.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn poison_wakes_parked_waiters_and_fails_future_waits() {
        let barrier = Arc::new(PoisonBarrier::new(3));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                thread::spawn(move || barrier.wait())
            })
            .collect();
        // Give both threads time to park, then poison instead of arriving.
        thread::sleep(std::time::Duration::from_millis(20));
        barrier.poison();
        for h in handles {
            assert_eq!(h.join().unwrap(), Err(Poisoned));
        }
        assert!(barrier.is_poisoned());
        assert_eq!(barrier.wait(), Err(Poisoned));
    }

    #[test]
    #[should_panic(expected = "at least one participant")]
    fn zero_count_panics() {
        let _ = PoisonBarrier::new(0);
    }
}
