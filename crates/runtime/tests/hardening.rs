//! Failure-path coverage for the sharded runtime: a malformed beacon, an
//! oversized state encoding, or a panicking worker must surface as a typed
//! [`RuntimeError`] from `run` — with every worker joined — rather than
//! aborting the process or hanging peers on the round barrier.

use rand::rngs::StdRng;
use selfstab_engine::protocol::{InitialState, Move, Protocol, View, WireError, WireState};
use selfstab_engine::sync::Outcome;
use selfstab_graph::{generators, Node};
use selfstab_runtime::{RuntimeError, RuntimeExecutor};

/// Flip-once dynamics shared by the adversarial states below: a `false`
/// node moves to `true`, a `true` node is silent. Guarantees exactly one
/// round of moves (and hence boundary beacons) from the default start.
fn flip_step<S: FlipState>(view: View<'_, S>) -> Option<Move<S>> {
    (!view.own().get()).then(|| Move {
        rule: 0,
        next: S::new(true),
    })
}

trait FlipState: Clone + PartialEq + Eq + std::hash::Hash + std::fmt::Debug + Send + Sync {
    fn new(v: bool) -> Self;
    fn get(&self) -> bool;
}

macro_rules! flip_protocol {
    ($proto:ident, $state:ty) => {
        struct $proto;
        impl Protocol for $proto {
            type State = $state;
            fn rule_names(&self) -> &'static [&'static str] {
                &["flip"]
            }
            fn default_state(&self) -> Self::State {
                FlipState::new(false)
            }
            fn arbitrary_state(&self, _: Node, _: &[Node], _: &mut StdRng) -> Self::State {
                FlipState::new(false)
            }
            fn enumerate_states(&self, _: Node, _: &[Node]) -> Vec<Self::State> {
                vec![FlipState::new(false), FlipState::new(true)]
            }
            fn step(&self, view: View<'_, Self::State>) -> Option<Move<Self::State>> {
                flip_step(view)
            }
        }
    };
}

/// A state whose encoding is a byte its own decoder rejects: every frame
/// that crosses a shard boundary is malformed on arrival.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
struct EvilState(bool);

impl FlipState for EvilState {
    fn new(v: bool) -> Self {
        EvilState(v)
    }
    fn get(&self) -> bool {
        self.0
    }
}

impl WireState for EvilState {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(0x07); // deliberately not a tag `decode_prefix` accepts
    }
    fn decode_prefix(bytes: &[u8]) -> Result<(Self, usize), WireError> {
        match bytes.first() {
            None => Err(WireError::Truncated),
            Some(0) => Ok((EvilState(false), 1)),
            Some(1) => Ok((EvilState(true), 1)),
            Some(&t) => Err(WireError::BadTag(t)),
        }
    }
}

flip_protocol!(EvilProto, EvilState);

/// A state whose encoding overflows the u16 payload-length field.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
struct HugeState(bool);

impl FlipState for HugeState {
    fn new(v: bool) -> Self {
        HugeState(v)
    }
    fn get(&self) -> bool {
        self.0
    }
}

impl WireState for HugeState {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.resize(buf.len() + 70_000, 0xAB);
    }
    fn decode_prefix(_: &[u8]) -> Result<(Self, usize), WireError> {
        unreachable!("encode always fails first")
    }
}

flip_protocol!(HugeProto, HugeState);

#[test]
fn malformed_beacon_is_a_wire_error_not_a_worker_panic() {
    let g = generators::grid(4, 4);
    let err = RuntimeExecutor::new(&g, &EvilProto, 4)
        .run(InitialState::Default, 10)
        .unwrap_err();
    match &err {
        RuntimeError::Wire { error, .. } => assert_eq!(*error, WireError::BadTag(0x07)),
        other => panic!("expected a wire error, got {other:?}"),
    }
    assert!(err.to_string().contains("undefined tag byte"));
}

#[test]
fn malformed_encoding_is_harmless_without_boundaries() {
    // One shard sends no beacons, so the same protocol runs to completion:
    // the failure above is the wire path, not the protocol.
    let g = generators::grid(4, 4);
    let run = RuntimeExecutor::new(&g, &EvilProto, 1)
        .run(InitialState::Default, 10)
        .expect("no boundary traffic, no wire error");
    assert_eq!(run.outcome, Outcome::Stabilized);
    assert_eq!(run.rounds, 1);
    assert!(run.final_states.iter().all(|s| s.0));
}

#[test]
fn oversized_state_encoding_is_a_payload_error() {
    let g = generators::path(8);
    let err = RuntimeExecutor::new(&g, &HugeProto, 2)
        .run(InitialState::Default, 10)
        .unwrap_err();
    match err {
        RuntimeError::Wire { error, .. } => {
            assert_eq!(error, WireError::PayloadTooLarge(70_000))
        }
        other => panic!("expected a payload error, got {other:?}"),
    }
}

/// Guards are pure functions in the model, but an implementation bug can
/// still panic; the runtime must report it, not hang or abort.
struct PanicProto;

impl Protocol for PanicProto {
    type State = bool;
    fn rule_names(&self) -> &'static [&'static str] {
        &["flip"]
    }
    fn default_state(&self) -> bool {
        false
    }
    fn arbitrary_state(&self, _: Node, _: &[Node], _: &mut StdRng) -> bool {
        false
    }
    fn enumerate_states(&self, _: Node, _: &[Node]) -> Vec<bool> {
        vec![false, true]
    }
    fn step(&self, view: View<'_, bool>) -> Option<Move<bool>> {
        if *view.own() && view.node() == Node(0) {
            panic!("injected guard bug on node 0");
        }
        (!view.own()).then_some(Move {
            rule: 0,
            next: true,
        })
    }
}

#[test]
fn panicking_worker_is_reported_and_peers_are_released() {
    // Round 1 flips everyone; round 2 re-evaluates node 0 (it moved, so it
    // stays on the active worklist) and hits the injected panic. The other
    // three workers must shut down instead of deadlocking on the barrier.
    // (The worker's panic message on stderr is expected test output.)
    let g = generators::grid(4, 4);
    let err = RuntimeExecutor::new(&g, &PanicProto, 4)
        .run(InitialState::Default, 10)
        .unwrap_err();
    assert!(
        matches!(err, RuntimeError::WorkerPanic { .. }),
        "expected WorkerPanic, got {err:?}"
    );
}
