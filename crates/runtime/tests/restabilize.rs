//! Property: from *any* seeded chaos trace (drop + duplicate + delay active
//! until a cutoff round, then a clean network), SMM and SMI re-stabilize to
//! a legitimate configuration within the theoretical budget at every shard
//! count. This is the self-stabilization claim stated over the in-flight
//! fault model: once faults stop, the current global state is just another
//! arbitrary initial state (plus ghosts at most `delay` rounds stale), so
//! convergence must complete within cutoff + delay + O(n) rounds.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use selfstab_core::smi::Smi;
use selfstab_core::smm::Smm;
use selfstab_engine::protocol::{InitialState, Protocol, WireState};
use selfstab_graph::{generators, Graph, Ids};
use selfstab_runtime::{FaultPlan, RuntimeExecutor};

const CUTOFF: usize = 6;
const DELAY: usize = 2;

fn chaos_until_cutoff(seed: u64) -> FaultPlan {
    let mut plan = FaultPlan::new(seed);
    plan.drop = 0.25;
    plan.dup = 0.1;
    plan.delay_p = 0.1;
    plan.delay_rounds = DELAY;
    plan.until = Some(CUTOFF);
    plan
}

fn check_restabilizes<P: Protocol>(
    g: &Graph,
    proto: &P,
    state_seed: u64,
    chaos_seed: u64,
    shards: usize,
) -> TestCaseResult
where
    P::State: WireState,
{
    // After the cutoff the state vector is arbitrary and ghosts are at most
    // DELAY rounds stale; a self-stabilizing protocol then needs O(n)
    // rounds (the repo's working bound is 2n + 8 with slack for ghost
    // refresh), so the whole chaotic execution must fit in this budget.
    let budget = CUTOFF + DELAY + 2 * g.n() + 8;
    let run = RuntimeExecutor::new(g, proto, shards)
        .with_chaos(chaos_until_cutoff(chaos_seed))
        .run(InitialState::Random { seed: state_seed }, budget)
        .expect("chaotic run failed");
    prop_assert!(
        run.stabilized(),
        "must re-stabilize within {} rounds after chaos cutoff {} (shards={}, n={}, rounds={})",
        budget,
        CUTOFF,
        shards,
        g.n(),
        run.rounds()
    );
    prop_assert!(
        proto.is_legitimate(g, &run.final_states),
        "final configuration must be legitimate (shards={}, n={})",
        shards,
        g.n()
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn smm_restabilizes_from_any_chaos_trace(
        n in 4usize..40,
        graph_seed in 0u64..1_000_000,
        state_seed in 0u64..1_000_000,
        chaos_seed in 0u64..1_000_000,
    ) {
        let g = generators::erdos_renyi_connected(n, 0.2, &mut StdRng::seed_from_u64(graph_seed));
        let smm = Smm::paper(Ids::identity(g.n()));
        for shards in [1, 2, 4, 8] {
            check_restabilizes(&g, &smm, state_seed, chaos_seed, shards)?;
        }
    }

    #[test]
    fn smi_restabilizes_from_any_chaos_trace(
        n in 4usize..40,
        graph_seed in 0u64..1_000_000,
        state_seed in 0u64..1_000_000,
        chaos_seed in 0u64..1_000_000,
    ) {
        let g = generators::erdos_renyi_connected(n, 0.2, &mut StdRng::seed_from_u64(graph_seed));
        let smi = Smi::new(Ids::identity(g.n()));
        for shards in [1, 2, 4, 8] {
            check_restabilizes(&g, &smi, state_seed, chaos_seed, shards)?;
        }
    }
}
