//! In-flight chaos coverage: seeded fault plans must be exactly
//! deterministic, corrupted frames must be detected and skipped rather
//! than crash a worker, injected shard crashes must recover to a
//! legitimate configuration, and a *real* worker panic must still surface
//! as [`RuntimeError::WorkerPanic`] even while a plan is active.

use rand::rngs::StdRng;
use selfstab_core::smi::Smi;
use selfstab_core::smm::Smm;
use selfstab_engine::active::Schedule;
use selfstab_engine::chaos::{run_churned_serial, ChurnSchedule};
use selfstab_engine::obs::{MetricsCollector, Observer, RoundStats, RuntimeCounters};
use selfstab_engine::protocol::{InitialState, Move, Protocol, View};
use selfstab_engine::sync::Outcome;
use selfstab_graph::traversal::is_connected;
use selfstab_graph::{generators, Ids, Node};
use selfstab_runtime::{run_churned_sharded, FaultPlan, RuntimeError, RuntimeExecutor};

/// Records the global state after every round.
struct StateTrace<S> {
    per_round: Vec<Vec<S>>,
}

impl<S: Clone> Observer<S> for StateTrace<S> {
    fn on_round_end(&mut self, _stats: &RoundStats, states: &[S]) {
        self.per_round.push(states.to_vec());
    }
}

fn chaos_counters<S>(m: &MetricsCollector<S>) -> RuntimeCounters {
    let mut total = RuntimeCounters::default();
    for r in m.rounds() {
        let rt = r.runtime.as_ref().expect("runtime counters present");
        total.frames_dropped += rt.frames_dropped;
        total.frames_duped += rt.frames_duped;
        total.frames_delayed += rt.frames_delayed;
        total.frames_corrupted += rt.frames_corrupted;
        total.restarts += rt.restarts;
    }
    total
}

#[test]
fn seeded_chaos_is_fully_deterministic() {
    let g = generators::grid(6, 6);
    let smm = Smm::paper(Ids::identity(g.n()));
    let plan = FaultPlan::parse_spec("drop=0.2,dup=0.05,delay=2,corrupt=0.05", 77).unwrap();
    let mut runs = Vec::new();
    for _ in 0..2 {
        let mut trace = StateTrace {
            per_round: Vec::new(),
        };
        let mut metrics = MetricsCollector::new();
        let run = RuntimeExecutor::new(&g, &smm, 4)
            .with_chaos(plan.clone())
            .run_observed(
                InitialState::Random { seed: 3 },
                8 * g.n(),
                &mut (&mut trace, &mut metrics),
            )
            .unwrap();
        runs.push((run, trace.per_round, chaos_counters(&metrics)));
    }
    let (a, b) = (&runs[0], &runs[1]);
    assert_eq!(a.0.outcome, b.0.outcome);
    assert_eq!(a.0.rounds, b.0.rounds);
    assert_eq!(a.0.final_states, b.0.final_states);
    assert_eq!(a.1, b.1, "identical per-round states");
    assert_eq!(a.2, b.2, "identical fault counters");
    // The plan actually fired: every frame-level fault class was exercised.
    assert!(a.2.frames_dropped > 0, "no frames dropped");
    assert!(a.2.frames_duped > 0, "no frames duplicated");
    assert!(a.2.frames_delayed > 0, "no frames delayed");
    assert!(a.2.frames_corrupted > 0, "no frames corrupted");
}

#[test]
fn smm_converges_and_is_legitimate_under_sustained_loss() {
    let g = generators::grid(8, 8);
    let smm = Smm::paper(Ids::identity(g.n()));
    for shards in [2, 4, 8] {
        let plan = FaultPlan::parse_spec("drop=0.3,dup=0.05,delay=2", 19).unwrap();
        let run = RuntimeExecutor::new(&g, &smm, shards)
            .with_chaos(plan)
            .run(InitialState::Random { seed: 5 }, 16 * g.n())
            .unwrap();
        assert_eq!(run.outcome, Outcome::Stabilized, "shards={shards}");
        assert!(
            smm.is_legitimate(&g, &run.final_states),
            "shards={shards}: final matching not maximal"
        );
    }
}

#[test]
fn smi_converges_under_chaos_on_both_schedules() {
    let g = generators::petersen();
    let smi = Smi::new(Ids::identity(g.n()));
    let plan = FaultPlan::parse_spec("drop=0.25,corrupt=0.1", 4).unwrap();
    for schedule in [Schedule::Active, Schedule::Full] {
        let run = RuntimeExecutor::new(&g, &smi, 4)
            .with_schedule(schedule)
            .with_chaos(plan.clone())
            .run(InitialState::Random { seed: 8 }, 400)
            .unwrap();
        assert_eq!(run.outcome, Outcome::Stabilized, "schedule={schedule}");
        assert!(smi.is_legitimate(&g, &run.final_states), "{schedule}");
    }
}

#[test]
fn crash_restart_recovers_to_a_legitimate_configuration() {
    let g = generators::grid(6, 6);
    let smm = Smm::paper(Ids::identity(g.n()));
    let plan = FaultPlan::new(23).with_crash(1, 3);
    let mut metrics = MetricsCollector::new();
    let run = RuntimeExecutor::new(&g, &smm, 4)
        .with_chaos(plan)
        .run_observed(InitialState::Random { seed: 2 }, 8 * g.n(), &mut metrics)
        .unwrap();
    assert_eq!(run.outcome, Outcome::Stabilized);
    assert!(smm.is_legitimate(&g, &run.final_states));
    let totals = chaos_counters(&metrics);
    assert_eq!(totals.restarts, 1, "exactly one injected restart");
    // The restart round itself carries the counter.
    let restart_round = metrics
        .rounds()
        .iter()
        .find(|r| r.runtime.as_ref().unwrap().restarts > 0)
        .expect("a round recorded the restart");
    assert_eq!(
        restart_round.round, 4,
        "crash fires entering round 3 (0-based)"
    );
}

#[test]
fn crash_restart_without_frame_chaos_keeps_other_counters_zero() {
    let g = generators::cycle(12);
    let smi = Smi::new(Ids::identity(g.n()));
    let plan = FaultPlan::new(9).with_crash(0, 2);
    let mut metrics = MetricsCollector::new();
    let run = RuntimeExecutor::new(&g, &smi, 3)
        .with_chaos(plan)
        .run_observed(InitialState::Random { seed: 6 }, 200, &mut metrics)
        .unwrap();
    assert_eq!(run.outcome, Outcome::Stabilized);
    let totals = chaos_counters(&metrics);
    assert_eq!(totals.restarts, 1);
    assert_eq!(totals.frames_dropped, 0);
    assert_eq!(totals.frames_duped, 0);
    assert_eq!(totals.frames_delayed, 0);
    assert_eq!(totals.frames_corrupted, 0);
}

#[test]
fn value_preserving_chaos_cannot_mask_the_c4_oscillation() {
    // C4 under clockwise-propose oscillates forever in lockstep. Duplicated
    // frames re-deliver the *same* value, so they cannot perturb the
    // trajectory: the runtime must still hit the round limit, chaos or not.
    let g = generators::cycle(4);
    let smm = Smm::with_policies(
        Ids::identity(g.n()),
        selfstab_core::smm::SelectPolicy::Clockwise,
        selfstab_core::smm::SelectPolicy::Clockwise,
    );
    let plan = FaultPlan::parse_spec("dup=0.3", 31).unwrap();
    let run = RuntimeExecutor::new(&g, &smm, 2)
        .with_chaos(plan)
        .run(InitialState::Default, 100)
        .unwrap();
    assert_eq!(run.outcome, Outcome::RoundLimit);
}

#[test]
fn lossy_chaos_that_breaks_the_oscillation_still_ends_legitimate() {
    // Dropped frames leave receivers evaluating against stale ghosts —
    // exactly the desynchronization that breaks the synchronous livelock
    // (the paper's oscillation needs lockstep symmetry). Whatever the
    // outcome, a reported stabilization must be a *real* matching: the
    // acked model forbids declaring victory while any ghost is stale.
    let g = generators::cycle(4);
    let smm = Smm::with_policies(
        Ids::identity(g.n()),
        selfstab_core::smm::SelectPolicy::Clockwise,
        selfstab_core::smm::SelectPolicy::Clockwise,
    );
    let plan = FaultPlan::parse_spec("drop=0.2,until=40", 31).unwrap();
    let run = RuntimeExecutor::new(&g, &smm, 2)
        .with_chaos(plan)
        .run(InitialState::Default, 100)
        .unwrap();
    if run.outcome == Outcome::Stabilized {
        assert!(smm.is_legitimate(&g, &run.final_states));
    }
}

#[test]
fn invalid_plans_are_rejected_up_front() {
    let g = generators::path(6);
    let smi = Smi::new(Ids::identity(g.n()));
    // Probabilities summing past 1.
    let bad = FaultPlan::new(1).with_drop(0.7).with_corrupt(0.5);
    let err = RuntimeExecutor::new(&g, &smi, 2)
        .with_chaos(bad)
        .run(InitialState::Default, 10)
        .unwrap_err();
    assert!(
        matches!(err, RuntimeError::InvalidPlan { .. }),
        "expected InvalidPlan, got {err:?}"
    );
    // A crash aimed at a shard the partition does not have.
    let oob = FaultPlan::new(1).with_crash(5, 1);
    let err = RuntimeExecutor::new(&g, &smi, 2)
        .with_chaos(oob)
        .run(InitialState::Default, 10)
        .unwrap_err();
    assert!(
        matches!(err, RuntimeError::InvalidPlan { .. }),
        "expected InvalidPlan, got {err:?}"
    );
}

#[test]
fn sharded_churn_matches_the_serial_reference() {
    let g = generators::grid(6, 6);
    let smm = Smm::paper(Ids::identity(g.n()));
    let churn = ChurnSchedule::new(5, 41).with_events(2).with_epochs(3);
    let init = InitialState::Random { seed: 13 };
    let serial =
        run_churned_serial(&g, &smm, Schedule::Active, &churn, init.clone(), 8 * g.n()).unwrap();
    assert!(is_connected(&serial.graph));
    for shards in [1, 2, 4, 8] {
        let sharded = run_churned_sharded(
            &g,
            &smm,
            shards,
            Schedule::Active,
            None,
            None,
            &churn,
            init.clone(),
            8 * g.n(),
            &mut (),
        )
        .unwrap();
        assert_eq!(serial.run.outcome, sharded.run.outcome, "shards={shards}");
        assert_eq!(serial.run.rounds, sharded.run.rounds, "shards={shards}");
        assert_eq!(
            serial.run.moves_per_rule, sharded.run.moves_per_rule,
            "shards={shards}"
        );
        assert_eq!(
            serial.run.final_states, sharded.run.final_states,
            "shards={shards}"
        );
        assert_eq!(serial.events, sharded.events, "shards={shards}");
        // Legitimacy is judged on the *mutated* topology.
        if sharded.run.stabilized() {
            assert!(smm.is_legitimate(&sharded.graph, &sharded.run.final_states));
        }
    }
}

#[test]
fn churn_composes_with_frame_chaos_and_stays_deterministic() {
    let g = generators::grid(6, 6);
    let smi = Smi::new(Ids::identity(g.n()));
    let churn = ChurnSchedule::new(6, 5).with_epochs(2);
    let plan = FaultPlan::parse_spec("drop=0.15,delay=1", 8).unwrap();
    let mut outs = Vec::new();
    for _ in 0..2 {
        let mut metrics = MetricsCollector::new();
        let out = run_churned_sharded(
            &g,
            &smi,
            4,
            Schedule::Active,
            None,
            Some(&plan),
            &churn,
            InitialState::Random { seed: 21 },
            16 * g.n(),
            &mut metrics,
        )
        .unwrap();
        assert_eq!(out.run.outcome, Outcome::Stabilized);
        assert!(smi.is_legitimate(&out.graph, &out.run.final_states));
        // Observer rounds are reported on the absolute clock across
        // segments: strictly increasing, ending at the total round count.
        let rounds: Vec<usize> = metrics.rounds().iter().map(|r| r.round).collect();
        assert!(rounds.windows(2).all(|w| w[0] < w[1]), "{rounds:?}");
        assert_eq!(rounds.last().copied(), Some(out.run.rounds));
        outs.push((out, chaos_counters(&metrics)));
    }
    assert_eq!(outs[0].0.run.final_states, outs[1].0.run.final_states);
    assert_eq!(outs[0].0.run.rounds, outs[1].0.run.rounds);
    assert_eq!(outs[0].0.events, outs[1].0.events);
    assert_eq!(outs[0].1, outs[1].1, "identical fault counters");
    assert!(outs[0].1.frames_dropped > 0);
}

/// A guard with an implementation bug: panics once node 0 holds `true`.
struct PanicProto;

impl Protocol for PanicProto {
    type State = bool;
    fn rule_names(&self) -> &'static [&'static str] {
        &["flip"]
    }
    fn default_state(&self) -> bool {
        false
    }
    fn arbitrary_state(&self, _: Node, _: &[Node], _: &mut StdRng) -> bool {
        false
    }
    fn enumerate_states(&self, _: Node, _: &[Node]) -> Vec<bool> {
        vec![false, true]
    }
    fn step(&self, view: View<'_, bool>) -> Option<Move<bool>> {
        if *view.own() && view.node() == Node(0) {
            panic!("injected guard bug on node 0");
        }
        (!view.own()).then_some(Move {
            rule: 0,
            next: true,
        })
    }
}

#[test]
fn real_worker_panic_still_surfaces_while_a_plan_is_active() {
    // An injected crash-restart is routine under a plan; an actual panic in
    // a guard must NOT be mistaken for one — it still poisons the barrier
    // and reports WorkerPanic. (The panic message on stderr is expected.)
    let g = generators::grid(4, 4);
    let plan = FaultPlan::parse_spec("drop=0.1", 3).unwrap();
    let err = RuntimeExecutor::new(&g, &PanicProto, 4)
        .with_chaos(plan)
        .run(InitialState::Default, 10)
        .unwrap_err();
    assert!(
        matches!(err, RuntimeError::WorkerPanic { .. }),
        "expected WorkerPanic, got {err:?}"
    );
}
