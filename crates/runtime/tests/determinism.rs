//! Property: for any seeded random graph, any initial state seed, and any
//! shard count, the sharded runtime produces exactly the per-round states
//! and round count of the serial synchronous executor — the runtime's
//! barrier is the paper's round, not an approximation of it.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use selfstab_core::smi::Smi;
use selfstab_core::smm::Smm;
use selfstab_engine::active::Schedule;
use selfstab_engine::obs::{Observer, RoundStats};
use selfstab_engine::protocol::{InitialState, Protocol, WireState};
use selfstab_engine::sync::SyncExecutor;
use selfstab_graph::{generators, Graph, Ids};
use selfstab_runtime::RuntimeExecutor;

/// Records the global state after every round.
struct StateTrace<S> {
    per_round: Vec<Vec<S>>,
}

impl<S> StateTrace<S> {
    fn new() -> Self {
        StateTrace {
            per_round: Vec::new(),
        }
    }
}

impl<S: Clone> Observer<S> for StateTrace<S> {
    fn on_round_end(&mut self, _stats: &RoundStats, states: &[S]) {
        self.per_round.push(states.to_vec());
    }
}

/// Run both executors observed and compare everything round for round.
fn check_equivalence<P: Protocol>(g: &Graph, proto: &P, seed: u64, shards: usize) -> TestCaseResult
where
    P::State: WireState,
{
    let max_rounds = 4 * g.n() + 8;
    let init = InitialState::Random { seed };

    let mut serial_trace = StateTrace::new();
    let serial = SyncExecutor::new(g, proto)
        .with_schedule(Schedule::Full)
        .run_observed(init.clone(), max_rounds, &mut serial_trace);
    // The serial active schedule must be indistinguishable from the full
    // sweep before the sharded runtime (active by default) is compared.
    let active = SyncExecutor::new(g, proto)
        .with_schedule(Schedule::Active)
        .run(init.clone(), max_rounds);
    prop_assert_eq!(serial.rounds, active.rounds, "active schedule rounds");
    prop_assert_eq!(&serial.outcome, &active.outcome, "active schedule outcome");
    prop_assert_eq!(
        &serial.moves_per_rule,
        &active.moves_per_rule,
        "active schedule moves per rule"
    );
    prop_assert_eq!(
        &serial.final_states,
        &active.final_states,
        "active schedule final states"
    );
    let mut sharded_trace = StateTrace::new();
    let sharded = RuntimeExecutor::new(g, proto, shards)
        .run_observed(init, max_rounds, &mut sharded_trace)
        .expect("sharded run failed");

    prop_assert_eq!(
        serial.rounds,
        sharded.rounds,
        "round count, shards={}",
        shards
    );
    prop_assert_eq!(
        &serial.outcome,
        &sharded.outcome,
        "outcome, shards={}",
        shards
    );
    prop_assert_eq!(
        &serial.moves_per_rule,
        &sharded.moves_per_rule,
        "moves per rule, shards={}",
        shards
    );
    prop_assert_eq!(
        serial_trace.per_round.len(),
        sharded_trace.per_round.len(),
        "observed round count, shards={}",
        shards
    );
    for (r, (a, b)) in serial_trace
        .per_round
        .iter()
        .zip(&sharded_trace.per_round)
        .enumerate()
    {
        prop_assert_eq!(a, b, "state after round {}, shards={}", r + 1, shards);
    }
    prop_assert_eq!(
        &serial.final_states,
        &sharded.final_states,
        "final states, shards={}",
        shards
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn smm_matches_serial_for_any_shard_count(
        n in 4usize..48,
        graph_seed in 0u64..1_000_000,
        state_seed in 0u64..1_000_000,
    ) {
        let g = generators::erdos_renyi_connected(n, 0.2, &mut StdRng::seed_from_u64(graph_seed));
        let smm = Smm::paper(Ids::identity(g.n()));
        for shards in [1, 2, 4, 8] {
            check_equivalence(&g, &smm, state_seed, shards)?;
        }
    }

    #[test]
    fn smi_matches_serial_for_any_shard_count(
        n in 4usize..48,
        graph_seed in 0u64..1_000_000,
        state_seed in 0u64..1_000_000,
    ) {
        let g = generators::erdos_renyi_connected(n, 0.2, &mut StdRng::seed_from_u64(graph_seed));
        let smi = Smi::new(Ids::identity(g.n()));
        for shards in [1, 2, 4, 8] {
            check_equivalence(&g, &smi, state_seed, shards)?;
        }
    }
}
