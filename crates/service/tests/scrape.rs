//! Concurrent scrape-under-churn: N UDS clients mutate the overlay while
//! a Prometheus scraper polls the TCP endpoint. The scraped
//! `selfstab_events_total` series must be monotone non-decreasing, a
//! quiescent scrape must agree with the `telemetry` UDS query, and the
//! whole stack (serve loop, UDS transport, scrape listener) must tear
//! down under a watchdog deadline — no thread may hang.

#![cfg(unix)]

use std::path::PathBuf;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use selfstab_core::Smm;
use selfstab_engine::protocol::InitialState;
use selfstab_engine::Protocol;
use selfstab_graph::{generators, Ids};
use selfstab_json::Json;
use selfstab_service::{
    scrape_once, serve_with, uds_client_session, OverlayService, RealClock, ScrapeServer,
    ServeHooks, ServeOutcome, ShutdownFlag, Telemetry, UdsTransport,
};

fn socket_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "selfstab-scrape-{}-{name}.sock",
        std::process::id()
    ));
    p
}

/// Parse `selfstab_events_total N` out of an exposition body.
fn events_total(body: &str) -> u64 {
    for line in body.lines() {
        if let Some(rest) = line.strip_prefix("selfstab_events_total ") {
            return rest.trim().parse::<f64>().expect("numeric sample") as u64;
        }
    }
    panic!("selfstab_events_total missing from scrape body:\n{body}");
}

#[test]
fn scrape_under_churn_is_monotone_and_tears_down() {
    let n = 32;
    let path = socket_path("churn");
    let smm = Smm::paper(Ids::identity(n));
    let clock = RealClock::new();
    let registry = Arc::new(Telemetry::new());
    let mut svc = OverlayService::new(generators::path(n), &smm, InitialState::Default, 0)
        .with_telemetry(registry.clone());
    svc.stabilize(&clock, &mut ());

    let scraper_srv = ScrapeServer::bind("127.0.0.1:0", registry.clone()).expect("bind scrape");
    let scrape_addr = scraper_srv.addr().to_string();
    let mut transport = UdsTransport::bind(&path).expect("bind uds");
    let shutdown = ShutdownFlag::new();

    // Scraper: poll the TCP endpoint while churn is in flight, recording
    // the events_total series. Transient connect errors (listener queue
    // full) are skipped; the body itself must always parse.
    let scraper = {
        let addr = scrape_addr.clone();
        std::thread::spawn(move || {
            let mut series = Vec::new();
            for _ in 0..60 {
                if let Ok(body) = scrape_once(&addr) {
                    assert!(!body.contains("NaN"), "exposition must not emit NaN");
                    series.push(events_total(&body));
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            series
        })
    };

    // Coordinator: run 3 mutating clients to completion, then check
    // quiescent scrape/UDS-query agreement, then ask the daemon to exit.
    let coordinator = {
        let client_path = path.clone();
        let addr = scrape_addr.clone();
        std::thread::spawn(move || {
            let churners: Vec<_> = (0..3)
                .map(|i| {
                    let p = client_path.clone();
                    std::thread::spawn(move || {
                        // Each client owns a distinct path edge, so every
                        // toggle is valid regardless of interleaving.
                        let (a, b) = (9 * i + 2, 9 * i + 3);
                        let lines: Vec<String> = (0..20)
                            .map(|t| {
                                let kind = if t % 2 == 0 { "edge-down" } else { "edge-up" };
                                format!(r#"{{"op":"mutate","kind":"{kind}","a":{a},"b":{b}}}"#)
                            })
                            .collect();
                        let mut oks = 0usize;
                        uds_client_session(&p, &lines, |r| {
                            let reply = Json::parse(r).expect("reply json");
                            assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
                            oks += 1;
                        })
                        .expect("churn session");
                        oks
                    })
                })
                .collect();
            let mut applied = 0usize;
            for c in churners {
                applied += c.join().expect("churn client");
            }

            // Quiescent: no client is mutating, so the TCP scrape and the
            // UDS `telemetry` query must report the same events count.
            let scraped = events_total(&scrape_once(&addr).expect("quiescent scrape"));
            let mut queried = None;
            uds_client_session(
                &client_path,
                &[r#"{"op":"query","what":"telemetry"}"#.to_string()],
                |r| {
                    let reply = Json::parse(r).expect("telemetry json");
                    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
                    queried = reply.get("events").and_then(Json::as_u64);
                },
            )
            .expect("telemetry query session");

            uds_client_session(&client_path, &[r#"{"op":"shutdown"}"#.to_string()], |_| {})
                .expect("shutdown session");
            (applied, scraped, queried.expect("events field"))
        })
    };

    let summary = serve_with(
        &mut svc,
        &mut transport,
        &clock,
        &shutdown,
        1_000,
        &mut (),
        ServeHooks {
            telemetry: Some(registry.clone()),
            snapshots: None,
        },
    );
    let (applied, scraped, queried) = coordinator.join().expect("coordinator");
    let series = scraper.join().expect("scraper");

    assert_eq!(summary.outcome, ServeOutcome::ClientShutdown);
    assert_eq!(applied, 60, "every churn mutation got an ok reply");
    assert_eq!(scraped, queried, "scrape and UDS query agree at quiescence");
    assert_eq!(scraped, 60, "one event per applied mutation");
    assert!(
        series.windows(2).all(|w| w[0] <= w[1]),
        "events_total must be monotone under churn: {series:?}"
    );
    assert!(registry.scrapes_total() as usize > series.len());
    assert!(svc.is_converged());
    assert!(svc.proto().is_legitimate(svc.graph(), svc.states()));

    // Teardown under a watchdog: UDS transport and scrape listener must
    // both come down without hanging.
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let started = Instant::now();
        let joined = transport.shutdown();
        let mut srv = scraper_srv;
        srv.shutdown();
        tx.send((joined, started.elapsed()))
            .expect("report teardown");
    });
    let (joined, took) = rx
        .recv_timeout(Duration::from_secs(20))
        .expect("teardown deadlocked past the watchdog deadline");
    assert!(joined >= 2, "acceptor + readers joined (got {joined})");
    assert!(!path.exists(), "socket file removed on shutdown");
    assert!(took < Duration::from_secs(20));
}

#[test]
fn scrape_endpoint_serves_repeatedly_and_shuts_down() {
    let registry = Arc::new(Telemetry::new());
    registry.heartbeat(5_000);
    let mut srv = ScrapeServer::bind("127.0.0.1:0", registry.clone()).expect("bind");
    let addr = srv.addr().to_string();
    for i in 1..=5u64 {
        let body = scrape_once(&addr).expect("scrape");
        assert!(body.starts_with("# HELP"));
        assert!(body.contains(&format!("selfstab_scrapes_total {i}")));
    }
    srv.shutdown();
    assert!(
        scrape_once(&addr).is_err(),
        "listener must stop accepting after shutdown"
    );
}
