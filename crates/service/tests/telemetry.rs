//! Telemetry-plane invariants the acceptance criteria pin:
//!
//! 1. **Unobserved drains take no clock.** With no observer and no
//!    telemetry registry attached, a drain performs zero `now_micros`
//!    calls — observation must be free when it is off.
//! 2. **Telemetry is observation, not behavior.** A service with a
//!    registry attached produces byte-identical states, rounds, and event
//!    records to one without.
//! 3. **The snapshot scheduler is deterministic under the sim clock**:
//!    written-count is a pure function of the event/advance script, in
//!    both cadence units (proptested for the event cadence).
//! 4. **Crash-resume works**: a daemon killed after a background snapshot
//!    reloads it and re-stabilizes within the Theorem 1/2 budget — in
//!    zero rounds when the snapshot was legitimate.

use std::cell::Cell;

use proptest::prelude::*;
use selfstab_core::{Pointer, Smm};
use selfstab_engine::protocol::InitialState;
use selfstab_engine::Protocol;
use selfstab_graph::{generators, Ids};
use selfstab_json::Json;
use selfstab_service::{
    Clock, Mutation, OverlayService, SimClock, Snapshot, SnapshotCadence, SnapshotScheduler,
    Telemetry,
};
use std::sync::Arc;

/// A sim clock that counts `now_micros` reads, pinning the
/// no-clock-on-the-unobserved-path guarantee.
#[derive(Default)]
struct CountingClock {
    inner: SimClock,
    reads: Cell<u64>,
}

impl Clock for CountingClock {
    fn now_micros(&self) -> u64 {
        self.reads.set(self.reads.get() + 1);
        self.inner.now_micros()
    }

    fn sleep_micros(&self, micros: u64) {
        self.inner.sleep_micros(micros);
    }
}

fn churn_script(n: usize) -> Vec<Mutation> {
    vec![
        Mutation::EdgeDown {
            a: n / 2,
            b: n / 2 + 1,
        },
        Mutation::EdgeUp { a: 0, b: n - 1 },
        Mutation::NodeLeave { v: 1 },
        Mutation::NodeJoin {
            v: 1,
            attach: vec![0, 2],
        },
        Mutation::EdgeDown { a: 0, b: n - 1 },
    ]
}

#[test]
fn unobserved_drain_reads_no_clock() {
    let n = 12;
    let smm = Smm::paper(Ids::identity(n));
    let clock = CountingClock::default();
    let mut svc = OverlayService::new(generators::path(n), &smm, InitialState::Default, 0);
    svc.stabilize(&clock, &mut ());
    for m in churn_script(n) {
        svc.enqueue(m);
    }
    let records = svc.drain(&clock, &mut ());
    assert!(records.iter().all(|r| r.is_ok()));
    svc.settle(&clock, &mut ());
    assert_eq!(
        clock.reads.get(),
        0,
        "unobserved bootstrap + drain + settle must not read the clock"
    );

    // Attaching a registry is exactly what turns clock reads on.
    let smm2 = Smm::paper(Ids::identity(n));
    let clock2 = CountingClock::default();
    let mut observed = OverlayService::new(generators::path(n), &smm2, InitialState::Default, 0)
        .with_telemetry(Arc::new(Telemetry::new()));
    observed.stabilize(&clock2, &mut ());
    observed.enqueue(Mutation::EdgeDown { a: 3, b: 4 });
    observed.drain(&clock2, &mut ()).pop().unwrap().unwrap();
    assert!(
        clock2.reads.get() > 0,
        "telemetry-attached drain times its backend latency"
    );
}

#[test]
fn telemetry_attachment_is_behaviorally_invisible() {
    let n = 16;
    let smm_a = Smm::paper(Ids::identity(n));
    let smm_b = Smm::paper(Ids::identity(n));
    let clock = SimClock::new();
    let registry = Arc::new(Telemetry::new());
    let mut plain = OverlayService::new(generators::path(n), &smm_a, InitialState::Default, 0);
    let mut observed = OverlayService::new(generators::path(n), &smm_b, InitialState::Default, 0)
        .with_telemetry(registry.clone());
    plain.stabilize(&clock, &mut ());
    observed.stabilize(&clock, &mut ());
    for m in churn_script(n) {
        plain.enqueue(m.clone());
        observed.enqueue(m);
    }
    let ra = plain.drain(&clock, &mut ());
    let rb = observed.drain(&clock, &mut ());
    assert_eq!(ra.len(), rb.len());
    for (a, b) in ra.iter().zip(&rb) {
        let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
        assert_eq!(
            (a.seq, a.recovery_rounds, a.moves, a.perturbed, a.converged),
            (b.seq, b.recovery_rounds, b.moves, b.perturbed, b.converged),
        );
    }
    assert_eq!(plain.states(), observed.states());
    assert_eq!(plain.clock_rounds(), observed.clock_rounds());
    // And the registry actually recorded the drained events.
    assert_eq!(registry.events_total(), ra.len() as u64);
    let json = registry.to_json();
    assert_eq!(
        json.get("events").and_then(Json::as_u64),
        Some(ra.len() as u64)
    );
}

#[test]
fn time_cadence_fires_on_the_sim_clock_deterministically() {
    let n = 6;
    let smm = Smm::paper(Ids::identity(n));
    let clock = SimClock::new();
    let mut svc = OverlayService::new(generators::path(n), &smm, InitialState::Default, 0);
    svc.stabilize(&clock, &mut ());
    let mut sched = SnapshotScheduler::in_memory(SnapshotCadence::parse("1ms").unwrap());
    // t = 0: not due (no 1ms elapsed since the epoch mark).
    assert!(!sched.tick(&svc, &clock, None).unwrap());
    clock.advance(500);
    assert!(!sched.tick(&svc, &clock, None).unwrap());
    clock.advance(500); // t = 1000 µs
    assert!(sched.tick(&svc, &clock, None).unwrap());
    clock.advance(999);
    assert!(!sched.tick(&svc, &clock, None).unwrap());
    clock.advance(1); // t = 2000 µs
    assert!(sched.tick(&svc, &clock, None).unwrap());
    assert_eq!(sched.written(), 2);
    for doc in sched.documents() {
        let snap = Snapshot::parse(doc).unwrap();
        assert_eq!(snap.protocol, "smm");
        assert_eq!(snap.n, n);
    }
}

#[test]
fn cadence_parse_accepts_events_seconds_millis_and_rejects_junk() {
    assert_eq!(
        SnapshotCadence::parse("250").unwrap(),
        SnapshotCadence::Events(250)
    );
    assert_eq!(
        SnapshotCadence::parse("30s").unwrap(),
        SnapshotCadence::Micros(30_000_000)
    );
    assert_eq!(
        SnapshotCadence::parse("500ms").unwrap(),
        SnapshotCadence::Micros(500_000)
    );
    for bad in [
        "0",
        "0s",
        "",
        "s",
        "ms",
        "-3",
        "1.5s",
        "99999999999999999999s",
    ] {
        assert!(SnapshotCadence::parse(bad).is_err(), "{bad}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Event-cadence determinism: after `toggles` valid events with a tick
    /// after each, exactly `toggles / k` snapshots exist, every one a
    /// parseable legitimate document.
    #[test]
    fn event_cadence_writes_exactly_floor_events_over_k(k in 1u64..5, toggles in 0usize..20) {
        let n = 6;
        let smm = Smm::paper(Ids::identity(n));
        let clock = SimClock::new();
        let mut svc = OverlayService::new(generators::path(n), &smm, InitialState::Default, 0);
        svc.stabilize(&clock, &mut ());
        let mut sched = SnapshotScheduler::in_memory(SnapshotCadence::Events(k));
        prop_assert!(!sched.tick(&svc, &clock, None).unwrap(), "not due at 0 events");
        for i in 0..toggles {
            let (a, b) = (2, 3);
            svc.enqueue(if i % 2 == 0 {
                Mutation::EdgeDown { a, b }
            } else {
                Mutation::EdgeUp { a, b }
            });
            for r in svc.drain(&clock, &mut ()) {
                r.unwrap();
            }
            sched.tick(&svc, &clock, None).unwrap();
        }
        prop_assert_eq!(sched.written(), toggles as u64 / k);
        for doc in sched.documents() {
            let snap = Snapshot::parse(doc).unwrap();
            prop_assert_eq!(snap.n, n);
            prop_assert_eq!(snap.decode_states::<Pointer>().unwrap().len(), n);
        }
    }
}

#[test]
fn kill_and_reload_resumes_from_the_background_snapshot() {
    let n = 24;
    let dir = std::env::temp_dir();
    let path = dir.join(format!("selfstab-test-snap-{}.json", std::process::id()));
    let _ = std::fs::remove_file(&path);

    // Phase 1: a service under churn with a background every-event
    // scheduler, killed without any graceful settle (the scheduler's file
    // is all that survives).
    {
        let smm = Smm::paper(Ids::identity(n));
        let clock = SimClock::new();
        let registry = Arc::new(Telemetry::new());
        let mut svc = OverlayService::new(generators::path(n), &smm, InitialState::Default, 0)
            .with_telemetry(registry.clone());
        svc.stabilize(&clock, &mut ());
        let mut sched = SnapshotScheduler::to_file(SnapshotCadence::Events(1), &path);
        for m in churn_script(n) {
            svc.enqueue(m);
            for r in svc.drain(&clock, &mut ()) {
                r.unwrap();
            }
            clock.advance(100);
            sched.tick(&svc, &clock, Some(&*registry)).unwrap();
        }
        assert_eq!(sched.written(), 5);
        assert_eq!(registry.snapshots_total(), 5);
        // Kill: svc dropped here, no settle, no explicit snapshot.
    }

    // Phase 2: resurrect from the file. The snapshot was taken at a
    // converged instant (full per-event budget), so the reload converges
    // in zero rounds — self-stabilization applied to process restarts.
    let doc = std::fs::read_to_string(&path).unwrap();
    let snap = Snapshot::parse(&doc).unwrap();
    assert_eq!(snap.protocol, "smm");
    let states = snap.decode_states::<Pointer>().unwrap();
    let smm = Smm::paper(Ids::identity(n));
    let clock = SimClock::new();
    let mut revived = OverlayService::new(snap.graph(), &smm, InitialState::Explicit(states), 0)
        .with_clock_rounds(snap.clock_rounds);
    let boot = revived.stabilize(&clock, &mut ());
    assert!(boot.converged);
    assert_eq!(
        boot.recovery_rounds, 0,
        "legitimate snapshot reloads in 0 rounds"
    );
    assert!(revived
        .proto()
        .is_legitimate(revived.graph(), revived.states()));
    assert!(revived.clock_rounds() >= snap.clock_rounds);
    assert!(!path.with_extension("tmp").exists(), "tmp renamed away");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn mid_repair_snapshot_still_recovers_within_budget() {
    // A tight per-event budget leaves carried-over dirty work, so the
    // background snapshot captures a *non*-legitimate configuration. The
    // reload must still re-stabilize — in more than zero rounds, but
    // within the Theorem 1/2 budget. This is the arbitrary-initial-state
    // guarantee doing real work at restart time.
    let n = 24;
    let smm = Smm::paper(Ids::identity(n));
    let clock = SimClock::new();
    let mut svc = OverlayService::new(generators::path(n), &smm, InitialState::Default, 1);
    svc.stabilize(&clock, &mut ());
    let mut sched = SnapshotScheduler::in_memory(SnapshotCadence::Events(1));
    svc.enqueue(Mutation::EdgeDown {
        a: n / 2,
        b: n / 2 + 1,
    });
    svc.enqueue(Mutation::EdgeUp { a: 0, b: n - 1 });
    for r in svc.drain(&clock, &mut ()) {
        r.unwrap();
    }
    sched.tick(&svc, &clock, None).unwrap();
    assert_eq!(sched.written(), 1);

    let snap = Snapshot::parse(&sched.documents()[0]).unwrap();
    let states = snap.decode_states::<Pointer>().unwrap();
    let smm2 = Smm::paper(Ids::identity(n));
    let mut revived = OverlayService::new(snap.graph(), &smm2, InitialState::Explicit(states), 0);
    let boot = revived.stabilize(&clock, &mut ());
    assert!(boot.converged);
    assert!(
        boot.recovery_rounds <= n + 2,
        "reload within the convergence budget, got {}",
        boot.recovery_rounds
    );
    assert!(revived
        .proto()
        .is_legitimate(revived.graph(), revived.states()));
}
