//! Teardown regression tests for the Unix-socket transport.
//!
//! The transport owns three kinds of threads (acceptor, one reader per
//! client) and a socket file; `shutdown()` must end all of them no matter
//! what state a client is in. The pending-connection test pins the
//! historical deadlock: a client whose `Connected` event was accepted but
//! never polled is in neither `writers` nor anything the old shutdown
//! severed, so its reader blocked forever and `join()` hung the daemon.

#![cfg(unix)]

use selfstab_service::UdsTransport;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::mpsc;
use std::time::{Duration, Instant};

fn socket_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "selfstab-teardown-{}-{name}.sock",
        std::process::id()
    ));
    p
}

/// Run `shutdown()` on its own thread under a watchdog deadline, so a
/// regression shows up as a test failure instead of a hung test binary.
fn shutdown_under_deadline(mut transport: UdsTransport, deadline: Duration) -> usize {
    let (tx, rx) = mpsc::channel();
    let watchdog = std::thread::spawn(move || {
        let joined = transport.shutdown();
        tx.send(joined).expect("report joined count");
        // Dropping the transport here re-runs shutdown; idempotence means
        // that is a no-op rather than a second join pass.
        drop(transport);
    });
    let joined = rx
        .recv_timeout(deadline)
        .expect("shutdown() deadlocked: reader threads never joined");
    watchdog.join().expect("watchdog thread");
    joined
}

#[test]
fn shutdown_with_pending_unpolled_connection_terminates() {
    let path = socket_path("pending");
    let transport = UdsTransport::bind(&path).expect("bind socket");

    // Connect a client and never poll the transport: the acceptor queues
    // the `Connected` event and spawns a reader, but the serve loop side
    // never moves the client into `writers`. Pre-fix, shutdown() could not
    // sever this client's stream and joined its reader forever.
    let client = UnixStream::connect(&path).expect("client connects");
    // Give the (10ms-poll) acceptor ample time to accept and spawn the
    // reader; the assertion below confirms it actually did.
    std::thread::sleep(Duration::from_millis(500));

    let start = Instant::now();
    let joined = shutdown_under_deadline(transport, Duration::from_secs(10));
    assert!(
        joined >= 2,
        "expected acceptor + pending client's reader to join, got {joined}"
    );
    assert!(
        start.elapsed() < Duration::from_secs(10),
        "shutdown exceeded the watchdog deadline"
    );
    assert!(!path.exists(), "socket file removed on shutdown");

    // The severed client observes EOF, not a hang.
    let mut reader = BufReader::new(client);
    let mut line = String::new();
    let read = reader.read_line(&mut line).expect("read after sever");
    assert_eq!(read, 0, "severed client sees EOF");
}

#[test]
fn churn_session_joins_every_reader_and_removes_socket() {
    use selfstab_service::{Polled, Transport};

    let path = socket_path("churn");
    let mut transport = UdsTransport::bind(&path).expect("bind socket");
    const CLIENTS: usize = 6;

    // Connect clients one at a time, each sending a line; polling until
    // the line arrives proves the acceptor registered the client and its
    // reader thread is live.
    let mut streams = Vec::new();
    for i in 0..CLIENTS {
        let mut c = UnixStream::connect(&path).expect("client connects");
        writeln!(c, "{{\"probe\":{i}}}").expect("client writes");
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match transport.poll() {
                Polled::Request { client, line } => {
                    assert!(line.contains("probe"), "unexpected line {line}");
                    transport.reply(client, "ack");
                    break;
                }
                Polled::Idle => {
                    assert!(Instant::now() < deadline, "client {i}'s line never arrived")
                }
                Polled::Closed => panic!("transport closed during churn"),
            }
        }
        streams.push(c);
    }

    // Half the clients disconnect mid-session (their readers exit on EOF
    // and their `Disconnected` events may or may not be polled — shutdown
    // must not care); the other half stay connected and blocked.
    for c in streams.drain(..CLIENTS / 2) {
        drop(c);
    }

    assert_eq!(transport.accept_failures(), 0);
    let joined = shutdown_under_deadline(transport, Duration::from_secs(10));
    assert_eq!(
        joined,
        1 + CLIENTS,
        "acceptor + every reader (live or exited) joined exactly once"
    );
    assert!(!path.exists(), "socket file removed on shutdown");
}
