//! End-to-end service tests: the same serve loop under both environments
//! (scripted sim session, real Unix-socket session), graceful shutdown
//! with queue drain, and snapshot/reload legitimacy.

use selfstab_core::{Smi, Smm};
use selfstab_engine::protocol::{InitialState, Protocol};
use selfstab_graph::{generators, Ids};
use selfstab_json::Json;
use selfstab_service::{
    serve, Mutation, OverlayService, ServeOutcome, ShutdownFlag, SimClock, SimTransport, Snapshot,
};

#[test]
fn sim_session_full_protocol_surface() {
    let n = 10;
    let g = generators::cycle(n);
    let smm = Smm::paper(Ids::identity(n));
    let clock = SimClock::new();
    let mut svc = OverlayService::new(g, &smm, InitialState::Random { seed: 7 }, 0);
    svc.stabilize(&clock, &mut ());
    assert!(svc.is_converged());

    let mut transport = SimTransport::scripted([
        r#"{"op":"query","what":"membership","node":3}"#,
        r#"{"op":"mutate","kind":"edge-down","a":3,"b":4,"tag":"cut"}"#,
        r#"{"op":"query","what":"membership"}"#,
        r#"{"op":"mutate","kind":"node-leave","v":0}"#,
        r#"{"op":"mutate","kind":"node-join","v":0,"attach":[1,9]}"#,
        r#"{"op":"query","what":"census"}"#,
        r#"{"op":"query","what":"status"}"#,
        r#"{"op":"query","what":"latency"}"#,
        r#"{"op":"shutdown"}"#,
    ]);
    let shutdown = ShutdownFlag::new();
    let summary = serve(&mut svc, &mut transport, &clock, &shutdown, 100, &mut ());

    assert_eq!(summary.outcome, ServeOutcome::ClientShutdown);
    assert_eq!(summary.requests, 9);
    assert_eq!(summary.mutations, 3);
    assert_eq!(summary.queries, 5);
    assert_eq!(summary.errors, 0);
    assert_eq!(transport.replies().len(), 9);

    for line in transport.replies() {
        let v = Json::parse(line).expect("every reply is one JSON line");
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{line}");
    }
    let cut = Json::parse(&transport.replies()[1]).unwrap();
    assert_eq!(cut.get("tag").and_then(Json::as_str), Some("cut"));
    assert_eq!(cut.get("converged").and_then(Json::as_bool), Some(true));

    let status = Json::parse(&transport.replies()[6]).unwrap();
    assert_eq!(status.get("legitimate").and_then(Json::as_bool), Some(true));
    assert_eq!(status.get("events").and_then(Json::as_u64), Some(3));

    let latency = Json::parse(&transport.replies()[7]).unwrap();
    assert_eq!(latency.get("events").and_then(Json::as_u64), Some(3));

    // The service is still legitimate after serving (shutdown settled it).
    assert!(smm.is_legitimate(svc.graph(), svc.states()));
}

#[test]
fn shutdown_snapshot_reloads_legitimate() {
    // Run a churny session, snapshot at shutdown, reload into a fresh
    // service: the restored configuration must already be legitimate, so
    // the bootstrap convergence takes zero rounds.
    use rand::SeedableRng;
    let n = 12;
    let g =
        generators::random_geometric_connected(n, 0.45, &mut rand::rngs::StdRng::seed_from_u64(99));
    let smm = Smm::paper(Ids::identity(n));
    let clock = SimClock::new();
    let mut svc = OverlayService::new(g, &smm, InitialState::Random { seed: 3 }, 0);
    svc.stabilize(&clock, &mut ());
    for (a, b) in [(0usize, 5usize), (2, 7), (1, 9)] {
        svc.enqueue(if svc.graph().has_edge(a.into(), b.into()) {
            Mutation::EdgeDown { a, b }
        } else {
            Mutation::EdgeUp { a, b }
        });
    }
    for r in svc.drain(&clock, &mut ()) {
        r.expect("valid mutation");
    }
    assert!(svc.is_converged());

    let doc = selfstab_service::snapshot::write_snapshot(
        "smm",
        svc.graph(),
        svc.states(),
        svc.clock_rounds(),
    );

    let snap = Snapshot::parse(&doc).expect("snapshot parses");
    assert_eq!(snap.protocol, "smm");
    let g2 = snap.graph();
    let states2 = snap.decode_states().expect("states decode");
    assert!(
        smm.is_legitimate(&g2, &states2),
        "snapshot of a converged service is legitimate"
    );

    let mut restored = OverlayService::new(g2, &smm, InitialState::Explicit(states2), 0);
    let boot = restored.stabilize(&clock, &mut ());
    assert_eq!(
        boot.recovery_rounds, 0,
        "restoring a legitimate snapshot converges in zero rounds"
    );
    assert!(restored.is_converged());
}

#[test]
fn shutdown_drains_queued_mutations_before_exit() {
    let n = 8;
    let g = generators::path(n);
    let smi = Smi::new(Ids::identity(n));
    let clock = SimClock::new();
    let mut svc = OverlayService::new(g, &smi, InitialState::Default, 0);
    svc.stabilize(&clock, &mut ());

    // Mutations queued directly (not via the wire) simulate a backlog the
    // loop never got to; serve() must apply them on its way out.
    svc.enqueue(Mutation::EdgeUp { a: 0, b: 7 });
    svc.enqueue(Mutation::EdgeDown { a: 3, b: 4 });
    let mut transport = SimTransport::scripted([r#"{"op":"shutdown"}"#]);
    let shutdown = ShutdownFlag::new();
    let summary = serve(&mut svc, &mut transport, &clock, &shutdown, 100, &mut ());

    assert_eq!(summary.outcome, ServeOutcome::ClientShutdown);
    assert_eq!(summary.drained, 2, "backlog applied during shutdown");
    assert_eq!(svc.pending_len(), 0);
    assert!(svc.is_converged());
    assert!(svc.proto().is_legitimate(svc.graph(), svc.states()));
}

#[cfg(unix)]
mod uds {
    use super::*;
    use selfstab_service::{uds_client_session, RealClock, UdsTransport};
    use std::path::PathBuf;

    fn socket_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("selfstab-test-{}-{name}.sock", std::process::id()));
        p
    }

    #[test]
    fn uds_session_end_to_end() {
        let path = socket_path("e2e");
        let n = 9;
        let g = generators::star(n);
        let smm = Smm::paper(Ids::identity(n));
        let clock = RealClock::new();
        let mut svc = OverlayService::new(g, &smm, InitialState::Default, 0);
        svc.stabilize(&clock, &mut ());

        let mut transport = UdsTransport::bind(&path).expect("bind socket");
        let shutdown = ShutdownFlag::new();

        // The server owns the service on this thread; the client scripts a
        // session from another. Same loop body as the sim test above.
        let client_path = path.clone();
        let client = std::thread::spawn(move || {
            let lines: Vec<String> = [
                r#"{"op":"query","what":"status","tag":"hello \"quoted\" tag"}"#,
                r#"{"op":"mutate","kind":"edge-down","a":0,"b":4}"#,
                r#"{"op":"query","what":"membership","node":4}"#,
                r#"{"op":"shutdown"}"#,
            ]
            .iter()
            .map(|s| s.to_string())
            .collect();
            let mut replies = Vec::new();
            uds_client_session(&client_path, &lines, |r| replies.push(r.to_string()))
                .expect("client session");
            replies
        });

        let summary = serve(&mut svc, &mut transport, &clock, &shutdown, 1_000, &mut ());
        let replies = client.join().expect("client thread");
        let joined = transport.shutdown();
        assert!(
            joined >= 2,
            "acceptor + client reader joined (got {joined})"
        );
        assert!(!path.exists(), "shutdown removes the socket file");

        assert_eq!(summary.outcome, ServeOutcome::ClientShutdown);
        assert_eq!(replies.len(), 4);
        let status = Json::parse(&replies[0]).unwrap();
        assert_eq!(status.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(
            status.get("tag").and_then(Json::as_str),
            Some("hello \"quoted\" tag"),
            "string escaping survives the socket round-trip"
        );
        let mutated = Json::parse(&replies[1]).unwrap();
        assert_eq!(mutated.get("converged").and_then(Json::as_bool), Some(true));
        let member = Json::parse(&replies[2]).unwrap();
        assert_eq!(member.get("node").and_then(Json::as_u64), Some(4));
        assert!(smm.is_legitimate(svc.graph(), svc.states()));
    }
}
