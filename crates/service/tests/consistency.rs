//! Property: the resident service's incremental re-convergence is
//! *observationally identical* to the serial oracle.
//!
//! For any topology, any initial state, and any interleaving of valid
//! mutations and queries:
//!
//! 1. after each event the service's states equal what a from-scratch
//!    [`SyncExecutor`] run (full restart from the pre-event states on the
//!    mutated graph) converges to, move-for-move and round-for-round —
//!    the active-set seeding over perturbed closed neighborhoods is pure
//!    evaluation pruning, not a different daemon;
//! 2. per-event recovery rounds respect the paper's Theorem 1/2 budget
//!    (`n + 2` rounds, from *any* perturbation);
//! 3. every intermediate configuration answered to queries is legitimate.

use proptest::prelude::*;
use selfstab_core::{Smi, Smm};
use selfstab_engine::protocol::InitialState;
use selfstab_engine::SyncExecutor;
use selfstab_graph::{generators, Graph, Ids};
use selfstab_json::Json;
use selfstab_service::{Mutation, OverlayProtocol, OverlayService, SimClock};

/// Abstract mutation script entry; concretized against the live graph so
/// every event is valid (toggle picks up/down from the current topology).
#[derive(Clone, Debug)]
enum Op {
    Toggle(usize, usize),
    Leave(usize),
    Rejoin(usize, Vec<usize>),
    Query,
}

fn op_strategy(n: usize) -> impl Strategy<Value = Op> {
    (0u8..4, 0..n, 0..n, 0..n).prop_map(|(kind, a, b, c)| match kind {
        0 => Op::Toggle(a, b),
        1 => Op::Leave(a),
        2 => Op::Rejoin(a, vec![b, c]),
        _ => Op::Query,
    })
}

fn topology(pick: u8, n: usize) -> Graph {
    match pick % 4 {
        0 => generators::path(n),
        1 => generators::cycle(n),
        2 => generators::star(n),
        _ => generators::complete(n.min(7)),
    }
}

fn concretize(op: &Op, g: &Graph) -> Option<Mutation> {
    match op {
        Op::Toggle(a, b) if a != b => {
            if g.has_edge((*a).into(), (*b).into()) {
                Some(Mutation::EdgeDown { a: *a, b: *b })
            } else {
                Some(Mutation::EdgeUp { a: *a, b: *b })
            }
        }
        Op::Toggle(..) => None,
        Op::Leave(v) => Some(Mutation::NodeLeave { v: *v }),
        Op::Rejoin(v, attach) => {
            let attach: Vec<usize> = attach.iter().copied().filter(|w| w != v).collect();
            Some(Mutation::NodeJoin { v: *v, attach })
        }
        Op::Query => None,
    }
}

fn check_against_oracle<P: OverlayProtocol>(
    g: Graph,
    proto: &P,
    state_seed: u64,
    ops: &[Op],
) -> TestCaseResult {
    let n = g.n();
    let clock = SimClock::new();
    let mut svc = OverlayService::new(g, proto, InitialState::Random { seed: state_seed }, 0);
    let boot = svc.stabilize(&clock, &mut ());
    prop_assert!(boot.converged, "bootstrap within n + 2");
    prop_assert!(boot.recovery_rounds <= n + 2);

    for op in ops {
        if matches!(op, Op::Query) {
            // Interleaved queries observe a legitimate structure and a
            // parseable wire answer.
            prop_assert!(proto.is_legitimate(svc.graph(), svc.states()));
            let status = svc.status_json();
            prop_assert_eq!(status.get("converged").and_then(Json::as_bool), Some(true));
            prop_assert_eq!(status.get("legitimate").and_then(Json::as_bool), Some(true));
            continue;
        }
        let Some(mutation) = concretize(op, svc.graph()) else {
            continue;
        };

        // Oracle: a from-scratch synchronous run on the mutated graph,
        // starting from the exact pre-event states.
        let pre_states = svc.states().to_vec();
        svc.enqueue(mutation.clone());
        let record = svc
            .drain(&clock, &mut ())
            .pop()
            .expect("one event drained")
            .expect("concretized mutations are valid");

        let oracle =
            SyncExecutor::new(svc.graph(), proto).run(InitialState::Explicit(pre_states), n + 2);
        prop_assert!(oracle.stabilized(), "oracle converges within n + 2");
        prop_assert_eq!(
            &oracle.final_states,
            &svc.states().to_vec(),
            "incremental repair and full restart agree on the fixpoint ({:?})",
            mutation
        );
        prop_assert_eq!(
            oracle.rounds,
            record.recovery_rounds,
            "active-set seeding is round-for-round identical to the full sweep ({:?})",
            mutation
        );
        prop_assert!(record.converged);
        prop_assert!(
            record.recovery_rounds <= n + 2,
            "Theorem 1/2 budget holds per event"
        );
        prop_assert!(proto.is_legitimate(svc.graph(), svc.states()));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn smm_service_matches_serial_oracle(
        pick in 0u8..4,
        n in 4usize..11,
        state_seed in 0u64..1_000,
        ops in proptest::collection::vec(op_strategy(10), 1..12),
    ) {
        let g = topology(pick, n);
        let n = g.n();
        let ops: Vec<Op> = ops.into_iter().filter(|op| in_range(op, n)).collect();
        let smm = Smm::paper(Ids::identity(n));
        check_against_oracle(g, &smm, state_seed, &ops)?;
    }

    #[test]
    fn smi_service_matches_serial_oracle(
        pick in 0u8..4,
        n in 4usize..11,
        state_seed in 0u64..1_000,
        ops in proptest::collection::vec(op_strategy(10), 1..12),
    ) {
        let g = topology(pick, n);
        let n = g.n();
        let ops: Vec<Op> = ops.into_iter().filter(|op| in_range(op, n)).collect();
        let smi = Smi::new(Ids::identity(n));
        check_against_oracle(g, &smi, state_seed, &ops)?;
    }
}

/// Ops are drawn over node indices 0..10 but the instance may be smaller
/// (e.g. the complete graph is capped); keep only in-range scripts.
fn in_range(op: &Op, n: usize) -> bool {
    match op {
        Op::Toggle(a, b) => *a < n && *b < n,
        Op::Leave(v) => *v < n,
        Op::Rejoin(v, attach) => *v < n && attach.iter().all(|w| *w < n),
        Op::Query => true,
    }
}
