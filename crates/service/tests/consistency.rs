//! Property: the resident service's incremental re-convergence is
//! *observationally identical* to the serial oracle.
//!
//! For any topology, any initial state, and any interleaving of valid
//! mutations and queries:
//!
//! 1. after each event the service's states equal what a from-scratch
//!    [`SyncExecutor`] run (full restart from the pre-event states on the
//!    mutated graph) converges to, move-for-move and round-for-round —
//!    the active-set seeding over perturbed closed neighborhoods is pure
//!    evaluation pruning, not a different daemon;
//! 2. per-event recovery rounds respect the paper's Theorem 1/2 budget
//!    (`n + 2` rounds, from *any* perturbation);
//! 3. every intermediate configuration answered to queries is legitimate.

use proptest::prelude::*;
use selfstab_core::{Smi, Smm};
use selfstab_engine::protocol::{InitialState, Protocol};
use selfstab_engine::SyncExecutor;
use selfstab_graph::{generators, Graph, Ids};
use selfstab_json::Json;
use selfstab_service::{Backend, Mutation, OverlayProtocol, OverlayService, SimClock};

/// Abstract mutation script entry; concretized against the live graph so
/// every event is valid (toggle picks up/down from the current topology).
#[derive(Clone, Debug)]
enum Op {
    Toggle(usize, usize),
    Leave(usize),
    Rejoin(usize, Vec<usize>),
    Query,
}

fn op_strategy(n: usize) -> impl Strategy<Value = Op> {
    (0u8..4, 0..n, 0..n, 0..n).prop_map(|(kind, a, b, c)| match kind {
        0 => Op::Toggle(a, b),
        1 => Op::Leave(a),
        2 => Op::Rejoin(a, vec![b, c]),
        _ => Op::Query,
    })
}

fn topology(pick: u8, n: usize) -> Graph {
    match pick % 4 {
        0 => generators::path(n),
        1 => generators::cycle(n),
        2 => generators::star(n),
        _ => generators::complete(n.min(7)),
    }
}

fn concretize(op: &Op, g: &Graph) -> Option<Mutation> {
    match op {
        Op::Toggle(a, b) if a != b => {
            if g.has_edge((*a).into(), (*b).into()) {
                Some(Mutation::EdgeDown { a: *a, b: *b })
            } else {
                Some(Mutation::EdgeUp { a: *a, b: *b })
            }
        }
        Op::Toggle(..) => None,
        Op::Leave(v) => Some(Mutation::NodeLeave { v: *v }),
        Op::Rejoin(v, attach) => {
            let attach: Vec<usize> = attach.iter().copied().filter(|w| w != v).collect();
            Some(Mutation::NodeJoin { v: *v, attach })
        }
        Op::Query => None,
    }
}

fn check_against_oracle<P: OverlayProtocol>(
    g: Graph,
    proto: &P,
    state_seed: u64,
    ops: &[Op],
) -> TestCaseResult {
    let n = g.n();
    let clock = SimClock::new();
    let mut svc = OverlayService::new(g, proto, InitialState::Random { seed: state_seed }, 0);
    let boot = svc.stabilize(&clock, &mut ());
    prop_assert!(boot.converged, "bootstrap within n + 2");
    prop_assert!(boot.recovery_rounds <= n + 2);

    for op in ops {
        if matches!(op, Op::Query) {
            // Interleaved queries observe a legitimate structure and a
            // parseable wire answer.
            prop_assert!(proto.is_legitimate(svc.graph(), svc.states()));
            let status = svc.status_json();
            prop_assert_eq!(status.get("converged").and_then(Json::as_bool), Some(true));
            prop_assert_eq!(status.get("legitimate").and_then(Json::as_bool), Some(true));
            continue;
        }
        let Some(mutation) = concretize(op, svc.graph()) else {
            continue;
        };

        // Oracle: a from-scratch synchronous run on the mutated graph,
        // starting from the exact pre-event states.
        let pre_states = svc.states().to_vec();
        svc.enqueue(mutation.clone());
        let record = svc
            .drain(&clock, &mut ())
            .pop()
            .expect("one event drained")
            .expect("concretized mutations are valid");

        let oracle =
            SyncExecutor::new(svc.graph(), proto).run(InitialState::Explicit(pre_states), n + 2);
        prop_assert!(oracle.stabilized(), "oracle converges within n + 2");
        prop_assert_eq!(
            &oracle.final_states,
            &svc.states().to_vec(),
            "incremental repair and full restart agree on the fixpoint ({:?})",
            mutation
        );
        prop_assert_eq!(
            oracle.rounds,
            record.recovery_rounds,
            "active-set seeding is round-for-round identical to the full sweep ({:?})",
            mutation
        );
        prop_assert!(record.converged);
        prop_assert!(
            record.recovery_rounds <= n + 2,
            "Theorem 1/2 budget holds per event"
        );
        prop_assert!(proto.is_legitimate(svc.graph(), svc.states()));
    }
    Ok(())
}

/// Tentpole oracle: drive the *same* mutation script through a serial and
/// a sharded-drain service side by side. Every event must agree on the
/// perturbed-region size, the recovery rounds, the moves, the absolute
/// round clock, and the full state vector — the sharded drain is the same
/// daemon, just evaluated in parallel.
fn check_sharded_matches_serial<P: OverlayProtocol>(
    g: Graph,
    proto: &P,
    state_seed: u64,
    ops: &[Op],
    shard_counts: &[usize],
) -> TestCaseResult {
    let clock = SimClock::new();
    for &shards in shard_counts {
        let init = InitialState::Random { seed: state_seed };
        let mut serial = OverlayService::new(g.clone(), proto, init.clone(), 0);
        let mut sharded =
            OverlayService::new(g.clone(), proto, init, 0).with_backend(Backend::Sharded {
                shards,
                channel_cap: None,
            });
        let boot = serial.stabilize(&clock, &mut ());
        let (boot_rounds, boot_perturbed) = (boot.recovery_rounds, boot.perturbed);
        let boot_sharded = sharded.stabilize(&clock, &mut ());
        prop_assert_eq!(
            boot_sharded.recovery_rounds,
            boot_rounds,
            "bootstrap rounds"
        );
        prop_assert_eq!(boot_sharded.perturbed, boot_perturbed);
        prop_assert!(boot_sharded.converged);
        prop_assert_eq!(serial.states(), sharded.states(), "bootstrap states");

        for op in ops {
            let Some(mutation) = concretize(op, serial.graph()) else {
                continue;
            };
            serial.enqueue(mutation.clone());
            sharded.enqueue(mutation.clone());
            let a = serial
                .drain(&clock, &mut ())
                .pop()
                .expect("one event drained")
                .expect("concretized mutations are valid");
            let b = sharded
                .drain(&clock, &mut ())
                .pop()
                .expect("one event drained")
                .expect("concretized mutations are valid");
            prop_assert_eq!(
                b.recovery_rounds,
                a.recovery_rounds,
                "recovery rounds (shards={}, {:?})",
                shards,
                mutation
            );
            prop_assert_eq!(b.perturbed, a.perturbed, "perturbed ({:?})", mutation);
            prop_assert_eq!(b.moves, a.moves, "moves ({:?})", mutation);
            prop_assert_eq!(b.round, a.round, "absolute round ({:?})", mutation);
            prop_assert_eq!(b.converged, a.converged, "converged ({:?})", mutation);
            prop_assert_eq!(
                serial.states(),
                sharded.states(),
                "states (shards={}, {:?})",
                shards,
                mutation
            );
            prop_assert_eq!(serial.clock_rounds(), sharded.clock_rounds());
        }
        prop_assert_eq!(sharded.backend_fallbacks(), 0, "no silent serial fallback");
        prop_assert!(proto.is_legitimate(sharded.graph(), sharded.states()));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn smm_service_matches_serial_oracle(
        pick in 0u8..4,
        n in 4usize..11,
        state_seed in 0u64..1_000,
        ops in proptest::collection::vec(op_strategy(10), 1..12),
    ) {
        let g = topology(pick, n);
        let n = g.n();
        let ops: Vec<Op> = ops.into_iter().filter(|op| in_range(op, n)).collect();
        let smm = Smm::paper(Ids::identity(n));
        check_against_oracle(g, &smm, state_seed, &ops)?;
    }

    #[test]
    fn smi_service_matches_serial_oracle(
        pick in 0u8..4,
        n in 4usize..11,
        state_seed in 0u64..1_000,
        ops in proptest::collection::vec(op_strategy(10), 1..12),
    ) {
        let g = topology(pick, n);
        let n = g.n();
        let ops: Vec<Op> = ops.into_iter().filter(|op| in_range(op, n)).collect();
        let smi = Smi::new(Ids::identity(n));
        check_against_oracle(g, &smi, state_seed, &ops)?;
    }
}

proptest! {
    // Each case runs 4 shard counts × (1 + events) waves with real worker
    // threads; fewer cases keep the suite fast without losing coverage.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn smm_sharded_drain_matches_serial_service(
        pick in 0u8..4,
        n in 4usize..11,
        state_seed in 0u64..1_000,
        ops in proptest::collection::vec(op_strategy(10), 1..10),
    ) {
        let g = topology(pick, n);
        let n = g.n();
        let ops: Vec<Op> = ops.into_iter().filter(|op| in_range(op, n)).collect();
        let smm = Smm::paper(Ids::identity(n));
        check_sharded_matches_serial(g, &smm, state_seed, &ops, &[1, 2, 4, 8])?;
    }

    #[test]
    fn smi_sharded_drain_matches_serial_service(
        pick in 0u8..4,
        n in 4usize..11,
        state_seed in 0u64..1_000,
        ops in proptest::collection::vec(op_strategy(10), 1..10),
    ) {
        let g = topology(pick, n);
        let n = g.n();
        let ops: Vec<Op> = ops.into_iter().filter(|op| in_range(op, n)).collect();
        let smi = Smi::new(Ids::identity(n));
        check_sharded_matches_serial(g, &smi, state_seed, &ops, &[1, 2, 4, 8])?;
    }
}

/// Budget-capped carry-over: with one round per event, the sharded drain
/// must hand its round-limit frontier to the next event exactly like the
/// serial loop carries its dirty set — same per-event rounds and moves,
/// same states at every step, same settled fixpoint.
///
/// `perturbed` and `converged` are deliberately *not* compared here: when
/// an event stabilizes in exactly its budget, the serial loop stops
/// without the extra evaluation that would prove quiescence (conservative
/// `converged = false`, settled frontier carried), while the runtime
/// performs it and reports the precise answer. States, rounds, and every
/// later event agree regardless.
#[test]
fn sharded_budget_cap_carries_frontier_like_serial() {
    let n = 12;
    let g = generators::star(n);
    let smm = Smm::paper(Ids::identity(n));
    let clock = SimClock::new();
    let mut serial = OverlayService::new(g.clone(), &smm, InitialState::Random { seed: 5 }, 1);
    let mut sharded = OverlayService::new(g, &smm, InitialState::Random { seed: 5 }, 1)
        .with_backend(Backend::Sharded {
            shards: 4,
            channel_cap: None,
        });
    serial.stabilize(&clock, &mut ());
    sharded.stabilize(&clock, &mut ());
    assert_eq!(serial.states(), sharded.states());

    // Hub churn on a star perturbs every node; one round per event is far
    // below the repair cost, so the frontier must carry across events.
    let script = [
        Mutation::NodeLeave { v: 0 },
        Mutation::NodeJoin {
            v: 0,
            attach: (1..n).collect(),
        },
        Mutation::EdgeDown { a: 0, b: 3 },
    ];
    for mutation in script {
        serial.enqueue(mutation.clone());
        sharded.enqueue(mutation.clone());
        let a = serial.drain(&clock, &mut ()).pop().unwrap().unwrap();
        let b = sharded.drain(&clock, &mut ()).pop().unwrap().unwrap();
        assert!(a.recovery_rounds <= 1, "budget caps per-event rounds");
        assert_eq!(b.recovery_rounds, a.recovery_rounds, "{:?}", a.detail);
        assert_eq!(b.moves, a.moves, "{:?}", a.detail);
        assert_eq!(serial.states(), sharded.states(), "{:?}", a.detail);
        assert_eq!(serial.clock_rounds(), sharded.clock_rounds());
    }

    let a = serial.settle(&clock, &mut ());
    let b = sharded.settle(&clock, &mut ());
    assert_eq!(a, b, "settle drains the same carried frontier");
    assert_eq!(serial.states(), sharded.states());
    assert!(serial.is_converged() && sharded.is_converged());
    assert!(smm.is_legitimate(sharded.graph(), sharded.states()));
    assert_eq!(sharded.backend_fallbacks(), 0);
}

/// Ops are drawn over node indices 0..10 but the instance may be smaller
/// (e.g. the complete graph is capped); keep only in-range scripts.
fn in_range(op: &Op, n: usize) -> bool {
    match op {
        Op::Toggle(a, b) => *a < n && *b < n,
        Op::Leave(v) => *v < n,
        Op::Rejoin(v, attach) => *v < n && attach.iter().all(|w| *w < n),
        Op::Query => true,
    }
}
