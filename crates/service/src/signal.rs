//! SIGINT → shutdown latch, with no dependency on a signals crate.
//!
//! The whole workspace forbids unsafe code except this one seam: the POSIX
//! `signal(2)` registration is an FFI call, and the handler itself may only
//! touch async-signal-safe state — here a single relaxed store into a
//! process-wide [`AtomicBool`] that [`crate::env::ShutdownFlag::is_set`]
//! polls from the serve loop. Nothing else (no allocation, no locks, no
//! I/O) happens in signal context.

use std::sync::atomic::{AtomicBool, Ordering};

static SIGINT_RECEIVED: AtomicBool = AtomicBool::new(false);

/// Whether SIGINT has been received since [`install_sigint`] was called.
/// Always `false` if the handler was never installed.
pub fn sigint_received() -> bool {
    SIGINT_RECEIVED.load(Ordering::Relaxed)
}

/// Reset the latch (test support; a daemon installs once and exits).
pub fn reset_sigint() {
    SIGINT_RECEIVED.store(false, Ordering::Relaxed);
}

#[cfg(unix)]
#[allow(unsafe_code)]
mod imp {
    use std::os::raw::c_int;
    use std::sync::atomic::Ordering;

    const SIGINT: c_int = 2;

    unsafe extern "C" {
        fn signal(signum: c_int, handler: usize) -> usize;
    }

    extern "C" fn on_sigint(_signum: c_int) {
        super::SIGINT_RECEIVED.store(true, Ordering::Relaxed);
    }

    pub(super) fn install() {
        // SAFETY: registering an async-signal-safe handler (a single atomic
        // store) for SIGINT; `signal` is specified for exactly this use.
        unsafe {
            signal(SIGINT, on_sigint as *const () as usize);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub(super) fn install() {}
}

/// Install the SIGINT handler (idempotent; no-op on non-Unix targets).
/// After this, Ctrl-C sets the process-wide latch instead of killing the
/// process, letting the serve loop drain, snapshot, and exit cleanly.
pub fn install_sigint() {
    imp::install();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latch_starts_clear_and_resets() {
        // Cannot raise a real SIGINT safely in-process here; assert the
        // latch plumbing (install is exercised end-to-end by the daemon).
        reset_sigint();
        assert!(!sigint_received());
        install_sigint();
        assert!(!sigint_received());
    }
}
