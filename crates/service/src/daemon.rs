//! The serve loop: one poll-dispatch-reply cycle, generic over the
//! environment.
//!
//! This is the code the whole subsystem exists to keep *singular*: the
//! same [`serve`] body runs under ([`SimClock`](crate::env::SimClock) +
//! [`SimTransport`](crate::transport::SimTransport)) in proptests and CI,
//! and under ([`RealClock`](crate::env::RealClock) +
//! [`UdsTransport`](crate::transport::UdsTransport)) behind
//! `selfstab serve`. Only the environment values change. The same seam
//! exists below the loop: each event's re-convergence dispatches through
//! the service's [`Backend`](crate::service::Backend) (serial step loop,
//! or the sharded runtime behind `serve --shards`), and the loop body is
//! identical either way.

use std::sync::Arc;

use selfstab_engine::obs::Observer;
use selfstab_json::{Json, ToJson};

use crate::env::{Clock, ShutdownFlag};
use crate::overlay::OverlayProtocol;
use crate::proto::{Mutation, QueryKind, Request};
use crate::service::{EventRecord, OverlayService};
use crate::snapshot::SnapshotScheduler;
use crate::telemetry::Telemetry;
use crate::transport::{Polled, Transport};

/// Why the serve loop exited.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ServeOutcome {
    /// A client sent the `shutdown` op.
    ClientShutdown,
    /// The shutdown flag (SIGINT or a programmatic request) was raised.
    SignalShutdown,
    /// The transport reported [`Polled::Closed`] (script exhausted, or the
    /// listener died).
    TransportClosed,
}

impl ServeOutcome {
    /// Status-line name.
    pub fn name(self) -> &'static str {
        match self {
            ServeOutcome::ClientShutdown => "client-shutdown",
            ServeOutcome::SignalShutdown => "signal-shutdown",
            ServeOutcome::TransportClosed => "transport-closed",
        }
    }
}

/// What one serve session did.
#[derive(Clone, Debug)]
pub struct ServeSummary {
    /// Request lines dispatched (including malformed ones).
    pub requests: u64,
    /// Mutations successfully applied.
    pub mutations: u64,
    /// Queries answered.
    pub queries: u64,
    /// Error responses sent (parse failures and invalid mutations).
    pub errors: u64,
    /// Pending mutations force-drained at shutdown.
    pub drained: u64,
    /// Why the loop exited.
    pub outcome: ServeOutcome,
}

fn mutate_response(record: &EventRecord, tag: Option<&str>) -> Json {
    crate::proto::resp_ok(
        vec![
            ("seq".to_string(), record.seq.to_json()),
            ("round".to_string(), record.round.to_json()),
            ("perturbed".to_string(), record.perturbed.to_json()),
            (
                "recovery_rounds".to_string(),
                record.recovery_rounds.to_json(),
            ),
            ("moves".to_string(), record.moves.to_json()),
            ("converged".to_string(), record.converged.to_json()),
        ],
        tag,
    )
}

/// Optional live instrumentation threaded through [`serve_with`]: a
/// telemetry registry (shared with the scrape listener) and a background
/// snapshot scheduler. The default — both absent — is the plain [`serve`]
/// loop, which touches neither the clock nor any registry outside the
/// event drains themselves.
#[derive(Default)]
pub struct ServeHooks<'h> {
    /// Registry to heartbeat and record requests into.
    pub telemetry: Option<Arc<Telemetry>>,
    /// Scheduler to tick every loop iteration.
    pub snapshots: Option<&'h mut SnapshotScheduler>,
}

impl ServeHooks<'_> {
    fn active(&self) -> bool {
        self.telemetry.is_some() || self.snapshots.is_some()
    }

    /// Refresh gauges and tick the snapshot scheduler. Runs once per loop
    /// iteration, and only when some hook is configured.
    fn tick<P: OverlayProtocol, T: Transport>(
        &mut self,
        svc: &mut OverlayService<'_, P>,
        transport: &T,
        clock: &dyn Clock,
    ) {
        if !self.active() {
            return;
        }
        let accept_failures = transport.accept_failures();
        svc.note_accept_failures(accept_failures);
        if let Some(t) = &self.telemetry {
            t.heartbeat(clock.now_micros());
            t.observe_service(
                svc.pending_len(),
                svc.graph().n(),
                svc.graph().m(),
                svc.is_converged(),
                accept_failures,
            );
        }
        if let Some(scheduler) = self.snapshots.as_deref_mut() {
            if let Err(e) = scheduler.tick(svc, clock, self.telemetry.as_deref()) {
                eprintln!("service: background snapshot failed: {e}");
            }
        }
    }
}

/// Run the service against a transport until shutdown (no live hooks).
///
/// Per request line: parse → dispatch → exactly one response line.
/// Mutations are enqueued and drained immediately (so the response carries
/// the event's recovery metrics); queries drain any pending mutations
/// first (read-your-writes). On any exit path the queue is drained and
/// leftover repair work is settled, so the post-serve service state is
/// legitimate and safe to snapshot.
pub fn serve<P, T, O>(
    svc: &mut OverlayService<'_, P>,
    transport: &mut T,
    clock: &dyn Clock,
    shutdown: &ShutdownFlag,
    idle_sleep_micros: u64,
    obs: &mut O,
) -> ServeSummary
where
    P: OverlayProtocol,
    T: Transport,
    O: Observer<P::State>,
{
    serve_with(
        svc,
        transport,
        clock,
        shutdown,
        idle_sleep_micros,
        obs,
        ServeHooks::default(),
    )
}

/// [`serve`] with live hooks: telemetry gauges refresh and the snapshot
/// scheduler ticks once per loop iteration, every request is attributed
/// to its client in the registry, and the `telemetry` query answers from
/// the same registry a TCP scrape reads.
pub fn serve_with<P, T, O>(
    svc: &mut OverlayService<'_, P>,
    transport: &mut T,
    clock: &dyn Clock,
    shutdown: &ShutdownFlag,
    idle_sleep_micros: u64,
    obs: &mut O,
    mut hooks: ServeHooks<'_>,
) -> ServeSummary
where
    P: OverlayProtocol,
    T: Transport,
    O: Observer<P::State>,
{
    let mut summary = ServeSummary {
        requests: 0,
        mutations: 0,
        queries: 0,
        errors: 0,
        drained: 0,
        outcome: ServeOutcome::TransportClosed,
    };
    loop {
        if shutdown.is_set() {
            summary.outcome = ServeOutcome::SignalShutdown;
            break;
        }
        let polled = transport.poll();
        hooks.tick(svc, transport, clock);
        let (client, line) = match polled {
            Polled::Request { client, line } => (client, line),
            Polled::Idle => {
                clock.sleep_micros(idle_sleep_micros);
                continue;
            }
            Polled::Closed => {
                summary.outcome = ServeOutcome::TransportClosed;
                break;
            }
        };
        summary.requests += 1;
        if let Some(t) = &hooks.telemetry {
            t.record_request(client);
        }
        let request = match Request::parse(&line) {
            Ok(r) => r,
            Err(e) => {
                summary.errors += 1;
                transport.reply(client, &crate::proto::resp_err(&e, None).to_string());
                continue;
            }
        };
        match request {
            Request::Mutate { mutation, tag } => {
                if let Some(t) = &hooks.telemetry {
                    t.record_ingest(clock.now_micros());
                }
                let response =
                    apply_mutation(svc, mutation, clock, obs, &mut summary, tag.as_deref());
                transport.reply(client, &response.to_string());
            }
            Request::Query { query, tag } => {
                for r in svc.drain(clock, obs) {
                    count_drained(&r, &mut summary);
                }
                summary.queries += 1;
                if let Some(t) = &hooks.telemetry {
                    t.record_query();
                }
                let response = match answer(svc, &query) {
                    Ok(fields) => crate::proto::resp_ok(fields, tag.as_deref()),
                    Err(e) => {
                        summary.errors += 1;
                        crate::proto::resp_err(&e, tag.as_deref())
                    }
                };
                transport.reply(client, &response.to_string());
            }
            Request::Shutdown { tag } => {
                let response = crate::proto::resp_ok(
                    vec![("stopping".to_string(), true.to_json())],
                    tag.as_deref(),
                );
                transport.reply(client, &response.to_string());
                summary.outcome = ServeOutcome::ClientShutdown;
                break;
            }
        }
    }
    // Graceful exit: whatever is still queued gets applied, and any
    // budget-capped leftover repair work converges, before the caller
    // snapshots and tears the transport down.
    for r in svc.drain(clock, obs) {
        summary.drained += 1;
        count_drained(&r, &mut summary);
    }
    svc.settle(clock, obs);
    hooks.tick(svc, transport, clock);
    summary
}

fn apply_mutation<P: OverlayProtocol, O: Observer<P::State>>(
    svc: &mut OverlayService<'_, P>,
    mutation: Mutation,
    clock: &dyn Clock,
    obs: &mut O,
    summary: &mut ServeSummary,
    tag: Option<&str>,
) -> Json {
    svc.enqueue(mutation);
    let mut last = None;
    for r in svc.drain(clock, obs) {
        count_drained(&r, summary);
        last = Some(r);
    }
    match last {
        Some(Ok(record)) => mutate_response(&record, tag),
        Some(Err(e)) => crate::proto::resp_err(&e, tag),
        None => crate::proto::resp_err("mutation queue empty after drain", tag),
    }
}

fn count_drained(result: &Result<EventRecord, String>, summary: &mut ServeSummary) {
    match result {
        Ok(_) => summary.mutations += 1,
        Err(_) => summary.errors += 1,
    }
}

fn answer<P: OverlayProtocol>(
    svc: &OverlayService<'_, P>,
    query: &QueryKind,
) -> Result<Vec<(String, Json)>, String> {
    let body = match query {
        QueryKind::Membership(node) => svc.membership_json(*node)?,
        QueryKind::Census => svc.census_json(),
        QueryKind::Status => svc.status_json(),
        QueryKind::Latency => svc.latency_json(),
        QueryKind::Telemetry => svc.telemetry_json()?,
    };
    match body {
        Json::Object(fields) => Ok(fields),
        other => Ok(vec![("result".to_string(), other)]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::SimClock;
    use crate::transport::SimTransport;
    use selfstab_core::Smm;
    use selfstab_engine::protocol::InitialState;
    use selfstab_graph::{generators, Ids};

    fn run_script(lines: &[&str]) -> (Vec<String>, ServeSummary) {
        let g = generators::path(6);
        let smm = Smm::paper(Ids::identity(6));
        let clock = SimClock::new();
        let mut svc = OverlayService::new(g, &smm, InitialState::Default, 0);
        svc.stabilize(&clock, &mut ());
        let mut transport = SimTransport::scripted(lines.iter().copied());
        let shutdown = ShutdownFlag::new();
        let summary = serve(&mut svc, &mut transport, &clock, &shutdown, 100, &mut ());
        (transport.replies().to_vec(), summary)
    }

    #[test]
    fn scripted_session_mutates_queries_and_stops() {
        let (replies, summary) = run_script(&[
            r#"{"op":"query","what":"status","tag":"s0"}"#,
            r#"{"op":"mutate","kind":"edge-down","a":2,"b":3}"#,
            r#"{"op":"query","what":"census"}"#,
            r#"{"op":"query","what":"latency"}"#,
            r#"{"op":"shutdown","tag":"bye"}"#,
        ]);
        assert_eq!(replies.len(), 5);
        assert_eq!(summary.outcome, ServeOutcome::ClientShutdown);
        assert_eq!(summary.requests, 5);
        assert_eq!(summary.mutations, 1);
        assert_eq!(summary.queries, 3);
        assert_eq!(summary.errors, 0);

        let status = Json::parse(&replies[0]).unwrap();
        assert_eq!(status.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(status.get("tag").and_then(Json::as_str), Some("s0"));
        assert_eq!(status.get("legitimate").and_then(Json::as_bool), Some(true));

        let mutated = Json::parse(&replies[1]).unwrap();
        assert_eq!(mutated.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(mutated.get("converged").and_then(Json::as_bool), Some(true));
        assert!(mutated
            .get("recovery_rounds")
            .and_then(Json::as_u64)
            .is_some());

        let bye = Json::parse(&replies[4]).unwrap();
        assert_eq!(bye.get("tag").and_then(Json::as_str), Some("bye"));
    }

    #[test]
    fn malformed_lines_get_error_responses_and_do_not_kill_the_loop() {
        let (replies, summary) = run_script(&[
            "not json at all",
            r#"{"op":"mutate","kind":"edge-down","a":0,"b":5}"#, // not an edge
            r#"{"op":"query","what":"status"}"#,
        ]);
        assert_eq!(replies.len(), 3);
        assert_eq!(summary.errors, 2);
        assert_eq!(summary.outcome, ServeOutcome::TransportClosed);
        for r in &replies[..2] {
            let v = Json::parse(r).unwrap();
            assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false));
            assert!(v.get("error").and_then(Json::as_str).is_some());
        }
        let status = Json::parse(&replies[2]).unwrap();
        assert_eq!(status.get("ok").and_then(Json::as_bool), Some(true));
    }

    #[test]
    fn signal_shutdown_breaks_an_idle_loop() {
        // A transport that idles forever: the shutdown flag must get us out.
        struct IdleForever;
        impl Transport for IdleForever {
            fn poll(&mut self) -> Polled {
                Polled::Idle
            }
            fn reply(&mut self, _client: u64, _line: &str) {}
        }
        let g = generators::path(3);
        let smm = Smm::paper(Ids::identity(3));
        let clock = SimClock::new();
        let mut svc = OverlayService::new(g, &smm, InitialState::Default, 0);
        svc.stabilize(&clock, &mut ());
        let shutdown = ShutdownFlag::new();
        shutdown.request();
        let summary = serve(&mut svc, &mut IdleForever, &clock, &shutdown, 50, &mut ());
        assert_eq!(summary.outcome, ServeOutcome::SignalShutdown);
        assert_eq!(summary.requests, 0);
    }
}
