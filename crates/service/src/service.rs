//! The resident overlay engine: a live graph plus protocol state, kept
//! continuously legitimate while topology mutations stream in.
//!
//! The paper's self-stabilization guarantee is exactly what makes this
//! service cheap: after a mutation the global state is an *arbitrary*
//! (well, mostly-legitimate) configuration, and Theorem 1/2 promise
//! re-convergence from any such configuration. Because guards are pure
//! functions of closed neighborhoods, only the perturbed region — the
//! closed neighborhoods of the touched edges' endpoints — can become
//! privileged, so each event re-runs the active-set scheduler seeded with
//! just that region instead of restarting from scratch.
//!
//! [`OverlayService`] is deliberately environment-free: it takes a
//! [`Clock`] per call and fires [`Observer`] hooks at an absolute round
//! clock, so the same code runs under the deterministic sim harness
//! (proptests, CI) and under the Unix-socket daemon.

use std::collections::VecDeque;
use std::sync::Arc;

use selfstab_analysis::Histogram;
use selfstab_core::partition::Partition;
use selfstab_engine::active::{ActiveSet, Schedule};
use selfstab_engine::obs::{Observer, RoundStats};
use selfstab_engine::protocol::{InitialState, View};
use selfstab_graph::Graph;
use selfstab_graph::Node;
use selfstab_json::{Json, ToJson};
use selfstab_runtime::{converge_wave, RuntimeError};

use crate::env::Clock;
use crate::overlay::OverlayProtocol;
use crate::proto::Mutation;
use crate::telemetry::Telemetry;

/// Which engine runs each event's re-convergence drain.
///
/// Both backends execute the *same* synchronous rounds over the same
/// seeded worklist, so states and per-event recovery rounds are identical
/// — see the `consistency` proptests. The only observable asymmetry is
/// the `converged` flag when an event stabilizes in *exactly* its budget:
/// the serial loop stops at the budget without the extra evaluation that
/// would prove quiescence and conservatively reports `converged = false`
/// with the (settled) frontier carried forward, while the sharded runtime
/// performs that evaluation and reports the strictly more precise
/// `Stabilized`. States, rounds, and all later events agree either way.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    /// The in-place active-set step loop (default): one thread, zero
    /// per-event setup cost — right for small perturbed regions.
    Serial,
    /// Each drain runs through [`selfstab_runtime::RuntimeExecutor`]: the
    /// graph is partitioned once (lazily re-partitioned when accumulated
    /// edge churn erodes the cut quality), worker threads evaluate the
    /// perturbed region in parallel, and a budget-capped wave reports its
    /// dirty frontier so carry-over semantics match the serial loop.
    Sharded {
        /// Worker shard count (≥ 1).
        shards: usize,
        /// Per-channel frame bound override (`None` = runtime default).
        channel_cap: Option<usize>,
    },
}

impl Backend {
    /// Short name for status lines (`"serial"`, `"sharded"`).
    pub fn name(&self) -> &'static str {
        match self {
            Backend::Serial => "serial",
            Backend::Sharded { .. } => "sharded",
        }
    }
}

/// What one ingested event did to the structure: the perturbed-region size,
/// the re-stabilization latency in rounds, and the repair work in moves.
/// This is the per-mutation record the paper's Theorems 1/2 bound: the
/// recovery rounds never exceed the repo's working convergence budget of
/// `n + 2` rounds, however large the perturbation.
#[derive(Clone, Debug)]
pub struct EventRecord {
    /// 1-based ingest sequence number (0 = the bootstrap convergence).
    pub seq: u64,
    /// Wire `kind` of the mutation (`"bootstrap"` for seq 0).
    pub kind: &'static str,
    /// Human-readable event description.
    pub detail: String,
    /// Absolute service round at which the event was applied.
    pub round: usize,
    /// Dirty nodes seeded by the event (size of the perturbed region, plus
    /// any still-dirty carry-over from a budget-capped predecessor).
    pub perturbed: usize,
    /// Rounds until the structure re-stabilized (or the budget, if not).
    pub recovery_rounds: usize,
    /// Moves the repair cost.
    pub moves: u64,
    /// Whether the structure was legitimate again when the event finished.
    pub converged: bool,
}

impl EventRecord {
    /// JSON form for the profile/metrics spine.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("seq", self.seq.to_json()),
            ("kind", self.kind.to_json()),
            ("detail", self.detail.to_json()),
            ("round", self.round.to_json()),
            ("perturbed", self.perturbed.to_json()),
            ("recovery_rounds", self.recovery_rounds.to_json()),
            ("moves", self.moves.to_json()),
            ("converged", self.converged.to_json()),
        ])
    }
}

/// The resident engine. See the [module docs](self).
pub struct OverlayService<'a, P: OverlayProtocol> {
    graph: Graph,
    proto: &'a P,
    states: Vec<P::State>,
    cur: ActiveSet,
    next: ActiveSet,
    converged: bool,
    clock_rounds: usize,
    budget_per_event: usize,
    pending: VecDeque<Mutation>,
    seq: u64,
    events_applied: u64,
    records: Vec<EventRecord>,
    recovery_hist: Histogram,
    moves_per_rule: Vec<u64>,
    backend: Backend,
    /// Cached shard assignment for the sharded backend; `None` until the
    /// first sharded drain (or after invalidation).
    partition: Option<Partition>,
    /// Links changed since the partition was computed — the staleness
    /// signal driving lazy re-partitioning.
    churned_links: usize,
    repartitions: u64,
    backend_fallbacks: u64,
    /// Live telemetry registry; `None` keeps the drain path clock-free
    /// (the registry is the only reason `apply_one` would read the clock).
    telemetry: Option<Arc<Telemetry>>,
    /// Transport accept failures, noted by the daemon loop so the
    /// `status` query surfaces silent client drops.
    accept_failures: u64,
}

impl<'a, P: OverlayProtocol> OverlayService<'a, P> {
    /// A service over `graph` running `proto`, seeded from `init`. The
    /// whole node set starts dirty — call [`OverlayService::stabilize`]
    /// before serving. `budget_per_event = 0` means the Theorem 1/2
    /// convergence budget of `n + 2` rounds per event.
    pub fn new(graph: Graph, proto: &'a P, init: InitialState<P::State>, budget: usize) -> Self {
        let n = graph.n();
        let states = init.materialize(&graph, proto);
        let mut cur = ActiveSet::full(n);
        cur.seal();
        OverlayService {
            graph,
            proto,
            states,
            cur,
            next: ActiveSet::empty(n),
            converged: false,
            clock_rounds: 0,
            budget_per_event: budget,
            pending: VecDeque::new(),
            seq: 0,
            events_applied: 0,
            records: Vec::new(),
            recovery_hist: Histogram::new(),
            moves_per_rule: vec![0; proto.rule_names().len()],
            backend: Backend::Serial,
            partition: None,
            churned_links: 0,
            repartitions: 0,
            backend_fallbacks: 0,
            telemetry: None,
            accept_failures: 0,
        }
    }

    /// Choose the convergence backend (default [`Backend::Serial`]).
    ///
    /// # Panics
    /// Panics if a sharded backend requests zero shards.
    pub fn with_backend(mut self, backend: Backend) -> Self {
        if let Backend::Sharded { shards, .. } = backend {
            assert!(shards > 0, "sharded backend needs at least one shard");
        }
        self.backend = backend;
        self
    }

    /// Attach a live telemetry registry. Only with a registry attached
    /// does the drain path read the clock (to time backend latency); the
    /// unobserved path stays clock-free.
    pub fn with_telemetry(mut self, telemetry: Arc<Telemetry>) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    /// Resume the round clock from a snapshot (`serve --resume`): the
    /// absolute round counter continues where the snapshotted service
    /// stopped instead of restarting at zero.
    pub fn with_clock_rounds(mut self, clock_rounds: usize) -> Self {
        self.clock_rounds = clock_rounds;
        self
    }

    /// The attached telemetry registry, if any.
    pub fn telemetry(&self) -> Option<&Arc<Telemetry>> {
        self.telemetry.as_ref()
    }

    /// The `telemetry` query body; errors when no registry is attached.
    pub fn telemetry_json(&self) -> Result<Json, String> {
        self.telemetry
            .as_ref()
            .map(|t| t.to_json())
            .ok_or_else(|| "telemetry is not enabled on this service".to_string())
    }

    /// Note the transport's accept-failure count (surfaced by `status`).
    pub fn note_accept_failures(&mut self, count: u64) {
        self.accept_failures = count;
    }

    /// The convergence backend in use.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// How many times the sharded backend (re)computed its partition.
    pub fn repartitions(&self) -> u64 {
        self.repartitions
    }

    /// Drains that fell back to the serial loop after a runtime error.
    pub fn backend_fallbacks(&self) -> u64 {
        self.backend_fallbacks
    }

    fn budget(&self) -> usize {
        if self.budget_per_event == 0 {
            self.graph.n() + 2
        } else {
            self.budget_per_event
        }
    }

    /// The live graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The live global state vector.
    pub fn states(&self) -> &[P::State] {
        &self.states
    }

    /// The protocol instance.
    pub fn proto(&self) -> &P {
        self.proto
    }

    /// Absolute service round clock (total synchronous rounds executed).
    pub fn clock_rounds(&self) -> usize {
        self.clock_rounds
    }

    /// Mutations ingested so far (bootstrap excluded).
    pub fn events_applied(&self) -> u64 {
        self.events_applied
    }

    /// Mutations enqueued but not yet applied.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Whether the structure is currently at a legitimate fixpoint.
    pub fn is_converged(&self) -> bool {
        self.converged
    }

    /// Cumulative moves per protocol rule across the service lifetime.
    pub fn moves_per_rule(&self) -> &[u64] {
        &self.moves_per_rule
    }

    /// Per-event records, in ingest order (index 0 is the bootstrap).
    pub fn records(&self) -> &[EventRecord] {
        &self.records
    }

    /// The re-stabilization latency histogram (rounds per event; the
    /// bootstrap convergence is excluded).
    pub fn recovery_hist(&self) -> &Histogram {
        &self.recovery_hist
    }

    /// Run the configured backend until fixpoint or `budget` rounds, from
    /// whatever is currently dirty. Returns `(rounds, moves)`.
    fn converge<O: Observer<P::State>>(
        &mut self,
        budget: usize,
        clock: &dyn Clock,
        obs: &mut O,
    ) -> (usize, u64) {
        if self.cur.is_empty() {
            self.converged = true;
            return (0, 0);
        }
        if let Backend::Sharded {
            shards,
            channel_cap,
        } = self.backend
        {
            match self.converge_sharded(shards, channel_cap, budget, obs) {
                Ok(out) => return out,
                Err(e) => {
                    // A runtime failure is an availability fault, not a
                    // correctness one: nothing was mutated (the wave ran on
                    // a clone of the states), so the serial loop can redo
                    // the drain from the same seeded worklist.
                    self.backend_fallbacks += 1;
                    if let Some(t) = &self.telemetry {
                        t.record_backend_fallback();
                    }
                    eprintln!("service: sharded drain failed ({e}); falling back to serial");
                }
            }
        }
        self.converge_serial(budget, clock, obs)
    }

    /// One sharded convergence wave over the current dirty set, carrying
    /// the same budget/frontier semantics as the serial loop: on a
    /// round-limit cut the wave's dirty frontier becomes the carried
    /// worklist for the next event.
    fn converge_sharded<O: Observer<P::State>>(
        &mut self,
        shards: usize,
        channel_cap: Option<usize>,
        budget: usize,
        obs: &mut O,
    ) -> Result<(usize, u64), RuntimeError> {
        self.ensure_partition(shards);
        let partition = self.partition.as_ref().expect("partition ensured above");
        let wave = converge_wave(
            &self.graph,
            self.proto,
            partition,
            Schedule::Active,
            channel_cap,
            Some(self.cur.nodes()),
            None,
            self.states.clone(),
            budget,
            self.clock_rounds,
            obs,
        )?;
        let moves_total: u64 = wave.moves_per_rule.iter().sum();
        for (slot, &m) in self.moves_per_rule.iter_mut().zip(&wave.moves_per_rule) {
            *slot += m;
        }
        self.states = wave.states;
        self.clock_rounds += wave.rounds;
        self.cur.clear();
        for &v in &wave.frontier {
            self.cur.insert(v);
        }
        self.cur.seal();
        self.converged = self.cur.is_empty();
        Ok((wave.rounds, moves_total))
    }

    /// Compute the shard assignment if there is none, the shard count
    /// changed, or accumulated edge churn invalidated the cached cut. A
    /// node→shard map never becomes *unsound* under edge churn (the node
    /// set is fixed), so this threshold is purely about cut quality: past
    /// ~25% of the live links changed, the coarsening that minimized
    /// cross-shard traffic no longer reflects the topology.
    fn ensure_partition(&mut self, shards: usize) {
        let stale = match &self.partition {
            None => true,
            Some(p) => {
                p.k() != shards || self.churned_links.saturating_mul(4) > self.graph.m().max(32)
            }
        };
        if stale {
            self.partition = Some(Partition::coarsened(&self.graph, shards));
            self.churned_links = 0;
            self.repartitions += 1;
            if let Some(t) = &self.telemetry {
                t.record_repartition();
            }
        }
    }

    /// The in-place active-set step loop (the serial backend).
    fn converge_serial<O: Observer<P::State>>(
        &mut self,
        budget: usize,
        clock: &dyn Clock,
        obs: &mut O,
    ) -> (usize, u64) {
        let mut rounds = 0usize;
        let mut moves_total = 0u64;
        let mut moves: Vec<(Node, selfstab_engine::protocol::Move<P::State>)> = Vec::new();
        while rounds < budget && !self.cur.is_empty() {
            // Clock reads are observation, and observation must be free
            // when disabled: `started` only ever feeds `duration_micros`
            // in the observed branch below, so the unobserved path takes
            // no clock at all (pinned by the `telemetry` equivalence
            // tests — a counting clock reads zero here).
            let started = if O::ENABLED { clock.now_micros() } else { 0 };
            let evaluated = self.cur.len();
            moves.clear();
            for &v in self.cur.nodes() {
                let view = View::new(v, self.graph.neighbors(v), &self.states);
                if let Some(mv) = self.proto.step(view) {
                    moves.push((v, mv));
                }
            }
            if moves.is_empty() {
                self.cur.clear();
                break;
            }
            let round = self.clock_rounds + 1;
            if O::ENABLED {
                obs.on_round_start(round, &self.states);
            }
            let mut per_rule = vec![0u64; self.proto.rule_names().len()];
            self.next.clear();
            for (v, mv) in &moves {
                self.states[v.index()] = mv.next.clone();
                per_rule[mv.rule] += 1;
                self.next.insert_closed(&self.graph, *v);
                if O::ENABLED {
                    obs.on_move(*v, mv.rule, &mv.next);
                }
            }
            self.next.seal();
            self.cur.clear();
            std::mem::swap(&mut self.cur, &mut self.next);
            for (slot, c) in self.moves_per_rule.iter_mut().zip(&per_rule) {
                *slot += c;
            }
            moves_total += moves.len() as u64;
            self.clock_rounds = round;
            rounds += 1;
            if O::ENABLED {
                let stats = RoundStats {
                    round,
                    privileged: moves.len(),
                    evaluated,
                    moves_per_rule: per_rule,
                    duration_micros: clock.now_micros().saturating_sub(started),
                    beacon: None,
                    runtime: None,
                    profile: None,
                };
                obs.on_round_end(&stats, &self.states);
            }
        }
        self.converged = self.cur.is_empty();
        (rounds, moves_total)
    }

    /// Bootstrap convergence from the initial (or snapshot-restored) state:
    /// converge the full dirty set under the Theorem 1/2 budget and record it
    /// as event 0. A restored legitimate snapshot converges in 0 rounds.
    pub fn stabilize<O: Observer<P::State>>(
        &mut self,
        clock: &dyn Clock,
        obs: &mut O,
    ) -> &EventRecord {
        let perturbed = self.cur.len();
        let budget = self.graph.n() + 2;
        let (rounds, moves) = self.converge(budget, clock, obs);
        let record = EventRecord {
            seq: 0,
            kind: "bootstrap",
            detail: format!("bootstrap n={} m={}", self.graph.n(), self.graph.m()),
            round: self.clock_rounds,
            perturbed,
            recovery_rounds: rounds,
            moves,
            converged: self.converged,
        };
        self.records.push(record);
        self.records.last().expect("just pushed")
    }

    /// Queue a mutation for ingest. Validation happens at apply time, so
    /// the error (if any) surfaces from [`OverlayService::drain`].
    pub fn enqueue(&mut self, mutation: Mutation) {
        self.pending.push_back(mutation);
    }

    /// Apply one mutation to the graph, returning the endpoints of every
    /// link that actually changed.
    fn apply_topology(&mut self, mutation: &Mutation) -> Result<Vec<(Node, Node)>, String> {
        let n = self.graph.n();
        let check = |i: usize| -> Result<Node, String> {
            if i < n {
                Ok(Node(i as u32))
            } else {
                Err(format!("node {i} out of range (n = {n})"))
            }
        };
        match mutation {
            Mutation::EdgeUp { a, b } => {
                let (a, b) = (check(*a)?, check(*b)?);
                if a == b {
                    return Err("self-loops are not allowed".into());
                }
                if !self.graph.add_edge(a, b) {
                    return Err(format!("edge {}-{} is already up", a.index(), b.index()));
                }
                Ok(vec![(a, b)])
            }
            Mutation::EdgeDown { a, b } => {
                let (a, b) = (check(*a)?, check(*b)?);
                if !self.graph.remove_edge(a, b) {
                    return Err(format!("edge {}-{} is not up", a.index(), b.index()));
                }
                Ok(vec![(a, b)])
            }
            Mutation::NodeLeave { v } => {
                let v = check(*v)?;
                // Batch removal: O(degrees touched), not O(deg(v)^2) — a
                // hub leave at 10^5 nodes must not be quadratic.
                let dropped = self.graph.isolate(v);
                Ok(dropped.into_iter().map(|w| (v, w)).collect())
            }
            Mutation::NodeJoin { v, attach } => {
                let v = check(*v)?;
                // Validate the whole attach list before touching the graph,
                // so an invalid entry leaves the topology unchanged.
                let mut ws = Vec::with_capacity(attach.len());
                for &w in attach {
                    let w = check(w)?;
                    if w == v {
                        return Err("self-loops are not allowed".into());
                    }
                    ws.push(w);
                }
                // Batch insertion mirrors `isolate` (one merge of v's
                // adjacency list); duplicates and present edges are skipped.
                let added = self.graph.attach(v, &ws);
                Ok(added.into_iter().map(|w| (v, w)).collect())
            }
        }
    }

    /// Apply every queued mutation in order, re-converging after each one.
    /// Returns the records of the drained events; a mutation that fails
    /// validation produces an `Err` entry and perturbs nothing.
    pub fn drain<O: Observer<P::State>>(
        &mut self,
        clock: &dyn Clock,
        obs: &mut O,
    ) -> Vec<Result<EventRecord, String>> {
        let mut out = Vec::new();
        while let Some(mutation) = self.pending.pop_front() {
            out.push(self.apply_one(&mutation, clock, obs));
        }
        out
    }

    fn apply_one<O: Observer<P::State>>(
        &mut self,
        mutation: &Mutation,
        clock: &dyn Clock,
        obs: &mut O,
    ) -> Result<EventRecord, String> {
        let touched = match self.apply_topology(mutation) {
            Ok(touched) => touched,
            Err(e) => {
                if let Some(t) = &self.telemetry {
                    t.record_mutation_error();
                }
                return Err(e);
            }
        };
        self.churned_links += touched.len();
        // Seed the perturbed region: the closed neighborhoods (in the
        // *mutated* graph) of every endpoint of every changed link. Any
        // leftover dirty set from a budget-capped predecessor stays marked,
        // so repair work is never silently dropped.
        // Deduplicate endpoints before seeding: a hub that appears in every
        // touched pair must pay its O(deg) closed-neighborhood walk once,
        // not once per incident link (O(n²) on a star otherwise).
        let mut endpoints: Vec<Node> = touched.iter().flat_map(|&(x, y)| [x, y]).collect();
        endpoints.sort_unstable();
        endpoints.dedup();
        for &x in &endpoints {
            self.cur.insert_closed(&self.graph, x);
        }
        self.cur.seal();
        self.converged = self.cur.is_empty();
        let perturbed = self.cur.len();
        self.seq += 1;
        self.events_applied += 1;
        // The only clock reads on the drain path happen here, and only
        // when a telemetry registry is attached — unobserved drains stay
        // clock-free (see the `telemetry` equivalence tests).
        let drain_started = self.telemetry.as_ref().map(|_| clock.now_micros());
        let (rounds, moves) = self.converge(self.budget(), clock, obs);
        let record = EventRecord {
            seq: self.seq,
            kind: mutation.kind(),
            detail: mutation.describe(),
            round: self.clock_rounds,
            perturbed,
            recovery_rounds: rounds,
            moves,
            converged: self.converged,
        };
        self.recovery_hist.add(rounds);
        self.records.push(record.clone());
        if let (Some(telemetry), Some(started)) = (self.telemetry.clone(), drain_started) {
            let now = clock.now_micros();
            telemetry.record_event(
                &record,
                self.backend.name(),
                now.saturating_sub(started),
                now,
                self.pending.len(),
            );
        }
        Ok(record)
    }

    /// Finish any carried-over repair work without ingesting an event:
    /// converge the leftover dirty set under the Theorem 1/2 budget. Returns
    /// the rounds spent (0 when already converged). The daemon calls this
    /// on shutdown so the snapshot it writes is legitimate even when a
    /// tight per-event budget left work pending.
    pub fn settle<O: Observer<P::State>>(&mut self, clock: &dyn Clock, obs: &mut O) -> usize {
        let budget = self.graph.n() + 2;
        self.converge(budget, clock, obs).0
    }

    /// Status facts for the `status` query and shutdown summaries.
    pub fn status_json(&self) -> Json {
        let mut fields = vec![
            ("protocol".to_string(), self.proto.name().to_json()),
            ("backend".to_string(), self.backend.name().to_json()),
            ("n".to_string(), self.graph.n().to_json()),
            ("m".to_string(), self.graph.m().to_json()),
            ("clock_rounds".to_string(), self.clock_rounds.to_json()),
            ("events".to_string(), self.events_applied.to_json()),
            ("pending".to_string(), self.pending.len().to_json()),
            ("converged".to_string(), self.converged.to_json()),
            (
                "legitimate".to_string(),
                self.proto
                    .is_legitimate(&self.graph, &self.states)
                    .to_json(),
            ),
            (
                "accept_failures".to_string(),
                self.accept_failures.to_json(),
            ),
        ];
        if let Backend::Sharded { shards, .. } = self.backend {
            fields.push(("shards".to_string(), shards.to_json()));
            fields.push(("repartitions".to_string(), self.repartitions.to_json()));
        }
        Json::Object(fields)
    }

    /// The latency histogram as JSON: quantiles plus the dense counts.
    pub fn latency_json(&self) -> Json {
        let h = &self.recovery_hist;
        Json::obj([
            ("events", h.total().to_json()),
            ("p50", h.quantile(0.5).to_json()),
            ("p99", h.quantile(0.99).to_json()),
            ("max", h.max_value().to_json()),
            ("histogram", h.to_json()),
        ])
    }

    /// Membership answer for the `membership` query.
    pub fn membership_json(&self, node: Option<usize>) -> Result<Json, String> {
        match node {
            None => Ok(self.proto.membership_summary(&self.graph, &self.states)),
            Some(i) if i < self.graph.n() => {
                Ok(self
                    .proto
                    .membership(&self.graph, &self.states, Node(i as u32)))
            }
            Some(i) => Err(format!("node {i} out of range (n = {})", self.graph.n())),
        }
    }

    /// Census answer for the `census` query.
    pub fn census_json(&self) -> Json {
        self.proto.census(&self.graph, &self.states)
    }

    /// Tear down into `(graph, states, clock_rounds)` for snapshotting.
    pub fn into_parts(self) -> (Graph, Vec<P::State>, usize) {
        (self.graph, self.states, self.clock_rounds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::SimClock;
    use selfstab_core::Smm;
    use selfstab_engine::Protocol;
    use selfstab_graph::{generators, Ids};

    fn svc(n: usize) -> (Graph, Smm) {
        (generators::path(n), Smm::paper(Ids::identity(n)))
    }

    #[test]
    fn bootstrap_then_mutations_stay_legitimate() {
        let (g, smm) = svc(8);
        let clock = SimClock::new();
        let mut s = OverlayService::new(g, &smm, InitialState::Default, 0);
        let boot = s.stabilize(&clock, &mut ());
        assert!(boot.converged);
        assert!(boot.recovery_rounds <= 9, "Theorem 1: n + 1 rounds for SMM");

        s.enqueue(Mutation::EdgeDown { a: 3, b: 4 });
        s.enqueue(Mutation::EdgeUp { a: 0, b: 7 });
        let recs = s.drain(&clock, &mut ());
        assert_eq!(recs.len(), 2);
        for rec in recs {
            let rec = rec.unwrap();
            assert!(rec.converged);
            assert!(rec.recovery_rounds <= rec.perturbed + 1);
            assert!(s.proto().is_legitimate(s.graph(), s.states()));
        }
        assert_eq!(s.events_applied(), 2);
        assert_eq!(s.recovery_hist().total(), 2);
    }

    #[test]
    fn node_leave_and_rejoin_round_trip() {
        let (g, smm) = svc(6);
        let clock = SimClock::new();
        let mut s = OverlayService::new(g, &smm, InitialState::Default, 0);
        s.stabilize(&clock, &mut ());

        s.enqueue(Mutation::NodeLeave { v: 2 });
        let rec = s.drain(&clock, &mut ()).pop().unwrap().unwrap();
        assert!(rec.converged);
        assert_eq!(s.graph().degree(selfstab_graph::Node(2)), 0);
        assert!(s.proto().is_legitimate(s.graph(), s.states()));

        s.enqueue(Mutation::NodeJoin {
            v: 2,
            attach: vec![1, 3],
        });
        let rec = s.drain(&clock, &mut ()).pop().unwrap().unwrap();
        assert!(rec.converged);
        assert!(s
            .graph()
            .has_edge(selfstab_graph::Node(2), selfstab_graph::Node(3)));
        assert!(s.proto().is_legitimate(s.graph(), s.states()));
    }

    #[test]
    fn invalid_mutations_report_errors_and_perturb_nothing() {
        let (g, smm) = svc(4);
        let clock = SimClock::new();
        let mut s = OverlayService::new(g, &smm, InitialState::Default, 0);
        s.stabilize(&clock, &mut ());
        let before = s.clock_rounds();

        s.enqueue(Mutation::EdgeUp { a: 0, b: 1 }); // already up on a path
        s.enqueue(Mutation::EdgeDown { a: 0, b: 3 }); // never up
        s.enqueue(Mutation::EdgeUp { a: 0, b: 9 }); // out of range
        s.enqueue(Mutation::EdgeUp { a: 2, b: 2 }); // self-loop
        for rec in s.drain(&clock, &mut ()) {
            rec.unwrap_err();
        }
        assert_eq!(s.clock_rounds(), before, "failed events run no rounds");
        assert_eq!(s.events_applied(), 0);
        assert!(s.is_converged());
    }

    #[test]
    fn budget_cap_carries_dirty_work_forward() {
        let (g, smm) = svc(10);
        let clock = SimClock::new();
        // budget 1: a single round per event, far below what a fresh path
        // needs — the dirty set must carry across events until it drains.
        let mut s = OverlayService::new(g, &smm, InitialState::Default, 1);
        s.stabilize(&clock, &mut ()); // bootstrap always gets the full budget
        assert!(s.is_converged());

        s.enqueue(Mutation::EdgeDown { a: 4, b: 5 });
        let rec = s.drain(&clock, &mut ()).pop().unwrap().unwrap();
        assert!(rec.recovery_rounds <= 1, "budget caps per-event rounds");
        // One round may or may not finish the repair; settle() must always
        // drain the carried-over dirty set to a legitimate fixpoint.
        s.settle(&clock, &mut ());
        assert!(s.is_converged());
        assert!(s.proto().is_legitimate(s.graph(), s.states()));
    }

    #[test]
    fn status_and_latency_json_shapes() {
        let (g, smm) = svc(5);
        let clock = SimClock::new();
        let mut s = OverlayService::new(g, &smm, InitialState::Default, 0);
        s.stabilize(&clock, &mut ());
        s.enqueue(Mutation::EdgeDown { a: 1, b: 2 });
        s.drain(&clock, &mut ()).pop().unwrap().unwrap();

        let status = s.status_json();
        assert_eq!(status.get("protocol").and_then(Json::as_str), Some("smm"));
        assert_eq!(status.get("converged").and_then(Json::as_bool), Some(true));
        assert_eq!(status.get("legitimate").and_then(Json::as_bool), Some(true));
        assert_eq!(status.get("events").and_then(Json::as_u64), Some(1));

        let lat = s.latency_json();
        assert_eq!(lat.get("events").and_then(Json::as_u64), Some(1));
        assert!(lat.get("p50").and_then(Json::as_u64).is_some());
        assert!(lat.get("p99").and_then(Json::as_u64).is_some());

        let m = s.membership_json(Some(0)).unwrap();
        assert_eq!(m.get("node").and_then(Json::as_u64), Some(0));
        s.membership_json(Some(99)).unwrap_err();
    }
}
