//! The live telemetry registry: counters, gauges, and rolling-window
//! quantiles for a resident service, scrapeable while the daemon runs.
//!
//! Everything observable about a serving [`OverlayService`](crate::OverlayService) funnels into
//! one [`Telemetry`] value: per-event recovery rounds/moves/perturbed
//! sizes, queue depth and ingest/drain rates, per-client request counts,
//! backend drain latency, repartition/fallback counters, and — when chaos
//! is active — the Byzantine/asymmetric-link fault counters riding on
//! `RuntimeCounters`. The registry is shared by reference between the
//! serve loop (which records), the TCP scrape listener (which renders
//! [`Telemetry::render_prometheus`]) and the UDS `telemetry` query (which
//! renders [`Telemetry::to_json`]), so both export paths read the *same*
//! values.
//!
//! **Threading.** Counters and gauges are relaxed atomics; the rolling
//! windows and the per-client map live behind one `Mutex` that the serve
//! loop takes only while pushing a sample (a ring write) and a scraper
//! takes only while sorting its small window copy. The service `Clock` is
//! *never* captured here — the sim clock is `Cell`-based and not `Sync` —
//! instead the serve loop stamps [`Telemetry::heartbeat`] with its own
//! reading and every rate/age is computed against that stored instant.
//! That keeps the registry `Send + Sync` with zero clock dependencies.
//!
//! **Hot-path discipline.** Nothing here is consulted when telemetry is
//! not attached: `OverlayService` holds an `Option<Arc<Telemetry>>` and
//! takes clock timestamps only inside `if telemetry.is_some()` (the
//! equivalence test pins zero `now_micros` calls on the unobserved drain
//! path). With telemetry attached, recording one event costs two clock
//! reads, a handful of relaxed atomic adds, and one short mutex section.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use selfstab_engine::obs::{Observer, RateWindow, RollingWindow, RoundStats};
use selfstab_json::{Json, ToJson};

use crate::service::EventRecord;

/// Samples retained per rolling window (events, not time): large enough
/// that p99 over the window is meaningful, small enough that a scrape's
/// sort is trivial.
pub const WINDOW_SAMPLES: usize = 512;

/// Recency half-life (in samples) for the decayed quantiles: the newest
/// sample outweighs one `HALF_LIFE` positions back by 2×.
pub const DECAY_HALF_LIFE: f64 = 64.0;

/// Cap on the buffered `service-telemetry/v1` JSONL track (one row per
/// event); beyond it rows are dropped oldest-first and counted.
const TRACK_CAP: usize = 1 << 16;

/// Wire format tag for the per-event telemetry rows embedded in profile
/// artifacts (`event: "service_telemetry"` lines).
pub const TRACK_FORMAT: &str = "service-telemetry/v1";

#[derive(Default)]
struct Windows {
    recovery_rounds: Option<RollingWindow>,
    perturbed: Option<RollingWindow>,
    moves: Option<RollingWindow>,
    drain_micros: Option<RollingWindow>,
    ingest_rate: Option<RateWindow>,
    drain_rate: Option<RateWindow>,
    clients: BTreeMap<u64, u64>,
    track: Vec<Json>,
    track_dropped: u64,
    backend: &'static str,
}

impl Windows {
    fn rolling(slot: &mut Option<RollingWindow>) -> &mut RollingWindow {
        slot.get_or_insert_with(|| RollingWindow::new(WINDOW_SAMPLES))
    }

    fn rate(slot: &mut Option<RateWindow>) -> &mut RateWindow {
        slot.get_or_insert_with(|| RateWindow::new(WINDOW_SAMPLES))
    }
}

/// The registry. See the [module docs](self).
#[derive(Default)]
pub struct Telemetry {
    // Counters (monotone).
    events_total: AtomicU64,
    mutation_errors_total: AtomicU64,
    rounds_total: AtomicU64,
    moves_total: AtomicU64,
    requests_total: AtomicU64,
    queries_total: AtomicU64,
    ingest_total: AtomicU64,
    repartitions_total: AtomicU64,
    backend_fallbacks_total: AtomicU64,
    byz_rewrites_total: AtomicU64,
    asym_links_down_total: AtomicU64,
    chaos_faults_total: AtomicU64,
    snapshots_total: AtomicU64,
    scrapes_total: AtomicU64,
    // Gauges (last observed value).
    now_micros: AtomicU64,
    queue_depth: AtomicU64,
    accept_failures: AtomicU64,
    converged: AtomicU64,
    graph_n: AtomicU64,
    graph_m: AtomicU64,
    containment_radius: AtomicU64,
    snapshot_last_at_micros: AtomicU64,
    snapshot_duration_micros: AtomicU64,
    snapshot_bytes: AtomicU64,
    windows: Mutex<Windows>,
}

impl Telemetry {
    /// An empty registry.
    pub fn new() -> Self {
        Telemetry::default()
    }

    fn add(counter: &AtomicU64, by: u64) {
        counter.fetch_add(by, Ordering::Relaxed);
    }

    fn get(counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }

    fn set(gauge: &AtomicU64, value: u64) {
        gauge.store(value, Ordering::Relaxed);
    }

    /// Stamp the registry with the serve loop's current clock reading.
    /// Rates and ages in both export formats are computed against this
    /// instant, which is what lets the scrape thread render without a
    /// clock of its own (and the sim environment render deterministically).
    pub fn heartbeat(&self, now_micros: u64) {
        Self::set(&self.now_micros, now_micros);
    }

    /// A request line arrived from `client` (fairness accounting).
    pub fn record_request(&self, client: u64) {
        Self::add(&self.requests_total, 1);
        let mut w = self.windows.lock().expect("telemetry windows");
        *w.clients.entry(client).or_insert(0) += 1;
    }

    /// A query was answered.
    pub fn record_query(&self) {
        Self::add(&self.queries_total, 1);
    }

    /// A mutation was enqueued at `now_micros` (the ingest rate mark).
    pub fn record_ingest(&self, now_micros: u64) {
        Self::add(&self.ingest_total, 1);
        let mut w = self.windows.lock().expect("telemetry windows");
        Windows::rate(&mut w.ingest_rate).mark(now_micros);
    }

    /// A mutation failed validation (nothing was perturbed).
    pub fn record_mutation_error(&self) {
        Self::add(&self.mutation_errors_total, 1);
    }

    /// One event finished its re-convergence drain. `drain_micros` is the
    /// backend latency of this event's converge call; `now_micros` the
    /// clock after it; `queue_depth` the post-drain pending count.
    pub fn record_event(
        &self,
        record: &EventRecord,
        backend: &'static str,
        drain_micros: u64,
        now_micros: u64,
        queue_depth: usize,
    ) {
        Self::add(&self.events_total, 1);
        Self::add(&self.rounds_total, record.recovery_rounds as u64);
        Self::add(&self.moves_total, record.moves);
        Self::set(&self.converged, record.converged as u64);
        Self::set(&self.queue_depth, queue_depth as u64);
        let mut w = self.windows.lock().expect("telemetry windows");
        w.backend = backend;
        Windows::rolling(&mut w.recovery_rounds).push(record.recovery_rounds as u64);
        Windows::rolling(&mut w.perturbed).push(record.perturbed as u64);
        Windows::rolling(&mut w.moves).push(record.moves);
        Windows::rolling(&mut w.drain_micros).push(drain_micros);
        Windows::rate(&mut w.drain_rate).mark(now_micros);
        if w.track.len() >= TRACK_CAP {
            w.track.remove(0);
            w.track_dropped += 1;
        }
        w.track.push(Json::obj([
            ("seq", record.seq.to_json()),
            ("t_micros", now_micros.to_json()),
            ("kind", record.kind.to_json()),
            ("recovery_rounds", record.recovery_rounds.to_json()),
            ("moves", record.moves.to_json()),
            ("perturbed", record.perturbed.to_json()),
            ("drain_micros", drain_micros.to_json()),
            ("queue_depth", queue_depth.to_json()),
            ("backend", backend.to_json()),
            ("converged", record.converged.to_json()),
        ]));
    }

    /// The sharded backend (re)computed its partition.
    pub fn record_repartition(&self) {
        Self::add(&self.repartitions_total, 1);
    }

    /// A sharded drain fell back to the serial loop.
    pub fn record_backend_fallback(&self) {
        Self::add(&self.backend_fallbacks_total, 1);
    }

    /// A background snapshot was written at `at_micros`, taking
    /// `duration_micros` and `bytes` on disk.
    pub fn record_snapshot(&self, at_micros: u64, duration_micros: u64, bytes: u64) {
        Self::add(&self.snapshots_total, 1);
        Self::set(&self.snapshot_last_at_micros, at_micros);
        Self::set(&self.snapshot_duration_micros, duration_micros);
        Self::set(&self.snapshot_bytes, bytes);
    }

    /// One scrape was served (recorded by the TCP listener).
    pub fn record_scrape(&self) {
        Self::add(&self.scrapes_total, 1);
    }

    /// Refresh the cheap service gauges (queue depth, graph size,
    /// convergence, transport accept failures). The serve loop calls this
    /// once per iteration.
    pub fn observe_service(
        &self,
        queue_depth: usize,
        n: usize,
        m: usize,
        converged: bool,
        accept_failures: u64,
    ) {
        Self::set(&self.queue_depth, queue_depth as u64);
        Self::set(&self.graph_n, n as u64);
        Self::set(&self.graph_m, m as u64);
        Self::set(&self.converged, converged as u64);
        Self::set(&self.accept_failures, accept_failures);
    }

    /// Latest containment radius measured by a chaos-aware driver (the
    /// serve loop itself injects no faults; harness code that does can
    /// surface the PR 9 signal here).
    pub fn set_containment_radius(&self, radius: u64) {
        Self::set(&self.containment_radius, radius);
    }

    /// Mutations applied since boot (monotone; the scrape-under-churn test
    /// asserts this never regresses between scrapes).
    pub fn events_total(&self) -> u64 {
        Self::get(&self.events_total)
    }

    /// Scrapes served since boot.
    pub fn scrapes_total(&self) -> u64 {
        Self::get(&self.scrapes_total)
    }

    /// Snapshots written since boot.
    pub fn snapshots_total(&self) -> u64 {
        Self::get(&self.snapshots_total)
    }

    /// Drain and return the buffered `service-telemetry/v1` rows (oldest
    /// first) plus the count of rows dropped to the buffer cap. The CLI
    /// calls this once at shutdown to embed the track in the profile
    /// artifact.
    pub fn take_track(&self) -> (Vec<Json>, u64) {
        let mut w = self.windows.lock().expect("telemetry windows");
        (std::mem::take(&mut w.track), w.track_dropped)
    }

    /// Per-client request counts (fairness), client id → requests.
    pub fn client_requests(&self) -> Vec<(u64, u64)> {
        let w = self.windows.lock().expect("telemetry windows");
        w.clients.iter().map(|(&c, &n)| (c, n)).collect()
    }

    fn summary_rows(w: &mut Windows) -> Vec<SummaryRow> {
        let now = |slot: &mut Option<RollingWindow>| -> WindowStats {
            let win = Windows::rolling(slot);
            WindowStats {
                count: win.pushed(),
                p50: win.quantile(0.5).unwrap_or(0),
                p99: win.quantile(0.99).unwrap_or(0),
                p99_decayed: win.decayed_quantile(0.99, DECAY_HALF_LIFE).unwrap_or(0),
                max: win.max().unwrap_or(0),
            }
        };
        vec![
            SummaryRow {
                name: "recovery_rounds",
                help: "Per-event re-stabilization latency in rounds (rolling window)",
                stats: now(&mut w.recovery_rounds),
            },
            SummaryRow {
                name: "perturbed",
                help: "Per-event perturbed-region size in nodes (rolling window)",
                stats: now(&mut w.perturbed),
            },
            SummaryRow {
                name: "moves",
                help: "Per-event repair moves (rolling window)",
                stats: now(&mut w.moves),
            },
            SummaryRow {
                name: "drain_micros",
                help: "Per-event backend drain latency in microseconds (rolling window)",
                stats: now(&mut w.drain_micros),
            },
        ]
    }

    /// Render the whole registry in Prometheus text exposition format
    /// (version 0.0.4). Quantile-less windows render 0, never NaN.
    pub fn render_prometheus(&self) -> String {
        let now = Self::get(&self.now_micros);
        let mut out = String::with_capacity(4096);
        let counters: [(&str, &str, u64); 14] = [
            (
                "selfstab_events_total",
                "Mutations applied since boot",
                Self::get(&self.events_total),
            ),
            (
                "selfstab_mutation_errors_total",
                "Mutations rejected by validation since boot",
                Self::get(&self.mutation_errors_total),
            ),
            (
                "selfstab_rounds_total",
                "Synchronous recovery rounds executed for events since boot",
                Self::get(&self.rounds_total),
            ),
            (
                "selfstab_moves_total",
                "Protocol moves applied for events since boot",
                Self::get(&self.moves_total),
            ),
            (
                "selfstab_requests_total",
                "Request lines dispatched since boot",
                Self::get(&self.requests_total),
            ),
            (
                "selfstab_queries_total",
                "Queries answered since boot",
                Self::get(&self.queries_total),
            ),
            (
                "selfstab_ingest_total",
                "Mutations enqueued since boot",
                Self::get(&self.ingest_total),
            ),
            (
                "selfstab_repartitions_total",
                "Sharded-backend partition (re)computations since boot",
                Self::get(&self.repartitions_total),
            ),
            (
                "selfstab_backend_fallbacks_total",
                "Sharded drains that fell back to the serial loop since boot",
                Self::get(&self.backend_fallbacks_total),
            ),
            (
                "selfstab_byz_rewrites_total",
                "Byzantine state rewrites observed since boot (chaos only)",
                Self::get(&self.byz_rewrites_total),
            ),
            (
                "selfstab_asym_links_down_total",
                "Downed asymmetric link directions observed since boot (chaos only)",
                Self::get(&self.asym_links_down_total),
            ),
            (
                "selfstab_chaos_faults_total",
                "Chaos-injected fault events observed since boot",
                Self::get(&self.chaos_faults_total),
            ),
            (
                "selfstab_snapshots_total",
                "Background snapshots written since boot",
                Self::get(&self.snapshots_total),
            ),
            (
                "selfstab_scrapes_total",
                "Telemetry scrape connections accepted since boot",
                Self::get(&self.scrapes_total),
            ),
        ];
        for (name, help, value) in counters {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}\n"
            ));
        }
        let snapshot_at = Self::get(&self.snapshot_last_at_micros);
        let snapshot_age = if Self::get(&self.snapshots_total) == 0 {
            0
        } else {
            now.saturating_sub(snapshot_at)
        };
        let gauges: [(&str, &str, u64); 8] = [
            (
                "selfstab_queue_depth",
                "Mutations enqueued but not yet applied",
                Self::get(&self.queue_depth),
            ),
            (
                "selfstab_accept_failures",
                "Clients dropped because the transport could not clone their stream",
                Self::get(&self.accept_failures),
            ),
            (
                "selfstab_converged",
                "Whether the structure is at a legitimate fixpoint (0/1)",
                Self::get(&self.converged),
            ),
            (
                "selfstab_graph_nodes",
                "Nodes in the live graph",
                Self::get(&self.graph_n),
            ),
            (
                "selfstab_graph_edges",
                "Edges in the live graph",
                Self::get(&self.graph_m),
            ),
            (
                "selfstab_containment_radius",
                "Latest measured Byzantine containment radius in hops (chaos only)",
                Self::get(&self.containment_radius),
            ),
            (
                "selfstab_snapshot_age_micros",
                "Microseconds since the last background snapshot (0 before the first)",
                snapshot_age,
            ),
            (
                "selfstab_snapshot_duration_micros",
                "Time the last background snapshot took to render and write",
                Self::get(&self.snapshot_duration_micros),
            ),
        ];
        for (name, help, value) in gauges {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} gauge\n{name} {value}\n"
            ));
        }
        out.push_str(&format!(
            "# HELP selfstab_snapshot_bytes Size of the last background snapshot document\n# TYPE selfstab_snapshot_bytes gauge\nselfstab_snapshot_bytes {}\n",
            Self::get(&self.snapshot_bytes)
        ));
        let mut w = self.windows.lock().expect("telemetry windows");
        let backend = if w.backend.is_empty() {
            "serial"
        } else {
            w.backend
        };
        for row in Self::summary_rows(&mut w) {
            let name = format!("selfstab_{}", row.name);
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} summary\n",
                help = row.help
            ));
            out.push_str(&format!(
                "{name}{{backend=\"{backend}\",quantile=\"0.5\"}} {}\n",
                row.stats.p50
            ));
            out.push_str(&format!(
                "{name}{{backend=\"{backend}\",quantile=\"0.99\"}} {}\n",
                row.stats.p99
            ));
            out.push_str(&format!(
                "{name}{{backend=\"{backend}\",quantile=\"0.99\",decay=\"recent\"}} {}\n",
                row.stats.p99_decayed
            ));
            out.push_str(&format!(
                "{name}{{backend=\"{backend}\",quantile=\"1\"}} {}\n",
                row.stats.max
            ));
            out.push_str(&format!("{name}_count {}\n", row.stats.count));
        }
        let ingest = Windows::rate(&mut w.ingest_rate).per_sec(now);
        let drain = Windows::rate(&mut w.drain_rate).per_sec(now);
        out.push_str(&format!(
            "# HELP selfstab_ingest_rate Mutations enqueued per second over the rolling window\n# TYPE selfstab_ingest_rate gauge\nselfstab_ingest_rate {ingest:.6}\n"
        ));
        out.push_str(&format!(
            "# HELP selfstab_drain_rate Events drained per second over the rolling window\n# TYPE selfstab_drain_rate gauge\nselfstab_drain_rate {drain:.6}\n"
        ));
        out.push_str(
            "# HELP selfstab_client_requests_total Request lines per client connection\n# TYPE selfstab_client_requests_total counter\n",
        );
        for (client, count) in &w.clients {
            out.push_str(&format!(
                "selfstab_client_requests_total{{client=\"{client}\"}} {count}\n"
            ));
        }
        out
    }

    /// The same values as [`Telemetry::render_prometheus`], as one JSON
    /// object (the `telemetry` UDS query body).
    pub fn to_json(&self) -> Json {
        let now = Self::get(&self.now_micros);
        let snapshot_age = if Self::get(&self.snapshots_total) == 0 {
            0
        } else {
            now.saturating_sub(Self::get(&self.snapshot_last_at_micros))
        };
        let mut w = self.windows.lock().expect("telemetry windows");
        let windows: Vec<(String, Json)> = Self::summary_rows(&mut w)
            .into_iter()
            .map(|row| {
                (
                    row.name.to_string(),
                    Json::obj([
                        ("count", row.stats.count.to_json()),
                        ("p50", row.stats.p50.to_json()),
                        ("p99", row.stats.p99.to_json()),
                        ("p99_decayed", row.stats.p99_decayed.to_json()),
                        ("max", row.stats.max.to_json()),
                    ]),
                )
            })
            .collect();
        let clients: Vec<Json> = w
            .clients
            .iter()
            .map(|(&c, &n)| Json::obj([("client", c.to_json()), ("requests", n.to_json())]))
            .collect();
        let ingest = Windows::rate(&mut w.ingest_rate).per_sec(now);
        let drain = Windows::rate(&mut w.drain_rate).per_sec(now);
        Json::obj([
            ("format", TRACK_FORMAT.to_json()),
            ("events", Self::get(&self.events_total).to_json()),
            (
                "mutation_errors",
                Self::get(&self.mutation_errors_total).to_json(),
            ),
            ("rounds", Self::get(&self.rounds_total).to_json()),
            ("moves", Self::get(&self.moves_total).to_json()),
            ("requests", Self::get(&self.requests_total).to_json()),
            ("queries", Self::get(&self.queries_total).to_json()),
            ("ingest", Self::get(&self.ingest_total).to_json()),
            (
                "repartitions",
                Self::get(&self.repartitions_total).to_json(),
            ),
            (
                "backend_fallbacks",
                Self::get(&self.backend_fallbacks_total).to_json(),
            ),
            (
                "byz_rewrites",
                Self::get(&self.byz_rewrites_total).to_json(),
            ),
            (
                "asym_links_down",
                Self::get(&self.asym_links_down_total).to_json(),
            ),
            (
                "chaos_faults",
                Self::get(&self.chaos_faults_total).to_json(),
            ),
            ("snapshots", Self::get(&self.snapshots_total).to_json()),
            ("scrapes", Self::get(&self.scrapes_total).to_json()),
            ("queue_depth", Self::get(&self.queue_depth).to_json()),
            (
                "accept_failures",
                Self::get(&self.accept_failures).to_json(),
            ),
            ("converged", (Self::get(&self.converged) == 1).to_json()),
            ("n", Self::get(&self.graph_n).to_json()),
            ("m", Self::get(&self.graph_m).to_json()),
            (
                "containment_radius",
                Self::get(&self.containment_radius).to_json(),
            ),
            ("snapshot_age_micros", snapshot_age.to_json()),
            (
                "snapshot_duration_micros",
                Self::get(&self.snapshot_duration_micros).to_json(),
            ),
            ("snapshot_bytes", Self::get(&self.snapshot_bytes).to_json()),
            ("ingest_rate", ingest.to_json()),
            ("drain_rate", drain.to_json()),
            ("windows", Json::Object(windows)),
            ("clients", Json::Array(clients)),
        ])
    }
}

struct WindowStats {
    count: u64,
    p50: u64,
    p99: u64,
    p99_decayed: u64,
    max: u64,
}

struct SummaryRow {
    name: &'static str,
    help: &'static str,
    stats: WindowStats,
}

/// An [`Observer`] adapter that aggregates the per-round chaos counters
/// ([`RuntimeCounters`](selfstab_engine::obs::RuntimeCounters):
/// `byz_rewrites`, `asym_links_down`, total faults) into a registry, so
/// drains routed through the sharded runtime surface adversary activity
/// live. Compose it with other observers as usual (`(jsonl, tele_obs)`).
pub struct TelemetryObserver<'a> {
    registry: &'a Telemetry,
}

impl<'a> TelemetryObserver<'a> {
    /// An observer recording into `registry`.
    pub fn new(registry: &'a Telemetry) -> Self {
        TelemetryObserver { registry }
    }
}

impl<S> Observer<S> for TelemetryObserver<'_> {
    fn on_round_end(&mut self, stats: &RoundStats, _states: &[S]) {
        if let Some(rt) = &stats.runtime {
            Telemetry::add(&self.registry.byz_rewrites_total, rt.byz_rewrites);
            Telemetry::add(&self.registry.asym_links_down_total, rt.asym_links_down);
            Telemetry::add(&self.registry.chaos_faults_total, rt.faults());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(seq: u64, rounds: usize, moves: u64, converged: bool) -> EventRecord {
        EventRecord {
            seq,
            kind: "edge-down",
            detail: format!("edge-down {seq}"),
            round: rounds,
            perturbed: 4,
            recovery_rounds: rounds,
            moves,
            converged,
        }
    }

    #[test]
    fn exposition_has_key_metrics_and_no_nan() {
        let t = Telemetry::new();
        t.heartbeat(1_000_000);
        t.record_ingest(10);
        t.record_request(1);
        t.record_event(&record(1, 2, 3, true), "serial", 150, 500, 0);
        let text = t.render_prometheus();
        for needle in [
            "# TYPE selfstab_events_total counter",
            "selfstab_events_total 1",
            "selfstab_ingest_total 1",
            "selfstab_queue_depth 0",
            "selfstab_recovery_rounds{backend=\"serial\",quantile=\"0.99\"} 2",
            "selfstab_recovery_rounds_count 1",
            "selfstab_drain_micros{backend=\"serial\",quantile=\"0.5\"} 150",
            "selfstab_client_requests_total{client=\"1\"} 1",
            "selfstab_ingest_rate",
            "selfstab_snapshot_age_micros 0",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
        assert!(!text.contains("NaN"), "exposition must not contain NaN");
        assert!(!text.contains("inf"), "exposition must not contain inf");
        // Every non-comment line is `name[{labels}] value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (_, value) = line.rsplit_once(' ').expect("metric line");
            value.parse::<f64>().expect("numeric sample value");
        }
    }

    #[test]
    fn prometheus_and_json_agree() {
        let t = Telemetry::new();
        t.heartbeat(2_000_000);
        for i in 1..=5 {
            t.record_event(
                &record(i, i as usize, 2 * i, true),
                "sharded",
                100 * i,
                0,
                1,
            );
        }
        t.record_snapshot(1_500_000, 42, 1000);
        let text = t.render_prometheus();
        let json = t.to_json();
        assert_eq!(json.get("events").and_then(Json::as_u64), Some(5));
        assert!(text.contains("selfstab_events_total 5"));
        let p99 = json
            .get("windows")
            .and_then(|w| w.get("recovery_rounds"))
            .and_then(|r| r.get("p99"))
            .and_then(Json::as_u64)
            .unwrap();
        assert!(text.contains(&format!(
            "selfstab_recovery_rounds{{backend=\"sharded\",quantile=\"0.99\"}} {p99}"
        )));
        // Snapshot age is now − last-at under both renderings.
        assert_eq!(
            json.get("snapshot_age_micros").and_then(Json::as_u64),
            Some(500_000)
        );
        assert!(text.contains("selfstab_snapshot_age_micros 500000"));
        assert!(text.contains("selfstab_snapshot_bytes 1000"));
    }

    #[test]
    fn observer_aggregates_runtime_counters() {
        use selfstab_engine::obs::RuntimeCounters;
        let t = Telemetry::new();
        let mut obs = TelemetryObserver::new(&t);
        let stats = RoundStats {
            round: 1,
            privileged: 1,
            evaluated: 1,
            moves_per_rule: vec![1],
            duration_micros: 0,
            beacon: None,
            runtime: Some(RuntimeCounters {
                byz_rewrites: 3,
                asym_links_down: 2,
                frames_dropped: 1,
                ..RuntimeCounters::default()
            }),
            profile: None,
        };
        Observer::<u8>::on_round_end(&mut obs, &stats, &[]);
        Observer::<u8>::on_round_end(&mut obs, &stats, &[]);
        let json = t.to_json();
        assert_eq!(json.get("byz_rewrites").and_then(Json::as_u64), Some(6));
        assert_eq!(json.get("asym_links_down").and_then(Json::as_u64), Some(4));
        assert_eq!(json.get("chaos_faults").and_then(Json::as_u64), Some(12));
    }

    #[test]
    fn track_buffers_and_drains_rows() {
        let t = Telemetry::new();
        t.record_event(&record(1, 1, 1, true), "serial", 10, 100, 0);
        t.record_event(&record(2, 1, 1, false), "serial", 20, 200, 3);
        let (rows, dropped) = t.take_track();
        assert_eq!(rows.len(), 2);
        assert_eq!(dropped, 0);
        assert_eq!(rows[1].get("seq").and_then(Json::as_u64), Some(2));
        assert_eq!(rows[1].get("queue_depth").and_then(Json::as_u64), Some(3));
        assert_eq!(
            rows[1].get("converged").and_then(Json::as_bool),
            Some(false)
        );
        // Drained: a second take is empty.
        assert!(t.take_track().0.is_empty());
    }
}
