//! The line-delimited JSON wire protocol.
//!
//! One request per line, one response line per request, in order. The same
//! parser serves the Unix-socket transport and scripted sim sessions, so a
//! CI script file is byte-for-byte a valid client session.
//!
//! Requests:
//!
//! ```text
//! {"op":"mutate","kind":"edge-up","a":0,"b":5}
//! {"op":"mutate","kind":"edge-down","a":0,"b":5}
//! {"op":"mutate","kind":"node-leave","v":3}
//! {"op":"mutate","kind":"node-join","v":3,"attach":[1,2]}
//! {"op":"query","what":"membership","node":4}   // node optional
//! {"op":"query","what":"census"}
//! {"op":"query","what":"status"}
//! {"op":"query","what":"latency"}
//! {"op":"query","what":"telemetry"}
//! {"op":"shutdown"}
//! ```
//!
//! Every request may carry a `"tag"` string, echoed verbatim in the
//! response — the correlation hook for pipelined clients (and the
//! string-escaping round-trip the CI smoke exercises). Responses are
//! objects with `"ok":true` plus op-specific fields, or
//! `{"ok":false,"error":"..."}`.

use selfstab_json::{Json, ToJson};

/// A topology mutation event.
///
/// Node indices are dense `0..n` (the service owns a fixed node universe;
/// *leave* isolates a node, *join* re-attaches it — an isolated node is a
/// legitimate singleton in both SMM and SMI, so membership in the overlay
/// is exactly connectivity).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Mutation {
    /// Bring the link `a–b` up.
    EdgeUp {
        /// One endpoint.
        a: usize,
        /// The other endpoint.
        b: usize,
    },
    /// Take the link `a–b` down.
    EdgeDown {
        /// One endpoint.
        a: usize,
        /// The other endpoint.
        b: usize,
    },
    /// Node `v` leaves: all its incident links go down at once.
    NodeLeave {
        /// The leaving node.
        v: usize,
    },
    /// Node `v` (re-)joins, bringing up links to `attach`.
    NodeJoin {
        /// The joining node.
        v: usize,
        /// Neighbors to link to (may be empty: join as a singleton).
        attach: Vec<usize>,
    },
}

impl Mutation {
    /// The wire `kind` string.
    pub fn kind(&self) -> &'static str {
        match self {
            Mutation::EdgeUp { .. } => "edge-up",
            Mutation::EdgeDown { .. } => "edge-down",
            Mutation::NodeLeave { .. } => "node-leave",
            Mutation::NodeJoin { .. } => "node-join",
        }
    }

    /// A short human-readable rendering (for event logs and tables).
    pub fn describe(&self) -> String {
        match self {
            Mutation::EdgeUp { a, b } => format!("edge-up {a}-{b}"),
            Mutation::EdgeDown { a, b } => format!("edge-down {a}-{b}"),
            Mutation::NodeLeave { v } => format!("node-leave {v}"),
            Mutation::NodeJoin { v, attach } => format!("node-join {v} -> {attach:?}"),
        }
    }
}

/// A read-only query against the live structure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryKind {
    /// Membership of one node (`Some`) or the whole structure (`None`).
    Membership(Option<usize>),
    /// The protocol-level census (SMM node types, SMI set size).
    Census,
    /// Convergence/epoch status: clock, events ingested, legitimacy.
    Status,
    /// The per-event re-stabilization latency histogram.
    Latency,
    /// The live telemetry registry (same values as a Prometheus scrape).
    Telemetry,
}

impl QueryKind {
    /// The wire `what` string.
    pub fn what(&self) -> &'static str {
        match self {
            QueryKind::Membership(_) => "membership",
            QueryKind::Census => "census",
            QueryKind::Status => "status",
            QueryKind::Latency => "latency",
            QueryKind::Telemetry => "telemetry",
        }
    }
}

/// One parsed request line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Apply a mutation (and re-converge before answering).
    Mutate {
        /// The mutation to apply.
        mutation: Mutation,
        /// Correlation tag, echoed in the response.
        tag: Option<String>,
    },
    /// Answer a query (pending mutations are drained first).
    Query {
        /// What to ask.
        query: QueryKind,
        /// Correlation tag, echoed in the response.
        tag: Option<String>,
    },
    /// Drain, snapshot, and stop serving.
    Shutdown {
        /// Correlation tag, echoed in the response.
        tag: Option<String>,
    },
}

fn opt_usize(v: &Json, key: &str) -> Result<Option<usize>, String> {
    match v.get(key) {
        None => Ok(None),
        Some(Json::Null) => Ok(None),
        Some(j) => usize::try_from(
            j.as_u64()
                .ok_or_else(|| format!("field `{key}` must be a non-negative integer"))?,
        )
        .map(Some)
        .map_err(|_| format!("field `{key}` out of range")),
    }
}

fn req_usize(v: &Json, key: &str) -> Result<usize, String> {
    opt_usize(v, key)?.ok_or_else(|| format!("missing field `{key}`"))
}

impl Request {
    /// Parse one request line.
    pub fn parse(line: &str) -> Result<Request, String> {
        let v = Json::parse(line.trim()).map_err(|e| e.to_string())?;
        let op = v
            .get("op")
            .and_then(Json::as_str)
            .ok_or("missing string field `op`")?;
        let tag = match v.get("tag") {
            None | Some(Json::Null) => None,
            Some(Json::Str(s)) => Some(s.clone()),
            Some(_) => return Err("field `tag` must be a string".into()),
        };
        match op {
            "mutate" => {
                let kind = v
                    .get("kind")
                    .and_then(Json::as_str)
                    .ok_or("missing string field `kind`")?;
                let mutation = match kind {
                    "edge-up" => Mutation::EdgeUp {
                        a: req_usize(&v, "a")?,
                        b: req_usize(&v, "b")?,
                    },
                    "edge-down" => Mutation::EdgeDown {
                        a: req_usize(&v, "a")?,
                        b: req_usize(&v, "b")?,
                    },
                    "node-leave" => Mutation::NodeLeave {
                        v: req_usize(&v, "v")?,
                    },
                    "node-join" => {
                        let attach = match v.get("attach") {
                            None | Some(Json::Null) => Vec::new(),
                            Some(j) => j
                                .as_array()
                                .ok_or("field `attach` must be an array")?
                                .iter()
                                .map(|x| {
                                    x.as_u64().and_then(|n| usize::try_from(n).ok()).ok_or_else(
                                        || "field `attach` must hold node indices".to_string(),
                                    )
                                })
                                .collect::<Result<Vec<_>, _>>()?,
                        };
                        Mutation::NodeJoin {
                            v: req_usize(&v, "v")?,
                            attach,
                        }
                    }
                    other => return Err(format!("unknown mutation kind '{other}'")),
                };
                Ok(Request::Mutate { mutation, tag })
            }
            "query" => {
                let what = v
                    .get("what")
                    .and_then(Json::as_str)
                    .ok_or("missing string field `what`")?;
                let query = match what {
                    "membership" => QueryKind::Membership(opt_usize(&v, "node")?),
                    "census" => QueryKind::Census,
                    "status" => QueryKind::Status,
                    "latency" => QueryKind::Latency,
                    "telemetry" => QueryKind::Telemetry,
                    other => return Err(format!("unknown query '{other}'")),
                };
                Ok(Request::Query { query, tag })
            }
            "shutdown" => Ok(Request::Shutdown { tag }),
            other => Err(format!("unknown op '{other}'")),
        }
    }

    /// Render back to the wire form (scripting and test support; `parse ∘
    /// to_json ∘ to_string` is the identity on the typed request).
    pub fn to_json(&self) -> Json {
        let mut fields: Vec<(String, Json)> = Vec::new();
        let tag = match self {
            Request::Mutate { mutation, tag } => {
                fields.push(("op".into(), "mutate".to_json()));
                fields.push(("kind".into(), mutation.kind().to_json()));
                match mutation {
                    Mutation::EdgeUp { a, b } | Mutation::EdgeDown { a, b } => {
                        fields.push(("a".into(), a.to_json()));
                        fields.push(("b".into(), b.to_json()));
                    }
                    Mutation::NodeLeave { v } => fields.push(("v".into(), v.to_json())),
                    Mutation::NodeJoin { v, attach } => {
                        fields.push(("v".into(), v.to_json()));
                        fields.push(("attach".into(), attach.to_json()));
                    }
                }
                tag
            }
            Request::Query { query, tag } => {
                fields.push(("op".into(), "query".to_json()));
                fields.push(("what".into(), query.what().to_json()));
                if let QueryKind::Membership(Some(node)) = query {
                    fields.push(("node".into(), node.to_json()));
                }
                tag
            }
            Request::Shutdown { tag } => {
                fields.push(("op".into(), "shutdown".to_json()));
                tag
            }
        };
        if let Some(t) = tag {
            fields.push(("tag".into(), t.to_json()));
        }
        Json::Object(fields)
    }
}

/// Build a success response: `{"ok":true, ...fields, "tag":?}`.
pub fn resp_ok(fields: Vec<(String, Json)>, tag: Option<&str>) -> Json {
    let mut all = vec![("ok".to_string(), true.to_json())];
    all.extend(fields);
    if let Some(t) = tag {
        all.push(("tag".to_string(), t.to_json()));
    }
    Json::Object(all)
}

/// Build an error response: `{"ok":false,"error":msg,"tag":?}`.
pub fn resp_err(msg: &str, tag: Option<&str>) -> Json {
    let mut all = vec![
        ("ok".to_string(), false.to_json()),
        ("error".to_string(), msg.to_json()),
    ];
    if let Some(t) = tag {
        all.push(("tag".to_string(), t.to_json()));
    }
    Json::Object(all)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_lines_round_trip() {
        let reqs = [
            Request::Mutate {
                mutation: Mutation::EdgeUp { a: 0, b: 5 },
                tag: None,
            },
            Request::Mutate {
                mutation: Mutation::NodeJoin {
                    v: 3,
                    attach: vec![1, 2],
                },
                tag: Some("t1".into()),
            },
            Request::Mutate {
                mutation: Mutation::NodeLeave { v: 9 },
                tag: None,
            },
            Request::Query {
                query: QueryKind::Membership(Some(4)),
                tag: None,
            },
            Request::Query {
                query: QueryKind::Membership(None),
                tag: Some("all".into()),
            },
            Request::Query {
                query: QueryKind::Status,
                tag: None,
            },
            Request::Query {
                query: QueryKind::Telemetry,
                tag: None,
            },
            Request::Shutdown { tag: None },
        ];
        for req in reqs {
            let line = req.to_json().to_string();
            assert_eq!(Request::parse(&line).unwrap(), req, "{line}");
        }
    }

    #[test]
    fn tags_with_escapes_survive_the_wire() {
        // The correlation tag is the field that carries arbitrary client
        // strings; quotes, backslashes, newlines and non-ASCII must survive
        // a full render→parse cycle.
        let tag = "q\"uote\\back\nnew\tline é😀";
        let req = Request::Query {
            query: QueryKind::Census,
            tag: Some(tag.into()),
        };
        let line = req.to_json().to_string();
        assert!(!line.contains('\n'), "escaped newline keeps it one line");
        match Request::parse(&line).unwrap() {
            Request::Query { tag: Some(t), .. } => assert_eq!(t, tag),
            other => panic!("unexpected parse: {other:?}"),
        }
        let resp = resp_err("bad \"thing\"", Some(tag)).to_string();
        let back = Json::parse(&resp).unwrap();
        assert_eq!(back.get("tag").and_then(Json::as_str), Some(tag));
    }

    #[test]
    fn malformed_requests_are_rejected_with_reasons() {
        for (line, needle) in [
            ("", "json error"),
            ("{}", "missing string field `op`"),
            (r#"{"op":"warp"}"#, "unknown op"),
            (r#"{"op":"mutate"}"#, "missing string field `kind`"),
            (r#"{"op":"mutate","kind":"edge-up","a":1}"#, "missing field"),
            (
                r#"{"op":"mutate","kind":"edge-up","a":-1,"b":2}"#,
                "field `a`",
            ),
            (r#"{"op":"query","what":"huh"}"#, "unknown query"),
            (r#"{"op":"query"}"#, "missing string field `what`"),
            (r#"{"op":"shutdown","tag":7}"#, "`tag` must be a string"),
            (
                r#"{"op":"mutate","kind":"node-join","v":1,"attach":"x"}"#,
                "`attach` must be an array",
            ),
        ] {
            let err = Request::parse(line).unwrap_err();
            assert!(err.contains(needle), "{line}: {err}");
        }
    }
}
