//! The swappable I/O backend: where request lines come from and where
//! response lines go.
//!
//! [`SimTransport`] is the deterministic backend — a scripted sequence of
//! request lines with captured replies, used by proptests and the CI
//! smoke. [`UdsTransport`] is the real backend — a non-blocking Unix
//! domain socket listener with one reader thread per client, multiplexed
//! into a single event queue the serve loop polls. Both present the same
//! [`Transport`] surface, so the daemon loop is byte-for-byte identical
//! under test and in production.

use std::collections::VecDeque;

/// One poll of the transport.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Polled {
    /// A client sent a request line.
    Request {
        /// Opaque client id (stable per connection).
        client: u64,
        /// The raw request line (no trailing newline).
        line: String,
    },
    /// Nothing to do right now.
    Idle,
    /// The transport has no clients and will never produce another
    /// request (scripted input exhausted, or listener torn down).
    Closed,
}

/// A source of request lines and sink of response lines.
pub trait Transport {
    /// Poll for the next request without blocking (beyond a short internal
    /// timeout for the socket backend).
    fn poll(&mut self) -> Polled;

    /// Send one response line to `client`. Errors are swallowed — a client
    /// that disconnected mid-request simply misses its reply.
    fn reply(&mut self, client: u64, line: &str);

    /// Clients silently dropped by the transport before the serve loop
    /// ever saw them (0 for backends that cannot drop). The daemon polls
    /// this into the `status` response and the telemetry registry, so the
    /// failure mode is visible instead of silent.
    fn accept_failures(&self) -> u64 {
        0
    }
}

/// The deterministic scripted backend: feed lines in, collect replies.
#[derive(Debug, Default)]
pub struct SimTransport {
    script: VecDeque<String>,
    replies: Vec<String>,
}

impl SimTransport {
    /// A transport that will deliver `lines` in order (blank lines are
    /// skipped, matching the line-delimited wire format), then report
    /// [`Polled::Closed`].
    pub fn scripted(lines: impl IntoIterator<Item = impl Into<String>>) -> Self {
        SimTransport {
            script: lines
                .into_iter()
                .map(Into::into)
                .filter(|l| !l.trim().is_empty())
                .collect(),
            replies: Vec::new(),
        }
    }

    /// The captured response lines, in send order.
    pub fn replies(&self) -> &[String] {
        &self.replies
    }
}

impl Transport for SimTransport {
    fn poll(&mut self) -> Polled {
        match self.script.pop_front() {
            Some(line) => Polled::Request { client: 0, line },
            None => Polled::Closed,
        }
    }

    fn reply(&mut self, _client: u64, line: &str) {
        self.replies.push(line.to_string());
    }
}

#[cfg(unix)]
pub use uds::{uds_client_session, UdsTransport};

#[cfg(unix)]
mod uds {
    use super::{Polled, Transport};
    use std::collections::HashMap;
    use std::io::{BufRead, BufReader, Write};
    use std::net::Shutdown;
    use std::os::unix::net::{UnixListener, UnixStream};
    use std::path::{Path, PathBuf};
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
    use std::sync::{mpsc, Arc, Mutex};
    use std::thread::JoinHandle;
    use std::time::Duration;

    enum Event {
        Connected(u64, UnixStream),
        Line(u64, String),
        Disconnected(u64),
    }

    /// The Unix-domain-socket backend: an acceptor thread plus one reader
    /// thread per client, all funneled into a single event queue. Writes
    /// go directly to the client stream from the serve loop's thread.
    ///
    /// Teardown protocol (see [`UdsTransport::shutdown`]): stop flag →
    /// join acceptor → sever queued-but-unpolled connections → sever live
    /// writers → join every reader → remove the socket file. Each step
    /// makes the next one finite: once the acceptor is joined no new
    /// client can appear, and once every stream is severed every blocked
    /// reader observes EOF.
    pub struct UdsTransport {
        events: Receiver<Event>,
        writers: HashMap<u64, UnixStream>,
        stop: Arc<AtomicBool>,
        acceptor: Option<JoinHandle<()>>,
        readers: Arc<Mutex<Vec<JoinHandle<()>>>>,
        accept_failures: Arc<AtomicU64>,
        path: PathBuf,
    }

    impl UdsTransport {
        /// Bind `path` (removing a stale socket file first) and start
        /// accepting clients. The socket file is removed again on
        /// [`UdsTransport::shutdown`], so a clean exit leaves no stale
        /// path on disk.
        pub fn bind(path: &Path) -> std::io::Result<UdsTransport> {
            let _ = std::fs::remove_file(path);
            let listener = UnixListener::bind(path)?;
            listener.set_nonblocking(true)?;
            let (tx, events) = mpsc::channel();
            let stop = Arc::new(AtomicBool::new(false));
            let readers = Arc::new(Mutex::new(Vec::new()));
            let accept_failures = Arc::new(AtomicU64::new(0));
            let acceptor = spawn_acceptor(
                listener,
                tx,
                stop.clone(),
                readers.clone(),
                accept_failures.clone(),
            );
            Ok(UdsTransport {
                events,
                writers: HashMap::new(),
                stop,
                acceptor: Some(acceptor),
                readers,
                accept_failures,
                path: path.to_path_buf(),
            })
        }

        /// Clients dropped because `try_clone` on their accepted stream
        /// failed (each was closed outright rather than left half-open).
        pub fn accept_failures(&self) -> u64 {
            self.accept_failures.load(Ordering::Relaxed)
        }

        /// Stop accepting, sever every client (which unblocks and ends the
        /// reader threads), join all transport threads, and remove the
        /// socket file. Returns the number of threads joined. Idempotent:
        /// a second call (e.g. from `Drop`) is a no-op returning 0.
        ///
        /// Ordering matters:
        /// 1. joining the acceptor *first* freezes both the event queue
        ///    and the reader-handle list — no `Connected` event or
        ///    `JoinHandle` can be pushed after this point, which is what
        ///    makes steps 2 and 4 exhaustive;
        /// 2. draining `events` severs clients whose `Connected` event the
        ///    serve loop never polled — they are not in `writers`, and
        ///    without this their readers would block on a live stream
        ///    forever (the pre-fix shutdown hang);
        /// 3. severing `writers` unblocks every reader the loop did know
        ///    about;
        /// 4. the handle list is drained under the lock until it stays
        ///    empty, so a reader pushed concurrently with an earlier take
        ///    cannot leak unjoined.
        pub fn shutdown(&mut self) -> usize {
            self.stop.store(true, Ordering::SeqCst);
            let mut joined = 0usize;
            if let Some(acceptor) = self.acceptor.take() {
                let _ = acceptor.join();
                joined += 1;
            }
            for event in self.events.try_iter() {
                if let Event::Connected(_, stream) = event {
                    let _ = stream.shutdown(Shutdown::Both);
                }
            }
            for (_, stream) in self.writers.drain() {
                let _ = stream.shutdown(Shutdown::Both);
            }
            loop {
                let handles: Vec<JoinHandle<()>> =
                    std::mem::take(&mut *self.readers.lock().expect("readers lock"));
                if handles.is_empty() {
                    break;
                }
                for h in handles {
                    let _ = h.join();
                    joined += 1;
                }
            }
            if joined > 0 {
                let _ = std::fs::remove_file(&self.path);
            }
            joined
        }
    }

    impl Drop for UdsTransport {
        fn drop(&mut self) {
            self.shutdown();
        }
    }

    fn spawn_acceptor(
        listener: UnixListener,
        tx: Sender<Event>,
        stop: Arc<AtomicBool>,
        readers: Arc<Mutex<Vec<JoinHandle<()>>>>,
        accept_failures: Arc<AtomicU64>,
    ) -> JoinHandle<()> {
        std::thread::spawn(move || {
            let mut next_id = 1u64;
            while !stop.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _addr)) => {
                        let id = next_id;
                        next_id += 1;
                        match stream.try_clone() {
                            Ok(write_half) => {
                                if tx.send(Event::Connected(id, write_half)).is_err() {
                                    return;
                                }
                                let reader = spawn_reader(id, stream, tx.clone());
                                readers.lock().expect("readers lock").push(reader);
                            }
                            Err(e) => {
                                // No write half means no reply path; close
                                // the connection outright so the peer sees
                                // EOF instead of hanging on a dead socket.
                                let _ = stream.shutdown(Shutdown::Both);
                                accept_failures.fetch_add(1, Ordering::Relaxed);
                                eprintln!("uds: dropped client {id}: try_clone failed: {e}");
                            }
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(10));
                    }
                    Err(_) => return,
                }
            }
        })
    }

    fn spawn_reader(id: u64, stream: UnixStream, tx: Sender<Event>) -> JoinHandle<()> {
        std::thread::spawn(move || {
            let _ = stream.set_nonblocking(false);
            let reader = BufReader::new(stream);
            for line in reader.lines() {
                match line {
                    Ok(l) if l.trim().is_empty() => continue,
                    Ok(l) => {
                        if tx.send(Event::Line(id, l)).is_err() {
                            return;
                        }
                    }
                    Err(_) => break,
                }
            }
            let _ = tx.send(Event::Disconnected(id));
        })
    }

    impl Transport for UdsTransport {
        fn poll(&mut self) -> Polled {
            loop {
                match self.events.recv_timeout(Duration::from_millis(20)) {
                    Ok(Event::Connected(id, stream)) => {
                        self.writers.insert(id, stream);
                    }
                    Ok(Event::Line(id, line)) => return Polled::Request { client: id, line },
                    Ok(Event::Disconnected(id)) => {
                        self.writers.remove(&id);
                    }
                    Err(RecvTimeoutError::Timeout) => return Polled::Idle,
                    Err(RecvTimeoutError::Disconnected) => return Polled::Closed,
                }
            }
        }

        fn accept_failures(&self) -> u64 {
            UdsTransport::accept_failures(self)
        }

        fn reply(&mut self, client: u64, line: &str) {
            if let Some(stream) = self.writers.get_mut(&client) {
                let ok = stream
                    .write_all(line.as_bytes())
                    .and_then(|()| stream.write_all(b"\n"))
                    .and_then(|()| stream.flush())
                    .is_ok();
                if !ok {
                    self.writers.remove(&client);
                }
            }
        }
    }

    /// A one-shot scripted client session over a Unix socket: connect,
    /// send each line, and hand every response line to `on_reply` (one
    /// call per request, same order). The CLI `client` command and the CI
    /// end-to-end smoke are this function.
    pub fn uds_client_session(
        path: &Path,
        lines: &[String],
        mut on_reply: impl FnMut(&str),
    ) -> std::io::Result<()> {
        let stream = UnixStream::connect(path)?;
        let mut writer = stream.try_clone()?;
        let mut reader = BufReader::new(stream);
        for line in lines {
            if line.trim().is_empty() {
                continue;
            }
            writer.write_all(line.as_bytes())?;
            writer.write_all(b"\n")?;
            writer.flush()?;
            let mut reply = String::new();
            if reader.read_line(&mut reply)? == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed before replying",
                ));
            }
            on_reply(reply.trim_end_matches('\n'));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_transport_feeds_script_then_closes() {
        let mut t = SimTransport::scripted(["a", "", "b"]);
        assert_eq!(
            t.poll(),
            Polled::Request {
                client: 0,
                line: "a".into()
            }
        );
        t.reply(0, "ra");
        assert_eq!(
            t.poll(),
            Polled::Request {
                client: 0,
                line: "b".into()
            }
        );
        t.reply(0, "rb");
        assert_eq!(t.poll(), Polled::Closed);
        assert_eq!(t.replies(), ["ra", "rb"]);
    }
}
