//! Protocol-specific query surfaces.
//!
//! The service core is generic over [`Protocol`]; what "membership" and
//! "census" *mean* differs per overlay structure (matched/partner for SMM,
//! in-set for SMI). [`OverlayProtocol`] is that seam: each paper protocol
//! answers its own queries as JSON fragments the daemon splices into
//! responses.

use selfstab_core::smm::types::{NodeType, TypeCensus};
use selfstab_core::{Pointer, Smi, Smm};
use selfstab_engine::protocol::{Protocol, WireState};
use selfstab_graph::{Graph, Node};
use selfstab_json::{Json, ToJson};

/// A [`Protocol`] that can answer the service's query vocabulary.
///
/// The state must be [`WireState`]-encodable so any overlay protocol can
/// run under the service's sharded drain backend (beacon frames cross
/// shard boundaries); both paper protocols already are.
pub trait OverlayProtocol: Protocol<State: WireState> {
    /// Short protocol name for status lines (`"smm"`, `"smi"`).
    fn name(&self) -> &'static str;

    /// Membership facts about one node.
    fn membership(&self, graph: &Graph, states: &[Self::State], v: Node) -> Json;

    /// Membership facts about the whole structure.
    fn membership_summary(&self, graph: &Graph, states: &[Self::State]) -> Json;

    /// The protocol-level census (paper Fig. 2 classes for SMM; set size
    /// for SMI).
    fn census(&self, graph: &Graph, states: &[Self::State]) -> Json;
}

impl OverlayProtocol for Smm {
    fn name(&self) -> &'static str {
        "smm"
    }

    fn membership(&self, graph: &Graph, states: &[Pointer], v: Node) -> Json {
        let matched = Smm::matched_nodes(graph, states);
        let partner = match states[v.index()].0 {
            Some(p) if matched[v.index()] => Some(p.index()),
            _ => None,
        };
        Json::obj([
            ("node", v.index().to_json()),
            ("matched", matched[v.index()].to_json()),
            ("partner", partner.to_json()),
        ])
    }

    fn membership_summary(&self, graph: &Graph, states: &[Pointer]) -> Json {
        let edges: Vec<Json> = Smm::matched_edges(graph, states)
            .into_iter()
            .map(|e| Json::Array(vec![e.a.index().to_json(), e.b.index().to_json()]))
            .collect();
        Json::obj([
            ("matched_pairs", edges.len().to_json()),
            ("edges", Json::Array(edges)),
        ])
    }

    fn census(&self, graph: &Graph, states: &[Pointer]) -> Json {
        let census = TypeCensus::of(graph, states);
        let mut fields: Vec<(String, Json)> = NodeType::ALL
            .iter()
            .map(|t| (t.name().to_string(), census.count(*t).to_json()))
            .collect();
        fields.push(("matched_pairs".into(), census.matched_pairs().to_json()));
        Json::Object(fields)
    }
}

impl OverlayProtocol for Smi {
    fn name(&self) -> &'static str {
        "smi"
    }

    fn membership(&self, _graph: &Graph, states: &[bool], v: Node) -> Json {
        Json::obj([
            ("node", v.index().to_json()),
            ("member", states[v.index()].to_json()),
        ])
    }

    fn membership_summary(&self, _graph: &Graph, states: &[bool]) -> Json {
        let members: Vec<Json> = Smi::members(states)
            .into_iter()
            .map(|v| v.index().to_json())
            .collect();
        Json::obj([
            ("set_size", members.len().to_json()),
            ("members", Json::Array(members)),
        ])
    }

    fn census(&self, _graph: &Graph, states: &[bool]) -> Json {
        let inside = states.iter().filter(|&&x| x).count();
        Json::obj([
            ("in_set", inside.to_json()),
            ("out_of_set", (states.len() - inside).to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use selfstab_engine::{InitialState, SyncExecutor};
    use selfstab_graph::{generators, Ids};

    #[test]
    fn smm_membership_reports_mutual_partners() {
        let g = generators::path(4);
        let smm = Smm::paper(Ids::identity(4));
        let run = SyncExecutor::new(&g, &smm).run(InitialState::Default, 10);
        assert!(run.stabilized());
        let summary = smm.membership_summary(&g, &run.final_states);
        let pairs = summary.get("matched_pairs").and_then(Json::as_u64).unwrap();
        assert_eq!(pairs, 2, "P4 has a perfect matching");
        for v in g.nodes() {
            let m = smm.membership(&g, &run.final_states, v);
            assert_eq!(m.get("matched").and_then(Json::as_bool), Some(true));
            let p = m.get("partner").and_then(Json::as_u64).unwrap() as usize;
            let back = smm.membership(&g, &run.final_states, Node::from(p));
            assert_eq!(
                back.get("partner").and_then(Json::as_u64),
                Some(v.index() as u64),
                "partnership is mutual"
            );
        }
        let census = smm.census(&g, &run.final_states);
        assert_eq!(census.get("M").and_then(Json::as_u64), Some(4));
    }

    #[test]
    fn smi_membership_matches_members_list() {
        let g = generators::star(6);
        let smi = Smi::new(Ids::identity(6));
        let run = SyncExecutor::new(&g, &smi).run(InitialState::Default, 10);
        assert!(run.stabilized());
        let summary = smi.membership_summary(&g, &run.final_states);
        let size = summary.get("set_size").and_then(Json::as_u64).unwrap();
        let census = smi.census(&g, &run.final_states);
        assert_eq!(census.get("in_set").and_then(Json::as_u64), Some(size));
        for v in g.nodes() {
            let m = smi.membership(&g, &run.final_states, v);
            assert_eq!(
                m.get("member").and_then(Json::as_bool),
                Some(run.final_states[v.index()]),
            );
        }
    }
}
