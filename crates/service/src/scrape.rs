//! The TCP scrape endpoint: a tiny std-only HTTP responder serving the
//! Prometheus text exposition of a [`Telemetry`] registry.
//!
//! One listener thread accepts connections non-blockingly and answers
//! each with a single `HTTP/1.0 200` response rendering
//! [`Telemetry::render_prometheus`], then closes. There is deliberately
//! no routing, keep-alive, or TLS — a Prometheus scraper (or `curl`)
//! issues one GET per scrape and reads to EOF, and that is the whole
//! protocol. Teardown mirrors the UDS transport's discipline: raise the
//! stop flag, join the listener thread, done — connections in flight are
//! bounded by short read/write timeouts, so [`ScrapeServer::shutdown`]
//! cannot hang on a stalled client.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::telemetry::Telemetry;

/// How long one scrape connection may take to send its request or absorb
/// the response before it is dropped.
const IO_TIMEOUT: Duration = Duration::from_millis(500);

/// The background scrape listener. See the [module docs](self).
pub struct ScrapeServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl ScrapeServer {
    /// Bind `addr` (e.g. `127.0.0.1:9184`, port 0 for ephemeral) and start
    /// answering scrapes with `registry`'s exposition.
    pub fn bind(addr: &str, registry: Arc<Telemetry>) -> std::io::Result<ScrapeServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = stop.clone();
        let handle = std::thread::spawn(move || {
            while !thread_stop.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        // Count before rendering so the served body already
                        // reflects this scrape (body == a re-render, which
                        // the round-trip test pins).
                        registry.record_scrape();
                        let _ = serve_one(stream, &registry);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(10));
                    }
                    Err(_) => return,
                }
            }
        });
        Ok(ScrapeServer {
            addr: local,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves port 0 to the actual ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting and join the listener thread. Idempotent; `Drop`
    /// calls it too.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ScrapeServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Answer one scrape connection: read the request head (discarded — every
/// path serves the same exposition), write one complete HTTP/1.0 response,
/// and close.
fn serve_one(stream: TcpStream, registry: &Telemetry) -> std::io::Result<()> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let mut reader = BufReader::new(&stream);
    let mut line = String::new();
    // Consume header lines until the blank separator, EOF, a timeout, or
    // an 8 KiB cap — whichever comes first. A bare `nc` poke (no headers)
    // still gets an answer.
    let mut consumed = 0usize;
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(n) => {
                consumed += n;
                if line.trim().is_empty() || consumed > 8192 {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let body = registry.render_prometheus();
    let mut writer = &stream;
    writer.write_all(
        format!(
            "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            body.len()
        )
        .as_bytes(),
    )?;
    writer.write_all(body.as_bytes())?;
    writer.flush()?;
    let _ = stream.shutdown(std::net::Shutdown::Both);
    Ok(())
}

/// One client-side scrape: connect to `addr`, issue `GET /metrics`, and
/// return the response body (the exposition text). Used by
/// `selfstab client --scrape`, the CI smoke, and the scrape-under-churn
/// test — no external HTTP client needed.
pub fn scrape_once(addr: &str) -> std::io::Result<String> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let mut writer = &stream;
    writer.write_all(b"GET /metrics HTTP/1.0\r\nHost: selfstab\r\n\r\n")?;
    writer.flush()?;
    let mut response = String::new();
    let mut reader = &stream;
    reader.read_to_string(&mut response)?;
    match response.split_once("\r\n\r\n") {
        Some((head, body)) if head.starts_with("HTTP/1.0 200") => Ok(body.to_string()),
        Some((head, _)) => Err(std::io::Error::other(format!(
            "scrape failed: {}",
            head.lines().next().unwrap_or("empty response")
        ))),
        None => Err(std::io::Error::other("malformed scrape response")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::EventRecord;

    #[test]
    fn scrape_round_trips_the_exposition() {
        let registry = Arc::new(Telemetry::new());
        registry.heartbeat(1000);
        registry.record_event(
            &EventRecord {
                seq: 1,
                kind: "edge-up",
                detail: "edge-up 0-1".into(),
                round: 1,
                perturbed: 2,
                recovery_rounds: 1,
                moves: 1,
                converged: true,
            },
            "serial",
            50,
            1000,
            0,
        );
        let mut server = ScrapeServer::bind("127.0.0.1:0", registry.clone()).unwrap();
        let addr = server.addr().to_string();
        let body = scrape_once(&addr).unwrap();
        assert!(body.contains("selfstab_events_total 1"), "{body}");
        assert_eq!(body, registry.render_prometheus());
        // Scrapes count, and shutdown joins cleanly (twice: idempotent).
        assert_eq!(registry.scrapes_total(), 1);
        server.shutdown();
        server.shutdown();
        assert!(scrape_once(&addr).is_err(), "listener is down");
    }
}
