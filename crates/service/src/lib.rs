//! Resident overlay-maintenance service.
//!
//! The paper's protocols were built for networks that *keep changing*:
//! self-stabilization means any perturbation — a link flap, a node joining
//! or leaving — is repaired by the same rules that built the structure,
//! starting from wherever the failure left the state. This crate turns
//! that property into a long-lived daemon: a live graph plus protocol
//! state, ingesting a stream of topology mutations, kept continuously
//! legitimate by re-running the active-set scheduler over just the
//! perturbed closed neighborhoods, and answering membership/census/status
//! queries between events.
//!
//! The subsystem is layered so the *same* serve loop runs everywhere:
//!
//! - [`mod@env`] — the swappable environment: [`env::Clock`] with simulated
//!   and real backends, plus the cooperative [`env::ShutdownFlag`].
//! - [`transport`] — the swappable I/O: a scripted [`transport::SimTransport`]
//!   and a Unix-domain-socket [`transport::UdsTransport`] behind one
//!   [`transport::Transport`] trait.
//! - [`proto`] — the line-delimited JSON wire protocol.
//! - [`overlay`] — per-protocol query semantics (SMM matching, SMI set).
//! - [`service`] — the resident engine: mutation ingest, incremental
//!   re-convergence, per-event recovery metrics.
//! - [`daemon`] — the environment-generic serve loop.
//! - [`snapshot`] — durable state: a restarted daemon resumes from a
//!   legitimate configuration and re-stabilizes in zero rounds; the
//!   [`snapshot::SnapshotScheduler`] writes such snapshots in the
//!   background on the service clock.
//! - [`telemetry`] — the live registry: counters, gauges, rolling-window
//!   quantiles, shared between the serve loop and every export path.
//! - [`scrape`] — the std-only TCP listener rendering the registry in
//!   Prometheus text exposition format.
//!
//! `unsafe` is denied crate-wide except the single FFI seam in [`signal`]
//! (POSIX `signal(2)` registration for graceful Ctrl-C).

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod daemon;
pub mod env;
pub mod overlay;
pub mod proto;
pub mod scrape;
pub mod service;
pub mod signal;
pub mod snapshot;
pub mod telemetry;
pub mod transport;

pub use daemon::{serve, serve_with, ServeHooks, ServeOutcome, ServeSummary};
pub use env::{Clock, RealClock, ShutdownFlag, SimClock};
pub use overlay::OverlayProtocol;
pub use proto::{Mutation, QueryKind, Request};
pub use scrape::{scrape_once, ScrapeServer};
pub use service::{Backend, EventRecord, OverlayService};
pub use snapshot::{Snapshot, SnapshotCadence, SnapshotScheduler};
pub use telemetry::{Telemetry, TelemetryObserver};
pub use transport::{Polled, SimTransport, Transport};

#[cfg(unix)]
pub use transport::{uds_client_session, UdsTransport};
