//! Durable service snapshots: the live graph + the wire-encoded global
//! state + the round clock, as one JSON document.
//!
//! A snapshot of a converged service is a *legitimate* configuration, so a
//! daemon restarted from one re-stabilizes in zero rounds — that is the
//! self-stabilization story applied to process restarts, and the
//! snapshot-reload test pins it. The per-node states ride as hex-encoded
//! [`WireState`] bytes (the same encoding beacon frames use), keeping the
//! document protocol-agnostic.

use selfstab_engine::protocol::WireState;
use selfstab_graph::{Graph, Node};
use selfstab_json::{Json, ToJson};

/// The format tag written into (and required of) every snapshot document.
pub const FORMAT: &str = "selfstab-snapshot/v1";

/// Render a snapshot document.
pub fn write_snapshot<S: WireState>(
    protocol: &str,
    graph: &Graph,
    states: &[S],
    clock_rounds: usize,
) -> String {
    let mut bytes = Vec::new();
    for s in states {
        s.encode(&mut bytes);
    }
    let edges: Vec<Json> = graph
        .nodes()
        .flat_map(|u| {
            graph
                .neighbors(u)
                .iter()
                .filter(move |&&v| u < v)
                .map(move |&v| Json::Array(vec![u.index().to_json(), v.index().to_json()]))
        })
        .collect();
    Json::obj([
        ("format", FORMAT.to_json()),
        ("protocol", protocol.to_json()),
        ("n", graph.n().to_json()),
        ("clock_rounds", clock_rounds.to_json()),
        ("edges", Json::Array(edges)),
        ("states", hex(&bytes).to_json()),
    ])
    .to_string()
}

/// A parsed (but not yet state-decoded) snapshot.
#[derive(Clone, Debug)]
pub struct Snapshot {
    /// Protocol name the snapshot was taken under.
    pub protocol: String,
    /// Node count.
    pub n: usize,
    /// Absolute round clock at snapshot time.
    pub clock_rounds: usize,
    /// Undirected edge list.
    pub edges: Vec<(usize, usize)>,
    state_bytes: Vec<u8>,
}

impl Snapshot {
    /// Parse a snapshot document.
    pub fn parse(text: &str) -> Result<Snapshot, String> {
        let v = Json::parse(text.trim()).map_err(|e| e.to_string())?;
        let format = v
            .get("format")
            .and_then(Json::as_str)
            .ok_or("missing `format`")?;
        if format != FORMAT {
            return Err(format!("unsupported snapshot format '{format}'"));
        }
        let protocol = v
            .get("protocol")
            .and_then(Json::as_str)
            .ok_or("missing `protocol`")?
            .to_string();
        let n = v.get("n").and_then(Json::as_u64).ok_or("missing `n`")? as usize;
        let clock_rounds = v
            .get("clock_rounds")
            .and_then(Json::as_u64)
            .ok_or("missing `clock_rounds`")? as usize;
        let mut edges = Vec::new();
        for e in v
            .get("edges")
            .and_then(Json::as_array)
            .ok_or("missing `edges` array")?
        {
            let pair = e.as_array().ok_or("edge is not a pair")?;
            let get = |i: usize| -> Result<usize, String> {
                pair.get(i)
                    .and_then(Json::as_u64)
                    .map(|x| x as usize)
                    .ok_or_else(|| "edge endpoint is not an index".to_string())
            };
            if pair.len() != 2 {
                return Err("edge is not a pair".into());
            }
            let (a, b) = (get(0)?, get(1)?);
            if a >= n || b >= n || a == b {
                return Err(format!("invalid edge {a}-{b} (n = {n})"));
            }
            edges.push((a, b));
        }
        let state_bytes = unhex(
            v.get("states")
                .and_then(Json::as_str)
                .ok_or("missing `states` hex string")?,
        )?;
        Ok(Snapshot {
            protocol,
            n,
            clock_rounds,
            edges,
            state_bytes,
        })
    }

    /// Rebuild the graph.
    pub fn graph(&self) -> Graph {
        let mut g = Graph::empty(self.n);
        for &(a, b) in &self.edges {
            g.add_edge(Node(a as u32), Node(b as u32));
        }
        g
    }

    /// Decode the per-node states; errors if the byte stream does not hold
    /// exactly `n` values.
    pub fn decode_states<S: WireState>(&self) -> Result<Vec<S>, String> {
        let mut states = Vec::with_capacity(self.n);
        let mut rest: &[u8] = &self.state_bytes;
        for i in 0..self.n {
            let (s, used) = S::decode_prefix(rest).map_err(|e| format!("state {i}: {e}"))?;
            states.push(s);
            rest = &rest[used..];
        }
        if !rest.is_empty() {
            return Err(format!("{} trailing state bytes", rest.len()));
        }
        Ok(states)
    }
}

/// How often the background scheduler snapshots: every `k` applied events
/// or every `d` of service-clock time. Parsed from `--snapshot-every`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SnapshotCadence {
    /// Snapshot once `k` further events have been applied.
    Events(u64),
    /// Snapshot once `d` microseconds of service-clock time have passed.
    Micros(u64),
}

impl SnapshotCadence {
    /// Parse a cadence spec: a bare integer means events (`"250"`), an
    /// integer with a `s`/`ms` suffix means service-clock time (`"30s"`,
    /// `"500ms"`). Zero is rejected in every unit.
    pub fn parse(spec: &str) -> Result<SnapshotCadence, String> {
        let spec = spec.trim();
        let (digits, scale) = if let Some(d) = spec.strip_suffix("ms") {
            (d, Some(1_000u64))
        } else if let Some(d) = spec.strip_suffix('s') {
            (d, Some(1_000_000u64))
        } else {
            (spec, None)
        };
        let value: u64 = digits
            .parse()
            .map_err(|_| format!("invalid snapshot cadence '{spec}' (want N, Ns, or Nms)"))?;
        if value == 0 {
            return Err("snapshot cadence must be positive".into());
        }
        Ok(match scale {
            None => SnapshotCadence::Events(value),
            Some(s) => SnapshotCadence::Micros(
                value
                    .checked_mul(s)
                    .ok_or_else(|| format!("snapshot cadence '{spec}' overflows"))?,
            ),
        })
    }
}

/// Where the scheduler writes: a file path (production; tmp + rename so a
/// crash mid-write never truncates the previous snapshot) or an in-memory
/// list (deterministic tests).
enum SnapshotSink {
    File(std::path::PathBuf),
    Memory(Vec<String>),
}

/// The background snapshot scheduler: driven by the serve loop on the
/// service's [`Clock`](crate::env::Clock), so under the sim environment
/// snapshot timing is a pure function of the event/advance script — the
/// determinism the scheduler proptests rely on.
pub struct SnapshotScheduler {
    cadence: SnapshotCadence,
    sink: SnapshotSink,
    last_events: u64,
    last_at_micros: u64,
    written: u64,
}

impl SnapshotScheduler {
    /// A scheduler writing snapshot documents to `path`.
    pub fn to_file(cadence: SnapshotCadence, path: impl Into<std::path::PathBuf>) -> Self {
        SnapshotScheduler {
            cadence,
            sink: SnapshotSink::File(path.into()),
            last_events: 0,
            last_at_micros: 0,
            written: 0,
        }
    }

    /// A scheduler buffering snapshot documents in memory (tests).
    pub fn in_memory(cadence: SnapshotCadence) -> Self {
        SnapshotScheduler {
            cadence,
            sink: SnapshotSink::Memory(Vec::new()),
            last_events: 0,
            last_at_micros: 0,
            written: 0,
        }
    }

    /// Snapshots written so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// The buffered documents (memory sink only; empty for the file sink).
    pub fn documents(&self) -> &[String] {
        match &self.sink {
            SnapshotSink::Memory(docs) => docs,
            SnapshotSink::File(_) => &[],
        }
    }

    /// One scheduler tick: check due-ness against the cadence, write a
    /// snapshot if due, and refresh the telemetry snapshot gauges. The
    /// serve loop calls this every iteration; a tick that isn't due costs
    /// one clock read and two integer compares (and the loop only ticks a
    /// scheduler that was configured — the unobserved path never gets
    /// here). Returns whether a snapshot was written.
    pub fn tick<P: crate::overlay::OverlayProtocol>(
        &mut self,
        svc: &crate::service::OverlayService<'_, P>,
        clock: &dyn crate::env::Clock,
        telemetry: Option<&crate::telemetry::Telemetry>,
    ) -> Result<bool, String> {
        let now = clock.now_micros();
        let due = match self.cadence {
            SnapshotCadence::Events(k) => {
                svc.events_applied().saturating_sub(self.last_events) >= k
            }
            SnapshotCadence::Micros(d) => now.saturating_sub(self.last_at_micros) >= d,
        };
        if !due {
            return Ok(false);
        }
        let doc = write_snapshot(
            svc.proto().name(),
            svc.graph(),
            svc.states(),
            svc.clock_rounds(),
        );
        let bytes = doc.len() as u64;
        match &mut self.sink {
            SnapshotSink::Memory(docs) => docs.push(doc),
            SnapshotSink::File(path) => {
                // tmp + rename: the previous snapshot survives any crash
                // mid-write, so a resume always sees a complete document.
                let tmp = path.with_extension("tmp");
                std::fs::write(&tmp, &doc)
                    .map_err(|e| format!("snapshot write {}: {e}", tmp.display()))?;
                std::fs::rename(&tmp, &path)
                    .map_err(|e| format!("snapshot rename {}: {e}", path.display()))?;
            }
        }
        self.last_events = svc.events_applied();
        self.last_at_micros = now;
        self.written += 1;
        if let Some(t) = telemetry {
            // Under SimClock render+write advances no virtual time, so the
            // duration gauge is deterministically 0 in tests and a real
            // measurement under the daemon's monotonic clock.
            t.record_snapshot(now, clock.now_micros().saturating_sub(now), bytes);
        }
        Ok(true)
    }
}

fn hex(bytes: &[u8]) -> String {
    const DIGITS: &[u8; 16] = b"0123456789abcdef";
    let mut out = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        out.push(DIGITS[(b >> 4) as usize] as char);
        out.push(DIGITS[(b & 0xf) as usize] as char);
    }
    out
}

fn unhex(text: &str) -> Result<Vec<u8>, String> {
    let raw = text.as_bytes();
    if !raw.len().is_multiple_of(2) {
        return Err("odd-length hex string".into());
    }
    let nibble = |c: u8| -> Result<u8, String> {
        match c {
            b'0'..=b'9' => Ok(c - b'0'),
            b'a'..=b'f' => Ok(c - b'a' + 10),
            b'A'..=b'F' => Ok(c - b'A' + 10),
            other => Err(format!("invalid hex byte {other:#04x}")),
        }
    };
    raw.chunks_exact(2)
        .map(|pair| Ok(nibble(pair[0])? << 4 | nibble(pair[1])?))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use selfstab_core::Pointer;
    use selfstab_graph::generators;

    #[test]
    fn snapshot_round_trips_graph_and_states() {
        let g = generators::cycle(5);
        let states: Vec<Pointer> = vec![
            Pointer(Some(Node(1))),
            Pointer(Some(Node(0))),
            Pointer(None),
            Pointer(Some(Node(4))),
            Pointer(Some(Node(3))),
        ];
        let doc = write_snapshot("smm", &g, &states, 17);
        let snap = Snapshot::parse(&doc).unwrap();
        assert_eq!(snap.protocol, "smm");
        assert_eq!(snap.n, 5);
        assert_eq!(snap.clock_rounds, 17);
        let g2 = snap.graph();
        assert_eq!(g2.m(), g.m());
        for u in g.nodes() {
            assert_eq!(g2.neighbors(u), g.neighbors(u));
        }
        assert_eq!(snap.decode_states::<Pointer>().unwrap(), states);
    }

    #[test]
    fn snapshot_rejects_corruption() {
        let g = generators::path(3);
        let states = vec![false, true, false];
        let doc = write_snapshot("smi", &g, &states, 0);
        Snapshot::parse(&doc.replace("selfstab-snapshot/v1", "v0")).unwrap_err();
        Snapshot::parse("{}").unwrap_err();
        Snapshot::parse("not json").unwrap_err();
        // Truncated state bytes: n bools need n bytes.
        let snap = Snapshot::parse(&doc).unwrap();
        assert_eq!(snap.decode_states::<bool>().unwrap(), states);
        let bad = doc.replace(&hex(&[0u8, 1, 0]), "00");
        Snapshot::parse(&bad)
            .unwrap()
            .decode_states::<bool>()
            .unwrap_err();
    }

    #[test]
    fn hex_round_trips() {
        let bytes: Vec<u8> = (0..=255).collect();
        assert_eq!(unhex(&hex(&bytes)).unwrap(), bytes);
        unhex("0").unwrap_err();
        unhex("zz").unwrap_err();
    }
}
