//! Durable service snapshots: the live graph + the wire-encoded global
//! state + the round clock, as one JSON document.
//!
//! A snapshot of a converged service is a *legitimate* configuration, so a
//! daemon restarted from one re-stabilizes in zero rounds — that is the
//! self-stabilization story applied to process restarts, and the
//! snapshot-reload test pins it. The per-node states ride as hex-encoded
//! [`WireState`] bytes (the same encoding beacon frames use), keeping the
//! document protocol-agnostic.

use selfstab_engine::protocol::WireState;
use selfstab_graph::{Graph, Node};
use selfstab_json::{Json, ToJson};

/// The format tag written into (and required of) every snapshot document.
pub const FORMAT: &str = "selfstab-snapshot/v1";

/// Render a snapshot document.
pub fn write_snapshot<S: WireState>(
    protocol: &str,
    graph: &Graph,
    states: &[S],
    clock_rounds: usize,
) -> String {
    let mut bytes = Vec::new();
    for s in states {
        s.encode(&mut bytes);
    }
    let edges: Vec<Json> = graph
        .nodes()
        .flat_map(|u| {
            graph
                .neighbors(u)
                .iter()
                .filter(move |&&v| u < v)
                .map(move |&v| Json::Array(vec![u.index().to_json(), v.index().to_json()]))
        })
        .collect();
    Json::obj([
        ("format", FORMAT.to_json()),
        ("protocol", protocol.to_json()),
        ("n", graph.n().to_json()),
        ("clock_rounds", clock_rounds.to_json()),
        ("edges", Json::Array(edges)),
        ("states", hex(&bytes).to_json()),
    ])
    .to_string()
}

/// A parsed (but not yet state-decoded) snapshot.
#[derive(Clone, Debug)]
pub struct Snapshot {
    /// Protocol name the snapshot was taken under.
    pub protocol: String,
    /// Node count.
    pub n: usize,
    /// Absolute round clock at snapshot time.
    pub clock_rounds: usize,
    /// Undirected edge list.
    pub edges: Vec<(usize, usize)>,
    state_bytes: Vec<u8>,
}

impl Snapshot {
    /// Parse a snapshot document.
    pub fn parse(text: &str) -> Result<Snapshot, String> {
        let v = Json::parse(text.trim()).map_err(|e| e.to_string())?;
        let format = v
            .get("format")
            .and_then(Json::as_str)
            .ok_or("missing `format`")?;
        if format != FORMAT {
            return Err(format!("unsupported snapshot format '{format}'"));
        }
        let protocol = v
            .get("protocol")
            .and_then(Json::as_str)
            .ok_or("missing `protocol`")?
            .to_string();
        let n = v.get("n").and_then(Json::as_u64).ok_or("missing `n`")? as usize;
        let clock_rounds = v
            .get("clock_rounds")
            .and_then(Json::as_u64)
            .ok_or("missing `clock_rounds`")? as usize;
        let mut edges = Vec::new();
        for e in v
            .get("edges")
            .and_then(Json::as_array)
            .ok_or("missing `edges` array")?
        {
            let pair = e.as_array().ok_or("edge is not a pair")?;
            let get = |i: usize| -> Result<usize, String> {
                pair.get(i)
                    .and_then(Json::as_u64)
                    .map(|x| x as usize)
                    .ok_or_else(|| "edge endpoint is not an index".to_string())
            };
            if pair.len() != 2 {
                return Err("edge is not a pair".into());
            }
            let (a, b) = (get(0)?, get(1)?);
            if a >= n || b >= n || a == b {
                return Err(format!("invalid edge {a}-{b} (n = {n})"));
            }
            edges.push((a, b));
        }
        let state_bytes = unhex(
            v.get("states")
                .and_then(Json::as_str)
                .ok_or("missing `states` hex string")?,
        )?;
        Ok(Snapshot {
            protocol,
            n,
            clock_rounds,
            edges,
            state_bytes,
        })
    }

    /// Rebuild the graph.
    pub fn graph(&self) -> Graph {
        let mut g = Graph::empty(self.n);
        for &(a, b) in &self.edges {
            g.add_edge(Node(a as u32), Node(b as u32));
        }
        g
    }

    /// Decode the per-node states; errors if the byte stream does not hold
    /// exactly `n` values.
    pub fn decode_states<S: WireState>(&self) -> Result<Vec<S>, String> {
        let mut states = Vec::with_capacity(self.n);
        let mut rest: &[u8] = &self.state_bytes;
        for i in 0..self.n {
            let (s, used) = S::decode_prefix(rest).map_err(|e| format!("state {i}: {e}"))?;
            states.push(s);
            rest = &rest[used..];
        }
        if !rest.is_empty() {
            return Err(format!("{} trailing state bytes", rest.len()));
        }
        Ok(states)
    }
}

fn hex(bytes: &[u8]) -> String {
    const DIGITS: &[u8; 16] = b"0123456789abcdef";
    let mut out = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        out.push(DIGITS[(b >> 4) as usize] as char);
        out.push(DIGITS[(b & 0xf) as usize] as char);
    }
    out
}

fn unhex(text: &str) -> Result<Vec<u8>, String> {
    let raw = text.as_bytes();
    if !raw.len().is_multiple_of(2) {
        return Err("odd-length hex string".into());
    }
    let nibble = |c: u8| -> Result<u8, String> {
        match c {
            b'0'..=b'9' => Ok(c - b'0'),
            b'a'..=b'f' => Ok(c - b'a' + 10),
            b'A'..=b'F' => Ok(c - b'A' + 10),
            other => Err(format!("invalid hex byte {other:#04x}")),
        }
    };
    raw.chunks_exact(2)
        .map(|pair| Ok(nibble(pair[0])? << 4 | nibble(pair[1])?))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use selfstab_core::Pointer;
    use selfstab_graph::generators;

    #[test]
    fn snapshot_round_trips_graph_and_states() {
        let g = generators::cycle(5);
        let states: Vec<Pointer> = vec![
            Pointer(Some(Node(1))),
            Pointer(Some(Node(0))),
            Pointer(None),
            Pointer(Some(Node(4))),
            Pointer(Some(Node(3))),
        ];
        let doc = write_snapshot("smm", &g, &states, 17);
        let snap = Snapshot::parse(&doc).unwrap();
        assert_eq!(snap.protocol, "smm");
        assert_eq!(snap.n, 5);
        assert_eq!(snap.clock_rounds, 17);
        let g2 = snap.graph();
        assert_eq!(g2.m(), g.m());
        for u in g.nodes() {
            assert_eq!(g2.neighbors(u), g.neighbors(u));
        }
        assert_eq!(snap.decode_states::<Pointer>().unwrap(), states);
    }

    #[test]
    fn snapshot_rejects_corruption() {
        let g = generators::path(3);
        let states = vec![false, true, false];
        let doc = write_snapshot("smi", &g, &states, 0);
        Snapshot::parse(&doc.replace("selfstab-snapshot/v1", "v0")).unwrap_err();
        Snapshot::parse("{}").unwrap_err();
        Snapshot::parse("not json").unwrap_err();
        // Truncated state bytes: n bools need n bytes.
        let snap = Snapshot::parse(&doc).unwrap();
        assert_eq!(snap.decode_states::<bool>().unwrap(), states);
        let bad = doc.replace(&hex(&[0u8, 1, 0]), "00");
        Snapshot::parse(&bad)
            .unwrap()
            .decode_states::<bool>()
            .unwrap_err();
    }

    #[test]
    fn hex_round_trips() {
        let bytes: Vec<u8> = (0..=255).collect();
        assert_eq!(unhex(&hex(&bytes)).unwrap(), bytes);
        unhex("0").unwrap_err();
        unhex("zz").unwrap_err();
    }
}
