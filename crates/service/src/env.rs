//! The swappable environment: a clock the service loop tells time and
//! sleeps through, with a **simulated** backend (virtual microseconds,
//! advanced deterministically — the proptest/CI backend) and a **real**
//! backend (monotonic wall clock + `thread::sleep` — the daemon backend).
//!
//! Everything in the service that touches time goes through [`Clock`], so
//! the exact same loop body runs under the test harness and under
//! `selfstab serve`. This is the `switchy`-style seam the whole subsystem
//! hangs off: swap the environment, not the logic.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Time as the service sees it.
///
/// `&self` methods only: the clock is shared by the serve loop and any
/// instrumentation hanging off it, and the simulated backend mutates
/// through a [`Cell`].
pub trait Clock {
    /// Microseconds since the clock's epoch (service start).
    fn now_micros(&self) -> u64;

    /// Give up the CPU for (at least) `micros` microseconds. The simulated
    /// backend advances virtual time instead of blocking.
    fn sleep_micros(&self, micros: u64);
}

/// Deterministic virtual time: starts at 0, advances only via
/// [`SimClock::advance`] or [`Clock::sleep_micros`]. Two runs that make the
/// same calls read the same timestamps.
#[derive(Debug, Default)]
pub struct SimClock {
    now: Cell<u64>,
}

impl SimClock {
    /// A clock at virtual time 0.
    pub fn new() -> Self {
        SimClock::default()
    }

    /// Advance virtual time by `micros`.
    pub fn advance(&self, micros: u64) {
        self.now.set(self.now.get().saturating_add(micros));
    }
}

impl Clock for SimClock {
    fn now_micros(&self) -> u64 {
        self.now.get()
    }

    fn sleep_micros(&self, micros: u64) {
        self.advance(micros);
    }
}

/// The real monotonic clock, epoch = construction time.
#[derive(Debug)]
pub struct RealClock {
    epoch: Instant,
}

impl RealClock {
    /// A clock whose epoch is now.
    pub fn new() -> Self {
        RealClock {
            epoch: Instant::now(),
        }
    }
}

impl Default for RealClock {
    fn default() -> Self {
        RealClock::new()
    }
}

impl Clock for RealClock {
    fn now_micros(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    fn sleep_micros(&self, micros: u64) {
        std::thread::sleep(Duration::from_micros(micros));
    }
}

/// A cooperative shutdown latch shared between the serve loop, the client
/// `shutdown` command, and the SIGINT handler.
///
/// [`ShutdownFlag::is_set`] also observes the process-wide SIGINT latch
/// (see [`crate::signal`]), so a Ctrl-C lands even though the C signal
/// handler cannot capture an `Arc`.
#[derive(Clone, Debug, Default)]
pub struct ShutdownFlag(Arc<AtomicBool>);

impl ShutdownFlag {
    /// A flag that is not set.
    pub fn new() -> Self {
        ShutdownFlag::default()
    }

    /// Request shutdown (idempotent).
    pub fn request(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// Whether shutdown has been requested, by this flag or by SIGINT.
    pub fn is_set(&self) -> bool {
        self.0.load(Ordering::SeqCst) || crate::signal::sigint_received()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_clock_is_deterministic() {
        let c = SimClock::new();
        assert_eq!(c.now_micros(), 0);
        c.advance(5);
        c.sleep_micros(7);
        assert_eq!(c.now_micros(), 12);
    }

    #[test]
    fn real_clock_is_monotone() {
        let c = RealClock::new();
        let a = c.now_micros();
        let b = c.now_micros();
        assert!(b >= a);
    }

    #[test]
    fn shutdown_flag_latches_and_clones_share() {
        let f = ShutdownFlag::new();
        let g = f.clone();
        assert!(!f.is_set());
        g.request();
        assert!(f.is_set());
    }
}
