//! Property-based tests for the paper's theorems on random graphs, random
//! initial states, and random ID orders.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use selfstab_core::smm::types::{check_trace, classify, NodeType};
use selfstab_core::smm::{SelectPolicy, Smm};
use selfstab_core::Smi;
use selfstab_engine::protocol::{InitialState, Protocol};
use selfstab_engine::sync::SyncExecutor;
use selfstab_graph::predicates::{is_maximal_independent_set, is_maximal_matching};
use selfstab_graph::{Graph, Ids, Node};

/// A connected random graph plus a random ID permutation.
fn arb_instance(max_n: usize) -> impl Strategy<Value = (Graph, Ids)> {
    (2..=max_n, any::<u64>()).prop_map(|(n, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        // Random spanning tree + random extra edges keeps it connected.
        let mut g = selfstab_graph::generators::random_tree(n, &mut rng);
        let extra = n / 2;
        for _ in 0..extra {
            use rand::RngExt;
            let a = rng.random_range(0..n);
            let b = rng.random_range(0..n);
            if a != b {
                g.add_edge(Node::from(a), Node::from(b));
            }
        }
        let ids = Ids::random(n, &mut rng);
        (g, ids)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Theorem 1: SMM stabilizes within n + 1 rounds from any initial state
    /// and the result is a maximal matching with all unmatched nodes null.
    #[test]
    fn smm_theorem_1((g, ids) in arb_instance(24), seed in any::<u64>()) {
        let n = g.n();
        let smm = Smm::paper(ids);
        let exec = SyncExecutor::new(&g, &smm);
        let run = exec.run(InitialState::Random { seed }, n + 1);
        prop_assert!(run.stabilized(), "not stabilized in n+1 rounds");
        let matching = Smm::matched_edges(&g, &run.final_states);
        prop_assert!(is_maximal_matching(&g, &matching));
        prop_assert!(smm.is_legitimate(&g, &run.final_states));
    }

    /// The accept-policy choice in R1 is free: Theorem 1 must hold for all
    /// of them.
    #[test]
    fn smm_accept_policy_is_free((g, ids) in arb_instance(16), seed in any::<u64>()) {
        let n = g.n();
        for accept in [
            SelectPolicy::MinId,
            SelectPolicy::MaxId,
            SelectPolicy::FirstIndex,
            SelectPolicy::Hashed,
        ] {
            let smm = Smm::with_policies(ids.clone(), accept, SelectPolicy::MinId);
            let run = SyncExecutor::new(&g, &smm).run(InitialState::Random { seed }, n + 1);
            prop_assert!(run.stabilized(), "accept={accept:?}");
            prop_assert!(smm.is_legitimate(&g, &run.final_states));
        }
    }

    /// Figure 3: every executed transition is an arrow of the diagram, and
    /// A1 / PA are empty from round 1 (Lemma 7).
    #[test]
    fn smm_figure_3((g, ids) in arb_instance(16), seed in any::<u64>()) {
        let n = g.n();
        let smm = Smm::paper(ids);
        let run = SyncExecutor::new(&g, &smm).with_trace().run(InitialState::Random { seed }, n + 1);
        prop_assert!(run.stabilized());
        let trace = run.trace.as_ref().expect("traced");
        prop_assert!(check_trace(&g, trace).is_ok());
        for states in &trace[1..] {
            for ty in classify(&g, states) {
                prop_assert!(ty != NodeType::A1 && ty != NodeType::Pa, "Lemma 7");
            }
        }
    }

    /// Lemma 1: the matched-node set only grows along any execution.
    #[test]
    fn smm_matching_monotone((g, ids) in arb_instance(16), seed in any::<u64>()) {
        let n = g.n();
        let smm = Smm::paper(ids);
        let run = SyncExecutor::new(&g, &smm).with_trace().run(InitialState::Random { seed }, n + 1);
        let trace = run.trace.as_ref().expect("traced");
        let mut prev = vec![false; n];
        for states in trace {
            let cur = Smm::matched_nodes(&g, states);
            for i in 0..n {
                prop_assert!(!prev[i] || cur[i]);
            }
            prev = cur;
        }
    }

    /// Theorem 2: SMI stabilizes within ~n rounds from any initial state and
    /// the stabilized set is a maximal independent set.
    #[test]
    fn smi_theorem_2((g, ids) in arb_instance(24), seed in any::<u64>()) {
        let n = g.n();
        let smi = Smi::new(ids);
        let run = SyncExecutor::new(&g, &smi).run(InitialState::Random { seed }, n + 2);
        prop_assert!(run.stabilized(), "not stabilized in n+2 rounds");
        prop_assert!(is_maximal_independent_set(&g, &run.final_states));
    }

    /// SMI members after stabilization never include two adjacent nodes even
    /// mid-execution *once stabilized* — and the run is deterministic.
    #[test]
    fn smi_deterministic((g, ids) in arb_instance(12), seed in any::<u64>()) {
        let smi = Smi::new(ids);
        let a = SyncExecutor::new(&g, &smi).run(InitialState::Random { seed }, 100);
        let b = SyncExecutor::new(&g, &smi).run(InitialState::Random { seed }, 100);
        prop_assert_eq!(a.final_states, b.final_states);
        prop_assert_eq!(a.rounds, b.rounds);
    }

    /// Matched pairs survive arbitrary *other* corruption: corrupt any one
    /// non-matched node and re-run — previously matched pairs stay matched
    /// (Lemma 1 applies from the corrupted state too).
    #[test]
    fn smm_matched_pairs_resist_third_party_corruption(
        (g, ids) in arb_instance(12),
        seed in any::<u64>(),
        victim_raw in any::<usize>(),
    ) {
        let n = g.n();
        let smm = Smm::paper(ids);
        let exec = SyncExecutor::new(&g, &smm);
        let stable = exec.run(InitialState::Random { seed }, n + 1);
        prop_assert!(stable.stabilized());
        let matched_before = Smm::matched_nodes(&g, &stable.final_states);
        let victim = Node::from(victim_raw % n);
        if matched_before[victim.index()] {
            return Ok(()); // only third-party corruption in this property
        }
        let mut corrupted = stable.final_states.clone();
        // Point the victim somewhere arbitrary (worst case: at a matched node).
        let target = g.neighbors(victim).first().copied();
        corrupted[victim.index()] = selfstab_core::Pointer(target);
        let rerun = exec.run(InitialState::Explicit(corrupted), n + 1);
        prop_assert!(rerun.stabilized());
        let matched_after = Smm::matched_nodes(&g, &rerun.final_states);
        for i in 0..n {
            prop_assert!(!matched_before[i] || matched_after[i], "pair broken at {i}");
        }
    }
}
