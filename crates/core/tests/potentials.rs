//! Empirical validation of the proof arguments via potential tracking:
//! the quantities the paper's lemmas claim are monotone really are, along
//! entire executions, not just at the endpoints.

use selfstab_core::smm::Smm;
use selfstab_core::Smi;
use selfstab_engine::potential::{track, PotentialSeries};
use selfstab_engine::protocol::InitialState;
use selfstab_engine::sync::SyncExecutor;
use selfstab_graph::{generators, Ids, Node};

/// Lemma 1 as a potential: the number of matched nodes never decreases.
#[test]
fn smm_matched_count_is_monotone_potential() {
    for fam in generators::Family::ALL {
        let g = fam.build(20);
        let n = g.n();
        let smm = Smm::paper(Ids::identity(n));
        for seed in 0..10 {
            let (run, series) = track(
                &g,
                &smm,
                InitialState::Random { seed },
                n + 1,
                |g, states| Smm::matched_edges(g, states).len(),
            );
            assert!(run.stabilized());
            assert!(
                series.is_non_decreasing(),
                "{}: {:?}",
                fam.name(),
                series.values
            );
        }
    }
}

/// Lemmas 9–10 as a potential shape: from round 1 on, the matching strictly
/// grows over every 2-round window (until quiescence).
#[test]
fn smm_matching_strictly_grows_every_two_rounds_after_round_one() {
    let g = generators::grid(6, 6);
    let smm = Smm::paper(Ids::reversed(36));
    for seed in 0..10 {
        let (run, series) = track(&g, &smm, InitialState::Random { seed }, 37, |g, states| {
            Smm::matched_edges(g, states).len()
        });
        assert!(run.stabilized());
        // Drop the t=0 entry: Lemma 10 applies from t >= 1.
        let tail = PotentialSeries {
            values: series.values[1..].to_vec(),
        };
        assert!(
            tail.strictly_increases_every(2),
            "seed {seed}: {:?}",
            series.values
        );
    }
}

/// Theorem 2's induction base: the maximum-ID node is in the set from round
/// one onwards, permanently.
#[test]
fn smi_maximum_node_locks_in_after_one_round() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(5);
    let g = generators::erdos_renyi_connected(25, 0.2, &mut rng);
    let ids = Ids::random(25, &mut rng);
    let top = ids.max_by_id(g.nodes()).expect("non-empty");
    let smi = Smi::new(ids);
    for seed in 0..20 {
        let exec = SyncExecutor::new(&g, &smi);
        let mut ok = true;
        let run = exec.run_with_observer(
            InitialState::Random { seed },
            27,
            |round, _moves, states| {
                if round >= 2 {
                    ok &= states[top.index()];
                }
            },
        );
        assert!(run.stabilized());
        assert!(ok, "top node flapped after round 2 (seed {seed})");
        assert!(run.final_states[top.index()]);
    }
}

/// SMI potential: the number of "settled-correct" nodes in descending ID
/// order (the longest prefix of the descending-ID order whose states equal
/// the greedy-MIS fixpoint) never decreases from the all-out start.
#[test]
fn smi_descending_prefix_potential_from_all_out() {
    use selfstab_core::oracle::greedy_mis_by_id_desc;
    let n = 30;
    let g = generators::path(n);
    let ids = Ids::identity(n);
    let target = greedy_mis_by_id_desc(&g, &ids);
    let order: Vec<Node> = {
        let mut v: Vec<Node> = g.nodes().collect();
        v.sort_by_key(|&x| std::cmp::Reverse(ids.id(x)));
        v
    };
    let smi = Smi::new(ids);
    let (run, series) = track(&g, &smi, InitialState::Default, n + 2, |_, states| {
        order
            .iter()
            .take_while(|v| states[v.index()] == target[v.index()])
            .count()
    });
    assert!(run.stabilized());
    assert_eq!(run.final_states, target);
    // The prefix must be monotone from round 1 (round 0 is the all-out
    // state, which may already agree on a prefix that round 1 temporarily
    // breaks by everyone entering — the lemma-style argument starts after
    // the first synchronized step).
    let tail = PotentialSeries {
        values: series.values[1..].to_vec(),
    };
    assert!(tail.is_non_decreasing(), "{:?}", series.values);
}
