//! Self-stabilizing BFS (multicast) tree maintenance.
//!
//! The paper's introduction motivates the whole enterprise with multicast:
//! *"a minimal spanning tree must be maintained to minimize latency and
//! bandwidth requirements of multicast/broadcast messages"*, citing the
//! Dolev–Pradhan–Welch and Gupta–Srimani tree protocols (refs. 1, 13, 14).
//! This module provides that substrate in the same synchronous beacon
//! model: a shortest-path (BFS) tree rooted at the multicast source,
//! maintained self-stabilizingly.
//!
//! Per-node state is `(dist, parent)`. With `CAP = n` acting as ∞:
//!
//! * **R0 (root):** the source holds `(0, ⊥)` — reset if corrupted.
//! * **R1 (relax):** a non-source node recomputes
//!   `d* = min(min_j dist(j) + 1, CAP)` from its neighbors' beacons and
//!   points at the **minimum-ID** neighbor achieving `d* − 1` (the same
//!   tie-break discipline as SMM's R2); it moves whenever its `(dist,
//!   parent)` differs from the recomputed pair — including when its parent
//!   pointer dangles after a link failure.
//!
//! Convergence in the synchronous model: any value not anchored at the
//! source exceeds `t` plus the minimum initial value after `t` rounds
//! (min-plus dynamics add one per round), so ghost distances flush to `CAP`
//! within `n` rounds, true distances propagate within `ecc(source)` rounds,
//! and parents settle one round later — `O(n)` rounds overall, which the
//! tests bound by `2n + 2` and the exhaustive checker verifies exactly on
//! small instances.

use rand::rngs::StdRng;
use rand::RngExt;
use selfstab_engine::protocol::{Move, Protocol, View};
use selfstab_graph::traversal::bfs_distances;
use selfstab_graph::{Graph, Ids, Node};
use selfstab_json::{FromJson, Json, JsonError, ToJson};

/// Per-node state: distance estimate and parent pointer.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct TreeState {
    /// Distance estimate to the source (`cap` = unreachable/∞).
    pub dist: u32,
    /// Parent in the tree (`None` for the source or while unreachable).
    pub parent: Option<Node>,
}

impl ToJson for TreeState {
    fn to_json(&self) -> Json {
        Json::obj([
            ("dist", self.dist.to_json()),
            ("parent", self.parent.to_json()),
        ])
    }
}

impl FromJson for TreeState {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(TreeState {
            dist: u32::from_json(value.field("dist")?)?,
            parent: Option::<Node>::from_json(value.field("parent")?)?,
        })
    }
}

/// Self-stabilizing BFS tree rooted at a multicast source.
#[derive(Clone, Debug)]
pub struct BfsTree {
    root: Node,
    ids: Ids,
    cap: u32,
}

/// Rule indices into [`BfsTree::rule_names`].
pub mod rule {
    /// R1: relax distance / reparent.
    pub const RELAX: usize = 0;
    /// R0: reset the corrupted source.
    pub const ROOT_RESET: usize = 1;
}

impl BfsTree {
    /// Protocol for a network of `n` nodes rooted at `root`.
    pub fn new(root: Node, ids: Ids) -> Self {
        let cap = ids.len() as u32;
        BfsTree { root, ids, cap }
    }

    /// The multicast source.
    pub fn root(&self) -> Node {
        self.root
    }

    /// The `∞` sentinel (= n).
    pub fn cap(&self) -> u32 {
        self.cap
    }

    /// The desired `(dist, parent)` for a non-root node given its view.
    fn desired(&self, view: &View<'_, TreeState>) -> TreeState {
        let best = view
            .neighbor_states()
            .map(|(_, s)| s.dist.min(self.cap))
            .min()
            .map_or(self.cap, |d| (d + 1).min(self.cap));
        if best >= self.cap {
            return TreeState {
                dist: self.cap,
                parent: None,
            };
        }
        let parent = self.ids.min_by_id(
            view.neighbor_states()
                .filter(|(_, s)| s.dist.min(self.cap) == best - 1)
                .map(|(j, _)| j),
        );
        TreeState { dist: best, parent }
    }

    /// The tree edges (child, parent) of a global state.
    pub fn tree_edges(states: &[TreeState]) -> Vec<(Node, Node)> {
        states
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.parent.map(|p| (Node::from(i), p)))
            .collect()
    }
}

impl Protocol for BfsTree {
    type State = TreeState;

    fn rule_names(&self) -> &'static [&'static str] {
        &["R1:relax", "R0:root-reset"]
    }

    fn default_state(&self) -> TreeState {
        TreeState {
            dist: self.cap,
            parent: None,
        }
    }

    fn arbitrary_state(&self, _node: Node, neighbors: &[Node], rng: &mut StdRng) -> TreeState {
        let dist = rng.random_range(0..=self.cap);
        let parent = if neighbors.is_empty() || rng.random_bool(0.3) {
            None
        } else {
            Some(neighbors[rng.random_range(0..neighbors.len())])
        };
        TreeState { dist, parent }
    }

    fn enumerate_states(&self, _node: Node, neighbors: &[Node]) -> Vec<TreeState> {
        let mut out = Vec::new();
        for dist in 0..=self.cap {
            out.push(TreeState { dist, parent: None });
            for &p in neighbors {
                out.push(TreeState {
                    dist,
                    parent: Some(p),
                });
            }
        }
        out
    }

    fn step(&self, view: View<'_, TreeState>) -> Option<Move<TreeState>> {
        if view.node() == self.root {
            let want = TreeState {
                dist: 0,
                parent: None,
            };
            return (*view.own() != want).then_some(Move {
                rule: rule::ROOT_RESET,
                next: want,
            });
        }
        let want = self.desired(&view);
        (*view.own() != want).then_some(Move {
            rule: rule::RELAX,
            next: want,
        })
    }

    /// Legitimate iff every distance is the true BFS distance from the
    /// source and every parent is the min-ID neighbor one step closer.
    fn is_legitimate(&self, graph: &Graph, states: &[TreeState]) -> bool {
        let truth = bfs_distances(graph, self.root);
        graph.nodes().all(|v| {
            let s = states[v.index()];
            let true_d = truth[v.index()].min(self.cap as usize) as u32;
            if s.dist != true_d {
                return false;
            }
            if v == self.root || true_d >= self.cap {
                return s.parent.is_none();
            }
            let expected = self.ids.min_by_id(
                graph
                    .neighbors(v)
                    .iter()
                    .copied()
                    .filter(|&u| truth[u.index()].min(self.cap as usize) as u32 == true_d - 1),
            );
            s.parent == expected
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use selfstab_engine::exhaustive::{all_connected_graphs, verify_all_initial_states};
    use selfstab_engine::protocol::InitialState;
    use selfstab_engine::sync::SyncExecutor;
    use selfstab_graph::generators;

    #[test]
    fn stabilizes_to_true_bfs_tree_on_suite() {
        for fam in generators::Family::ALL {
            let g = fam.build(24);
            let n = g.n();
            for root in [Node(0), Node((n - 1) as u32)] {
                let proto = BfsTree::new(root, Ids::identity(n));
                let exec = SyncExecutor::new(&g, &proto);
                for seed in 0..8 {
                    let run = exec.run(InitialState::Random { seed }, 2 * n + 2);
                    assert!(run.stabilized(), "{} root {root}", fam.name());
                    assert!(
                        proto.is_legitimate(&g, &run.final_states),
                        "{} root {root} seed {seed}",
                        fam.name()
                    );
                }
            }
        }
    }

    #[test]
    fn tree_edges_form_spanning_tree() {
        let g = generators::grid(5, 5);
        let proto = BfsTree::new(Node(12), Ids::reversed(25));
        let run = SyncExecutor::new(&g, &proto).run(InitialState::Random { seed: 3 }, 60);
        assert!(run.stabilized());
        let edges = BfsTree::tree_edges(&run.final_states);
        assert_eq!(edges.len(), 24, "spanning tree has n-1 edges");
        // Every edge is a real graph edge pointing one level up.
        for (child, parent) in edges {
            assert!(g.has_edge(child, parent));
            assert_eq!(
                run.final_states[child.index()].dist,
                run.final_states[parent.index()].dist + 1
            );
        }
    }

    #[test]
    fn ghost_distances_flush() {
        // Everyone claims distance 0 initially — the classic corrupted
        // state. The protocol must not believe the ghosts.
        let g = generators::path(12);
        let proto = BfsTree::new(Node(0), Ids::identity(12));
        let init = vec![
            TreeState {
                dist: 0,
                parent: None
            };
            12
        ];
        let run = SyncExecutor::new(&g, &proto).run(InitialState::Explicit(init), 26);
        assert!(run.stabilized());
        assert!(proto.is_legitimate(&g, &run.final_states));
        assert_eq!(run.final_states[11].dist, 11);
    }

    #[test]
    fn exhaustive_small_instances() {
        // Full product state space is large (dist × parent per node); keep
        // to n <= 3 for the exact check, sampled sweeps cover the rest.
        for n in 2..=3 {
            for g in all_connected_graphs(n) {
                let proto = BfsTree::new(Node(0), Ids::identity(n));
                let report = verify_all_initial_states(&g, &proto, 2 * n + 2, |_, _| true);
                assert!(report.all_ok(), "n={n}: {report:?}");
            }
        }
    }

    #[test]
    fn link_failure_reroutes_the_tree() {
        // Cut the tree edge 0-1 on a cycle: node 1 must reroute the long
        // way around, and distances must re-settle on the new topology.
        let mut g = generators::cycle(8);
        let proto = BfsTree::new(Node(0), Ids::identity(8));
        let run = SyncExecutor::new(&g, &proto).run(InitialState::Default, 20);
        assert!(run.stabilized());
        assert_eq!(run.final_states[1].dist, 1);
        g.remove_edge(Node(0), Node(1));
        let exec = SyncExecutor::new(&g, &proto);
        let rerun = exec.run(InitialState::Explicit(run.final_states), 40);
        assert!(rerun.stabilized());
        assert!(proto.is_legitimate(&g, &rerun.final_states));
        assert_eq!(rerun.final_states[1].dist, 7, "around the long way");
        assert_eq!(rerun.final_states[1].parent, Some(Node(2)));
    }

    #[test]
    fn parent_ties_break_by_min_id() {
        // Node 3 of K4 rooted at 0... take C4 instead: node 2 has two
        // neighbors at distance 1 (nodes 1 and 3); min-ID wins.
        let g = generators::cycle(4);
        let proto = BfsTree::new(Node(0), Ids::identity(4));
        let run = SyncExecutor::new(&g, &proto).run(InitialState::Default, 12);
        assert!(run.stabilized());
        assert_eq!(run.final_states[2].parent, Some(Node(1)));
        // With reversed IDs node 3 has the smaller protocol ID.
        let proto = BfsTree::new(Node(0), Ids::reversed(4));
        let run = SyncExecutor::new(&g, &proto).run(InitialState::Default, 12);
        assert!(run.stabilized());
        assert_eq!(run.final_states[2].parent, Some(Node(3)));
    }
}
