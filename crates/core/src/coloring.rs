//! **Algorithm SC** — synchronous self-stabilizing (Δ+1)-coloring.
//!
//! The paper cites, as the same program of work, "Fault tolerant distributed
//! coloring algorithms that stabilize in linear time" (Hedetniemi, Jacobs,
//! Srimani — IPDPS 2002 workshops, ref.\[7\]). This module implements the
//! synchronous-model variant in the exact style of SMI, with ID symmetry
//! breaking:
//!
//! * **R0 (range-reset):** my color exceeds my degree (possible only in a
//!   corrupted state) — adopt the minimum color not used by any neighbor.
//! * **R1 (recolor):** some **bigger-ID** neighbor has my color — adopt the
//!   minimum color not used by any neighbor (in the beacon snapshot).
//!
//! A node with a color conflict only yields to *bigger* conflicting
//! neighbors, mirroring SMI's R2, which is what makes the synchronous
//! execution converge:
//!
//! 1. after one round every color is in `0..=deg` (R0 fires at most once
//!    per node, and every recolor lands in range);
//! 2. the maximum-ID node then never moves again;
//! 3. inductively, once every node bigger than `x` has stopped moving, `x`
//!    moves at most once more — its recolor excludes all (now fixed) bigger
//!    neighbors' colors, and afterwards only *smaller* nodes can conflict
//!    with `x`, which never enables `x`'s rules again.
//!
//! Hence stabilization within `n + 2` rounds, to a proper coloring using at
//! most Δ+1 colors (the min-free color is at most the degree). Both bounds
//! are exercised by the tests and by experiment E12c.

use rand::rngs::StdRng;
use rand::RngExt;
use selfstab_engine::protocol::{Move, Protocol, View};
use selfstab_graph::{Graph, Ids, Node};

/// A color, densely numbered from 0.
pub type Color = u32;

/// Algorithm SC. See the [module docs](self).
#[derive(Clone, Debug)]
pub struct Coloring {
    ids: Ids,
}

/// Rule indices into [`Coloring::rule_names`].
pub mod rule {
    /// R1: adopt the minimum free color after a conflict with a bigger node.
    pub const RECOLOR: usize = 0;
    /// R0: reset an out-of-range (corrupted) color.
    pub const RESET: usize = 1;
}

impl Coloring {
    /// SC with the given ID assignment.
    pub fn new(ids: Ids) -> Self {
        Coloring { ids }
    }

    /// The ID assignment this instance runs with.
    pub fn ids(&self) -> &Ids {
        &self.ids
    }

    /// The minimum color not present among `used` (which need not be
    /// sorted).
    pub fn min_free_color(used: &[Color]) -> Color {
        let mut present = vec![false; used.len() + 1];
        for &c in used {
            if (c as usize) < present.len() {
                present[c as usize] = true;
            }
        }
        present
            .iter()
            .position(|&p| !p)
            .expect("a free slot exists among deg+1 slots") as Color
    }

    /// Is `colors` a proper coloring of `g`?
    pub fn is_proper(g: &Graph, colors: &[Color]) -> bool {
        g.edges()
            .all(|e| colors[e.a.index()] != colors[e.b.index()])
    }

    /// Number of distinct colors used.
    pub fn palette_size(colors: &[Color]) -> usize {
        let mut sorted = colors.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        sorted.len()
    }
}

impl Protocol for Coloring {
    type State = Color;

    fn rule_names(&self) -> &'static [&'static str] {
        &["R1:recolor", "R0:range-reset"]
    }

    fn default_state(&self) -> Color {
        0
    }

    fn arbitrary_state(&self, _node: Node, neighbors: &[Node], rng: &mut StdRng) -> Color {
        // Any color in 0..=deg is reachable by the protocol itself; allow a
        // slightly larger range so corrupted states exceed the legal
        // palette.
        rng.random_range(0..=(neighbors.len() as Color + 1))
    }

    fn enumerate_states(&self, _node: Node, neighbors: &[Node]) -> Vec<Color> {
        (0..=(neighbors.len() as Color + 1)).collect()
    }

    fn step(&self, view: View<'_, Color>) -> Option<Move<Color>> {
        let i = view.node();
        let mine = *view.own();
        if mine as usize > view.neighbors().len() {
            // R0: out-of-range color (corruption or lost links).
            let used: Vec<Color> = view.neighbor_states().map(|(_, &c)| c).collect();
            return Some(Move {
                rule: rule::RESET,
                next: Self::min_free_color(&used),
            });
        }
        let my_id = self.ids.id(i);
        let conflict_with_bigger = view
            .neighbor_states()
            .any(|(j, &c)| c == mine && self.ids.id(j) > my_id);
        if !conflict_with_bigger {
            return None;
        }
        let used: Vec<Color> = view.neighbor_states().map(|(_, &c)| c).collect();
        let free = Self::min_free_color(&used);
        debug_assert_ne!(
            free, mine,
            "a conflicted node always has a different free color"
        );
        Some(Move {
            rule: rule::RECOLOR,
            next: free,
        })
    }

    /// Legitimate iff the coloring is proper and uses only colors
    /// `0..=deg(i)` at each node (so at most Δ+1 overall).
    fn is_legitimate(&self, graph: &Graph, states: &[Color]) -> bool {
        Self::is_proper(graph, states)
            && graph
                .nodes()
                .all(|v| states[v.index()] as usize <= graph.degree(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use selfstab_engine::exhaustive::{all_connected_graphs, verify_all_initial_states};
    use selfstab_engine::protocol::InitialState;
    use selfstab_engine::sync::SyncExecutor;
    use selfstab_graph::generators;

    #[test]
    fn min_free_color_basics() {
        assert_eq!(Coloring::min_free_color(&[]), 0);
        assert_eq!(Coloring::min_free_color(&[0]), 1);
        assert_eq!(Coloring::min_free_color(&[1]), 0);
        assert_eq!(Coloring::min_free_color(&[0, 1, 2]), 3);
        assert_eq!(Coloring::min_free_color(&[2, 0, 5, 1]), 3);
        assert_eq!(Coloring::min_free_color(&[7, 9]), 0);
    }

    #[test]
    fn rule_only_yields_to_bigger() {
        let g = generators::path(3);
        let sc = Coloring::new(Ids::identity(3));
        // 0 and 1 share color 0: node 0 must move (bigger neighbor), node 1
        // must not (its conflicting neighbor is smaller).
        let states = vec![0, 0, 1];
        let mv = sc
            .step(View::new(Node(0), g.neighbors(Node(0)), &states))
            .expect("conflicted with bigger");
        assert_eq!(mv.rule, rule::RECOLOR);
        assert_eq!(mv.next, 1, "min free color given neighbor colors {{0}}");
        assert!(sc
            .step(View::new(Node(1), g.neighbors(Node(1)), &states))
            .is_none());
        assert!(sc
            .step(View::new(Node(2), g.neighbors(Node(2)), &states))
            .is_none());
    }

    #[test]
    fn stabilizes_within_n_plus_2_rounds_and_delta_plus_1_colors() {
        for fam in generators::Family::ALL {
            for n in [4usize, 12, 27] {
                let g = fam.build(n);
                let n_actual = g.n();
                let sc = Coloring::new(Ids::identity(n_actual));
                let exec = SyncExecutor::new(&g, &sc);
                for seed in 0..10 {
                    let run = exec.run(InitialState::Random { seed }, n_actual + 2);
                    assert!(run.stabilized(), "{} n={n_actual}", fam.name());
                    assert!(Coloring::is_proper(&g, &run.final_states));
                    assert!(
                        Coloring::palette_size(&run.final_states) <= g.max_degree() + 1,
                        "{}: palette exceeds Δ+1",
                        fam.name()
                    );
                }
            }
        }
    }

    #[test]
    fn all_default_start_needs_work() {
        // All-zero start on a clique: everyone conflicts; colors must fan
        // out to 0..n-1.
        let g = generators::complete(6);
        let sc = Coloring::new(Ids::identity(6));
        let run = SyncExecutor::new(&g, &sc).run(InitialState::Default, 7);
        assert!(run.stabilized());
        let mut colors = run.final_states.clone();
        colors.sort_unstable();
        assert_eq!(colors, vec![0, 1, 2, 3, 4, 5], "K6 forces 6 colors");
    }

    #[test]
    fn exhaustive_on_small_graphs() {
        for n in 2..=4 {
            for g in all_connected_graphs(n) {
                let sc = Coloring::new(Ids::identity(n));
                let report = verify_all_initial_states(&g, &sc, n + 2, |g, states| {
                    Coloring::is_proper(g, states)
                });
                assert!(report.all_ok(), "n={n}: {report:?}");
            }
        }
    }

    #[test]
    fn bipartite_graphs_get_two_colors_with_good_ids() {
        // On a path with identity IDs from the all-zero state the coloring
        // alternates at most 0/1 — never needs a third color... actually the
        // cascade can transiently use color 2 on interior nodes; the final
        // palette just has to be proper and ≤ Δ+1 = 3. Assert the stronger
        // property only where it is guaranteed: stars.
        let g = generators::star(9);
        let sc = Coloring::new(Ids::identity(9));
        let run = SyncExecutor::new(&g, &sc).run(InitialState::Default, 10);
        assert!(run.stabilized());
        assert!(Coloring::palette_size(&run.final_states) <= 2);
    }
}
