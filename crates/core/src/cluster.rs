//! Cluster-head election — the application the paper's introduction
//! motivates for maximal independent sets.
//!
//! In ad hoc networks an MIS gives a set of *cluster heads*: no two heads
//! interfere (independence) and every host hears at least one head
//! (domination). An MIS is automatically a **minimal dominating set** —
//! remove any head and it is no longer dominated by the others, since none
//! of its neighbors is a head. This module derives the clustering from a
//! stabilized SMI state and verifies those properties on the live topology.

use crate::smi::Smi;
use selfstab_engine::protocol::InitialState;
use selfstab_engine::sync::SyncExecutor;
use selfstab_graph::predicates::{is_maximal_independent_set, is_minimal_dominating_set};
use selfstab_graph::{Graph, Ids, Node};

/// A clustering of the network derived from an MIS.
#[derive(Clone, Debug)]
pub struct Clustering {
    /// `head[v]` — whether `v` is a cluster head.
    pub head: Vec<bool>,
    /// `assignment[v]` — the head serving `v` (itself if `v` is a head;
    /// otherwise the neighboring head with the largest ID, a deterministic
    /// choice every member can make locally).
    pub assignment: Vec<Node>,
}

impl Clustering {
    /// Derive a clustering from an MIS membership vector.
    ///
    /// Panics if `mis` is not a maximal independent set of `g` (callers
    /// should only pass stabilized states).
    pub fn from_mis(g: &Graph, ids: &Ids, mis: &[bool]) -> Self {
        assert!(
            is_maximal_independent_set(g, mis),
            "clustering requires a maximal independent set"
        );
        let assignment = g
            .nodes()
            .map(|v| {
                if mis[v.index()] {
                    v
                } else {
                    ids.max_by_id(g.neighbors(v).iter().copied().filter(|&u| mis[u.index()]))
                        .expect("MIS dominates every node")
                }
            })
            .collect();
        Clustering {
            head: mis.to_vec(),
            assignment,
        }
    }

    /// Number of clusters.
    pub fn cluster_count(&self) -> usize {
        self.head.iter().filter(|&&h| h).count()
    }

    /// The members of each cluster, keyed by head.
    pub fn clusters(&self) -> Vec<(Node, Vec<Node>)> {
        let mut out: Vec<(Node, Vec<Node>)> = self
            .head
            .iter()
            .enumerate()
            .filter(|&(_i, &h)| h)
            .map(|(i, &_h)| (Node::from(i), Vec::new()))
            .collect();
        for (i, &h) in self.assignment.iter().enumerate() {
            let slot = out
                .iter_mut()
                .find(|(head, _)| *head == h)
                .expect("assignment targets a head");
            slot.1.push(Node::from(i));
        }
        out
    }
}

/// Run SMI to stabilization and derive the clustering. Returns `None` if
/// SMI fails to stabilize within `max_rounds` (cannot happen for sane
/// bounds; see Theorem 2).
pub fn elect_cluster_heads(
    g: &Graph,
    ids: Ids,
    init: InitialState<bool>,
    max_rounds: usize,
) -> Option<(Clustering, usize)> {
    let smi = Smi::new(ids.clone());
    let run = SyncExecutor::new(g, &smi).run(init, max_rounds);
    if !run.stabilized() {
        return None;
    }
    let clustering = Clustering::from_mis(g, &ids, &run.final_states);
    debug_assert!(is_minimal_dominating_set(g, &clustering.head));
    Some((clustering, run.rounds()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use selfstab_graph::generators;

    #[test]
    fn clustering_covers_every_node_exactly_once() {
        for fam in generators::Family::ALL {
            let g = fam.build(24);
            let n = g.n();
            let (clustering, rounds) = elect_cluster_heads(
                &g,
                Ids::identity(n),
                InitialState::Random { seed: 5 },
                n + 2,
            )
            .expect("stabilizes");
            assert!(rounds <= n + 2);
            let total: usize = clustering.clusters().iter().map(|(_, m)| m.len()).sum();
            assert_eq!(total, n, "{}", fam.name());
            // Every member is its head or adjacent to it.
            for (head, members) in clustering.clusters() {
                for m in members {
                    assert!(m == head || g.has_edge(m, head));
                }
            }
        }
    }

    #[test]
    fn heads_form_minimal_dominating_set() {
        let g = generators::grid(6, 6);
        let (clustering, _) =
            elect_cluster_heads(&g, Ids::reversed(36), InitialState::Default, 40).expect("stab");
        assert!(is_minimal_dominating_set(&g, &clustering.head));
        assert!(
            clustering.cluster_count() >= 36 / 5,
            "grid needs many heads"
        );
    }

    #[test]
    fn members_pick_largest_id_head() {
        // Path 0-1-2 with identity IDs: MIS from all-out is {2, 0}.
        let g = generators::path(3);
        let (clustering, _) =
            elect_cluster_heads(&g, Ids::identity(3), InitialState::Default, 10).expect("stab");
        assert_eq!(clustering.head, vec![true, false, true]);
        assert_eq!(
            clustering.assignment[1],
            Node(2),
            "1 prefers head 2 over head 0"
        );
    }

    #[test]
    #[should_panic(expected = "maximal independent set")]
    fn rejects_non_mis_input() {
        let g = generators::path(3);
        Clustering::from_mis(&g, &Ids::identity(3), &[true, true, false]);
    }
}
