//! Sequential greedy reference constructions ("oracles").
//!
//! These are *not* distributed protocols: they are the straightforward
//! centralized algorithms the experiment suite compares solution quality
//! against (experiment E11), and in SMI's case the exact characterization of
//! the stabilized set.

use selfstab_graph::{Edge, Graph, Ids, Node};

/// Greedy maximal matching: scan edges in the given order, keep every edge
/// whose endpoints are both free.
pub fn greedy_maximal_matching(g: &Graph, order: impl IntoIterator<Item = Edge>) -> Vec<Edge> {
    let mut used = vec![false; g.n()];
    let mut matching = Vec::new();
    for e in order {
        debug_assert!(g.has_edge(e.a, e.b));
        if !used[e.a.index()] && !used[e.b.index()] {
            used[e.a.index()] = true;
            used[e.b.index()] = true;
            matching.push(e);
        }
    }
    matching
}

/// Greedy maximal matching in lexicographic edge order.
pub fn greedy_maximal_matching_lex(g: &Graph) -> Vec<Edge> {
    greedy_maximal_matching(g, g.edges())
}

/// Greedy MIS scanning nodes in the given order.
pub fn greedy_mis(g: &Graph, order: impl IntoIterator<Item = Node>) -> Vec<bool> {
    let mut in_set = vec![false; g.n()];
    let mut blocked = vec![false; g.n()];
    for v in order {
        if !blocked[v.index()] {
            in_set[v.index()] = true;
            blocked[v.index()] = true;
            for &u in g.neighbors(v) {
                blocked[u.index()] = true;
            }
        }
    }
    in_set
}

/// Greedy MIS by **descending protocol ID** — exactly the set Algorithm SMI
/// stabilizes to from the all-out state (the largest node enters first,
/// then the largest remaining non-dominated node, and so on).
pub fn greedy_mis_by_id_desc(g: &Graph, ids: &Ids) -> Vec<bool> {
    let mut order: Vec<Node> = g.nodes().collect();
    order.sort_by_key(|&v| std::cmp::Reverse(ids.id(v)));
    greedy_mis(g, order)
}

/// Size of a maximum matching, by exhaustive search (exponential — only for
/// cross-checking small instances; any maximal matching is at least half
/// this size).
pub fn maximum_matching_size_bruteforce(g: &Graph) -> usize {
    fn rec(edges: &[Edge], used: &mut Vec<bool>, k: usize, best: &mut usize) {
        *best = (*best).max(k);
        // Prune: even matching every remaining edge cannot beat best.
        if k + edges.len() <= *best {
            return;
        }
        for (i, e) in edges.iter().enumerate() {
            if !used[e.a.index()] && !used[e.b.index()] {
                used[e.a.index()] = true;
                used[e.b.index()] = true;
                rec(&edges[i + 1..], used, k + 1, best);
                used[e.a.index()] = false;
                used[e.b.index()] = false;
            }
        }
    }
    let edges: Vec<Edge> = g.edges().collect();
    let mut used = vec![false; g.n()];
    let mut best = 0;
    rec(&edges, &mut used, 0, &mut best);
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use selfstab_graph::generators;
    use selfstab_graph::predicates::{is_maximal_independent_set, is_maximal_matching};

    #[test]
    fn greedy_matching_is_maximal() {
        for fam in generators::Family::ALL {
            let g = fam.build(20);
            let m = greedy_maximal_matching_lex(&g);
            assert!(is_maximal_matching(&g, &m), "{}", fam.name());
        }
    }

    #[test]
    fn greedy_mis_is_maximal() {
        for fam in generators::Family::ALL {
            let g = fam.build(20);
            let s = greedy_mis(&g, g.nodes());
            assert!(is_maximal_independent_set(&g, &s), "{}", fam.name());
            let s2 = greedy_mis_by_id_desc(&g, &Ids::reversed(g.n()));
            assert!(is_maximal_independent_set(&g, &s2), "{}", fam.name());
        }
    }

    #[test]
    fn id_desc_order_matters() {
        // Star: center index 0. With identity IDs descending order starts
        // at a leaf, so all leaves enter; reversed IDs make the center
        // largest, so only the center enters.
        let g = generators::star(6);
        let leaves_first = greedy_mis_by_id_desc(&g, &Ids::identity(6));
        assert_eq!(leaves_first.iter().filter(|&&b| b).count(), 5);
        let center_first = greedy_mis_by_id_desc(&g, &Ids::reversed(6));
        assert_eq!(center_first.iter().filter(|&&b| b).count(), 1);
        assert!(center_first[0]);
    }

    #[test]
    fn maximum_matching_bruteforce_known_values() {
        assert_eq!(maximum_matching_size_bruteforce(&generators::path(5)), 2);
        assert_eq!(maximum_matching_size_bruteforce(&generators::path(6)), 3);
        assert_eq!(maximum_matching_size_bruteforce(&generators::cycle(7)), 3);
        assert_eq!(
            maximum_matching_size_bruteforce(&generators::complete(6)),
            3
        );
        assert_eq!(maximum_matching_size_bruteforce(&generators::petersen()), 5);
        assert_eq!(maximum_matching_size_bruteforce(&generators::star(9)), 1);
    }

    #[test]
    fn maximal_matching_is_half_approximation() {
        for fam in generators::Family::ALL {
            let g = fam.build(12);
            let maximal = greedy_maximal_matching_lex(&g).len();
            let maximum = maximum_matching_size_bruteforce(&g);
            assert!(2 * maximal >= maximum, "{}", fam.name());
            assert!(maximal <= maximum);
        }
    }
}
