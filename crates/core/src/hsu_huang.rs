//! The Hsu–Huang self-stabilizing maximal matching (Inform. Process. Lett.
//! 43:77–81, 1992) — the central-daemon baseline of Section 3.
//!
//! Hsu–Huang uses the *same* pointer variable and the same three rule
//! shapes as SMM, but:
//!
//! * it is proved correct only under a **central daemon** (one privileged
//!   node moves at a time), and
//! * R1/R2 make **arbitrary** choices — no minimum-ID requirement, no IDs at
//!   all (the protocol is anonymous).
//!
//! Run synchronously, the arbitrary R2 choice can oscillate (the paper's C₄
//! counterexample is exactly Hsu–Huang under the synchronous daemon); run
//! under a central daemon it stabilizes but costs `O(m)` *moves*, and its
//! synchronous conversion via daemon refinement (see [`crate::transformer`])
//! is "not as fast" as SMM — experiment E6 quantifies the gap.
//!
//! Implementation note: a deterministic [`Protocol`] instance must fix the
//! "arbitrary" choices; we expose the same [`SelectPolicy`] knob as SMM and
//! default to first-in-neighbor-list, which is ID-oblivious. Rule R0 (reset
//! dangling pointers) is added exactly as for SMM.

use crate::smm::{Pointer, SelectPolicy, Smm};
use rand::rngs::StdRng;
use selfstab_engine::protocol::{Move, Protocol, View};
use selfstab_graph::{Graph, Ids, Node};

/// The Hsu–Huang maximal-matching protocol.
///
/// Internally this delegates to [`Smm`] with non-ID selection policies: the
/// rule *guards* are literally identical (compare Fig. 1 of the paper with
/// rules M1–M3 of Hsu–Huang); only the selection inside R1/R2 differs.
#[derive(Clone, Debug)]
pub struct HsuHuang {
    inner: Smm,
}

impl HsuHuang {
    /// The classic protocol with a fixed arbitrary choice (first neighbor in
    /// index order). `n` is the node count (IDs are irrelevant to the
    /// policies used but required by the shared machinery).
    pub fn classic(n: usize) -> Self {
        HsuHuang {
            inner: Smm::with_policies(
                Ids::identity(n),
                SelectPolicy::FirstIndex,
                SelectPolicy::FirstIndex,
            ),
        }
    }

    /// The protocol with an explicit "arbitrary" choice policy (used by the
    /// E5/E6 ablations, e.g. [`SelectPolicy::Clockwise`] on a cycle).
    pub fn with_policy(n: usize, policy: SelectPolicy) -> Self {
        HsuHuang {
            inner: Smm::with_policies(Ids::identity(n), policy, policy),
        }
    }

    /// The matched pairs of a global state (same notion as SMM).
    pub fn matched_edges(graph: &Graph, states: &[Pointer]) -> Vec<selfstab_graph::Edge> {
        Smm::matched_edges(graph, states)
    }
}

impl Protocol for HsuHuang {
    type State = Pointer;

    fn rule_names(&self) -> &'static [&'static str] {
        &["M1:marriage", "M2:seduction", "M3:abandonment", "M0:reset"]
    }

    fn default_state(&self) -> Pointer {
        Pointer::NULL
    }

    fn arbitrary_state(&self, node: Node, neighbors: &[Node], rng: &mut StdRng) -> Pointer {
        self.inner.arbitrary_state(node, neighbors, rng)
    }

    fn enumerate_states(&self, node: Node, neighbors: &[Node]) -> Vec<Pointer> {
        self.inner.enumerate_states(node, neighbors)
    }

    fn step(&self, view: View<'_, Pointer>) -> Option<Move<Pointer>> {
        self.inner.step(view)
    }

    fn is_legitimate(&self, graph: &Graph, states: &[Pointer]) -> bool {
        self.inner.is_legitimate(graph, states)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use selfstab_engine::central::{CentralExecutor, Scheduler};
    use selfstab_engine::protocol::InitialState;
    use selfstab_engine::sync::{Outcome, SyncExecutor};
    use selfstab_graph::generators;

    #[test]
    fn stabilizes_under_central_daemon_all_schedulers() {
        let g = generators::grid(4, 5);
        let hh = HsuHuang::classic(20);
        let exec = CentralExecutor::new(&g, &hh);
        let mut scheds = [
            Scheduler::First,
            Scheduler::Last,
            Scheduler::random(3),
            Scheduler::RoundRobin { cursor: 0 },
        ];
        for sched in &mut scheds {
            for seed in 0..5 {
                let run = exec.run(InitialState::Random { seed }, sched, 100_000);
                assert!(run.stabilized);
                assert!(hh.is_legitimate(&g, &run.final_states));
            }
        }
    }

    #[test]
    fn central_daemon_moves_are_bounded_by_2m_plus_n() {
        // Known bound for Hsu–Huang-style matching: O(m) moves. Use the
        // generous 2m + 2n envelope as a smoke bound.
        use rand::SeedableRng;
        let g =
            generators::erdos_renyi_connected(30, 0.2, &mut rand::rngs::StdRng::seed_from_u64(4));
        let hh = HsuHuang::classic(30);
        let exec = CentralExecutor::new(&g, &hh);
        for seed in 0..20 {
            let run = exec.run(
                InitialState::Random { seed },
                &mut Scheduler::random(seed),
                1_000_000,
            );
            assert!(run.stabilized);
            assert!(
                run.moves <= (2 * g.m() + 2 * g.n()) as u64,
                "moves {} exceed 2m+2n on m={}",
                run.moves,
                g.m()
            );
        }
    }

    #[test]
    fn clockwise_c4_oscillates_synchronously() {
        // The paper's counterexample: on a 4-cycle with all pointers null,
        // everyone repeatedly proposes clockwise and then backs off.
        let g = generators::cycle(4);
        let hh = HsuHuang::with_policy(4, SelectPolicy::Clockwise);
        let exec = SyncExecutor::new(&g, &hh).with_cycle_detection();
        let run = exec.run(InitialState::Default, 10_000);
        assert!(
            matches!(run.outcome, Outcome::Cycle { .. }),
            "expected oscillation, got {:?}",
            run.outcome
        );
    }

    #[test]
    fn clockwise_c4_stabilizes_under_central_daemon() {
        // The same protocol instance is fine when moves are serialized.
        let g = generators::cycle(4);
        let hh = HsuHuang::with_policy(4, SelectPolicy::Clockwise);
        let exec = CentralExecutor::new(&g, &hh);
        let run = exec.run(InitialState::Default, &mut Scheduler::First, 1_000);
        assert!(run.stabilized);
        assert!(hh.is_legitimate(&g, &run.final_states));
    }
}
