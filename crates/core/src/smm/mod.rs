//! **Algorithm SMM** — Synchronous Maximal Matching (Fig. 1 of the paper).
//!
//! Each node `i` maintains a single pointer which is either null (`i → ⊥`)
//! or points to a neighbor (`i → j`). Nodes `i` and `j` are *matched* when
//! `i → j ∧ j → i` (written `i ↔ j`). The rules, evaluated once per
//! synchronous round on the states carried by the latest beacons:
//!
//! * **R1 (accept):** `i → ⊥` and some neighbor points at `i` — point back
//!   at one of them. *(The paper lets `i` "select a node j … among those
//!   that are pointing to it"; the choice is free, see [`SelectPolicy`].)*
//! * **R2 (propose):** `i → ⊥`, nobody points at `i`, and some neighbor has
//!   a null pointer — point at **the minimum-ID** such neighbor. *(The
//!   minimum is load-bearing: with an arbitrary choice SMM need not
//!   stabilize — the C₄ counterexample, reproduced in experiment E5.)*
//! * **R3 (back-off):** `i → j` but `j` points at some third node — reset
//!   to null.
//!
//! **Theorem 1:** from any initial state, SMM stabilizes in at most `n + 1`
//! rounds and the matched pairs form a maximal matching.
//!
//! One addition beyond the paper's pseudocode: rule **R0 (reset)** clears a
//! pointer whose target is no longer a neighbor. The paper's rules implicitly
//! assume `p(i) ∈ N(i) ∪ {⊥}`; after a link failure (host mobility) that
//! assumption breaks, and clearing the dangling pointer is exactly the
//! "readjustment" the paper credits the algorithms with (Section 1). R0 is
//! locally detectable from the neighbor list the link layer already
//! maintains.

pub mod types;

use rand::rngs::StdRng;
use rand::RngExt;
use selfstab_engine::protocol::{Move, Protocol, View, WireError, WireState};
use selfstab_graph::predicates::is_maximal_matching;
use selfstab_graph::{Edge, Graph, Ids, Node};
use selfstab_json::{FromJson, Json, JsonError, ToJson};
use std::fmt;

/// The SMM per-node state: a nullable pointer to a neighbor.
#[derive(Copy, Clone, PartialEq, Eq, Hash)]
pub struct Pointer(pub Option<Node>);

impl ToJson for Pointer {
    fn to_json(&self) -> Json {
        self.0.to_json()
    }
}

impl FromJson for Pointer {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Option::<Node>::from_json(value).map(Pointer)
    }
}

impl Pointer {
    /// The null pointer (`i → ⊥`).
    pub const NULL: Pointer = Pointer(None);

    /// Whether the pointer is null.
    #[inline]
    pub fn is_null(self) -> bool {
        self.0.is_none()
    }
}

/// Beacon wire encoding: the pointer is carried exactly as its underlying
/// `Option<Node>` (1 tag byte, plus 4 LE id bytes when non-null).
impl WireState for Pointer {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
    }

    fn decode_prefix(bytes: &[u8]) -> Result<(Self, usize), WireError> {
        Option::<Node>::decode_prefix(bytes).map(|(p, used)| (Pointer(p), used))
    }
}

impl fmt::Debug for Pointer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            None => write!(f, "→⊥"),
            Some(v) => write!(f, "→{v}"),
        }
    }
}

/// How a node selects among several admissible targets.
///
/// R2 in the paper *requires* [`SelectPolicy::MinId`]; the other policies
/// exist for the ablation experiments (E5) that show what goes wrong without
/// it. R1's choice is genuinely free.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SelectPolicy {
    /// The candidate with the minimum protocol ID (the paper's `min{…}`).
    MinId,
    /// The candidate with the maximum protocol ID.
    MaxId,
    /// The first candidate in neighbor-list (index) order — a fixed
    /// "arbitrary" choice.
    FirstIndex,
    /// The cyclic successor: the smallest candidate index greater than the
    /// chooser's own index, wrapping around. On a cycle graph with
    /// consecutive indices this is "propose to your clockwise neighbor" —
    /// the paper's non-stabilizing counterexample.
    Clockwise,
    /// A fixed pseudo-random choice: the candidate minimizing a hash of the
    /// (chooser, candidate) ID pair. Deterministic and time-invariant, but
    /// uncorrelated with the ID order.
    Hashed,
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl SelectPolicy {
    /// Pick one node from the non-empty, index-sorted `candidates`.
    pub fn select(self, ids: &Ids, me: Node, candidates: &[Node]) -> Node {
        debug_assert!(!candidates.is_empty());
        match self {
            SelectPolicy::MinId => ids
                .min_by_id(candidates.iter().copied())
                .expect("non-empty"),
            SelectPolicy::MaxId => ids
                .max_by_id(candidates.iter().copied())
                .expect("non-empty"),
            SelectPolicy::FirstIndex => candidates[0],
            SelectPolicy::Clockwise => candidates
                .iter()
                .copied()
                .find(|&c| c.index() > me.index())
                .unwrap_or(candidates[0]),
            SelectPolicy::Hashed => candidates
                .iter()
                .copied()
                .min_by_key(|&c| splitmix64(ids.id(me) << 32 | ids.id(c)))
                .expect("non-empty"),
        }
    }
}

/// Algorithm SMM. See the [module docs](self).
///
/// ```
/// use selfstab_core::smm::Smm;
/// use selfstab_engine::{InitialState, SyncExecutor, Protocol};
/// use selfstab_graph::{generators, predicates, Ids};
///
/// let g = generators::cycle(10);
/// let smm = Smm::paper(Ids::identity(10));
/// let run = SyncExecutor::new(&g, &smm).run(InitialState::Random { seed: 1 }, 11);
/// assert!(run.stabilized()); // Theorem 1: within n + 1 rounds
/// let matching = Smm::matched_edges(&g, &run.final_states);
/// assert!(predicates::is_maximal_matching(&g, &matching));
/// ```
#[derive(Clone, Debug)]
pub struct Smm {
    ids: Ids,
    accept: SelectPolicy,
    propose: SelectPolicy,
}

/// Rule indices into [`Smm::rule_names`].
pub mod rule {
    /// R1: accept a proposal.
    pub const ACCEPT: usize = 0;
    /// R2: make a proposal.
    pub const PROPOSE: usize = 1;
    /// R3: back off.
    pub const BACK_OFF: usize = 2;
    /// R0: reset a dangling pointer (link-failure readjustment).
    pub const RESET: usize = 3;
}

impl Smm {
    /// SMM exactly as in the paper: R2 proposes to the minimum-ID null
    /// neighbor; R1 (whose choice the paper leaves free) also uses min-ID.
    pub fn paper(ids: Ids) -> Self {
        Smm {
            ids,
            accept: SelectPolicy::MinId,
            propose: SelectPolicy::MinId,
        }
    }

    /// SMM with explicit selection policies (for the E5 ablations).
    pub fn with_policies(ids: Ids, accept: SelectPolicy, propose: SelectPolicy) -> Self {
        Smm {
            ids,
            accept,
            propose,
        }
    }

    /// The ID assignment this instance runs with.
    pub fn ids(&self) -> &Ids {
        &self.ids
    }

    /// The matched pairs `i ↔ j` of a global state, as normalized edges.
    ///
    /// Only mutual pointers along current edges count; dangling or
    /// unrequited pointers do not.
    pub fn matched_edges(graph: &Graph, states: &[Pointer]) -> Vec<Edge> {
        graph
            .nodes()
            .filter_map(|i| {
                let j = states[i.index()].0?;
                (i < j && graph.has_edge(i, j) && states[j.index()].0 == Some(i))
                    .then(|| Edge::new(i, j))
            })
            .collect()
    }

    /// Nodes that are matched in the given state.
    pub fn matched_nodes(graph: &Graph, states: &[Pointer]) -> Vec<bool> {
        let mut m = vec![false; graph.n()];
        for e in Self::matched_edges(graph, states) {
            m[e.a.index()] = true;
            m[e.b.index()] = true;
        }
        m
    }
}

impl Protocol for Smm {
    type State = Pointer;

    fn rule_names(&self) -> &'static [&'static str] {
        &["R1:accept", "R2:propose", "R3:back-off", "R0:reset"]
    }

    fn default_state(&self) -> Pointer {
        Pointer::NULL
    }

    fn arbitrary_state(&self, _node: Node, neighbors: &[Node], rng: &mut StdRng) -> Pointer {
        let k = rng.random_range(0..=neighbors.len());
        if k == neighbors.len() {
            Pointer::NULL
        } else {
            Pointer(Some(neighbors[k]))
        }
    }

    fn enumerate_states(&self, _node: Node, neighbors: &[Node]) -> Vec<Pointer> {
        std::iter::once(Pointer::NULL)
            .chain(neighbors.iter().map(|&v| Pointer(Some(v))))
            .collect()
    }

    fn step(&self, view: View<'_, Pointer>) -> Option<Move<Pointer>> {
        let i = view.node();
        match view.own().0 {
            Some(j) => {
                let Some(pj) = view.neighbor_state(j) else {
                    // R0: the link to j is gone; clear the dangling pointer.
                    return Some(Move {
                        rule: rule::RESET,
                        next: Pointer::NULL,
                    });
                };
                match pj.0 {
                    // i ↔ j: matched, no rule enabled (Lemma 1: M is
                    // absorbing).
                    Some(k) if k == i => None,
                    // R3: j points at a third node — back off.
                    Some(_) => Some(Move {
                        rule: rule::BACK_OFF,
                        next: Pointer::NULL,
                    }),
                    // j → ⊥: i waits for j to answer (type P_A, no rule).
                    None => None,
                }
            }
            None => {
                let proposers: Vec<Node> = view
                    .neighbor_states()
                    .filter(|(_, s)| s.0 == Some(i))
                    .map(|(v, _)| v)
                    .collect();
                if !proposers.is_empty() {
                    // R1: accept a proposal.
                    let j = self.accept.select(&self.ids, i, &proposers);
                    return Some(Move {
                        rule: rule::ACCEPT,
                        next: Pointer(Some(j)),
                    });
                }
                let nulls: Vec<Node> = view
                    .neighbor_states()
                    .filter(|(_, s)| s.is_null())
                    .map(|(v, _)| v)
                    .collect();
                if !nulls.is_empty() {
                    // R2: propose (to the minimum-ID null neighbor, under
                    // the paper's policy).
                    let j = self.propose.select(&self.ids, i, &nulls);
                    return Some(Move {
                        rule: rule::PROPOSE,
                        next: Pointer(Some(j)),
                    });
                }
                None
            }
        }
    }

    /// Lemma 8: at a fixpoint the mutual pointers form a maximal matching
    /// and every unmatched node has a null pointer.
    fn is_legitimate(&self, graph: &Graph, states: &[Pointer]) -> bool {
        let matched = Self::matched_edges(graph, states);
        if !is_maximal_matching(graph, &matched) {
            return false;
        }
        let is_matched = Self::matched_nodes(graph, states);
        graph
            .nodes()
            .all(|v| is_matched[v.index()] || states[v.index()].is_null())
    }

    fn containment(
        &self,
        graph: &Graph,
        states: &[Pointer],
        byz: &[bool],
    ) -> Option<selfstab_graph::predicates::Containment> {
        let pointers: Vec<Option<Node>> = states.iter().map(|p| p.0).collect();
        Some(selfstab_graph::predicates::matching_containment(
            graph, &pointers, byz,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use selfstab_engine::protocol::InitialState;
    use selfstab_engine::sync::SyncExecutor;
    use selfstab_graph::generators;

    fn ptr(v: u32) -> Pointer {
        Pointer(Some(Node(v)))
    }

    #[test]
    fn select_policies() {
        let ids = Ids::from_vec(vec![50, 40, 30, 20, 10]);
        let cands = [Node(1), Node(2), Node(4)];
        assert_eq!(SelectPolicy::MinId.select(&ids, Node(0), &cands), Node(4));
        assert_eq!(SelectPolicy::MaxId.select(&ids, Node(0), &cands), Node(1));
        assert_eq!(
            SelectPolicy::FirstIndex.select(&ids, Node(0), &cands),
            Node(1)
        );
        assert_eq!(
            SelectPolicy::Clockwise.select(&ids, Node(3), &cands),
            Node(4)
        );
        assert_eq!(
            SelectPolicy::Clockwise.select(&ids, Node(4), &cands),
            Node(1),
            "wraps around"
        );
        let h = SelectPolicy::Hashed.select(&ids, Node(0), &cands);
        assert!(cands.contains(&h));
        assert_eq!(
            SelectPolicy::Hashed.select(&ids, Node(0), &cands),
            h,
            "deterministic"
        );
    }

    #[test]
    fn rules_fire_as_in_figure_1() {
        // Path 0-1-2-3. States chosen to enable each rule exactly once.
        let g = generators::path(4);
        let smm = Smm::paper(Ids::identity(4));
        // R1: node 1 null, node 0 points at it.
        let states = vec![ptr(1), Pointer::NULL, Pointer::NULL, Pointer::NULL];
        let mv = smm
            .step(View::new(Node(1), g.neighbors(Node(1)), &states))
            .expect("R1 enabled");
        assert_eq!(mv.rule, rule::ACCEPT);
        assert_eq!(mv.next, ptr(0));
        // R2: node 2 null, nobody points at it, neighbor 3 null => propose
        // min-ID null neighbor. Neighbors of 2 are {1, 3}; 1 points at 0? No:
        // states[1] is NULL here, so both 1 and 3 are null; min ID is 1.
        let mv = smm
            .step(View::new(Node(2), g.neighbors(Node(2)), &states))
            .expect("R2 enabled");
        assert_eq!(mv.rule, rule::PROPOSE);
        assert_eq!(mv.next, ptr(1));
        // R3: node 0 points at 1, 1 points at 2 (a third node).
        let states = vec![ptr(1), ptr(2), ptr(1), Pointer::NULL];
        let mv = smm
            .step(View::new(Node(0), g.neighbors(Node(0)), &states))
            .expect("R3 enabled");
        assert_eq!(mv.rule, rule::BACK_OFF);
        assert_eq!(mv.next, Pointer::NULL);
        // Matched pair is silent.
        let states = vec![ptr(1), ptr(0), Pointer::NULL, Pointer::NULL];
        assert!(smm
            .step(View::new(Node(0), g.neighbors(Node(0)), &states))
            .is_none());
        assert!(smm
            .step(View::new(Node(1), g.neighbors(Node(1)), &states))
            .is_none());
        // P_A waits: node 2 points at null node 3.
        let states = vec![Pointer::NULL, Pointer::NULL, ptr(3), Pointer::NULL];
        assert!(smm
            .step(View::new(Node(2), g.neighbors(Node(2)), &states))
            .is_none());
    }

    #[test]
    fn dangling_pointer_resets() {
        let mut g = generators::path(3);
        let smm = Smm::paper(Ids::identity(3));
        let states = vec![ptr(1), ptr(0), Pointer::NULL];
        g.remove_edge(Node(0), Node(1));
        let mv = smm
            .step(View::new(Node(0), g.neighbors(Node(0)), &states))
            .expect("R0 enabled after link failure");
        assert_eq!(mv.rule, rule::RESET);
        assert_eq!(mv.next, Pointer::NULL);
    }

    #[test]
    fn matched_edges_requires_mutual_current_links() {
        let g = generators::path(4);
        // 0↔1 mutual; 2→3 unrequited.
        let states = vec![ptr(1), ptr(0), ptr(3), Pointer::NULL];
        let m = Smm::matched_edges(&g, &states);
        assert_eq!(m, vec![Edge::new(Node(0), Node(1))]);
        assert_eq!(
            Smm::matched_nodes(&g, &states),
            vec![true, true, false, false]
        );
    }

    #[test]
    fn theorem_1_on_structured_families() {
        for fam in generators::Family::ALL {
            for n in [4usize, 9, 16, 33] {
                let g = fam.build(n);
                let n_actual = g.n();
                let smm = Smm::paper(Ids::identity(n_actual));
                let exec = SyncExecutor::new(&g, &smm);
                for seed in 0..10 {
                    let run = exec.run(InitialState::Random { seed }, n_actual + 1);
                    assert!(
                        run.stabilized(),
                        "SMM must stabilize within n+1={} rounds on {} (seed {seed})",
                        n_actual + 1,
                        fam.name()
                    );
                    assert!(
                        smm.is_legitimate(&g, &run.final_states),
                        "fixpoint must be a maximal matching on {}",
                        fam.name()
                    );
                }
            }
        }
    }

    #[test]
    fn theorem_1_with_adversarial_id_orders() {
        let g = generators::path(12);
        for ids in [Ids::identity(12), Ids::reversed(12)] {
            let smm = Smm::paper(ids);
            let exec = SyncExecutor::new(&g, &smm);
            for seed in 0..20 {
                let run = exec.run(InitialState::Random { seed }, 13);
                assert!(run.stabilized());
                assert!(smm.is_legitimate(&g, &run.final_states));
            }
        }
    }

    #[test]
    fn all_null_start_on_even_path_matches_perfectly() {
        // From the all-null state on P4 with identity IDs: 0 and 1 propose
        // to each other (mutual min-ID), as do 2 and 3 after backing off.
        let g = generators::path(4);
        let smm = Smm::paper(Ids::identity(4));
        let run = SyncExecutor::new(&g, &smm).run(InitialState::Default, 5);
        assert!(run.stabilized());
        let m = Smm::matched_edges(&g, &run.final_states);
        assert_eq!(m.len(), 2, "P4 has a perfect matching here: {m:?}");
    }

    #[test]
    fn single_node_and_edgeless_graphs() {
        let g = selfstab_graph::Graph::empty(1);
        let smm = Smm::paper(Ids::identity(1));
        let run = SyncExecutor::new(&g, &smm).run(InitialState::Default, 2);
        assert!(run.stabilized());
        assert_eq!(run.rounds(), 0);
        let g3 = selfstab_graph::Graph::empty(3);
        let smm3 = Smm::paper(Ids::identity(3));
        let run = SyncExecutor::new(&g3, &smm3).run(InitialState::Default, 4);
        assert!(run.stabilized());
        assert!(smm3.is_legitimate(&g3, &run.final_states));
    }

    #[test]
    fn enumerate_states_is_null_plus_neighbors() {
        let g = generators::star(4);
        let smm = Smm::paper(Ids::identity(4));
        let hub = smm.enumerate_states(Node(0), g.neighbors(Node(0)));
        assert_eq!(hub.len(), 4);
        let leaf = smm.enumerate_states(Node(1), g.neighbors(Node(1)));
        assert_eq!(leaf, vec![Pointer::NULL, ptr(0)]);
    }
}
