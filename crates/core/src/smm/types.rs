//! The node-type partition (Fig. 2) and transition diagram (Fig. 3).
//!
//! For a global SMM state the paper classifies each node as
//!
//! * `M`  — matched: `i ↔ j`,
//! * `A⁰` — aloof with no in-pointers: `i → ⊥` and nobody points at `i`,
//! * `A¹` — aloof with in-pointers: `i → ⊥` and some neighbor points at `i`,
//! * `P_A` — pointing at an aloof node: `i → j`, `j ↛ i`, `j → ⊥`,
//! * `P_M` — pointing at a matched node,
//! * `P_P` — pointing at a pointing node,
//!
//! and proves (Lemmas 1–7) that the only possible round-to-round transitions
//! are the arrows of Fig. 3 — in particular `M` is absorbing and `A¹`/`P_A`
//! are empty from time 1 onwards. [`check_trace`] verifies an executed trace
//! against exactly that diagram and accumulates the empirical transition
//! matrix reported in experiment E3.

use super::{Pointer, Smm};
use selfstab_graph::{Graph, Node};
use std::fmt;

/// The Fig. 2 node types, plus `Dangling` for the fault-induced situation
/// (pointer to a vanished neighbor) that the paper's clean-execution lemmas
/// do not cover.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum NodeType {
    /// Matched (`i ↔ j`).
    M,
    /// Aloof, no in-pointers.
    A0,
    /// Aloof, at least one in-pointer.
    A1,
    /// Pointing at an aloof node.
    Pa,
    /// Pointing at a matched node.
    Pm,
    /// Pointing at a pointing node.
    Pp,
    /// Pointing at a non-neighbor (only after a fault).
    Dangling,
}

impl NodeType {
    /// All seven types, in matrix order.
    pub const ALL: [NodeType; 7] = [
        NodeType::M,
        NodeType::A0,
        NodeType::A1,
        NodeType::Pa,
        NodeType::Pm,
        NodeType::Pp,
        NodeType::Dangling,
    ];

    /// Index into [`NodeType::ALL`].
    pub fn idx(self) -> usize {
        match self {
            NodeType::M => 0,
            NodeType::A0 => 1,
            NodeType::A1 => 2,
            NodeType::Pa => 3,
            NodeType::Pm => 4,
            NodeType::Pp => 5,
            NodeType::Dangling => 6,
        }
    }

    /// The paper's notation.
    pub fn name(self) -> &'static str {
        match self {
            NodeType::M => "M",
            NodeType::A0 => "A0",
            NodeType::A1 => "A1",
            NodeType::Pa => "PA",
            NodeType::Pm => "PM",
            NodeType::Pp => "PP",
            NodeType::Dangling => "DANGLING",
        }
    }
}

impl fmt::Display for NodeType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Classify every node of a global state per Fig. 2.
pub fn classify(graph: &Graph, states: &[Pointer]) -> Vec<NodeType> {
    assert_eq!(states.len(), graph.n());
    let matched = Smm::matched_nodes(graph, states);
    graph
        .nodes()
        .map(|i| match states[i.index()].0 {
            None => {
                let pointed_at = graph
                    .neighbors(i)
                    .iter()
                    .any(|&j| states[j.index()].0 == Some(i));
                if pointed_at {
                    NodeType::A1
                } else {
                    NodeType::A0
                }
            }
            Some(j) => {
                if !graph.has_edge(i, j) {
                    NodeType::Dangling
                } else if matched[i.index()] {
                    NodeType::M
                } else if states[j.index()].is_null() {
                    NodeType::Pa
                } else if matched[j.index()] {
                    NodeType::Pm
                } else {
                    NodeType::Pp
                }
            }
        })
        .collect()
}

/// The node-type census of one global state: how many nodes fall into each
/// Fig. 2 class. This is the per-round quantity the paper's convergence
/// argument tracks (|M| for Lemma 10, emptiness of A¹/P_A for Lemma 7).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TypeCensus {
    counts: [usize; 7],
}

impl TypeCensus {
    /// Census of `states` on `graph`.
    pub fn of(graph: &Graph, states: &[Pointer]) -> Self {
        let mut counts = [0usize; 7];
        for ty in classify(graph, states) {
            counts[ty.idx()] += 1;
        }
        TypeCensus { counts }
    }

    /// Number of nodes of one type.
    pub fn count(&self, ty: NodeType) -> usize {
        self.counts[ty.idx()]
    }

    /// Nodes in class `M` (matched *nodes*, not edges).
    pub fn matched_nodes(&self) -> usize {
        self.counts[NodeType::M.idx()]
    }

    /// Matched *pairs* — the |M| of Lemma 10, in edges. Every matched node
    /// has exactly one partner, so this is half the `M` class.
    pub fn matched_pairs(&self) -> usize {
        self.matched_nodes() / 2
    }

    /// Total nodes classified.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// One-line rendering in the paper's notation, e.g.
    /// `M=4 A0=1 A1=0 PA=0 PM=1 PP=0 DANGLING=0`.
    pub fn render(&self) -> String {
        NodeType::ALL
            .iter()
            .map(|t| format!("{}={}", t.name(), self.count(*t)))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

/// One [`selfstab_engine::obs::Gauge`] per Fig. 2 node type, plus a
/// `matched_pairs` gauge (Lemma 10's |M|, in edges) — ready to plug into
/// [`selfstab_engine::obs::MetricsCollector::with_gauges`] so an observed
/// SMM run reports the live census every round.
pub fn census_gauges(graph: &Graph) -> Vec<(String, selfstab_engine::obs::Gauge<Pointer>)> {
    let mut gauges: Vec<(String, selfstab_engine::obs::Gauge<Pointer>)> = Vec::new();
    for ty in NodeType::ALL {
        let g = graph.clone();
        gauges.push((
            ty.name().to_string(),
            Box::new(move |states: &[Pointer]| {
                classify(&g, states).iter().filter(|&&t| t == ty).count() as u64
            }),
        ));
    }
    let g = graph.clone();
    gauges.push((
        "matched_pairs".to_string(),
        Box::new(move |states: &[Pointer]| Smm::matched_edges(&g, states).len() as u64),
    ));
    gauges
}

/// The arrows of Fig. 3: is `from → to` a permitted one-round transition in
/// a clean (fault-free) synchronous execution?
///
/// Derived from Lemmas 1–6: `M → M`; `A¹ → M` (Lemma 5); `P_A → {M, P_M}`
/// (Lemma 4); `P_M → A` and `P_P → A` (Lemmas 2–3, and the in-pointer
/// argument pins the landing spot to `A⁰`); `A⁰ → {A⁰, M, P_M, P_P}`
/// (Lemma 6 — `P_A` is excluded because a proposed-to aloof node always
/// answers in the same round).
pub fn allowed_transition(from: NodeType, to: NodeType) -> bool {
    use NodeType::*;
    matches!(
        (from, to),
        (M, M)
            | (A1, M)
            | (Pa, M)
            | (Pa, Pm)
            | (Pm, A0)
            | (Pp, A0)
            | (A0, A0)
            | (A0, M)
            | (A0, Pm)
            | (A0, Pp)
    )
}

/// A 7×7 empirical transition-count matrix.
#[derive(Clone, Debug, Default)]
pub struct TransitionMatrix {
    counts: [[u64; 7]; 7],
}

impl TransitionMatrix {
    /// Count of `from → to` transitions observed.
    pub fn count(&self, from: NodeType, to: NodeType) -> u64 {
        self.counts[from.idx()][to.idx()]
    }

    /// Record one transition.
    pub fn record(&mut self, from: NodeType, to: NodeType) {
        self.counts[from.idx()][to.idx()] += 1;
    }

    /// Merge another matrix into this one.
    pub fn merge(&mut self, other: &TransitionMatrix) {
        for f in 0..7 {
            for t in 0..7 {
                self.counts[f][t] += other.counts[f][t];
            }
        }
    }

    /// Total transitions recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().flatten().sum()
    }

    /// Render as a Markdown table (rows = from, columns = to).
    pub fn to_markdown(&self) -> String {
        let mut out = String::from("| from\\to |");
        for t in NodeType::ALL {
            out.push_str(&format!(" {} |", t.name()));
        }
        out.push('\n');
        out.push_str("|---|---|---|---|---|---|---|---|\n");
        for f in NodeType::ALL {
            out.push_str(&format!("| **{}** |", f.name()));
            for t in NodeType::ALL {
                out.push_str(&format!(" {} |", self.count(f, t)));
            }
            out.push('\n');
        }
        out
    }
}

/// A transition outside the Fig. 3 diagram.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Round index `t` of the offending `t → t+1` step.
    pub round: usize,
    /// The offending node.
    pub node: Node,
    /// Its type at `t`.
    pub from: NodeType,
    /// Its type at `t + 1`.
    pub to: NodeType,
}

/// Verify a recorded trace against Fig. 3 (and Lemma 7), accumulating the
/// empirical transition matrix.
///
/// Transitions **out of round 0** are exempt from the `A¹`/`P_A`-emptiness
/// arrows' *implications* only in the sense the paper states: `A¹` and `P_A`
/// may be non-empty *at* t = 0 but their outgoing arrows (to `M`/`P_M`)
/// still apply; from t ≥ 1 those classes must be empty, which we check
/// directly.
pub fn check_trace(graph: &Graph, trace: &[Vec<Pointer>]) -> Result<TransitionMatrix, Violation> {
    let mut matrix = TransitionMatrix::default();
    let mut prev: Option<Vec<NodeType>> = None;
    for (t, states) in trace.iter().enumerate() {
        let types = classify(graph, states);
        if t >= 1 {
            for &ty in &types {
                if ty == NodeType::A1 || ty == NodeType::Pa {
                    // Lemma 7 violated; report against the producing round.
                    let node = types
                        .iter()
                        .position(|&x| x == ty)
                        .map(Node::from)
                        .expect("type present");
                    return Err(Violation {
                        round: t - 1,
                        node,
                        from: prev.as_ref().map(|p| p[node.index()]).unwrap_or(ty),
                        to: ty,
                    });
                }
            }
        }
        if let Some(prev_types) = &prev {
            for i in 0..types.len() {
                let (from, to) = (prev_types[i], types[i]);
                if !allowed_transition(from, to) {
                    return Err(Violation {
                        round: t - 1,
                        node: Node::from(i),
                        from,
                        to,
                    });
                }
                matrix.record(from, to);
            }
        }
        prev = Some(types);
    }
    Ok(matrix)
}

#[cfg(test)]
mod tests {
    use super::*;
    use selfstab_engine::protocol::InitialState;
    use selfstab_engine::sync::SyncExecutor;
    use selfstab_graph::{generators, Ids};

    fn ptr(v: u32) -> Pointer {
        Pointer(Some(Node(v)))
    }

    #[test]
    fn classification_matches_figure_2() {
        // Path 0-1-2-3-4-5:
        // 0 ↔ 1 matched; 2 → 1 (matched) = PM; 3 → 2 (pointing) = PP;
        // 4 → ⊥ with 3?  3 points at 2, so 4 has no in-pointer... craft
        // carefully: 5 → 4 and 4 → ⊥  gives 4 ∈ A1, 5 ∈ PA.
        let g = generators::path(6);
        let states = vec![ptr(1), ptr(0), ptr(1), ptr(2), Pointer::NULL, ptr(4)];
        let types = classify(&g, &states);
        assert_eq!(
            types,
            vec![
                NodeType::M,
                NodeType::M,
                NodeType::Pm,
                NodeType::Pp,
                NodeType::A1,
                NodeType::Pa
            ]
        );
    }

    #[test]
    fn a0_and_dangling() {
        let mut g = generators::path(3);
        let states = vec![Pointer::NULL, ptr(2), ptr(1)];
        let types = classify(&g, &states);
        assert_eq!(types[0], NodeType::A0);
        assert_eq!(types[1], NodeType::M);
        g.remove_edge(Node(1), Node(2));
        let types = classify(&g, &states);
        assert_eq!(types[1], NodeType::Dangling);
        assert_eq!(types[2], NodeType::Dangling);
    }

    #[test]
    fn figure_3_arrow_set_is_exactly_ten() {
        let mut count = 0;
        for f in NodeType::ALL {
            for t in NodeType::ALL {
                if allowed_transition(f, t) {
                    count += 1;
                    assert!(f != NodeType::Dangling && t != NodeType::Dangling);
                }
            }
        }
        assert_eq!(count, 10);
        // No incoming arrows into A1 or PA (the Lemma 7 argument).
        for f in NodeType::ALL {
            assert!(!allowed_transition(f, NodeType::A1));
            assert!(!allowed_transition(f, NodeType::Pa));
        }
    }

    #[test]
    fn traces_respect_figure_3() {
        for fam in generators::Family::ALL {
            let g = fam.build(12);
            let n = g.n();
            let smm = Smm::paper(Ids::identity(n));
            let exec = SyncExecutor::new(&g, &smm).with_trace();
            for seed in 0..25 {
                let run = exec.run(InitialState::Random { seed }, n + 1);
                assert!(run.stabilized());
                let trace = run.trace.as_ref().expect("traced");
                let matrix =
                    check_trace(&g, trace).unwrap_or_else(|v| panic!("{}: {v:?}", fam.name()));
                assert_eq!(matrix.total() as usize, (trace.len() - 1) * n);
            }
        }
    }

    #[test]
    fn m_is_absorbing_along_traces() {
        let g = generators::cycle(9);
        let smm = Smm::paper(Ids::reversed(9));
        let exec = SyncExecutor::new(&g, &smm).with_trace();
        let run = exec.run(InitialState::Random { seed: 3 }, 10);
        let trace = run.trace.as_ref().expect("traced");
        let mut matched_prev: Vec<bool> = vec![false; 9];
        for states in trace {
            let matched = Smm::matched_nodes(&g, states);
            for i in 0..9 {
                assert!(
                    !matched_prev[i] || matched[i],
                    "Lemma 1 violated at node {i}"
                );
            }
            matched_prev = matched;
        }
    }

    #[test]
    fn lemma_9_matching_grows_by_two_every_two_rounds() {
        let g = generators::grid(5, 5);
        let smm = Smm::paper(Ids::identity(25));
        let exec = SyncExecutor::new(&g, &smm).with_trace();
        for seed in 0..10 {
            let run = exec.run(InitialState::Random { seed }, 26);
            let trace = run.trace.as_ref().expect("traced");
            let sizes: Vec<usize> = trace
                .iter()
                .map(|s| Smm::matched_edges(&g, s).len())
                .collect();
            // Lemma 10: from t >= 1, if a move happens at t+1 then
            // |M_{t+2}| >= |M_t| + 2 i.e. cardinality (in edges) grows by
            // at least 1 per 2 rounds until quiescence.
            for t in 1..sizes.len().saturating_sub(2) {
                assert!(
                    sizes[t + 2] > sizes[t],
                    "no growth between rounds {t} and {}: {sizes:?}",
                    t + 2
                );
            }
        }
    }

    #[test]
    fn census_on_hand_built_c4_is_exact() {
        use selfstab_graph::Graph;
        // C4 built from its edge list alone: 0-1-2-3-0.
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]);
        // 0 ↔ 1 matched; 2 → 1 (matched) = PM; 3 → ⊥, nobody points at 3 = A0.
        let states = vec![ptr(1), ptr(0), ptr(1), Pointer::NULL];
        assert_eq!(
            classify(&g, &states),
            vec![NodeType::M, NodeType::M, NodeType::Pm, NodeType::A0]
        );
        let census = TypeCensus::of(&g, &states);
        assert_eq!(census.count(NodeType::M), 2);
        assert_eq!(census.count(NodeType::A0), 1);
        assert_eq!(census.count(NodeType::A1), 0);
        assert_eq!(census.count(NodeType::Pa), 0);
        assert_eq!(census.count(NodeType::Pm), 1);
        assert_eq!(census.count(NodeType::Pp), 0);
        assert_eq!(census.count(NodeType::Dangling), 0);
        assert_eq!(census.matched_nodes(), 2);
        assert_eq!(census.matched_pairs(), 1);
        assert_eq!(census.total(), 4);
        assert_eq!(census.render(), "M=2 A0=1 A1=0 PA=0 PM=1 PP=0 DANGLING=0");

        // Second population exercising A1 and PA: 2 ↔ 3 matched;
        // 0 → ⊥ but 1 points at it = A1; 1 → 0 (aloof) = PA.
        let states = vec![Pointer::NULL, ptr(0), ptr(3), ptr(2)];
        assert_eq!(
            classify(&g, &states),
            vec![NodeType::A1, NodeType::Pa, NodeType::M, NodeType::M]
        );
        let census = TypeCensus::of(&g, &states);
        assert_eq!(census.count(NodeType::A1), 1);
        assert_eq!(census.count(NodeType::Pa), 1);
        assert_eq!(census.count(NodeType::M), 2);
        assert_eq!(census.matched_pairs(), 1);
    }

    #[test]
    fn census_on_hand_built_p4_is_exact() {
        use selfstab_graph::Graph;
        // P4 built from its edge list alone: 0-1-2-3.
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        // 2 ↔ 3 matched; 1 → 2 (matched) = PM; 0 → 1 (pointing) = PP.
        let states = vec![ptr(1), ptr(2), ptr(3), ptr(2)];
        assert_eq!(
            classify(&g, &states),
            vec![NodeType::Pp, NodeType::Pm, NodeType::M, NodeType::M]
        );
        let census = TypeCensus::of(&g, &states);
        assert_eq!(census.count(NodeType::M), 2);
        assert_eq!(census.count(NodeType::Pm), 1);
        assert_eq!(census.count(NodeType::Pp), 1);
        assert_eq!(census.count(NodeType::A0), 0);
        assert_eq!(census.count(NodeType::A1), 0);
        assert_eq!(census.count(NodeType::Pa), 0);
        assert_eq!(census.matched_pairs(), 1);

        // The all-null start is pure A0.
        let census = TypeCensus::of(&g, &[Pointer::NULL; 4]);
        assert_eq!(census.count(NodeType::A0), 4);
        assert_eq!(census.total(), 4);
        assert_eq!(census.matched_pairs(), 0);
    }

    #[test]
    fn census_gauges_report_live_partition() {
        let g = generators::cycle(4);
        let mut gauges = census_gauges(&g);
        let names: Vec<&str> = gauges.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "M",
                "A0",
                "A1",
                "PA",
                "PM",
                "PP",
                "DANGLING",
                "matched_pairs"
            ]
        );
        let states = vec![ptr(1), ptr(0), ptr(1), Pointer::NULL];
        let values: Vec<u64> = gauges.iter_mut().map(|(_, f)| f(&states)).collect();
        assert_eq!(values, vec![2, 1, 0, 0, 1, 0, 0, 1]);
    }

    #[test]
    fn transition_matrix_markdown() {
        let mut m = TransitionMatrix::default();
        m.record(NodeType::M, NodeType::M);
        m.record(NodeType::A0, NodeType::Pp);
        let md = m.to_markdown();
        assert!(md.contains("| **M** | 1 |"));
        assert!(md.lines().count() == 9);
        let mut m2 = TransitionMatrix::default();
        m2.record(NodeType::M, NodeType::M);
        m.merge(&m2);
        assert_eq!(m.count(NodeType::M, NodeType::M), 2);
        assert_eq!(m.total(), 3);
    }

    #[test]
    fn smm_fixpoints_classify_as_m_and_a0_only() {
        use rand::SeedableRng;
        let g = generators::random_geometric_connected(
            30,
            0.35,
            &mut rand::rngs::StdRng::seed_from_u64(8),
        );
        let smm = Smm::paper(Ids::identity(30));
        let run = SyncExecutor::new(&g, &smm).run(InitialState::Random { seed: 1 }, 31);
        assert!(run.stabilized());
        for ty in classify(&g, &run.final_states) {
            assert!(ty == NodeType::M || ty == NodeType::A0, "unexpected {ty}");
        }
    }
}
