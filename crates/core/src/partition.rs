//! Graph partitioning for the sharded runtime: split the node set into K
//! shards so each runtime worker owns a contiguous chunk of the protocol
//! state and only boundary states cross shard channels.
//!
//! Two partitioners are provided. [`Partition::contiguous`] slices node ids
//! into K equal ranges — the trivial baseline, cheap and balanced but
//! oblivious to topology. [`Partition::coarsened`] runs the multilevel
//! scheme this crate already has the machinery for: repeatedly compute a
//! greedy *heavy-edge* matching (coarse edges are weighted by the number of
//! fine edges they stand for, and matching along the heaviest ones keeps
//! densely-connected regions together), contract it with
//! [`crate::coarsen::contract_matching`] until the coarse graph is small,
//! walk the coarse graph in BFS order packing coarse blobs into shards up
//! to the balance target, then run a greedy boundary-refinement pass on the
//! fine graph. Matched pairs never straddle a shard boundary, so the edge
//! cut — and with it the beacon traffic on the runtime's cross-shard
//! channels — stays low.

use crate::coarsen::contract_matching;
use selfstab_graph::{Edge, Graph, Node};
use std::collections::HashMap;

/// An assignment of every node to one of `k` shards.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Partition {
    /// `shard_of[v]` — the shard owning node `v`.
    pub shard_of: Vec<u32>,
    /// For each shard, its owned nodes in ascending id order. Shards may be
    /// empty when `k` exceeds the node count.
    pub shards: Vec<Vec<Node>>,
}

impl Partition {
    /// Number of shards (including empty ones).
    pub fn k(&self) -> usize {
        self.shards.len()
    }

    /// Split node ids into `k` contiguous, size-balanced ranges.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn contiguous(g: &Graph, k: usize) -> Partition {
        assert!(k > 0, "partition needs at least one shard");
        let n = g.n();
        let mut shard_of = vec![0u32; n];
        let (base, extra) = (n / k, n % k);
        let mut next = 0usize;
        for s in 0..k {
            let take = base + usize::from(s < extra);
            for slot in shard_of.iter_mut().skip(next).take(take) {
                *slot = s as u32;
            }
            next += take;
        }
        Partition::from_shard_of(shard_of, k)
    }

    /// Multilevel coarsening partition: greedy maximal matchings are
    /// contracted until the coarse graph has at most `8 * k` nodes (or
    /// stops shrinking), then coarse blobs are packed into shards along a
    /// BFS order of the coarse graph, each shard capped at
    /// `ceil(n / k)` fine nodes. Deterministic for a given graph and `k`.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn coarsened(g: &Graph, k: usize) -> Partition {
        assert!(k > 0, "partition needs at least one shard");
        let n = g.n();
        if k == 1 || n <= k {
            // One shard, or nothing to balance: contiguous already optimal.
            return Partition::contiguous(g, k);
        }

        // Coarsening loop: blobs[c] = fine nodes inside coarse node c, and
        // edge_w[{a,b}] = fine edges between blobs a and b (the heavy-edge
        // signal: matching the heaviest coarse edges keeps densely-connected
        // regions in one blob, which is what makes the final cut small). A
        // matched pair's combined fine size is capped at the balance target
        // so no blob can outgrow a shard (star graphs would otherwise grow
        // one giant center blob).
        let target = n.div_ceil(k);
        let mut cur = g.clone();
        let mut blobs: Vec<Vec<Node>> = g.nodes().map(|v| vec![v]).collect();
        let mut edge_w: HashMap<(u32, u32), u64> =
            g.edges().map(|e| (weight_key(e.a, e.b), 1)).collect();
        while cur.n() > 8 * k {
            let weights: Vec<usize> = blobs.iter().map(Vec::len).collect();
            let matching = greedy_matching(&cur, &weights, target, &edge_w);
            // A level must shrink the graph by a constant fraction or the
            // loop degenerates to quadratic time (a star's edges all share
            // the hub, so its matching has one edge per level); packing the
            // current blobs is better than contracting one pair at a time.
            if 16 * matching.len() < cur.n() {
                break;
            }
            let c = contract_matching(&cur, &matching);
            let mut merged: Vec<Vec<Node>> = vec![Vec::new(); c.coarse.n()];
            for (fine, &coarse) in c.fine_to_coarse.iter().enumerate() {
                merged[coarse.index()].append(&mut blobs[fine].clone());
            }
            for b in &mut merged {
                b.sort_unstable();
            }
            blobs = merged;
            let mut coarse_w = HashMap::with_capacity(edge_w.len());
            for e in cur.edges() {
                let (a, b) = (c.fine_to_coarse[e.a.index()], c.fine_to_coarse[e.b.index()]);
                if a != b {
                    let w = edge_w[&weight_key(e.a, e.b)];
                    *coarse_w.entry(weight_key(a, b)).or_insert(0) += w;
                }
            }
            edge_w = coarse_w;
            cur = c.coarse;
        }

        // Pack blobs into shards along a BFS order of the coarse graph so
        // consecutive shards get adjacent regions.
        let order = bfs_order(&cur);
        let mut shard_of = vec![0u32; n];
        let mut shard = 0usize;
        let mut filled = 0usize;
        for c in order {
            let blob = &blobs[c.index()];
            if filled > 0 && filled + blob.len() > target && shard + 1 < k {
                shard += 1;
                filled = 0;
            }
            for &v in blob {
                shard_of[v.index()] = shard as u32;
            }
            filled += blob.len();
        }
        refine(g, &mut shard_of, k, target);
        Partition::from_shard_of(shard_of, k)
    }

    /// Rebuild the per-shard node lists from a raw assignment vector.
    fn from_shard_of(shard_of: Vec<u32>, k: usize) -> Partition {
        let mut shards: Vec<Vec<Node>> = vec![Vec::new(); k];
        for (v, &s) in shard_of.iter().enumerate() {
            shards[s as usize].push(Node::from(v));
        }
        Partition { shard_of, shards }
    }

    /// The edges whose endpoints live in different shards — exactly the
    /// edges whose beacon frames must cross a runtime channel.
    pub fn cut_edges(&self, g: &Graph) -> Vec<Edge> {
        g.edges()
            .filter(|e| self.shard_of[e.a.index()] != self.shard_of[e.b.index()])
            .collect()
    }

    /// Size of the largest shard.
    pub fn max_shard_size(&self) -> usize {
        self.shards.iter().map(Vec::len).max().unwrap_or(0)
    }
}

/// Canonical key for an undirected edge's weight entry.
fn weight_key(a: Node, b: Node) -> (u32, u32) {
    (a.0.min(b.0), a.0.max(b.0))
}

/// A deterministic greedy heavy-edge matching: scan nodes in id order,
/// match each unmatched node with the unmatched neighbor it shares the most
/// fine edges with (lowest id on ties), among those whose combined blob
/// weight stays within `cap`.
fn greedy_matching(
    g: &Graph,
    weights: &[usize],
    cap: usize,
    edge_w: &HashMap<(u32, u32), u64>,
) -> Vec<Edge> {
    let mut taken = vec![false; g.n()];
    let mut matching = Vec::new();
    for v in g.nodes() {
        if taken[v.index()] {
            continue;
        }
        let mate = g
            .neighbors(v)
            .iter()
            .filter(|w| !taken[w.index()] && weights[v.index()] + weights[w.index()] <= cap)
            .max_by_key(|&&w| {
                (
                    edge_w.get(&weight_key(v, w)).copied().unwrap_or(1),
                    std::cmp::Reverse(w.0),
                )
            });
        if let Some(&w) = mate {
            taken[v.index()] = true;
            taken[w.index()] = true;
            matching.push(Edge::new(v, w));
        }
    }
    matching
}

/// Greedy boundary refinement (a light Kernighan–Lin step): repeatedly move
/// a node to the neighboring shard holding more of its neighbors, as long
/// as the move reduces the cut and keeps every shard within the balance
/// target. A few passes recover most of what blob packing leaves on the
/// table; the loop is deterministic (node-id order) and stops at the first
/// pass with no improving move.
fn refine(g: &Graph, shard_of: &mut [u32], k: usize, target: usize) {
    let mut sizes = vec![0usize; k];
    for &s in shard_of.iter() {
        sizes[s as usize] += 1;
    }
    let mut degree = vec![0u32; k];
    for _pass in 0..8 {
        let mut moved = false;
        for v in g.nodes() {
            let s = shard_of[v.index()] as usize;
            if sizes[s] <= 1 {
                continue;
            }
            let neighbors = g.neighbors(v);
            let mut seen: Vec<usize> = Vec::with_capacity(4);
            for &w in neighbors {
                let t = shard_of[w.index()] as usize;
                if degree[t] == 0 {
                    seen.push(t);
                }
                degree[t] += 1;
            }
            let home = degree[s];
            let best = seen
                .iter()
                .copied()
                .filter(|&t| t != s && sizes[t] < target && degree[t] > home)
                .max_by_key(|&t| (degree[t], std::cmp::Reverse(t)));
            if let Some(t) = best {
                shard_of[v.index()] = t as u32;
                sizes[s] -= 1;
                sizes[t] += 1;
                moved = true;
            }
            for t in seen {
                degree[t] = 0;
            }
        }
        if !moved {
            break;
        }
    }
}

/// BFS order over all components, seeded from the lowest-id unvisited node.
fn bfs_order(g: &Graph) -> Vec<Node> {
    let mut seen = vec![false; g.n()];
    let mut order = Vec::with_capacity(g.n());
    let mut queue = std::collections::VecDeque::new();
    for root in g.nodes() {
        if seen[root.index()] {
            continue;
        }
        seen[root.index()] = true;
        queue.push_back(root);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            for &w in g.neighbors(v) {
                if !seen[w.index()] {
                    seen[w.index()] = true;
                    queue.push_back(w);
                }
            }
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use selfstab_graph::generators;

    fn assert_valid(p: &Partition, g: &Graph, k: usize) {
        assert_eq!(p.k(), k);
        assert_eq!(p.shard_of.len(), g.n());
        let total: usize = p.shards.iter().map(Vec::len).sum();
        assert_eq!(total, g.n(), "every node in exactly one shard");
        for (s, nodes) in p.shards.iter().enumerate() {
            for &v in nodes {
                assert_eq!(p.shard_of[v.index()], s as u32);
            }
            assert!(nodes.windows(2).all(|w| w[0] < w[1]), "sorted shard lists");
        }
    }

    #[test]
    fn contiguous_is_balanced() {
        let g = generators::cycle(10);
        for k in [1, 2, 3, 4, 10, 12] {
            let p = Partition::contiguous(&g, k);
            assert_valid(&p, &g, k);
            let max = p.max_shard_size();
            let min_nonempty = p
                .shards
                .iter()
                .map(Vec::len)
                .filter(|&l| l > 0)
                .min()
                .unwrap();
            assert!(max - min_nonempty <= 1, "k={k}: {max} vs {min_nonempty}");
        }
    }

    #[test]
    fn contiguous_cut_on_cycle_is_k() {
        let g = generators::cycle(12);
        for k in [2, 3, 4] {
            let p = Partition::contiguous(&g, k);
            assert_eq!(p.cut_edges(&g).len(), k, "k contiguous arcs cut k edges");
        }
    }

    #[test]
    fn coarsened_covers_and_balances() {
        for fam in generators::Family::ALL {
            let g = fam.build(64);
            for k in [1, 2, 4, 8] {
                let p = Partition::coarsened(&g, k);
                assert_valid(&p, &g, k);
                // Balance: no shard more than 2x the ideal (blob packing can
                // overshoot by one blob, blobs shrink by halving).
                assert!(
                    p.max_shard_size() <= 2 * g.n().div_ceil(k),
                    "{} k={k}: max {}",
                    fam.name(),
                    p.max_shard_size()
                );
            }
        }
    }

    #[test]
    fn coarsened_beats_oblivious_cut_on_grid() {
        // On a 16x16 grid, BFS-packed coarse blobs should not cut more than
        // the contiguous row-slices do by much; both must be far below m.
        let g = generators::grid(16, 16);
        let p = Partition::coarsened(&g, 4);
        let cut = p.cut_edges(&g).len();
        assert!(cut < g.m() / 2, "cut {cut} of {} edges", g.m());
    }

    #[test]
    fn coarsened_star_is_not_quadratic() {
        // Every star edge shares the hub, so heavy-edge matching contracts
        // one pair per level; without the progress guard this test would
        // contract ~n levels (minutes), with it the loop bails after one.
        let n = 50_000;
        let g = generators::star(n);
        let start = std::time::Instant::now();
        let p = Partition::coarsened(&g, 4);
        assert!(
            start.elapsed() < std::time::Duration::from_secs(20),
            "star partition took {:?}",
            start.elapsed()
        );
        assert_valid(&p, &g, 4);
        assert!(p.max_shard_size() <= 2 * n.div_ceil(4));
    }

    #[test]
    fn coarsened_is_deterministic() {
        let g = generators::grid(9, 7);
        let a = Partition::coarsened(&g, 4);
        let b = Partition::coarsened(&g, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn more_shards_than_nodes_leaves_empties() {
        let g = generators::path(3);
        let p = Partition::coarsened(&g, 8);
        assert_valid(&p, &g, 8);
        assert_eq!(p.shards.iter().filter(|s| !s.is_empty()).count(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        let g = generators::path(3);
        let _ = Partition::contiguous(&g, 0);
    }
}
