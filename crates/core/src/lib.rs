//! The protocols of *"Self-Stabilizing Protocols for Maximal Matching and
//! Maximal Independent Sets for Ad Hoc Networks"* (Goddard, Hedetniemi,
//! Jacobs, Srimani — IPDPS 2003), plus the baselines and ablations the paper
//! compares against.
//!
//! * [`smm`] — **Algorithm SMM** (Fig. 1 of the paper): synchronous
//!   self-stabilizing maximal matching via a single pointer per node and
//!   rules R1 *accept* / R2 *propose* / R3 *back-off*. Stabilizes in at most
//!   `n + 1` rounds (Theorem 1). [`smm::types`] implements the node-type
//!   partition of Fig. 2 and the transition diagram of Fig. 3.
//! * [`smi`] — **Algorithm SMI** (Fig. 4): synchronous self-stabilizing
//!   maximal independent set with ID symmetry breaking; `O(n)` rounds
//!   (Theorem 2).
//! * [`hsu_huang`] — the Hsu–Huang (1992) central-daemon maximal matching,
//!   the baseline Section 3 refers to.
//! * [`transformer`] — daemon refinement: running a central-daemon protocol
//!   in the synchronous model (the conversion the paper notes is possible
//!   "using the techniques of [1, 16]" but "not as fast").
//! * [`oracle`] — sequential greedy reference constructions for solution
//!   quality comparisons.
//! * [`cluster`], [`coarsen`] — derived applications: MIS-based cluster-head
//!   election (an MIS is an independent *minimal dominating set*) and
//!   matching-based graph coarsening.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod anonymous;
pub mod bfs_tree;
pub mod cluster;
pub mod coarsen;
pub mod coloring;
pub mod hsu_huang;
pub mod oracle;
pub mod partition;
pub mod smi;
pub mod smm;
pub mod transformer;

pub use anonymous::AnonMis;
pub use bfs_tree::BfsTree;
pub use coloring::Coloring;
pub use smi::Smi;
pub use smm::{Pointer, Smm};
