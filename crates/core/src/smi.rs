//! **Algorithm SMI** — Synchronous Maximal Independent Set (Fig. 4 of the
//! paper).
//!
//! Each node keeps one bit `x(i)` ("in the set"). With ID-based symmetry
//! breaking ("no two neighbors have the same ID", Section 4):
//!
//! * **R1 (enter):** `x(i) = 0` and no **bigger-ID** neighbor has `x = 1`
//!   — set `x(i) = 1`.
//! * **R2 (leave):** `x(i) = 1` and some bigger-ID neighbor has `x = 1`
//!   — set `x(i) = 0`.
//!
//! **Theorem 2:** SMI stabilizes in `O(n)` rounds; at a fixpoint
//! `{i : x(i) = 1}` is a maximal independent set (Lemma 13). Convergence
//! cascades down the ID order: the globally largest node enters by round 1
//! and never moves again, its neighbors then leave permanently, and so on.
//!
//! The stabilized set is exactly the *lexicographically first MIS by
//! decreasing ID* — the same set the greedy oracle
//! [`crate::oracle::greedy_mis_by_id_desc`] constructs, which the tests
//! exploit.

use rand::rngs::StdRng;
use rand::RngExt;
use selfstab_engine::protocol::{Move, Protocol, View};
use selfstab_graph::predicates::is_maximal_independent_set;
use selfstab_graph::{Graph, Ids, Node};

/// Which ID extreme dominates: the paper's rules favour **bigger** IDs
/// ("j is bigger than i"); the mirrored variant favours smaller ones. Both
/// converge by relabeling symmetry — the ablation tests check that the
/// *direction* is irrelevant while consistency is essential.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Tiebreak {
    /// The paper's rule: yield to bigger-ID members.
    BiggerWins,
    /// The mirrored rule: yield to smaller-ID members.
    SmallerWins,
}

/// Algorithm SMI. See the [module docs](self).
///
/// ```
/// use selfstab_core::Smi;
/// use selfstab_engine::{InitialState, SyncExecutor};
/// use selfstab_graph::{generators, predicates, Ids};
///
/// let g = generators::petersen();
/// let smi = Smi::new(Ids::identity(10));
/// let run = SyncExecutor::new(&g, &smi).run(InitialState::Random { seed: 2 }, 12);
/// assert!(run.stabilized()); // Theorem 2: O(n) rounds
/// assert!(predicates::is_maximal_independent_set(&g, &run.final_states));
/// ```
#[derive(Clone, Debug)]
pub struct Smi {
    ids: Ids,
    tiebreak: Tiebreak,
}

/// Rule indices into [`Smi::rule_names`].
pub mod rule {
    /// R1: enter the set.
    pub const ENTER: usize = 0;
    /// R2: leave the set.
    pub const LEAVE: usize = 1;
}

impl Smi {
    /// SMI exactly as in the paper (Fig. 4: bigger IDs win).
    pub fn new(ids: Ids) -> Self {
        Smi {
            ids,
            tiebreak: Tiebreak::BiggerWins,
        }
    }

    /// SMI with an explicit tie-break direction (ablation).
    pub fn with_tiebreak(ids: Ids, tiebreak: Tiebreak) -> Self {
        Smi { ids, tiebreak }
    }

    /// The ID assignment this instance runs with.
    pub fn ids(&self) -> &Ids {
        &self.ids
    }

    /// The member nodes of a global state.
    pub fn members(states: &[bool]) -> Vec<Node> {
        states
            .iter()
            .enumerate()
            .filter(|&(_i, &x)| x)
            .map(|(i, &_x)| Node::from(i))
            .collect()
    }
}

impl Protocol for Smi {
    type State = bool;

    fn rule_names(&self) -> &'static [&'static str] {
        &["R1:enter", "R2:leave"]
    }

    fn default_state(&self) -> bool {
        false
    }

    fn arbitrary_state(&self, _: Node, _: &[Node], rng: &mut StdRng) -> bool {
        rng.random_bool(0.5)
    }

    fn enumerate_states(&self, _: Node, _: &[Node]) -> Vec<bool> {
        vec![false, true]
    }

    fn step(&self, view: View<'_, bool>) -> Option<Move<bool>> {
        let i = view.node();
        let my_id = self.ids.id(i);
        let dominant_in_set = view.neighbor_states().any(|(j, &x)| {
            x && match self.tiebreak {
                Tiebreak::BiggerWins => self.ids.id(j) > my_id,
                Tiebreak::SmallerWins => self.ids.id(j) < my_id,
            }
        });
        match (*view.own(), dominant_in_set) {
            (false, false) => Some(Move {
                rule: rule::ENTER,
                next: true,
            }),
            (true, true) => Some(Move {
                rule: rule::LEAVE,
                next: false,
            }),
            _ => None,
        }
    }

    /// Lemma 13: a fixpoint's member set is a maximal independent set.
    fn is_legitimate(&self, graph: &Graph, states: &[bool]) -> bool {
        is_maximal_independent_set(graph, states)
    }

    fn containment(
        &self,
        graph: &Graph,
        states: &[bool],
        byz: &[bool],
    ) -> Option<selfstab_graph::predicates::Containment> {
        Some(selfstab_graph::predicates::mis_containment(
            graph, states, byz,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use selfstab_engine::protocol::InitialState;
    use selfstab_engine::sync::SyncExecutor;
    use selfstab_graph::generators;

    #[test]
    fn rules_fire_as_in_figure_4() {
        let g = generators::path(3);
        let smi = Smi::new(Ids::identity(3));
        // Node 1 out, bigger neighbor 2 out => R1 enter.
        let states = vec![false, false, false];
        let mv = smi
            .step(View::new(Node(1), g.neighbors(Node(1)), &states))
            .expect("R1");
        assert_eq!(mv.rule, rule::ENTER);
        assert!(mv.next);
        // Node 1 in, bigger neighbor 2 in => R2 leave.
        let states = vec![false, true, true];
        let mv = smi
            .step(View::new(Node(1), g.neighbors(Node(1)), &states))
            .expect("R2");
        assert_eq!(mv.rule, rule::LEAVE);
        assert!(!mv.next);
        // Node 2 in, no bigger neighbor => silent.
        assert!(smi
            .step(View::new(Node(2), g.neighbors(Node(2)), &states))
            .is_none());
        // Node 1 in, only *smaller* neighbor 0 in => silent for node 1
        // (smaller members don't force a leave)...
        let states = vec![true, true, false];
        assert!(smi
            .step(View::new(Node(1), g.neighbors(Node(1)), &states))
            .is_none());
        // ...but node 0 leaves because of bigger member 1.
        let mv = smi
            .step(View::new(Node(0), g.neighbors(Node(0)), &states))
            .expect("R2 for node 0");
        assert_eq!(mv.rule, rule::LEAVE);
    }

    #[test]
    fn theorem_2_on_structured_families() {
        for fam in generators::Family::ALL {
            for n in [4usize, 9, 16, 33] {
                let g = fam.build(n);
                let n_actual = g.n();
                let smi = Smi::new(Ids::identity(n_actual));
                let exec = SyncExecutor::new(&g, &smi);
                for seed in 0..10 {
                    let run = exec.run(InitialState::Random { seed }, n_actual + 2);
                    assert!(
                        run.stabilized(),
                        "SMI must stabilize within n+2 rounds on {} n={}",
                        fam.name(),
                        n_actual
                    );
                    assert!(
                        smi.is_legitimate(&g, &run.final_states),
                        "fixpoint must be an MIS on {}",
                        fam.name()
                    );
                }
            }
        }
    }

    #[test]
    fn worst_case_id_order_on_path_is_linear() {
        // IDs increasing along the path: convergence cascades from the
        // high-ID end, taking Θ(n) rounds from the all-out state.
        let n = 40;
        let g = generators::path(n);
        let smi = Smi::new(Ids::identity(n));
        let run = SyncExecutor::new(&g, &smi).run(InitialState::Default, n + 2);
        assert!(run.stabilized());
        assert!(
            run.rounds() >= n / 4,
            "expected linear-ish cascade, got {} rounds",
            run.rounds()
        );
        // The stabilized set is the greedy MIS by descending ID:
        // on an identity path that is {n-1, n-3, n-5, ...}.
        let members = Smi::members(&run.final_states);
        assert!(members.contains(&Node::from(n - 1)));
        assert!(!members.contains(&Node::from(n - 2)));
    }

    #[test]
    fn random_id_order_on_path_is_fast() {
        // With random IDs the cascade depth is the longest increasing-ID
        // path, which is short with high probability.
        use rand::SeedableRng;
        let n = 200;
        let g = generators::path(n);
        let mut rng = StdRng::seed_from_u64(12);
        let smi = Smi::new(Ids::random(n, &mut rng));
        let run = SyncExecutor::new(&g, &smi).run(InitialState::Default, n + 2);
        assert!(run.stabilized());
        assert!(
            run.rounds() < n / 4,
            "random IDs should stabilize quickly, got {} rounds",
            run.rounds()
        );
    }

    #[test]
    fn fixpoint_is_greedy_mis_by_descending_id() {
        use crate::oracle::greedy_mis_by_id_desc;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(77);
        let g = generators::erdos_renyi_connected(24, 0.15, &mut rng);
        let ids = Ids::random(24, &mut rng);
        let smi = Smi::new(ids.clone());
        for seed in 0..10 {
            let run = SyncExecutor::new(&g, &smi).run(InitialState::Random { seed }, 100);
            assert!(run.stabilized());
            // NOTE: from an *arbitrary* initial state the fixpoint need not
            // equal the greedy set (members without bigger member neighbors
            // can persist); but from the all-out state it must.
            let _ = run;
        }
        let run = SyncExecutor::new(&g, &smi).run(InitialState::Default, 100);
        assert!(run.stabilized());
        let expected = greedy_mis_by_id_desc(&g, &ids);
        assert_eq!(run.final_states, expected);
    }

    #[test]
    fn single_node_graph() {
        let g = Graph::empty(1);
        let smi = Smi::new(Ids::identity(1));
        let run = SyncExecutor::new(&g, &smi).run(InitialState::Default, 3);
        assert!(run.stabilized());
        assert_eq!(run.final_states, vec![true], "lone node enters the set");
        assert_eq!(run.rounds(), 1);
    }

    #[test]
    fn members_helper() {
        assert_eq!(Smi::members(&[true, false, true]), vec![Node(0), Node(2)]);
        assert!(Smi::members(&[]).is_empty());
    }
}

#[cfg(test)]
mod tiebreak_tests {
    use super::*;
    use selfstab_engine::protocol::InitialState;
    use selfstab_engine::sync::SyncExecutor;
    use selfstab_graph::generators;
    use selfstab_graph::predicates::is_maximal_independent_set;

    #[test]
    fn both_directions_stabilize_on_suite() {
        for fam in generators::Family::ALL {
            let g = fam.build(18);
            let n = g.n();
            for tb in [Tiebreak::BiggerWins, Tiebreak::SmallerWins] {
                let smi = Smi::with_tiebreak(Ids::identity(n), tb);
                for seed in 0..8 {
                    let run = SyncExecutor::new(&g, &smi).run(InitialState::Random { seed }, n + 2);
                    assert!(run.stabilized(), "{} {tb:?}", fam.name());
                    assert!(is_maximal_independent_set(&g, &run.final_states));
                }
            }
        }
    }

    #[test]
    fn directions_pick_mirrored_sets() {
        // Path 0-1-2 with identity IDs from all-out: bigger-wins keeps
        // node 2 (and then 0); smaller-wins keeps node 0 (and then 2).
        // Same set here by symmetry — use a star to tell them apart:
        // center has ID 0 under identity, so smaller-wins elects it.
        let g = generators::star(6);
        let bigger = Smi::new(Ids::identity(6));
        let run = SyncExecutor::new(&g, &bigger).run(InitialState::Default, 8);
        assert!(run.stabilized());
        assert!(
            !run.final_states[0],
            "bigger-wins: leaves beat the small center"
        );
        assert_eq!(run.final_states.iter().filter(|&&x| x).count(), 5);

        let smaller = Smi::with_tiebreak(Ids::identity(6), Tiebreak::SmallerWins);
        let run = SyncExecutor::new(&g, &smaller).run(InitialState::Default, 8);
        assert!(run.stabilized());
        assert!(
            run.final_states[0],
            "smaller-wins: the center (ID 0) dominates"
        );
        assert_eq!(run.final_states.iter().filter(|&&x| x).count(), 1);
    }

    #[test]
    fn smaller_wins_equals_bigger_wins_on_reversed_ids() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let g = generators::erdos_renyi_connected(20, 0.2, &mut StdRng::seed_from_u64(4));
        // Relabeling symmetry: smaller-wins with IDs id(v) equals
        // bigger-wins with IDs (max - id(v)).
        let ids: Vec<u64> = (0..20).collect();
        let mirrored: Vec<u64> = ids.iter().map(|&x| 19 - x).collect();
        let a = Smi::with_tiebreak(Ids::from_vec(ids), Tiebreak::SmallerWins);
        let b = Smi::new(Ids::from_vec(mirrored));
        let ra = SyncExecutor::new(&g, &a).run(InitialState::Default, 30);
        let rb = SyncExecutor::new(&g, &b).run(InitialState::Default, 30);
        assert_eq!(ra.final_states, rb.final_states);
        assert_eq!(ra.rounds, rb.rounds);
    }
}
