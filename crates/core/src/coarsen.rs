//! Matching-based graph coarsening — the classic downstream use of a
//! maximal matching (multilevel partitioning / multigrid coarsening).
//!
//! Contract every matched pair into a single coarse node; unmatched nodes
//! survive as singletons. Because the matching is *maximal*, no two
//! surviving singletons are adjacent in the original graph, so every edge of
//! the coarse graph touches a contracted pair, the coarse graph has exactly
//! `n - |M|` nodes, and coarsening strictly shrinks any graph with at least
//! one edge. The stabilized SMM state is exactly the input this
//! transformation wants, computed *in the network itself*.

use crate::smm::{Pointer, Smm};
use selfstab_graph::{Edge, Graph, Node};

/// The result of one coarsening level.
#[derive(Clone, Debug)]
pub struct Coarsening {
    /// The coarse graph.
    pub coarse: Graph,
    /// `fine_to_coarse[v]` — the coarse node containing fine node `v`.
    pub fine_to_coarse: Vec<Node>,
    /// For each coarse node, its fine members (1 or 2 of them).
    pub members: Vec<Vec<Node>>,
}

/// Contract the matched pairs of a stabilized SMM state.
pub fn coarsen_by_matching(g: &Graph, states: &[Pointer]) -> Coarsening {
    contract_matching(g, &Smm::matched_edges(g, states))
}

/// Contract an explicit matching: every matched pair becomes one coarse
/// node, every unmatched node survives as a singleton. The matching need
/// not be maximal (the shard partitioner feeds greedy matchings through
/// here), but each node may appear in at most one edge.
pub fn contract_matching(g: &Graph, matching: &[Edge]) -> Coarsening {
    let mut fine_to_coarse = vec![usize::MAX; g.n()];
    let mut members: Vec<Vec<Node>> = Vec::new();
    for e in matching {
        let c = members.len();
        members.push(vec![e.a, e.b]);
        fine_to_coarse[e.a.index()] = c;
        fine_to_coarse[e.b.index()] = c;
    }
    for v in g.nodes() {
        if fine_to_coarse[v.index()] == usize::MAX {
            let c = members.len();
            members.push(vec![v]);
            fine_to_coarse[v.index()] = c;
        }
    }
    let mut coarse = Graph::empty(members.len());
    for e in g.edges() {
        let (ca, cb) = (fine_to_coarse[e.a.index()], fine_to_coarse[e.b.index()]);
        if ca != cb {
            coarse.add_edge(Node::from(ca), Node::from(cb));
        }
    }
    Coarsening {
        coarse,
        fine_to_coarse: fine_to_coarse.into_iter().map(Node::from).collect(),
        members,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use selfstab_engine::protocol::{InitialState, Protocol};
    use selfstab_engine::sync::SyncExecutor;
    use selfstab_graph::traversal::is_connected;
    use selfstab_graph::{generators, Ids};

    fn stabilize(g: &Graph, seed: u64) -> Vec<Pointer> {
        let smm = Smm::paper(Ids::identity(g.n()));
        let run = SyncExecutor::new(g, &smm).run(InitialState::Random { seed }, g.n() + 1);
        assert!(run.stabilized());
        assert!(smm.is_legitimate(g, &run.final_states));
        run.final_states
    }

    #[test]
    fn coarsening_partitions_nodes() {
        let g = generators::grid(6, 6);
        let c = coarsen_by_matching(&g, &stabilize(&g, 3));
        let mut count = vec![0usize; c.coarse.n()];
        for v in g.nodes() {
            count[c.fine_to_coarse[v.index()].index()] += 1;
        }
        for (i, members) in c.members.iter().enumerate() {
            assert_eq!(count[i], members.len());
            assert!(members.len() == 1 || members.len() == 2);
            if members.len() == 2 {
                assert!(g.has_edge(members[0], members[1]), "pairs are edges");
            }
        }
        assert_eq!(count.iter().sum::<usize>(), g.n());
    }

    #[test]
    fn coarsening_preserves_connectivity() {
        for fam in generators::Family::ALL {
            let g = fam.build(30);
            let c = coarsen_by_matching(&g, &stabilize(&g, 1));
            assert!(is_connected(&c.coarse), "{}", fam.name());
        }
    }

    #[test]
    fn maximal_matching_shrinks_fast() {
        // A maximal matching on a connected graph with n >= 2 matches at
        // least one pair, and on dense graphs near n/2 pairs; assert the
        // coarse graph is strictly smaller and at least (n - m_count).
        let g = generators::complete(12);
        let states = stabilize(&g, 9);
        let matched = Smm::matched_edges(&g, &states).len();
        let c = coarsen_by_matching(&g, &states);
        assert_eq!(c.coarse.n(), 12 - matched);
        assert_eq!(matched, 6, "K12 matches perfectly");
        assert!(c.coarse.n() < g.n());
    }

    #[test]
    fn repeated_coarsening_reaches_single_node() {
        // Multilevel pipeline: repeatedly run SMM on the coarse graph.
        let mut g = generators::cycle(32);
        let mut levels = 0;
        while g.n() > 1 && levels < 20 {
            let states = stabilize(&g, levels as u64);
            let c = coarsen_by_matching(&g, &states);
            assert!(c.coarse.n() < g.n(), "must strictly shrink");
            g = c.coarse;
            levels += 1;
        }
        assert_eq!(g.n(), 1, "cycle should collapse within {levels} levels");
        assert!(levels <= 10, "halving-ish per level");
    }
}
